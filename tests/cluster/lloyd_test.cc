#include "cluster/lloyd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

Dataset MakeCentroids(std::vector<std::vector<double>> rows) {
  Dataset d(rows[0].size());
  for (const auto& r : rows) d.Append(r);
  return d;
}

TEST(LloydTest, ValidatesInput) {
  Rng rng(1);
  const LloydConfig config;
  WeightedDataset empty(2);
  EXPECT_TRUE(
      RunWeightedLloyd(empty, MakeCentroids({{0.0, 0.0}}), config, &rng)
          .status()
          .IsInvalidArgument());

  WeightedDataset data(2);
  data.Append(std::vector<double>{1.0, 1.0}, 1.0);
  EXPECT_TRUE(RunWeightedLloyd(data, Dataset(2), config, &rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      RunWeightedLloyd(data, MakeCentroids({{1.0}}), config, &rng)
          .status()
          .IsInvalidArgument());

  LloydConfig bad = config;
  bad.epsilon = -1.0;
  EXPECT_TRUE(
      RunWeightedLloyd(data, MakeCentroids({{0.0, 0.0}}), bad, &rng)
          .status()
          .IsInvalidArgument());
}

TEST(LloydTest, SingleClusterConvergesToWeightedMean) {
  Rng rng(2);
  WeightedDataset data(1);
  data.Append(std::vector<double>{0.0}, 1.0);
  data.Append(std::vector<double>{10.0}, 3.0);
  auto model = RunWeightedLloyd(data, MakeCentroids({{100.0}}),
                                LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->centroids(0, 0), 7.5, 1e-12);  // (0·1+10·3)/4
  EXPECT_DOUBLE_EQ(model->weights[0], 4.0);
  EXPECT_TRUE(model->converged);
}

TEST(LloydTest, TwoObviousClusters) {
  Rng rng(3);
  WeightedDataset data(1);
  for (double x : {0.0, 1.0, 2.0}) data.Append({&x, 1}, 1.0);
  for (double x : {100.0, 101.0, 102.0}) data.Append({&x, 1}, 1.0);
  auto model = RunWeightedLloyd(data, MakeCentroids({{0.0}, {90.0}}),
                                LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 101.0, 1e-9);
  EXPECT_NEAR(model->sse, 4.0, 1e-9);  // 2·(1+0+1)
}

TEST(LloydTest, SseMatchesIndependentMetric) {
  Rng rng(4);
  const Dataset points = GenerateUniform(500, 3, -5.0, 5.0, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Dataset seeds(3);
  for (size_t i = 0; i < 8; ++i) seeds.Append(points.Row(i * 11));
  auto model =
      RunWeightedLloyd(data, std::move(seeds), LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, Sse(model->centroids, points),
              1e-6 * (1.0 + model->sse));
  EXPECT_NEAR(model->mse_per_point, model->sse / 500.0, 1e-12);
}

TEST(LloydTest, SseNeverIncreasesAcrossRuns) {
  // Monotonicity property of Lloyd: a converged model's error cannot be
  // worse than the error of the initial seeds.
  Rng rng(5);
  const Dataset points = GenerateMisrLikeCell(2000, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Dataset seeds(points.dim());
  for (size_t i = 0; i < 10; ++i) seeds.Append(points.Row(i * 37));
  const double initial_sse = Sse(seeds, points);
  auto model = RunWeightedLloyd(data, seeds, LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->sse, initial_sse * (1.0 + 1e-12));
}

TEST(LloydTest, WeightsSumToTotalWeight) {
  Rng rng(6);
  WeightedDataset data(2);
  for (int i = 0; i < 100; ++i) {
    data.Append(std::vector<double>{rng.Normal(), rng.Normal()},
                1.0 + rng.UniformDouble());
  }
  Dataset seeds(2);
  for (size_t i = 0; i < 5; ++i) seeds.Append(data.Row(i));
  auto model =
      RunWeightedLloyd(data, std::move(seeds), LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  double sum = 0.0;
  for (double w : model->weights) sum += w;
  EXPECT_NEAR(sum, data.TotalWeight(), 1e-9);
}

TEST(LloydTest, EmptyClusterIsRepaired) {
  // Seeding two centroids at the same far-away location guarantees one
  // starves on the first assignment; the repair must keep k=2 distinct,
  // non-empty clusters for this clearly bimodal data.
  Rng rng(7);
  WeightedDataset data(1);
  for (int i = 0; i < 20; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 0.1)}, 1.0);
    data.Append(std::vector<double>{rng.Normal(50.0, 0.1)}, 1.0);
  }
  auto model = RunWeightedLloyd(
      data, MakeCentroids({{-1000.0}, {-1000.0}}), LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights[0], 0.0);
  EXPECT_GT(model->weights[1], 0.0);
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  EXPECT_NEAR(c[0], 0.0, 1.0);
  EXPECT_NEAR(c[1], 50.0, 1.0);
}

TEST(LloydTest, DuplicatePointsFewerThanK) {
  // 3 identical points, k=2: one cluster must stay empty (weight 0) and
  // the run must still terminate cleanly.
  Rng rng(8);
  WeightedDataset data(1);
  for (int i = 0; i < 3; ++i) {
    data.Append(std::vector<double>{5.0}, 1.0);
  }
  auto model = RunWeightedLloyd(data, MakeCentroids({{5.0}, {9.0}}),
                                LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(model->weights[0] + model->weights[1], 3.0);
}

TEST(LloydTest, TracksAssignmentsWhenAsked) {
  Rng rng(9);
  WeightedDataset data(1);
  for (double x : {0.0, 1.0, 100.0, 101.0}) data.Append({&x, 1}, 1.0);
  LloydConfig config;
  config.track_assignments = true;
  auto model = RunWeightedLloyd(data, MakeCentroids({{0.0}, {100.0}}),
                                config, &rng);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->assignments.size(), 4u);
  EXPECT_EQ(model->assignments[0], model->assignments[1]);
  EXPECT_EQ(model->assignments[2], model->assignments[3]);
  EXPECT_NE(model->assignments[0], model->assignments[2]);
}

TEST(LloydTest, MaxIterationsRespected) {
  Rng rng(10);
  const Dataset points = GenerateMisrLikeCell(3000, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Dataset seeds(points.dim());
  for (size_t i = 0; i < 20; ++i) seeds.Append(points.Row(i * 71));
  LloydConfig config;
  config.max_iterations = 2;
  auto model = RunWeightedLloyd(data, std::move(seeds), config, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->iterations, 2u);
}

TEST(LloydTest, ConvergedRunIsFixedPoint) {
  // Running Lloyd again from the converged centroids must not improve
  // the error beyond epsilon.
  Rng rng(11);
  const Dataset points = GenerateMisrLikeCell(1500, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Dataset seeds(points.dim());
  for (size_t i = 0; i < 12; ++i) seeds.Append(points.Row(i * 101));
  auto first =
      RunWeightedLloyd(data, std::move(seeds), LloydConfig{}, &rng);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->converged);
  auto second =
      RunWeightedLloyd(data, first->centroids, LloydConfig{}, &rng);
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second->sse, first->sse, 1e-6 * (1.0 + first->sse));
}

}  // namespace
}  // namespace pmkm
