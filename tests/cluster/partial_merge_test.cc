#include "cluster/partial_merge.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

PartialMergeConfig Config(size_t k, size_t partitions,
                          uint64_t seed = 123) {
  PartialMergeConfig config;
  config.partial.k = k;
  config.partial.restarts = 3;
  config.partial.seed = seed;
  config.num_partitions = partitions;
  config.seed = seed;
  return config;
}

TEST(PartialMergeTest, ValidatesConfig) {
  PartialMergeConfig bad = Config(4, 0);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Config(4, 2);
  bad.num_threads = 0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Config(0, 2);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(PartialMergeTest, EmptyCellRejected) {
  const PartialMergeKMeans pm(Config(4, 2));
  EXPECT_TRUE(pm.Run(Dataset(3)).status().IsInvalidArgument());
}

TEST(PartialMergeTest, ProducesKCentroidsWithFullWeight) {
  Rng rng(1);
  const Dataset cell = GenerateMisrLikeCell(2000, &rng);
  const PartialMergeKMeans pm(Config(10, 5));
  auto result = pm.Run(cell);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->model.k(), 10u);
  EXPECT_EQ(result->num_partitions, 5u);
  EXPECT_EQ(result->pooled_centroids, 50u);
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, 2000.0, 1e-6);
  EXPECT_GT(result->partial_seconds, 0.0);
  EXPECT_GE(result->merge_seconds, 0.0);
  EXPECT_GE(result->total_seconds,
            result->partial_seconds + result->merge_seconds - 1e-3);
}

TEST(PartialMergeTest, DeterministicForSeed) {
  Rng rng(2);
  const Dataset cell = GenerateMisrLikeCell(1200, &rng);
  auto a = PartialMergeKMeans(Config(8, 4, 77)).Run(cell);
  auto b = PartialMergeKMeans(Config(8, 4, 77)).Run(cell);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->model.centroids, b->model.centroids);
  EXPECT_EQ(a->model.sse, b->model.sse);
}

TEST(PartialMergeTest, ParallelMatchesSerialResult) {
  // Threading must change wall time only, never the clustering: the chunk
  // → seed derivation is independent of which thread runs which chunk.
  Rng rng(3);
  const Dataset cell = GenerateMisrLikeCell(2000, &rng);
  PartialMergeConfig serial = Config(8, 8, 5);
  serial.num_threads = 1;
  PartialMergeConfig parallel = Config(8, 8, 5);
  parallel.num_threads = 4;
  auto ms = PartialMergeKMeans(serial).Run(cell);
  auto mp = PartialMergeKMeans(parallel).Run(cell);
  ASSERT_TRUE(ms.ok() && mp.ok());
  EXPECT_EQ(ms->model.centroids, mp->model.centroids);
  EXPECT_EQ(ms->model.sse, mp->model.sse);
}

TEST(PartialMergeTest, RecoversWellSeparatedClusters) {
  Rng rng(4);
  std::vector<std::vector<double>> centers;
  const Dataset cell =
      GenerateSeparatedClusters(3000, 4, 6, 150.0, 1.0, &rng, &centers);
  auto result = PartialMergeKMeans(Config(6, 6)).Run(cell);
  ASSERT_TRUE(result.ok());
  for (const auto& truth : centers) {
    double best = 1e30;
    for (size_t j = 0; j < result->model.k(); ++j) {
      double d = 0.0;
      for (size_t dd = 0; dd < 4; ++dd) {
        const double diff = truth[dd] - result->model.centroids(j, dd);
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    EXPECT_LT(best, 9.0);
  }
}

TEST(PartialMergeTest, MoreDistinctPartitionsThanPoints) {
  Rng rng(5);
  const Dataset cell = GenerateUniform(3, 2, 0.0, 1.0, &rng);
  auto result = PartialMergeKMeans(Config(2, 10)).Run(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_partitions, 3u);  // empty chunks dropped
}

TEST(PartialMergeTest, ContiguousStrategyUsesArrivalOrder) {
  Rng rng(6);
  const Dataset cell = GenerateMisrLikeCell(1000, &rng);
  PartialMergeConfig config = Config(5, 4);
  config.strategy = PartitionStrategy::kContiguous;
  auto result = PartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_partitions, 4u);
}

TEST(PartialMergeTest, RunChunksValidatesPartitions) {
  const PartialMergeKMeans pm(Config(4, 2));
  EXPECT_TRUE(pm.RunChunks({}).status().IsInvalidArgument());

  Rng rng(7);
  std::vector<Dataset> mixed;
  mixed.push_back(GenerateUniform(10, 2, 0, 1, &rng));
  mixed.push_back(GenerateUniform(10, 3, 0, 1, &rng));
  EXPECT_TRUE(pm.RunChunks(mixed).status().IsInvalidArgument());

  std::vector<Dataset> with_empty;
  with_empty.push_back(GenerateUniform(10, 2, 0, 1, &rng));
  with_empty.push_back(Dataset(2));
  EXPECT_TRUE(pm.RunChunks(with_empty).status().IsInvalidArgument());
}

TEST(PartialMergeTest, PartitionDiagnosticsFilled) {
  Rng rng(8);
  const Dataset cell = GenerateMisrLikeCell(1500, &rng);
  auto result = PartialMergeKMeans(Config(6, 5)).Run(cell);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->partition_sse.size(), 5u);
  ASSERT_EQ(result->partition_iters.size(), 5u);
  for (double sse : result->partition_sse) EXPECT_GT(sse, 0.0);
  for (size_t it : result->partition_iters) EXPECT_GE(it, 1u);
}

TEST(PartialMergeTest, MergeKZeroInheritsPartialK) {
  Rng rng(9);
  const Dataset cell = GenerateMisrLikeCell(800, &rng);
  PartialMergeConfig config = Config(7, 4);
  config.merge.k = 0;
  auto result = PartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model.k(), 7u);
}

TEST(PartialMergeTest, MergeKCanDiffer) {
  Rng rng(10);
  const Dataset cell = GenerateMisrLikeCell(800, &rng);
  PartialMergeConfig config = Config(10, 4);
  config.merge.k = 3;
  auto result = PartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model.k(), 3u);
}

TEST(PartialMergeTest, RefinementNeverHurtsRawError) {
  Rng rng(12);
  const Dataset cell = GenerateMisrLikeCell(4000, &rng);
  PartialMergeConfig plain = Config(15, 8, 3);
  PartialMergeConfig refined = Config(15, 8, 3);
  refined.refine_iterations = 5;
  auto a = PartialMergeKMeans(plain).Run(cell);
  auto b = PartialMergeKMeans(refined).Run(cell);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->refine_seconds, 0.0);
  EXPECT_GT(b->refine_seconds, 0.0);
  const double raw_plain = Sse(a->model.centroids, cell);
  const double raw_refined = Sse(b->model.centroids, cell);
  EXPECT_LE(raw_refined, raw_plain * (1.0 + 1e-9));
  // Refined model reports its error on raw points.
  EXPECT_NEAR(b->model.sse, raw_refined, 1e-6 * (1.0 + raw_refined));
  // Mass is still conserved.
  double mass = 0.0;
  for (double w : b->model.weights) mass += w;
  EXPECT_NEAR(mass, 4000.0, 1e-6);
}

TEST(PartialMergeTest, QualityOnRawDataIsReasonable) {
  // The paper's central quality claim, in miniature: for a large cell the
  // partial/merge model's error on the ORIGINAL points is within a small
  // factor of the serial model's error (and often better).
  Rng rng(11);
  const Dataset cell = GenerateMisrLikeCell(6000, &rng);
  auto pm = PartialMergeKMeans(Config(20, 6)).Run(cell);
  ASSERT_TRUE(pm.ok());
  KMeansConfig serial_config;
  serial_config.k = 20;
  serial_config.restarts = 3;
  auto serial = KMeans(serial_config).Fit(cell);
  ASSERT_TRUE(serial.ok());
  const double pm_on_raw = Sse(pm->model.centroids, cell);
  EXPECT_LT(pm_on_raw, 2.0 * serial->sse);
}

}  // namespace
}  // namespace pmkm
