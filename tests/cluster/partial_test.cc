#include "cluster/partial.h"

#include <gtest/gtest.h>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

KMeansConfig Config(size_t k, size_t restarts = 3, uint64_t seed = 1) {
  KMeansConfig config;
  config.k = k;
  config.restarts = restarts;
  config.seed = seed;
  return config;
}

TEST(PartialKMeansTest, EmptyPartitionRejected) {
  const PartialKMeans partial(Config(4));
  EXPECT_TRUE(partial.Cluster(Dataset(2), 0).status().IsInvalidArgument());
}

TEST(PartialKMeansTest, WeightsSumToPartitionSize) {
  Rng rng(1);
  const Dataset partition = GenerateMisrLikeCell(1000, &rng);
  const PartialKMeans partial(Config(10));
  auto result = partial.Cluster(partition, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->input_points, 1000u);
  EXPECT_NEAR(result->centroids.TotalWeight(), 1000.0, 1e-9);
  EXPECT_LE(result->centroids.size(), 10u);
  for (size_t i = 0; i < result->centroids.size(); ++i) {
    EXPECT_GT(result->centroids.weight(i), 0.0);
  }
}

TEST(PartialKMeansTest, DegenerateChunkPassesThrough) {
  Rng rng(2);
  const Dataset partition = GenerateUniform(7, 3, 0.0, 1.0, &rng);
  const PartialKMeans partial(Config(10));
  auto result = partial.Cluster(partition, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 7u);
  EXPECT_DOUBLE_EQ(result->centroids.TotalWeight(), 7.0);
  EXPECT_DOUBLE_EQ(result->sse, 0.0);
  EXPECT_EQ(result->centroids.points(), partition);
}

TEST(PartialKMeansTest, ChunkExactlyKPassesThrough) {
  Rng rng(3);
  const Dataset partition = GenerateUniform(10, 3, 0.0, 1.0, &rng);
  const PartialKMeans partial(Config(10));
  auto result = partial.Cluster(partition, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->centroids.size(), 10u);
  EXPECT_DOUBLE_EQ(result->sse, 0.0);
}

TEST(PartialKMeansTest, DifferentPartitionIdsDecorrelateSeeds) {
  Rng rng(4);
  const Dataset partition = GenerateMisrLikeCell(600, &rng);
  const PartialKMeans partial(Config(8));
  auto a = partial.Cluster(partition, 0);
  auto b = partial.Cluster(partition, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->centroids.points(), b->centroids.points());
}

TEST(PartialKMeansTest, SamePartitionIdIsDeterministic) {
  Rng rng(5);
  const Dataset partition = GenerateMisrLikeCell(600, &rng);
  const PartialKMeans partial(Config(8));
  auto a = partial.Cluster(partition, 3);
  auto b = partial.Cluster(partition, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids.points(), b->centroids.points());
  EXPECT_EQ(a->sse, b->sse);
}

TEST(PartialKMeansTest, SseMatchesCentroidQuality) {
  Rng rng(6);
  const Dataset partition = GenerateMisrLikeCell(800, &rng);
  const PartialKMeans partial(Config(12));
  auto result = partial.Cluster(partition, 0);
  ASSERT_TRUE(result.ok());
  // The reported SSE equals an independent evaluation of the emitted
  // centroids on the partition.
  EXPECT_NEAR(result->sse,
              Sse(result->centroids.points(), partition),
              1e-6 * (1.0 + result->sse));
}

}  // namespace
}  // namespace pmkm
