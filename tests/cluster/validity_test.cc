#include "cluster/validity.h"

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "data/generator.h"

namespace pmkm {
namespace {

ClusteringModel ModelWithCentroids(std::vector<std::vector<double>> rows) {
  ClusteringModel model;
  model.centroids = Dataset(rows[0].size());
  for (const auto& r : rows) model.centroids.Append(r);
  model.weights.assign(rows.size(), 1.0);
  return model;
}

TEST(SilhouetteTest, Validation) {
  Rng rng(1);
  const Dataset data = GenerateUniform(10, 2, 0, 1, &rng);
  auto one_cluster = ModelWithCentroids({{0.0, 0.0}});
  EXPECT_TRUE(
      SilhouetteScore(one_cluster, data).status().IsInvalidArgument());
  auto model = ModelWithCentroids({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_TRUE(
      SilhouetteScore(model, Dataset(2)).status().IsInvalidArgument());
  const Dataset wrong = GenerateUniform(5, 3, 0, 1, &rng);
  EXPECT_TRUE(SilhouetteScore(model, wrong).status().IsInvalidArgument());
}

TEST(SilhouetteTest, NearOneForWellSeparatedBlobs) {
  Rng rng(2);
  const Dataset data =
      GenerateSeparatedClusters(600, 2, 3, 500.0, 1.0, &rng);
  KMeansConfig config;
  config.k = 3;
  config.restarts = 5;
  config.seeding = SeedingMethod::kKMeansPlusPlus;
  auto model = KMeans(config).Fit(data);
  ASSERT_TRUE(model.ok());
  auto score = SilhouetteScore(*model, data, 0);
  ASSERT_TRUE(score.ok()) << score.status();
  EXPECT_GT(*score, 0.9);
}

TEST(SilhouetteTest, LowForUniformNoise) {
  Rng rng(3);
  const Dataset data = GenerateUniform(600, 2, 0, 100, &rng);
  KMeansConfig config;
  config.k = 5;
  config.restarts = 3;
  auto model = KMeans(config).Fit(data);
  ASSERT_TRUE(model.ok());
  auto score = SilhouetteScore(*model, data, 0);
  ASSERT_TRUE(score.ok());
  EXPECT_LT(*score, 0.6);  // no real structure to separate
  EXPECT_GT(*score, -0.2);
}

TEST(SilhouetteTest, SamplingApproximatesExact) {
  Rng rng(4);
  const Dataset data =
      GenerateSeparatedClusters(1500, 2, 4, 300.0, 2.0, &rng);
  KMeansConfig config;
  config.k = 4;
  config.restarts = 5;
  config.seeding = SeedingMethod::kKMeansPlusPlus;
  auto model = KMeans(config).Fit(data);
  ASSERT_TRUE(model.ok());
  auto exact = SilhouetteScore(*model, data, 0);
  auto sampled = SilhouetteScore(*model, data, 500, 9);
  ASSERT_TRUE(exact.ok() && sampled.ok());
  EXPECT_NEAR(*sampled, *exact, 0.05);
}

TEST(DaviesBouldinTest, Validation) {
  Rng rng(5);
  const Dataset data = GenerateUniform(10, 2, 0, 1, &rng);
  auto one = ModelWithCentroids({{0.0, 0.0}});
  EXPECT_TRUE(
      DaviesBouldinIndex(one, data).status().IsInvalidArgument());
}

TEST(DaviesBouldinTest, LowerForBetterSeparation) {
  Rng rng(6);
  const Dataset tight =
      GenerateSeparatedClusters(900, 2, 3, 500.0, 1.0, &rng);
  const Dataset loose =
      GenerateSeparatedClusters(900, 2, 3, 20.0, 5.0, &rng);
  KMeansConfig config;
  config.k = 3;
  config.restarts = 5;
  config.seeding = SeedingMethod::kKMeansPlusPlus;
  auto mt = KMeans(config).Fit(tight);
  auto ml = KMeans(config).Fit(loose);
  ASSERT_TRUE(mt.ok() && ml.ok());
  auto dbt = DaviesBouldinIndex(*mt, tight);
  auto dbl = DaviesBouldinIndex(*ml, loose);
  ASSERT_TRUE(dbt.ok() && dbl.ok());
  EXPECT_LT(*dbt, *dbl);
  EXPECT_LT(*dbt, 0.2);  // essentially ideal separation
}

TEST(DaviesBouldinTest, KnownTwoClusterValue) {
  // Two symmetric clusters: points at {0, 2} and {10, 12}. Centroids at
  // 1 and 11, scatter = 1 each, distance 10 → DB = (1+1)/10 = 0.2.
  ClusteringModel model = ModelWithCentroids({{1.0}, {11.0}});
  Dataset data(1);
  for (double x : {0.0, 2.0, 10.0, 12.0}) data.Append({&x, 1});
  auto db = DaviesBouldinIndex(model, data);
  ASSERT_TRUE(db.ok());
  EXPECT_NEAR(*db, 0.2, 1e-12);
}

TEST(DaviesBouldinTest, EmptyClustersIgnored) {
  ClusteringModel model =
      ModelWithCentroids({{0.0}, {10.0}, {100000.0}});
  Dataset data(1);
  for (double x : {-1.0, 1.0, 9.0, 11.0}) data.Append({&x, 1});
  auto db = DaviesBouldinIndex(model, data);
  ASSERT_TRUE(db.ok());  // third cluster is empty but two remain
  EXPECT_NEAR(*db, 0.2, 1e-12);
}

}  // namespace
}  // namespace pmkm
