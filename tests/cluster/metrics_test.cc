#include "cluster/metrics.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace pmkm {
namespace {

Dataset MakeCentroids(std::vector<std::vector<double>> rows) {
  Dataset d(rows[0].size());
  for (const auto& r : rows) d.Append(r);
  return d;
}

TEST(MetricsTest, SseKnownValue) {
  const Dataset centroids = MakeCentroids({{0.0}, {10.0}});
  Dataset data(1);
  for (double x : {1.0, -1.0, 11.0, 9.0}) {
    data.Append({&x, 1});
  }
  EXPECT_DOUBLE_EQ(Sse(centroids, data), 4.0);
  EXPECT_DOUBLE_EQ(MsePerPoint(centroids, data), 1.0);
}

TEST(MetricsTest, SseZeroForExactCentroids) {
  const Dataset centroids = MakeCentroids({{1.0, 2.0}, {3.0, 4.0}});
  Dataset data(2);
  data.Append(std::vector<double>{1.0, 2.0});
  data.Append(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(Sse(centroids, data), 0.0);
}

TEST(MetricsTest, WeightedSseScalesWithWeights) {
  const Dataset centroids = MakeCentroids({{0.0}});
  WeightedDataset data(1);
  data.Append(std::vector<double>{2.0}, 3.0);   // 3·4 = 12
  data.Append(std::vector<double>{-1.0}, 5.0);  // 5·1 = 5
  EXPECT_DOUBLE_EQ(WeightedSse(centroids, data), 17.0);
}

TEST(MetricsTest, WeightedSseWithUnitWeightsEqualsSse) {
  Rng rng(1);
  const Dataset data = GenerateUniform(200, 3, -5, 5, &rng);
  const Dataset centroids = GenerateUniform(7, 3, -5, 5, &rng);
  EXPECT_NEAR(
      WeightedSse(centroids, WeightedDataset::FromUnweighted(data)),
      Sse(centroids, data), 1e-9);
}

TEST(MetricsTest, AssignmentCountsSumToN) {
  Rng rng(2);
  const Dataset data = GenerateUniform(500, 2, 0, 100, &rng);
  const Dataset centroids = GenerateUniform(9, 2, 0, 100, &rng);
  const auto counts = AssignmentCounts(centroids, data);
  ASSERT_EQ(counts.size(), 9u);
  size_t total = 0;
  for (size_t c : counts) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(MetricsTest, AssignmentCountsKnownSplit) {
  const Dataset centroids = MakeCentroids({{0.0}, {100.0}});
  Dataset data(1);
  for (double x : {1.0, 2.0, 3.0, 99.0}) data.Append({&x, 1});
  const auto counts = AssignmentCounts(centroids, data);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(MetricsTest, ModelSseOnMatchesSse) {
  Rng rng(3);
  const Dataset data = GenerateUniform(300, 2, 0, 10, &rng);
  ClusteringModel model;
  model.centroids = GenerateUniform(5, 2, 0, 10, &rng);
  EXPECT_DOUBLE_EQ(ModelSseOn(model, data), Sse(model.centroids, data));
}

}  // namespace
}  // namespace pmkm
