#include "cluster/parallel_lloyd.h"

#include <gtest/gtest.h>

#include "cluster/metrics.h"
#include "cluster/seeding.h"
#include "data/generator.h"

namespace pmkm {
namespace {

TEST(ParallelLloydTest, SmallInputFallsBackToSerialExactly) {
  Rng rng(1);
  const Dataset points = GenerateMisrLikeCell(500, &rng);  // < 1024
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(2);
  auto seeds = SelectSeeds(data, 8, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok());
  ThreadPool pool(4);
  Rng r1(1), r2(1);
  auto serial = RunWeightedLloyd(data, *seeds, LloydConfig{}, &r1);
  auto parallel =
      RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r2, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->centroids, parallel->centroids);  // bitwise: fallback
  EXPECT_EQ(serial->sse, parallel->sse);
}

TEST(ParallelLloydTest, NullPoolFallsBack) {
  Rng rng(2);
  const Dataset points = GenerateMisrLikeCell(2000, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(3);
  auto seeds = SelectSeeds(data, 8, SeedingMethod::kRandom, &seed_rng);
  Rng r1(1), r2(1);
  auto a = RunWeightedLloyd(data, *seeds, LloydConfig{}, &r1);
  auto b =
      RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r2, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids, b->centroids);
}

class ParallelLloydEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelLloydEquivalence, MatchesSerialQuality) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Dataset points =
      GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(11);
  auto seeds = SelectSeeds(data, 16, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok());
  ThreadPool pool(4);
  Rng r1(1), r2(1);
  auto serial = RunWeightedLloyd(data, *seeds, LloydConfig{}, &r1);
  auto parallel =
      RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r2, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  // Same local optimum up to reduction-order rounding.
  EXPECT_NEAR(parallel->sse, serial->sse, 1e-9 * (1.0 + serial->sse));
  double serial_mass = 0.0, parallel_mass = 0.0;
  for (double w : serial->weights) serial_mass += w;
  for (double w : parallel->weights) parallel_mass += w;
  EXPECT_NEAR(parallel_mass, serial_mass, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelLloydEquivalence,
                         ::testing::Values(2000, 8000, 20000));

TEST(ParallelLloydTest, DeterministicForFixedWorkerCount) {
  Rng rng(4);
  const Dataset points = GenerateMisrLikeCell(6000, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(5);
  auto seeds = SelectSeeds(data, 12, SeedingMethod::kRandom, &seed_rng);
  ThreadPool pool_a(3), pool_b(3);
  Rng r1(1), r2(1);
  auto a = RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r1,
                                    &pool_a);
  auto b = RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r2,
                                    &pool_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids, b->centroids);
  EXPECT_EQ(a->sse, b->sse);
}

TEST(ParallelLloydTest, WeightedDataSupported) {
  Rng rng(5);
  WeightedDataset data(3);
  for (int i = 0; i < 5000; ++i) {
    data.Append(std::vector<double>{rng.Uniform(0, 30), rng.Uniform(0, 30),
                                    rng.Uniform(0, 30)},
                1.0 + rng.UniformInt(4));
  }
  Rng seed_rng(6);
  auto seeds = SelectSeeds(data, 10, SeedingMethod::kRandom, &seed_rng);
  ThreadPool pool(4);
  Rng r1(1), r2(1);
  auto serial = RunWeightedLloyd(data, *seeds, LloydConfig{}, &r1);
  auto parallel =
      RunWeightedLloydParallel(data, *seeds, LloydConfig{}, &r2, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_NEAR(parallel->sse, serial->sse, 1e-9 * (1.0 + serial->sse));
}

TEST(ParallelLloydTest, EmptyClusterRepairedInParallelPath) {
  Rng rng(6);
  WeightedDataset data(1);
  for (int i = 0; i < 1500; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 0.1)}, 1.0);
    data.Append(std::vector<double>{rng.Normal(70.0, 0.1)}, 1.0);
  }
  Dataset seeds(1);
  seeds.Append(std::vector<double>{-900.0});
  seeds.Append(std::vector<double>{-900.0});
  ThreadPool pool(4);
  Rng r(1);
  auto model = RunWeightedLloydParallel(data, std::move(seeds),
                                        LloydConfig{}, &r, &pool);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights[0], 0.0);
  EXPECT_GT(model->weights[1], 0.0);
}

}  // namespace
}  // namespace pmkm
