#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/distance.h"
#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

KMeansConfig SmallConfig(size_t k, uint64_t seed = 1) {
  KMeansConfig config;
  config.k = k;
  config.restarts = 5;
  config.seed = seed;
  return config;
}

TEST(KMeansTest, ConfigValidation) {
  KMeansConfig config;
  config.k = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.k = 3;
  config.restarts = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(KMeansTest, FewerPointsThanKFails) {
  Rng rng(1);
  const Dataset data = GenerateUniform(5, 2, 0.0, 1.0, &rng);
  const KMeans kmeans(SmallConfig(10));
  EXPECT_TRUE(kmeans.Fit(data).status().IsInvalidArgument());
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(2);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(2000, 4, 5, 100.0, 0.5, &rng, &centers);
  const KMeans kmeans(SmallConfig(5, 42));
  auto model = kmeans.Fit(data);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->k(), 5u);

  // Every true center must be within 1.0 of some fitted centroid.
  for (const auto& truth : centers) {
    double best = 1e30;
    for (size_t j = 0; j < model->k(); ++j) {
      best = std::min(best, SquaredL2(truth, model->centroids.Row(j)));
    }
    EXPECT_LT(std::sqrt(best), 1.0);
  }
  // Error per point ≈ d·σ² = 4·0.25.
  EXPECT_LT(model->mse_per_point, 2.0);
}

TEST(KMeansTest, DeterministicForSameSeed) {
  Rng rng(3);
  const Dataset data = GenerateMisrLikeCell(800, &rng);
  const KMeans a(SmallConfig(8, 7));
  const KMeans b(SmallConfig(8, 7));
  auto ma = a.Fit(data);
  auto mb = b.Fit(data);
  ASSERT_TRUE(ma.ok() && mb.ok());
  EXPECT_EQ(ma->centroids, mb->centroids);
  EXPECT_EQ(ma->sse, mb->sse);
}

TEST(KMeansTest, DifferentSeedsMayDiffer) {
  Rng rng(4);
  const Dataset data = GenerateMisrLikeCell(800, &rng);
  auto ma = KMeans(SmallConfig(8, 1)).Fit(data);
  auto mb = KMeans(SmallConfig(8, 2)).Fit(data);
  ASSERT_TRUE(ma.ok() && mb.ok());
  // Not a strict requirement of k-means, but with k=8 on a 12-modal MISR
  // cell, two seeds landing on the exact same local optimum is ~impossible.
  EXPECT_NE(ma->centroids, mb->centroids);
}

TEST(KMeansTest, MoreRestartsNeverHurt) {
  // best-of-R is monotone in R when restart r's seed stream is independent
  // of R (our Fork(r) construction guarantees the first runs coincide).
  Rng rng(5);
  const Dataset data = GenerateMisrLikeCell(1500, &rng);
  KMeansConfig one = SmallConfig(10, 33);
  one.restarts = 1;
  KMeansConfig ten = SmallConfig(10, 33);
  ten.restarts = 10;
  auto m1 = KMeans(one).Fit(data);
  auto m10 = KMeans(ten).Fit(data);
  ASSERT_TRUE(m1.ok() && m10.ok());
  EXPECT_LE(m10->sse, m1->sse * (1.0 + 1e-12));
}

TEST(KMeansTest, KEqualsNGivesZeroError) {
  Rng rng(6);
  const Dataset data = GenerateUniform(12, 3, 0.0, 100.0, &rng);
  KMeansConfig config = SmallConfig(12, 1);
  auto model = KMeans(config).Fit(data);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, 0.0, 1e-9);
}

TEST(KMeansTest, KOneIsGlobalMean) {
  Rng rng(7);
  const Dataset data = GenerateUniform(200, 2, -10.0, 10.0, &rng);
  auto model = KMeans(SmallConfig(1)).Fit(data);
  ASSERT_TRUE(model.ok());
  const auto mean = data.Mean();
  EXPECT_NEAR(model->centroids(0, 0), mean[0], 1e-9);
  EXPECT_NEAR(model->centroids(0, 1), mean[1], 1e-9);
}

TEST(KMeansTest, WeightedFitRespectsWeights) {
  // Two locations; location B has 9× the weight. k=1 mean must sit at the
  // weighted mean.
  WeightedDataset data(1);
  data.Append(std::vector<double>{0.0}, 1.0);
  data.Append(std::vector<double>{10.0}, 9.0);
  KMeansConfig config = SmallConfig(1);
  auto model = KMeans(config).FitWeighted(data);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->centroids(0, 0), 9.0, 1e-9);
}

TEST(KMeansTest, WeightedEquivalentToReplication) {
  // Integer weights must behave exactly like replicated points.
  Rng rng(8);
  WeightedDataset weighted(2);
  Dataset replicated(2);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const int w = 1 + static_cast<int>(rng.UniformInt(4));
    weighted.Append(p, static_cast<double>(w));
    for (int r = 0; r < w; ++r) replicated.Append(p);
  }
  KMeansConfig config = SmallConfig(4, 55);
  auto mw = KMeans(config).FitWeighted(weighted);
  ASSERT_TRUE(mw.ok());
  // Evaluate weighted centroids on the replicated dataset and vice versa:
  // the weighted SSE over weighted data equals SSE over replicated data
  // for the same centroid set.
  EXPECT_NEAR(mw->sse, Sse(mw->centroids, replicated),
              1e-6 * (1.0 + mw->sse));
}

TEST(KMeansTest, IterationsReported) {
  Rng rng(9);
  const Dataset data = GenerateMisrLikeCell(500, &rng);
  auto model = KMeans(SmallConfig(5)).Fit(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->iterations, 1u);
  EXPECT_TRUE(model->converged);
}

TEST(KMeansTest, PredictReturnsNearest) {
  Rng rng(10);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(500, 2, 3, 100.0, 0.5, &rng, &centers);
  auto model = KMeans(SmallConfig(3)).Fit(data);
  ASSERT_TRUE(model.ok());
  for (const auto& c : centers) {
    const size_t j = model->Predict(c);
    EXPECT_LT(SquaredL2(std::span<const double>(c),
                        model->centroids.Row(j)),
              100.0);
  }
}

}  // namespace
}  // namespace pmkm
