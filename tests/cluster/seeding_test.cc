#include "cluster/seeding.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"

namespace pmkm {
namespace {

WeightedDataset MakeWeighted(std::vector<double> weights) {
  WeightedDataset w(1);
  for (size_t i = 0; i < weights.size(); ++i) {
    w.Append(std::vector<double>{static_cast<double>(i)}, weights[i]);
  }
  return w;
}

TEST(SeedingTest, RejectsInvalidRequests) {
  Rng rng(1);
  const auto data = MakeWeighted({1, 1, 1});
  EXPECT_TRUE(SelectSeeds(data, 0, SeedingMethod::kRandom, &rng)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SelectSeeds(data, 4, SeedingMethod::kRandom, &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(SeedingTest, RandomSeedsAreDistinctDataPoints) {
  Rng rng(2);
  const auto data = MakeWeighted(std::vector<double>(20, 1.0));
  auto seeds = SelectSeeds(data, 10, SeedingMethod::kRandom, &rng);
  ASSERT_TRUE(seeds.ok());
  ASSERT_EQ(seeds->size(), 10u);
  std::set<double> values;
  for (size_t i = 0; i < seeds->size(); ++i) {
    values.insert((*seeds)(i, 0));
    // Must be one of the data values 0..19.
    EXPECT_GE((*seeds)(i, 0), 0.0);
    EXPECT_LE((*seeds)(i, 0), 19.0);
  }
  EXPECT_EQ(values.size(), 10u);  // distinct indices
}

TEST(SeedingTest, HeaviestWeightPicksTopK) {
  Rng rng(3);
  const auto data = MakeWeighted({5.0, 50.0, 1.0, 30.0, 2.0});
  auto seeds =
      SelectSeeds(data, 2, SeedingMethod::kHeaviestWeight, &rng);
  ASSERT_TRUE(seeds.ok());
  std::set<double> values;
  for (size_t i = 0; i < seeds->size(); ++i) values.insert((*seeds)(i, 0));
  // Indices 1 (w=50) and 3 (w=30).
  EXPECT_TRUE(values.count(1.0));
  EXPECT_TRUE(values.count(3.0));
}

TEST(SeedingTest, HeaviestWeightIsDeterministic) {
  Rng r1(1), r2(99);  // rng must not matter
  const auto data = MakeWeighted({5.0, 50.0, 1.0, 30.0, 2.0});
  auto a = SelectSeeds(data, 3, SeedingMethod::kHeaviestWeight, &r1);
  auto b = SelectSeeds(data, 3, SeedingMethod::kHeaviestWeight, &r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SeedingTest, HeaviestWeightTieBreaksByIndex) {
  Rng rng(4);
  const auto data = MakeWeighted({7.0, 7.0, 7.0, 7.0});
  auto seeds =
      SelectSeeds(data, 2, SeedingMethod::kHeaviestWeight, &rng);
  ASSERT_TRUE(seeds.ok());
  EXPECT_DOUBLE_EQ((*seeds)(0, 0), 0.0);
  EXPECT_DOUBLE_EQ((*seeds)(1, 0), 1.0);
}

TEST(SeedingTest, KMeansPlusPlusSpreadsSeeds) {
  // Two well-separated blobs: with k=2, k-means++ should almost always put
  // one seed in each blob, while the blobs are 1000 apart.
  Rng rng(5);
  WeightedDataset data(1);
  for (int i = 0; i < 50; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 1.0)}, 1.0);
    data.Append(std::vector<double>{rng.Normal(1000.0, 1.0)}, 1.0);
  }
  int both_blobs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Rng trial_rng(100 + trial);
    auto seeds =
        SelectSeeds(data, 2, SeedingMethod::kKMeansPlusPlus, &trial_rng);
    ASSERT_TRUE(seeds.ok());
    const bool a_low = (*seeds)(0, 0) < 500.0;
    const bool b_low = (*seeds)(1, 0) < 500.0;
    if (a_low != b_low) ++both_blobs;
  }
  EXPECT_GE(both_blobs, 19);
}

TEST(SeedingTest, KMeansPlusPlusHandlesDuplicatePoints) {
  Rng rng(6);
  WeightedDataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.Append(std::vector<double>{42.0}, 1.0);
  }
  auto seeds =
      SelectSeeds(data, 3, SeedingMethod::kKMeansPlusPlus, &rng);
  ASSERT_TRUE(seeds.ok());  // falls back to uniform when all D² mass is 0
  EXPECT_EQ(seeds->size(), 3u);
}

TEST(SeedingTest, KEqualsNReturnsEverything) {
  Rng rng(7);
  const auto data = MakeWeighted({1.0, 2.0, 3.0});
  for (auto method :
       {SeedingMethod::kRandom, SeedingMethod::kHeaviestWeight,
        SeedingMethod::kKMeansPlusPlus}) {
    auto seeds = SelectSeeds(data, 3, method, &rng);
    ASSERT_TRUE(seeds.ok());
    std::set<double> values;
    for (size_t i = 0; i < seeds->size(); ++i) {
      values.insert((*seeds)(i, 0));
    }
    EXPECT_EQ(values.size(), 3u) << SeedingMethodToString(method);
  }
}

TEST(SeedingTest, MethodStringRoundTrip) {
  for (auto method :
       {SeedingMethod::kRandom, SeedingMethod::kHeaviestWeight,
        SeedingMethod::kKMeansPlusPlus}) {
    auto parsed = SeedingMethodFromString(SeedingMethodToString(method));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, method);
  }
  EXPECT_TRUE(SeedingMethodFromString("bogus").status().IsInvalidArgument());
}

}  // namespace
}  // namespace pmkm
