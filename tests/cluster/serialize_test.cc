#include "cluster/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cluster/kmeans.h"
#include "data/generator.h"

namespace pmkm {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_ser_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

ClusteringModel FitSample(bool with_assignments) {
  Rng rng(1);
  const Dataset cell = GenerateMisrLikeCell(500, &rng);
  KMeansConfig config;
  config.k = 7;
  config.restarts = 2;
  config.lloyd.track_assignments = with_assignments;
  auto model = KMeans(config).Fit(cell);
  PMKM_CHECK(model.ok());
  return std::move(model).value();
}

TEST_F(SerializeTest, RoundTripWithoutAssignments) {
  const ClusteringModel original = FitSample(false);
  const std::string path = Path("m.pmkm");
  ASSERT_TRUE(SaveModel(path, original).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->centroids, original.centroids);
  EXPECT_EQ(loaded->weights, original.weights);
  EXPECT_DOUBLE_EQ(loaded->sse, original.sse);
  EXPECT_DOUBLE_EQ(loaded->mse_per_point, original.mse_per_point);
  EXPECT_EQ(loaded->iterations, original.iterations);
  EXPECT_EQ(loaded->converged, original.converged);
  EXPECT_TRUE(loaded->assignments.empty());
}

TEST_F(SerializeTest, RoundTripWithAssignments) {
  const ClusteringModel original = FitSample(true);
  ASSERT_FALSE(original.assignments.empty());
  const std::string path = Path("ma.pmkm");
  ASSERT_TRUE(SaveModel(path, original).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->assignments, original.assignments);
}

TEST_F(SerializeTest, EmptyModelRejected) {
  ClusteringModel empty;
  EXPECT_TRUE(SaveModel(Path("e.pmkm"), empty).IsInvalidArgument());
}

TEST_F(SerializeTest, MissingFileFails) {
  EXPECT_TRUE(LoadModel(Path("ghost.pmkm")).status().IsIOError());
}

TEST_F(SerializeTest, GarbageFileRejected) {
  const std::string path = Path("junk.pmkm");
  std::ofstream(path) << "definitely not a model, but long enough to "
                         "clear the minimum size check....";
  EXPECT_TRUE(LoadModel(path).status().IsIOError());
}

TEST_F(SerializeTest, BitFlipDetectedByChecksum) {
  const ClusteringModel original = FitSample(false);
  const std::string path = Path("flip.pmkm");
  ASSERT_TRUE(SaveModel(path, original).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(60, std::ios::beg);
    char c;
    f.seekg(60, std::ios::beg);
    f.get(c);
    f.seekp(60, std::ios::beg);
    f.put(static_cast<char>(c ^ 0x01));
  }
  const auto st = LoadModel(path).status();
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST_F(SerializeTest, TruncationDetected) {
  const ClusteringModel original = FitSample(false);
  const std::string path = Path("trunc.pmkm");
  ASSERT_TRUE(SaveModel(path, original).ok());
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 16);
  EXPECT_TRUE(LoadModel(path).status().IsIOError());
}

TEST_F(SerializeTest, LoadedModelPredictsIdentically) {
  Rng rng(2);
  const Dataset cell = GenerateMisrLikeCell(300, &rng);
  const ClusteringModel original = FitSample(false);
  const std::string path = Path("pred.pmkm");
  ASSERT_TRUE(SaveModel(path, original).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < cell.size(); ++i) {
    EXPECT_EQ(loaded->Predict(cell.Row(i)), original.Predict(cell.Row(i)));
  }
}

}  // namespace
}  // namespace pmkm
