#include "cluster/incremental_merge.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/partial.h"
#include "cluster/partial_merge.h"
#include "data/generator.h"

namespace pmkm {
namespace {

MergeKMeansConfig Config(size_t k) {
  MergeKMeansConfig config;
  config.k = k;
  return config;
}

WeightedDataset OneSet(std::vector<std::pair<double, double>> pts) {
  WeightedDataset out(1);
  for (auto [x, w] : pts) out.Append({&x, 1}, w);
  return out;
}

TEST(IncrementalMergeTest, ValidatesInput) {
  IncrementalMergeKMeans merge(2, Config(3));
  EXPECT_TRUE(merge.Push(WeightedDataset(3)).IsInvalidArgument());
  EXPECT_TRUE(merge.Push(WeightedDataset(2)).IsInvalidArgument());
  WeightedDataset zero_w(2);
  zero_w.Append(std::vector<double>{1.0, 2.0}, 0.0);
  EXPECT_TRUE(merge.Push(zero_w).IsInvalidArgument());
  EXPECT_TRUE(merge.Finish().status().IsFailedPrecondition());
}

TEST(IncrementalMergeTest, BuffersUntilKExceeded) {
  IncrementalMergeKMeans merge(1, Config(4));
  ASSERT_TRUE(merge.Push(OneSet({{0.0, 1.0}, {1.0, 1.0}})).ok());
  EXPECT_EQ(merge.running().size(), 2u);  // verbatim, no clustering yet
  ASSERT_TRUE(merge.Push(OneSet({{2.0, 1.0}, {3.0, 1.0}})).ok());
  EXPECT_EQ(merge.running().size(), 4u);
  auto model = merge.Finish();
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->k(), 4u);
  EXPECT_EQ(merge.partitions_merged(), 2u);
}

TEST(IncrementalMergeTest, RunningSetNeverExceedsK) {
  Rng rng(1);
  IncrementalMergeKMeans merge(6, Config(8));
  for (int p = 0; p < 6; ++p) {
    const Dataset chunk = GenerateMisrLikeCell(200, &rng);
    KMeansConfig pconfig;
    pconfig.k = 8;
    pconfig.restarts = 2;
    const PartialKMeans partial(pconfig);
    auto result = partial.Cluster(chunk, p);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(merge.Push(result->centroids).ok());
    EXPECT_LE(merge.running().size(), 8u + 0u)
        << "after partition " << p;
  }
}

TEST(IncrementalMergeTest, MassIsConservedAcrossFolds) {
  Rng rng(2);
  IncrementalMergeKMeans merge(2, Config(5));
  double total = 0.0;
  for (int p = 0; p < 10; ++p) {
    WeightedDataset set(2);
    for (int i = 0; i < 12; ++i) {
      const double w = 1.0 + rng.UniformInt(20);
      set.Append(std::vector<double>{rng.Uniform(0, 100),
                                     rng.Uniform(0, 100)},
                 w);
      total += w;
    }
    ASSERT_TRUE(merge.Push(set).ok());
  }
  auto model = merge.Finish();
  ASSERT_TRUE(model.ok());
  double mass = 0.0;
  for (double w : model->weights) mass += w;
  EXPECT_NEAR(mass, total, 1e-6);
}

TEST(IncrementalMergeTest, FindsSeparatedBlobsLikeCollective) {
  // Both merge orders must recover two far-apart blobs; the difference the
  // paper predicts is statistical quality, not gross failure.
  Rng rng(3);
  std::vector<WeightedDataset> sets;
  for (int p = 0; p < 5; ++p) {
    WeightedDataset set(1);
    set.Append(std::vector<double>{rng.Normal(0.0, 0.5)}, 40.0);
    set.Append(std::vector<double>{rng.Normal(200.0, 0.5)}, 60.0);
    sets.push_back(set);
  }
  IncrementalMergeKMeans inc(1, Config(2));
  WeightedDataset pooled(1);
  for (const auto& s : sets) {
    ASSERT_TRUE(inc.Push(s).ok());
    pooled.AppendAll(s);
  }
  auto inc_model = inc.Finish();
  auto col_model = MergeKMeans(Config(2)).Merge(pooled);
  ASSERT_TRUE(inc_model.ok() && col_model.ok());
  for (const auto* model : {&*inc_model, &*col_model}) {
    std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
    std::sort(c.begin(), c.end());
    EXPECT_NEAR(c[0], 0.0, 2.0);
    EXPECT_NEAR(c[1], 200.0, 2.0);
  }
}

TEST(IncrementalMergeTest, OrderDependenceExists) {
  // The paper's §3.3 point: incremental merging treats early chunks
  // preferentially, so feeding the same sets in a different order may give
  // a different representation (the collective merge is order-free by
  // construction). We only require the two orders to run and conserve
  // mass; bitwise equality is not expected.
  Rng rng(4);
  std::vector<WeightedDataset> sets;
  for (int p = 0; p < 8; ++p) {
    WeightedDataset set(2);
    for (int i = 0; i < 10; ++i) {
      set.Append(std::vector<double>{rng.Uniform(0, 50),
                                     rng.Uniform(0, 50)},
                 1.0 + rng.UniformInt(30));
    }
    sets.push_back(set);
  }
  IncrementalMergeKMeans forward(2, Config(6));
  IncrementalMergeKMeans backward(2, Config(6));
  for (size_t p = 0; p < sets.size(); ++p) {
    ASSERT_TRUE(forward.Push(sets[p]).ok());
    ASSERT_TRUE(backward.Push(sets[sets.size() - 1 - p]).ok());
  }
  auto fm = forward.Finish();
  auto bm = backward.Finish();
  ASSERT_TRUE(fm.ok() && bm.ok());
  double f_mass = 0.0, b_mass = 0.0;
  for (double w : fm->weights) f_mass += w;
  for (double w : bm->weights) b_mass += w;
  EXPECT_NEAR(f_mass, b_mass, 1e-6);
}

}  // namespace
}  // namespace pmkm
