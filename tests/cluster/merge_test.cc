#include "cluster/merge.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/partial.h"
#include "data/generator.h"

namespace pmkm {
namespace {

MergeKMeansConfig Config(size_t k) {
  MergeKMeansConfig config;
  config.k = k;
  return config;
}

TEST(MergeKMeansTest, RejectsBadInput) {
  const MergeKMeans merger(Config(4));
  EXPECT_TRUE(
      merger.Merge(WeightedDataset(2)).status().IsInvalidArgument());

  WeightedDataset bad(1);
  bad.Append(std::vector<double>{1.0}, 0.0);  // non-positive weight
  EXPECT_TRUE(merger.Merge(bad).status().IsInvalidArgument());

  const MergeKMeans zero_k(Config(0));
  WeightedDataset ok(1);
  ok.Append(std::vector<double>{1.0}, 1.0);
  EXPECT_TRUE(zero_k.Merge(ok).status().IsInvalidArgument());
}

TEST(MergeKMeansTest, SmallPoolPassesThrough) {
  WeightedDataset pool(2);
  pool.Append(std::vector<double>{1.0, 2.0}, 10.0);
  pool.Append(std::vector<double>{3.0, 4.0}, 20.0);
  auto model = MergeKMeans(Config(5)).Merge(pool);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->k(), 2u);
  EXPECT_DOUBLE_EQ(model->sse, 0.0);
  EXPECT_EQ(model->weights[1], 20.0);
}

TEST(MergeKMeansTest, MergesTwoPartitionViews) {
  // Two partitions of the same two-blob data: the merged model must find
  // the two blob centers regardless of which partition they came from.
  Rng rng(1);
  WeightedDataset pool(1);
  // Partition 1 saw blob A at 0 and blob B at 100.
  pool.Append(std::vector<double>{0.1}, 50.0);
  pool.Append(std::vector<double>{99.8}, 40.0);
  // Partition 2 saw them slightly differently.
  pool.Append(std::vector<double>{-0.2}, 45.0);
  pool.Append(std::vector<double>{100.3}, 55.0);
  auto model = MergeKMeans(Config(2)).Merge(pool);
  ASSERT_TRUE(model.ok());
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  // Weighted means: (0.1·50 − 0.2·45)/95 and (99.8·40 + 100.3·55)/95.
  EXPECT_NEAR(c[0], (0.1 * 50 - 0.2 * 45) / 95.0, 1e-9);
  EXPECT_NEAR(c[1], (99.8 * 40 + 100.3 * 55) / 95.0, 1e-9);
  // Output weights preserve total mass.
  EXPECT_NEAR(model->weights[0] + model->weights[1], 190.0, 1e-9);
}

TEST(MergeKMeansTest, HeaviestSeedingIsDeterministic) {
  Rng rng(2);
  WeightedDataset pool(2);
  for (int i = 0; i < 60; ++i) {
    pool.Append(std::vector<double>{rng.Uniform(0, 100),
                                    rng.Uniform(0, 100)},
                1.0 + rng.UniformInt(100));
  }
  auto a = MergeKMeans(Config(8)).Merge(pool);
  auto b = MergeKMeans(Config(8)).Merge(pool);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids, b->centroids);
}

TEST(MergeKMeansTest, LargeWeightDominatesItsCluster) {
  WeightedDataset pool(1);
  pool.Append(std::vector<double>{0.0}, 1000.0);
  pool.Append(std::vector<double>{1.0}, 1.0);
  pool.Append(std::vector<double>{100.0}, 1.0);
  auto model = MergeKMeans(Config(2)).Merge(pool);
  ASSERT_TRUE(model.ok());
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  // Heavy point pins its cluster mean very near 0.
  EXPECT_NEAR(c[0], 1.0 / 1001.0, 1e-9);
  EXPECT_NEAR(c[1], 100.0, 1e-9);
}

TEST(MergeKMeansTest, EndToEndPartialThenMerge) {
  // Quality sanity: partial(4 chunks) + merge should approximate the blob
  // structure of the full data.
  Rng rng(3);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(2000, 3, 4, 200.0, 1.0, &rng, &centers);
  const auto chunks = SplitRandom(data, 4, &rng);

  KMeansConfig pconfig;
  pconfig.k = 4;
  pconfig.restarts = 5;
  const PartialKMeans partial(pconfig);
  WeightedDataset pool(3);
  for (size_t p = 0; p < chunks.size(); ++p) {
    auto result = partial.Cluster(chunks[p], p);
    ASSERT_TRUE(result.ok());
    pool.AppendAll(result->centroids);
  }
  // Heaviest-weight seeding can duplicate a blob when partition weights
  // are near-equal (a known k-means local optimum); the quality test uses
  // k-means++ with restarts, the paper's-seeding behaviour is covered by
  // the deterministic tests above and the seeding ablation bench.
  MergeKMeansConfig mconfig = Config(4);
  mconfig.seeding = SeedingMethod::kKMeansPlusPlus;
  mconfig.restarts = 5;
  auto model = MergeKMeans(mconfig).Merge(pool);
  ASSERT_TRUE(model.ok());
  for (const auto& truth : centers) {
    double best = 1e30;
    for (size_t j = 0; j < model->k(); ++j) {
      double d = 0.0;
      for (size_t dd = 0; dd < 3; ++dd) {
        const double diff = truth[dd] - model->centroids(j, dd);
        d += diff * diff;
      }
      best = std::min(best, d);
    }
    EXPECT_LT(best, 4.0);
  }
}

}  // namespace
}  // namespace pmkm
