#include "cluster/distance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"

namespace pmkm {
namespace {

TEST(SquaredL2Test, KnownValues) {
  const std::vector<double> a{0.0, 0.0, 0.0};
  const std::vector<double> b{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 9.0);
  EXPECT_DOUBLE_EQ(SquaredL2(a, a), 0.0);
  EXPECT_DOUBLE_EQ(SquaredL2(b, a), 9.0);  // symmetric
}

TEST(SquaredL2Test, SingleDimension) {
  const std::vector<double> a{3.0};
  const std::vector<double> b{-1.0};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 16.0);
}

TEST(NearestCentroidTest, PicksClosest) {
  Dataset centroids(2);
  centroids.Append(std::vector<double>{0.0, 0.0});
  centroids.Append(std::vector<double>{10.0, 0.0});
  centroids.Append(std::vector<double>{0.0, 10.0});

  const std::vector<double> p{7.0, 1.0};
  const Nearest n = NearestCentroid(p, centroids);
  EXPECT_EQ(n.index, 1u);
  EXPECT_DOUBLE_EQ(n.distance_sq, 9.0 + 1.0);
}

TEST(NearestCentroidTest, ExactPointDistanceZero) {
  Dataset centroids(3);
  centroids.Append(std::vector<double>{1.0, 2.0, 3.0});
  const std::vector<double> p{1.0, 2.0, 3.0};
  const Nearest n = NearestCentroid(p, centroids);
  EXPECT_EQ(n.index, 0u);
  EXPECT_DOUBLE_EQ(n.distance_sq, 0.0);
}

TEST(NearestCentroidTest, TieBreaksToFirst) {
  Dataset centroids(1);
  centroids.Append(std::vector<double>{-1.0});
  centroids.Append(std::vector<double>{1.0});
  const std::vector<double> p{0.0};
  EXPECT_EQ(NearestCentroid(p, centroids).index, 0u);
}

TEST(NearestCentroidTest, ExpandedFormMatchesNaive) {
  // Property check: the ‖c‖²−2x·c argmin must agree with the direct
  // subtract-square argmin on random data, and the returned distance must
  // match the naive distance to within FP tolerance.
  Rng rng(11);
  const Dataset centroids = GenerateUniform(40, 6, -100.0, 100.0, &rng);
  const Dataset points = GenerateUniform(500, 6, -100.0, 100.0, &rng);
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  for (size_t i = 0; i < points.size(); ++i) {
    const auto row = points.Row(i);
    const Nearest fast = NearestCentroid(row.data(), centroids, norms);
    size_t best = 0;
    double best_d = SquaredL2(row, centroids.Row(0));
    for (size_t j = 1; j < centroids.size(); ++j) {
      const double d = SquaredL2(row, centroids.Row(j));
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    EXPECT_EQ(fast.index, best);
    EXPECT_NEAR(fast.distance_sq, best_d, 1e-6 * (1.0 + best_d));
  }
}

TEST(NearestCentroidTest, NeverNegativeDistance) {
  // Large-magnitude coordinates stress the cancellation in the expanded
  // form; the clamp must keep distances non-negative.
  Rng rng(13);
  Dataset centroids(4);
  std::vector<double> big(4);
  for (int j = 0; j < 10; ++j) {
    for (auto& v : big) v = 1e8 + rng.Uniform(0.0, 1.0);
    centroids.Append(big);
  }
  for (int i = 0; i < 100; ++i) {
    for (auto& v : big) v = 1e8 + rng.Uniform(0.0, 1.0);
    const Nearest n = NearestCentroid(big, centroids);
    EXPECT_GE(n.distance_sq, 0.0);
  }
}

TEST(CentroidSquaredNormsTest, Values) {
  Dataset centroids(2);
  centroids.Append(std::vector<double>{3.0, 4.0});
  centroids.Append(std::vector<double>{0.0, 0.0});
  const auto norms = CentroidSquaredNorms(centroids);
  ASSERT_EQ(norms.size(), 2u);
  EXPECT_DOUBLE_EQ(norms[0], 25.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
}

}  // namespace
}  // namespace pmkm
