// Kernel parity: every SIMD distance kernel must be bitwise-identical to
// the scalar reference — same assignments, same squared distances, same
// accumulated sums, same drift/separation — on randomized weighted
// datasets across dimensionalities, and end-to-end Fit results must not
// depend on the kernel at all. This is the contract that makes --kernel
// a pure speed knob.

#include "cluster/kernels/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/hamerly.h"
#include "cluster/kmeans.h"
#include "cluster/lloyd.h"
#include "cluster/seeding.h"
#include "common/rng.h"
#include "data/generator.h"
#include "data/weighted.h"

namespace pmkm {
namespace {

Dataset MakePoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MisrCellSpec spec;
  spec.dim = dim;
  return GenerateMisrLikeCell(n, &rng, spec);
}

WeightedDataset MakeWeighted(const Dataset& points, uint64_t seed) {
  Rng rng(seed);
  WeightedDataset out(points.dim());
  for (size_t i = 0; i < points.size(); ++i) {
    out.Append(points.Row(i), 1.0 + static_cast<double>(rng.UniformInt(9)));
  }
  return out;
}

class KernelParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KernelParityTest, AssignBlockBitwiseMatchesScalar) {
  const size_t dim = GetParam();
  const size_t n = 3000;
  const size_t k = 40;
  const Dataset points = MakePoints(n, dim, 11);
  const Dataset centroids = MakePoints(k, dim, 12);
  CentroidBlock block;
  block.Load(centroids);

  const DistanceKernel& scalar = GetKernel(KernelKind::kScalar);
  std::vector<uint32_t> ref_assign(n);
  std::vector<double> ref_dist2(n), ref_second2(n);
  scalar.AssignBlock(points.data(), n, dim, block, ref_assign.data(),
                     ref_dist2.data(), ref_second2.data());

  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    std::vector<uint32_t> assign(n);
    std::vector<double> dist2(n), second2(n);
    kernel->AssignBlock(points.data(), n, dim, block, assign.data(),
                        dist2.data(), second2.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(assign[i], ref_assign[i]) << "point " << i;
      ASSERT_EQ(dist2[i], ref_dist2[i]) << "point " << i;
      ASSERT_EQ(second2[i], ref_second2[i]) << "point " << i;
    }
    // The no-second-best entry point must agree with itself too.
    std::vector<uint32_t> assign2(n);
    std::vector<double> dist2b(n);
    kernel->AssignBlock(points.data(), n, dim, block, assign2.data(),
                        dist2b.data());
    EXPECT_EQ(assign2, ref_assign);
    EXPECT_EQ(dist2b, ref_dist2);
  }
}

TEST_P(KernelParityTest, AccumulateBlockBitwiseMatchesScalar) {
  const size_t dim = GetParam();
  const size_t n = 3000;
  const size_t k = 17;
  const Dataset points = MakePoints(n, dim, 13);
  const WeightedDataset data = MakeWeighted(points, 14);
  Rng rng(15);
  std::vector<uint32_t> assign(n);
  for (size_t i = 0; i < n; ++i) {
    assign[i] = static_cast<uint32_t>(rng.UniformInt(k));
  }

  const DistanceKernel& scalar = GetKernel(KernelKind::kScalar);
  std::vector<double> ref_sums(k * dim, 0.0), ref_w(k, 0.0);
  scalar.AccumulateBlock(data.points().data(), data.weights().data(), n,
                         dim, assign.data(), ref_sums.data(),
                         ref_w.data());

  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    std::vector<double> sums(k * dim, 0.0), w(k, 0.0);
    kernel->AccumulateBlock(data.points().data(), data.weights().data(), n,
                            dim, assign.data(), sums.data(), w.data());
    EXPECT_EQ(sums, ref_sums);
    EXPECT_EQ(w, ref_w);
  }
}

TEST_P(KernelParityTest, DriftAndSeparationBitwiseMatchesScalar) {
  const size_t dim = GetParam();
  const size_t k = 40;
  const Dataset old_c = MakePoints(k, dim, 16);
  const Dataset new_c = MakePoints(k, dim, 17);
  CentroidBlock block;
  block.Load(new_c);

  const DistanceKernel& scalar = GetKernel(KernelKind::kScalar);
  std::vector<double> ref_drift(k), ref_s(k);
  scalar.CentroidDriftAndSeparation(old_c.data(), new_c.data(), block, k,
                                    dim, ref_drift.data(), ref_s.data());

  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    std::vector<double> drift(k), s(k);
    kernel->CentroidDriftAndSeparation(old_c.data(), new_c.data(), block,
                                       k, dim, drift.data(), s.data());
    EXPECT_EQ(drift, ref_drift);
    EXPECT_EQ(s, ref_s);
  }
}

TEST_P(KernelParityTest, WeightedLloydFitIdenticalAcrossKernels) {
  const size_t dim = GetParam();
  const Dataset points = MakePoints(2000, dim, 18);
  const WeightedDataset data = MakeWeighted(points, 19);
  Rng seed_rng(20);
  auto seeds = SelectSeeds(data, 8, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok()) << seeds.status();

  LloydConfig ref_config;
  ref_config.track_assignments = true;
  ref_config.kernel = &GetKernel(KernelKind::kScalar);
  Rng ref_rng(21);
  auto ref = RunWeightedLloyd(data, *seeds, ref_config, &ref_rng);
  ASSERT_TRUE(ref.ok()) << ref.status();

  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    LloydConfig config = ref_config;
    config.kernel = kernel;
    Rng rng(21);
    auto model = RunWeightedLloyd(data, *seeds, config, &rng);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ(model->centroids, ref->centroids);
    EXPECT_EQ(model->assignments, ref->assignments);
    EXPECT_EQ(model->sse, ref->sse);
    EXPECT_EQ(model->iterations, ref->iterations);
  }
}

TEST_P(KernelParityTest, HamerlyFitIdenticalAcrossKernels) {
  const size_t dim = GetParam();
  const Dataset points = MakePoints(2000, dim, 22);
  const WeightedDataset data = MakeWeighted(points, 23);
  Rng seed_rng(24);
  auto seeds = SelectSeeds(data, 8, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok()) << seeds.status();

  LloydConfig ref_config;
  ref_config.track_assignments = true;
  ref_config.kernel = &GetKernel(KernelKind::kScalar);
  Rng ref_rng(25);
  auto ref = RunHamerlyLloyd(data, *seeds, ref_config, &ref_rng);
  ASSERT_TRUE(ref.ok()) << ref.status();

  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    LloydConfig config = ref_config;
    config.kernel = kernel;
    Rng rng(25);
    auto model = RunHamerlyLloyd(data, *seeds, config, &rng);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ(model->centroids, ref->centroids);
    EXPECT_EQ(model->assignments, ref->assignments);
    EXPECT_EQ(model->sse, ref->sse);
    EXPECT_EQ(model->iterations, ref->iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelParityTest,
                         ::testing::Values(1u, 5u, 6u, 8u, 17u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(KernelParityEndToEnd, FitEqualAcrossKernelFlagValues) {
  // The user-facing contract: KMeans().Fit under --kernel=scalar equals
  // Fit under any other available --kernel value, including the
  // Hamerly-accelerated path, on a 10k-point cell.
  const Dataset cell = MakePoints(10000, 6, 30);
  for (bool accelerate : {false, true}) {
    SCOPED_TRACE(accelerate ? "hamerly" : "lloyd");
    KMeansConfig config;
    config.k = 40;
    config.restarts = 2;
    config.accelerate = accelerate;
    config.lloyd.kernel = &GetKernel(KernelKind::kScalar);
    auto ref = KMeans(config).Fit(cell);
    ASSERT_TRUE(ref.ok()) << ref.status();
    for (const DistanceKernel* kernel : AvailableKernels()) {
      SCOPED_TRACE(kernel->name());
      KMeansConfig alt = config;
      alt.lloyd.kernel = kernel;
      auto model = KMeans(alt).Fit(cell);
      ASSERT_TRUE(model.ok()) << model.status();
      EXPECT_EQ(model->centroids, ref->centroids);
      EXPECT_EQ(model->sse, ref->sse);
    }
  }
}

TEST(KernelRegistry, ScalarAlwaysAvailableAndAutoResolves) {
  EXPECT_TRUE(KernelAvailable(KernelKind::kScalar));
  EXPECT_TRUE(KernelAvailable(KernelKind::kAuto));
  EXPECT_STREQ(GetKernel(KernelKind::kScalar).name(), "scalar");
  // The auto-resolved default is one of the available kernels.
  const DistanceKernel& def = DefaultKernel();
  bool found = false;
  for (const DistanceKernel* kernel : AvailableKernels()) {
    if (kernel == &def) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(KernelRegistry, ParseRoundTripsAndRejectsUnknown) {
  for (KernelKind kind : {KernelKind::kAuto, KernelKind::kScalar,
                          KernelKind::kAvx2, KernelKind::kNeon}) {
    auto parsed = ParseKernelKind(KernelKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(ParseKernelKind("sse9").status().IsInvalidArgument());
}

TEST(KernelRegistry, SetDefaultKernelSwapsAndRestores) {
  const KernelKind original = DefaultKernel().kind();
  auto previous = SetDefaultKernel(KernelKind::kScalar);
  ASSERT_TRUE(previous.ok()) << previous.status();
  EXPECT_EQ(DefaultKernel().kind(), KernelKind::kScalar);
  ASSERT_TRUE(SetDefaultKernel(original).ok());
  EXPECT_EQ(DefaultKernel().kind(), original);
}

TEST(CentroidBlockTest, TransposesAndPadsWithInfinity) {
  const Dataset centroids = MakePoints(5, 3, 40);
  CentroidBlock block;
  block.Load(centroids);
  EXPECT_EQ(block.k(), 5u);
  EXPECT_EQ(block.dim(), 3u);
  EXPECT_EQ(block.padded_k() % CentroidBlock::kLanePad, 0u);
  const double* t = block.transposed();
  for (size_t d = 0; d < 3; ++d) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(t[d * block.padded_k() + j], centroids.Row(j)[d]);
    }
    for (size_t j = 5; j < block.padded_k(); ++j) {
      EXPECT_TRUE(std::isinf(t[d * block.padded_k() + j]));
    }
  }
}

}  // namespace
}  // namespace pmkm
