#include "cluster/hamerly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

TEST(HamerlyTest, ValidatesInput) {
  Rng rng(1);
  const LloydConfig config;
  WeightedDataset empty(2);
  Dataset seed(2);
  seed.Append(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(RunHamerlyLloyd(empty, seed, config, &rng)
                  .status()
                  .IsInvalidArgument());

  WeightedDataset data(2);
  data.Append(std::vector<double>{1.0, 1.0}, 1.0);
  EXPECT_TRUE(RunHamerlyLloyd(data, Dataset(2), config, &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(HamerlyTest, SingleClusterIsWeightedMean) {
  Rng rng(2);
  WeightedDataset data(1);
  data.Append(std::vector<double>{0.0}, 1.0);
  data.Append(std::vector<double>{10.0}, 3.0);
  Dataset seed(1);
  seed.Append(std::vector<double>{-50.0});
  auto model = RunHamerlyLloyd(data, seed, LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->centroids(0, 0), 7.5, 1e-12);
  EXPECT_TRUE(model->converged);
}

// The core property: Hamerly is an exact accelerator, so from identical
// seeds it must converge to the same fixed point as plain Lloyd.
class HamerlyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(HamerlyEquivalence, MatchesPlainLloydFixedPoint) {
  const int n = GetParam();
  Rng data_rng(static_cast<uint64_t>(n));
  const Dataset points =
      GenerateMisrLikeCell(static_cast<size_t>(n), &data_rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(77);
  auto seeds = SelectSeeds(data, 15, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok());

  LloydConfig config;
  config.max_iterations = 500;
  Rng r1(1), r2(1);
  auto lloyd = RunWeightedLloyd(data, *seeds, config, &r1);
  HamerlyStats stats;
  auto hamerly = RunHamerlyLloyd(data, *seeds, config, &r2, &stats);
  ASSERT_TRUE(lloyd.ok() && hamerly.ok());
  // Same local optimum: SSE agrees tightly (iteration-count granularity of
  // the stopping rules allows last-ulp differences, not different optima).
  EXPECT_NEAR(hamerly->sse, lloyd->sse, 1e-6 * (1.0 + lloyd->sse));
  // And the bounds actually did something.
  EXPECT_GT(stats.bound_skips, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HamerlyEquivalence,
                         ::testing::Values(300, 1500, 6000));

TEST(HamerlyTest, WeightedEquivalenceWithLloyd) {
  Rng rng(3);
  WeightedDataset data(3);
  for (int i = 0; i < 400; ++i) {
    data.Append(std::vector<double>{rng.Uniform(0, 20), rng.Uniform(0, 20),
                                    rng.Uniform(0, 20)},
                1.0 + rng.UniformInt(9));
  }
  Rng seed_rng(5);
  auto seeds = SelectSeeds(data, 8, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok());
  Rng r1(1), r2(1);
  auto lloyd = RunWeightedLloyd(data, *seeds, LloydConfig{}, &r1);
  auto hamerly = RunHamerlyLloyd(data, *seeds, LloydConfig{}, &r2);
  ASSERT_TRUE(lloyd.ok() && hamerly.ok());
  EXPECT_NEAR(hamerly->sse, lloyd->sse, 1e-6 * (1.0 + lloyd->sse));
}

TEST(HamerlyTest, SkipsDominateOnWellSeparatedData) {
  // Once clusters are tight and far apart, nearly every point should be
  // proven stable by its bounds.
  Rng rng(4);
  const Dataset points =
      GenerateSeparatedClusters(5000, 4, 8, 500.0, 1.0, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(6);
  auto seeds =
      SelectSeeds(data, 8, SeedingMethod::kKMeansPlusPlus, &seed_rng);
  ASSERT_TRUE(seeds.ok());
  HamerlyStats stats;
  Rng r(1);
  auto model = RunHamerlyLloyd(data, *seeds, LloydConfig{}, &r, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(stats.bound_skips, stats.full_scans);
}

TEST(HamerlyTest, EmptyClusterRepaired) {
  Rng rng(5);
  WeightedDataset data(1);
  for (int i = 0; i < 30; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 0.1)}, 1.0);
    data.Append(std::vector<double>{rng.Normal(80.0, 0.1)}, 1.0);
  }
  Dataset seeds(1);
  seeds.Append(std::vector<double>{-500.0});
  seeds.Append(std::vector<double>{-500.0});
  auto model = RunHamerlyLloyd(data, std::move(seeds), LloydConfig{}, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->weights[0], 0.0);
  EXPECT_GT(model->weights[1], 0.0);
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  EXPECT_NEAR(c[0], 0.0, 1.0);
  EXPECT_NEAR(c[1], 80.0, 1.0);
}

TEST(HamerlyTest, TrackAssignmentsMatchesNearest) {
  Rng rng(6);
  const Dataset points = GenerateMisrLikeCell(500, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(7);
  auto seeds = SelectSeeds(data, 6, SeedingMethod::kRandom, &seed_rng);
  LloydConfig config;
  config.track_assignments = true;
  Rng r(1);
  auto model = RunHamerlyLloyd(data, *seeds, config, &r);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->assignments.size(), 500u);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(model->assignments[i], model->Predict(points.Row(i)));
  }
}

TEST(HamerlyTest, AcceleratedKMeansEndToEnd) {
  // KMeansConfig::accelerate dispatches to Hamerly: the multi-restart fit
  // must return the same quality as the plain path from the same seeds.
  Rng rng(7);
  const Dataset cell = GenerateMisrLikeCell(3000, &rng);
  KMeansConfig plain;
  plain.k = 20;
  plain.restarts = 3;
  plain.seed = 9;
  KMeansConfig fast = plain;
  fast.accelerate = true;
  auto a = KMeans(plain).Fit(cell);
  auto b = KMeans(fast).Fit(cell);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->sse, b->sse, 1e-6 * (1.0 + a->sse));
}

}  // namespace
}  // namespace pmkm
