// MUST NOT COMPILE: a discarded Result<T> loses both the value and the
// error. Expected diagnostic: -Werror=unused-result on the bare Make()
// call.

#include "common/result.h"

namespace {

pmkm::Result<int> Make() { return 42; }

}  // namespace

int main() {
  Make();  // error: ignoring [[nodiscard]] Result<int>
  return 0;
}
