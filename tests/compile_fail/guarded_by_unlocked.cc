// MUST NOT COMPILE under Clang -Werror=thread-safety: reading a
// PMKM_GUARDED_BY field without holding its mutex is a data race by
// declaration. (GCC compiles this file — the annotations are no-ops there —
// which is why the test is registered only for Clang.)

#include "common/annotations.h"

namespace {

class RaceyCounter {
 public:
  void Increment() {
    pmkm::MutexLock lock(mu_);
    ++value_;
  }

  int Read() const {
    return value_;  // error: reading value_ requires holding mu_
  }

 private:
  mutable pmkm::Mutex mu_;
  int value_ PMKM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  RaceyCounter counter;
  counter.Increment();
  return counter.Read();
}
