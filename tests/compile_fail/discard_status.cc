// MUST NOT COMPILE: a discarded Status is a swallowed error.
// Expected diagnostic: -Werror=unused-result on the bare Fallible() call.

#include "common/status.h"

namespace {

pmkm::Status Fallible() { return pmkm::Status::IOError("boom"); }

}  // namespace

int main() {
  Fallible();  // error: ignoring [[nodiscard]] Status
  return 0;
}
