// Positive control for the thread-safety negative tests: the same shapes
// with correct locking MUST compile cleanly under -Werror=thread-safety.

#include "common/annotations.h"

namespace {

class SafeCounter {
 public:
  void Increment() PMKM_EXCLUDES(mu_) {
    pmkm::MutexLock lock(mu_);
    IncrementLocked();
  }

  int Read() const PMKM_EXCLUDES(mu_) {
    pmkm::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() PMKM_REQUIRES(mu_) { ++value_; }

  mutable pmkm::Mutex mu_;
  int value_ PMKM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  SafeCounter counter;
  counter.Increment();
  return counter.Read() == 1 ? 0 : 1;
}
