// Positive control for the discard_* negative tests: the same calls with
// the results consumed (or explicitly void-cast with justification) MUST
// compile, proving the negative tests fail for the intended reason and not
// a broken include path.

#include "common/result.h"
#include "common/status.h"

namespace {

pmkm::Status Fallible() { return pmkm::Status::IOError("boom"); }
pmkm::Result<int> Make() { return 42; }

}  // namespace

int main() {
  const pmkm::Status st = Fallible();
  if (!st.ok()) return 1;
  const pmkm::Result<int> r = Make();
  if (!r.ok()) return 1;
  // The sanctioned escape hatch: explicit discard with a reason.
  (void)Fallible();  // best-effort call, failure tolerable here
  return *r == 42 ? 0 : 1;
}
