// Negative compile test: CondVar::Wait is annotated PMKM_REQUIRES(mu), so
// waiting without holding the paired mutex must fail thread-safety
// analysis (-Werror=thread-safety). Positive control:
// condvar_wait_control.cc.

#include "common/annotations.h"

namespace {

pmkm::Mutex mu;
pmkm::CondVar cv;

void WaitWithoutHoldingTheMutex() {
  cv.Wait(mu);  // error: calling Wait requires holding mutex 'mu'
}

}  // namespace

int main() {
  WaitWithoutHoldingTheMutex();
  return 0;
}
