// Positive control for condvar_wait_unheld.cc: the identical wait, with
// the mutex correctly held through MutexLock, must compile cleanly under
// -Werror=thread-safety — proving the negative test fails for the right
// reason and not because of a broken include path.

#include "common/annotations.h"

namespace {

pmkm::Mutex mu;
pmkm::CondVar cv;

void WaitHoldingTheMutex() {
  pmkm::MutexLock lock(mu);
  cv.Wait(mu);
}

}  // namespace

int main() {
  WaitHoldingTheMutex();
  return 0;
}
