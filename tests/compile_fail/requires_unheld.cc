// MUST NOT COMPILE under Clang -Werror=thread-safety: calling a
// PMKM_REQUIRES(mu) function without holding `mu` violates the declared
// locking contract.

#include "common/annotations.h"

namespace {

class Store {
 public:
  void Mutate() PMKM_REQUIRES(mu_) { ++value_; }

  pmkm::Mutex mu_;

 private:
  int value_ PMKM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.Mutate();  // error: calling Mutate() requires holding store.mu_
  return 0;
}
