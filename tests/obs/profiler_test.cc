// CpuProfiler (obs/profiler.h): folded-stack aggregation unit tests plus
// a live SIGPROF session that burns CPU in a named function and checks
// the samples attribute to it. The live tests use the process-wide
// profiler serially (ITIMER_PROF is per-process).

#include "obs/profiler.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace pmkm {
namespace obs {
namespace {

TEST(AggregateFoldedTest, SelfAndTotalCounts) {
  const std::string folded =
      "main;Run;Assign 30\n"
      "main;Run;Update 10\n"
      "main;Io 5\n";
  uint64_t total = 0;
  const auto rows = AggregateFolded(folded, &total);
  EXPECT_EQ(total, 45u);
  auto find = [&rows](const std::string& frame) -> ProfileFrameTotals {
    for (const auto& r : rows) {
      if (r.frame == frame) return r;
    }
    return {};
  };
  EXPECT_EQ(find("Assign").self, 30u);
  EXPECT_EQ(find("Assign").total, 30u);
  EXPECT_EQ(find("Run").self, 0u);
  EXPECT_EQ(find("Run").total, 40u);
  EXPECT_EQ(find("main").total, 45u);
  EXPECT_EQ(find("Io").self, 5u);
  // Sorted by self descending: the hottest leaf leads.
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().frame, "Assign");
}

TEST(AggregateFoldedTest, RepeatedFrameInOneStackCountsTotalOnce) {
  // Recursive stack: the frame appears twice but the sample contributes
  // to its total only once (standard flamegraph semantics).
  uint64_t total = 0;
  const auto rows = AggregateFolded("a;b;a 8\n", &total);
  EXPECT_EQ(total, 8u);
  for (const auto& r : rows) {
    if (r.frame == "a") {
      EXPECT_EQ(r.total, 8u);
      EXPECT_EQ(r.self, 8u);  // leaf occurrence
    }
  }
}

TEST(AggregateFoldedTest, MalformedLinesAreIgnored) {
  uint64_t total = 0;
  const auto rows = AggregateFolded(
      "no_count_here\n"
      "\n"
      "good;stack 3\n"
      "bad count notanumber\n",
      &total);
  EXPECT_EQ(total, 3u);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().frame, "stack");
}

TEST(AggregateFoldedTest, EmptyInput) {
  uint64_t total = 123;
  EXPECT_TRUE(AggregateFolded("", &total).empty());
  EXPECT_EQ(total, 0u);
  EXPECT_TRUE(AggregateFolded("", nullptr).empty());  // null total ok
}

}  // namespace

// A CPU burner the optimizer cannot remove or inline away. External
// linkage on purpose: dladdr symbolizes only dynamic-table symbols, and
// an anonymous-namespace function would render as a bare hex address.
__attribute__((noinline)) double ProfilerTestBurn(uint64_t iterations) {
  volatile double acc = 0.0;
  for (uint64_t i = 0; i < iterations; ++i) {
    acc = acc + std::sqrt(static_cast<double>(i % 1024) + 1.0);
  }
  return acc;
}

namespace {

TEST(CpuProfilerTest, StartStopLifecycle) {
  CpuProfiler& profiler = CpuProfiler::Global();
  CpuProfiler::Options options;
  options.hz = 500;
  ASSERT_TRUE(profiler.Start(options).ok());
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(options).ok());  // double start
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler.Stop().ok());  // double stop
}

TEST(CpuProfilerTest, CollectsAndAttributesSamples) {
  CpuProfiler& profiler = CpuProfiler::Global();
  CpuProfiler::Options options;
  options.hz = 997;  // fast sampling keeps the test short
  ASSERT_TRUE(profiler.Start(options).ok());
  // Burn CPU until samples accumulate (bounded by iteration count so a
  // build without working ITIMER_PROF cannot hang the test).
  double sink = 0.0;
  for (int round = 0; round < 400 && profiler.sample_count() < 50;
       ++round) {
    sink += ProfilerTestBurn(400000);
  }
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_NE(sink, -1.0);  // keep the burner's result alive
  if (profiler.sample_count() == 0) {
    GTEST_SKIP() << "no SIGPROF delivery in this environment";
  }
  const std::string folded = profiler.FoldedStacks();
  EXPECT_FALSE(folded.empty());
  uint64_t total = 0;
  const auto rows = AggregateFolded(folded, &total);
  EXPECT_EQ(total, profiler.sample_count());
  // The burner must dominate: it is where essentially all CPU time went.
  // (Acceptance bar from DESIGN.md §14: >=50% attribution to the hot
  // function; we assert a cushioned 40% to keep CI robust.)
  uint64_t burn_total = 0;
  for (const auto& r : rows) {
    if (r.frame.find("ProfilerTestBurn") != std::string::npos) {
      burn_total += r.total;
    }
  }
  EXPECT_GE(burn_total * 100, total * 40)
      << "burner frames got " << burn_total << "/" << total
      << " samples; folded:\n"
      << folded.substr(0, 2000);
}

TEST(CpuProfilerTest, RestartClearsPreviousSamples) {
  CpuProfiler& profiler = CpuProfiler::Global();
  CpuProfiler::Options options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options).ok());
  double sink = 0.0;
  for (int round = 0; round < 200 && profiler.sample_count() == 0;
       ++round) {
    sink += ProfilerTestBurn(200000);
  }
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_GE(sink, 0.0);
  if (profiler.sample_count() == 0) {
    GTEST_SKIP() << "no SIGPROF delivery in this environment";
  }
  // A fresh Start must drop the previous session's samples.
  ASSERT_TRUE(profiler.Start(options).ok());
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_LT(profiler.sample_count(), 5u);
}

TEST(CpuProfilerTest, WriteFoldedProducesReadableFile) {
  CpuProfiler& profiler = CpuProfiler::Global();
  ASSERT_TRUE(profiler.Start().ok());
  double sink = ProfilerTestBurn(100000);
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_GE(sink, 0.0);
  const std::string path =
      ::testing::TempDir() + "pmkm_profiler_test.folded";
  ASSERT_TRUE(profiler.WriteFolded(path).ok());
  // Round-trips through the aggregator (possibly as an empty profile).
  std::string folded = profiler.FoldedStacks();
  uint64_t total = 0;
  AggregateFolded(folded, &total);
  EXPECT_EQ(total, profiler.sample_count());
  ::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace pmkm
