// RollingHistogram / RollingCounter (obs/rolling.h). Everything here
// drives the window with explicit ticks (RecordAt/SnapshotAt), so expiry
// is deterministic and no test sleeps.

#include "obs/rolling.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(RollingHistogramTest, EmptyWindowIsZero) {
  RollingHistogram h(60);
  const auto s = h.SnapshotAt(100);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.window_seconds, 60u);
}

TEST(RollingHistogramTest, WindowedCountSumMinMax) {
  RollingHistogram h(60);
  h.RecordAt(10.0, 100);
  h.RecordAt(20.0, 101);
  h.RecordAt(30.0, 102);
  const auto s = h.SnapshotAt(102);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 60.0);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 30.0);
}

TEST(RollingHistogramTest, SamplesExpireOutOfTheWindow) {
  RollingHistogram h(10);
  h.RecordAt(100.0, 0);
  // Still visible while the snapshot tick is inside the window...
  EXPECT_EQ(h.SnapshotAt(5).count, 1u);
  // ...and gone once the window has slid past tick 0.
  EXPECT_EQ(h.SnapshotAt(50).count, 0u);
}

TEST(RollingHistogramTest, SlidingWindowKeepsOnlyRecentSamples) {
  RollingHistogram h(10);
  // One sample per second for 30 seconds; values grow with the tick so we
  // can tell which samples survive.
  for (uint64_t t = 0; t < 30; ++t) {
    h.RecordAt(static_cast<double>(t), t);
  }
  const auto s = h.SnapshotAt(29);
  // Window covers ticks (29-10, 29] → values 20..29.
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.min, 20.0);
  EXPECT_DOUBLE_EQ(s.max, 29.0);
}

TEST(RollingHistogramTest, SlotReclaimClearsStaleEpoch) {
  RollingHistogram h(4);
  h.RecordAt(1.0, 0);
  // Tick 8 maps to the same ring slot as tick 0 (8 % ring == 0's slot for
  // any ring sized off a 4s window). The old slot's contents must not
  // bleed into the new second.
  h.RecordAt(100.0, 8);
  const auto s = h.SnapshotAt(8);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 100.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(RollingHistogramTest, WindowedPercentilesTrackRecentDistribution) {
  RollingHistogram h(60);
  // 1000 samples of 100us at tick 10, then 1000 of 6000us at tick 40.
  for (int i = 0; i < 1000; ++i) h.RecordAt(100.0, 10);
  for (int i = 0; i < 1000; ++i) h.RecordAt(6000.0, 40);
  // Window at tick 50 (60s wide) still sees both populations: p50 falls
  // between the two modes, p99 in the slow one.
  const auto both = h.SnapshotAt(50);
  EXPECT_EQ(both.count, 2000u);
  EXPECT_GE(both.p99, 4096.0);  // inside the 6000us bucket [4096, 8192)
  // At tick 90 the fast population (tick 10) has aged out: only slow
  // samples remain and even p50 reflects them.
  const auto slow = h.SnapshotAt(90);
  EXPECT_EQ(slow.count, 1000u);
  EXPECT_GE(slow.p50, 4096.0);
  EXPECT_LE(slow.max, 6000.0);
}

TEST(RollingHistogramTest, PercentilesClampedToObservedRange) {
  RollingHistogram h(60);
  for (int i = 0; i < 100; ++i) h.RecordAt(500.0, 10);
  const auto s = h.SnapshotAt(10);
  // Identical samples: every quantile must equal the one observed value
  // (bucket interpolation is clamped to [min, max]).
  EXPECT_DOUBLE_EQ(s.p50, 500.0);
  EXPECT_DOUBLE_EQ(s.p95, 500.0);
  EXPECT_DOUBLE_EQ(s.p99, 500.0);
  EXPECT_DOUBLE_EQ(s.p999, 500.0);
}

TEST(RollingHistogramTest, CumulativeTotalNeverExpires) {
  RollingHistogram h(5);
  h.RecordAt(10.0, 0);
  h.RecordAt(20.0, 100);
  EXPECT_EQ(h.SnapshotAt(100).count, 1u);  // window only sees the second
  EXPECT_EQ(h.total().count(), 2u);        // cumulative keeps both
  EXPECT_DOUBLE_EQ(h.total().sum(), 30.0);
}

TEST(RollingHistogramTest, ConcurrentRecordersLoseNothingInOneTick) {
  RollingHistogram h(60);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.RecordAt(1.0, 42);
    });
  }
  for (auto& t : threads) t.join();
  // Same tick for every record → no slot-boundary smearing is possible,
  // so the count must be exact.
  EXPECT_EQ(h.SnapshotAt(42).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.total().count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(RollingCounterTest, WindowedRate) {
  RollingCounter c(10);
  for (uint64_t t = 0; t < 10; ++t) c.IncrementAt(5, t);
  const auto s = c.SnapshotAt(9);
  EXPECT_EQ(s.total, 50u);
  EXPECT_EQ(s.window_count, 50u);
  EXPECT_DOUBLE_EQ(s.rate_per_second, 5.0);
}

TEST(RollingCounterTest, TotalIsMonotonicAcrossExpiry) {
  RollingCounter c(5);
  c.IncrementAt(7, 0);
  const auto early = c.SnapshotAt(0);
  EXPECT_EQ(early.window_count, 7u);
  const auto late = c.SnapshotAt(1000);
  EXPECT_EQ(late.window_count, 0u);  // window emptied...
  EXPECT_EQ(late.total, 7u);         // ...cumulative did not
  EXPECT_GE(late.total, early.total);
}

TEST(RollingCounterTest, DefaultIncrementIsOne) {
  RollingCounter c;
  c.IncrementAt(1, 3);
  c.IncrementAt(1, 3);
  EXPECT_EQ(c.total(), 2u);
}

TEST(RollingRegistryTest, RegistryOwnsNamedRollingInstruments) {
  MetricsRegistry registry;
  RollingHistogram& h = registry.rolling_histogram("scan.bucket_us", 30);
  EXPECT_EQ(h.window_seconds(), 30u);
  // Same name → same instrument; window_seconds of later calls ignored.
  EXPECT_EQ(&registry.rolling_histogram("scan.bucket_us", 99), &h);
  RollingCounter& c = registry.rolling_counter("rows");
  EXPECT_EQ(&registry.rolling_counter("rows"), &c);
  h.RecordAt(123.0, 1);
  c.IncrementAt(4, 1);
  // Exports include the rolling section.
  const JsonValue doc = registry.ToJson();
  const JsonValue* rolling = doc.Find("rolling");
  ASSERT_NE(rolling, nullptr);
  EXPECT_NE(rolling->Find("scan.bucket_us"), nullptr);
  EXPECT_NE(rolling->Find("rows"), nullptr);
}

}  // namespace
}  // namespace pmkm
