// SnapshotFlusher (obs/flusher.h): periodic artifact writes, the final
// flush on Stop, and the explicit FlushNow used by failure paths.

#include "obs/flusher.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmkm {
namespace obs {
namespace {

namespace fs = std::filesystem;

class SnapshotFlusherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_flusher_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(SnapshotFlusherTest, FlushNowWritesAllDestinations) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(9);
  TraceRecorder tracer;
  SnapshotFlusher flusher(&registry, &tracer);
  SnapshotFlusher::Options options;
  options.metrics_json_path = Path("m.json");
  options.metrics_prom_path = Path("m.prom");
  options.trace_json_path = Path("t.json");
  ASSERT_TRUE(flusher.Start(options).ok());
  ASSERT_TRUE(flusher.FlushNow().ok());
  flusher.Stop();
  auto doc = JsonValue::Parse(ReadAll(Path("m.json")));
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("counters"), nullptr);
  EXPECT_NE(ReadAll(Path("m.prom")).find("pmkm_rows 9"),
            std::string::npos);
  EXPECT_TRUE(JsonValue::Parse(ReadAll(Path("t.json"))).ok());
}

TEST_F(SnapshotFlusherTest, PeriodicFlushesHappenWithoutStop) {
  MetricsRegistry registry;
  SnapshotFlusher flusher(&registry, nullptr);
  SnapshotFlusher::Options options;
  options.interval_ms = 5;
  options.metrics_json_path = Path("m.json");
  ASSERT_TRUE(flusher.Start(options).ok());
  // The crash-safety property under test: snapshots land on disk while
  // the process is still running, so a SIGKILL loses at most one tick.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (flusher.flush_count() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(flusher.flush_count(), 3u);
  EXPECT_TRUE(JsonValue::Parse(ReadAll(Path("m.json"))).ok());
  flusher.Stop();
}

TEST_F(SnapshotFlusherTest, StopPerformsFinalFlush) {
  MetricsRegistry registry;
  SnapshotFlusher flusher(&registry, nullptr);
  SnapshotFlusher::Options options;
  options.interval_ms = 60'000;  // no periodic tick will fire in time
  options.metrics_json_path = Path("m.json");
  ASSERT_TRUE(flusher.Start(options).ok());
  registry.counter("rows").Increment(4);
  flusher.Stop();
  const std::string json = ReadAll(Path("m.json"));
  EXPECT_NE(json.find("rows"), std::string::npos) << json;
  flusher.Stop();  // idempotent
}

TEST_F(SnapshotFlusherTest, StartValidatesOptions) {
  MetricsRegistry registry;
  SnapshotFlusher flusher(&registry, nullptr);
  SnapshotFlusher::Options no_destinations;
  EXPECT_FALSE(flusher.Start(no_destinations).ok());
  SnapshotFlusher::Options bad_interval;
  bad_interval.interval_ms = 0;
  bad_interval.metrics_json_path = Path("m.json");
  EXPECT_FALSE(flusher.Start(bad_interval).ok());
  SnapshotFlusher::Options good;
  good.metrics_json_path = Path("m.json");
  ASSERT_TRUE(flusher.Start(good).ok());
  EXPECT_FALSE(flusher.Start(good).ok());  // already running
  flusher.Stop();
}

TEST_F(SnapshotFlusherTest, FlushNowWorksWithoutStart) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(1);
  SnapshotFlusher flusher(&registry, nullptr);
  // The failure path calls FlushNow directly with no thread running.
  SnapshotFlusher::Options options;
  options.metrics_json_path = Path("m.json");
  ASSERT_TRUE(flusher.Start(options).ok());
  flusher.Stop();
  fs::remove(Path("m.json"));
  ASSERT_TRUE(flusher.FlushNow().ok());
  EXPECT_TRUE(fs::exists(Path("m.json")));
}

TEST_F(SnapshotFlusherTest, FlushReportsUnwritableDestination) {
  MetricsRegistry registry;
  SnapshotFlusher flusher(&registry, nullptr);
  SnapshotFlusher::Options options;
  options.metrics_json_path = (dir_ / "missing_dir" / "m.json").string();
  ASSERT_TRUE(flusher.Start(options).ok());
  EXPECT_FALSE(flusher.FlushNow().ok());
  flusher.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace pmkm
