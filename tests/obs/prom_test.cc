// Prometheus text-exposition conformance for MetricsRegistry
// (obs/metrics.h). Asserts the format contract a scraper relies on:
// HELP/TYPE lines precede every metric, label values are escaped, metric
// names are sanitized, and counters / histogram _count/_sum never move
// backwards across scrapes — including the rolling instruments, whose
// windows empty out.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/rolling.h"

namespace pmkm {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

// The value of the first sample line whose name part matches exactly.
double SampleValue(const std::string& text, const std::string& name) {
  for (const std::string& line : Lines(text)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stod(line.substr(name.size() + 1));
    }
  }
  ADD_FAILURE() << "no sample line for " << name;
  return -1.0;
}

TEST(PromConformanceTest, LabelValueEscaping) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(PromEscapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PromConformanceTest, RunInfoLabelIsEscaped) {
  MetricsRegistry registry;
  registry.SetRunId("id\"with\\odd\nchars");
  const std::string text = registry.ToPrometheusText();
  EXPECT_TRUE(Contains(
      text, "pmkm_run_info{run_id=\"id\\\"with\\\\odd\\nchars\"} 1"))
      << text;
}

TEST(PromConformanceTest, MetricNamesAreSanitized) {
  MetricsRegistry registry;
  registry.counter("scan.rows-read").Increment(3);
  const std::string text = registry.ToPrometheusText();
  // Dots and dashes are not legal in metric names; both map to '_'.
  EXPECT_TRUE(Contains(text, "pmkm_scan_rows_read 3")) << text;
  // The raw name never leaks into the exposition — fallback HELP text
  // uses the sanitized name too.
  EXPECT_FALSE(Contains(text, "scan.rows-read")) << text;
}

TEST(PromConformanceTest, EveryMetricHasHelpAndTypeBeforeSamples) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(1);
  registry.gauge("depth").Set(4);
  registry.histogram("lat_us").Record(100.0);
  registry.rolling_histogram("roll_us").Record(50.0);
  registry.rolling_counter("events").Increment();
  const std::vector<std::string> lines =
      Lines(registry.ToPrometheusText());
  // Walk the exposition: a sample line's metric family must have been
  // introduced by a # TYPE line earlier (with a # HELP directly before).
  std::string last_typed;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(lines[i - 1].rfind("# HELP ", 0), 0u)
          << "TYPE without preceding HELP: " << line;
      std::istringstream in(line);
      std::string hash, type_kw, name, kind;
      in >> hash >> type_kw >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "summary")
          << line;
      last_typed = name;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    // A sample belongs to the most recently TYPEd family (exactly how
    // the exposition format groups them); _sum/_count/_max/_rate ride on
    // their parent family's TYPE.
    EXPECT_TRUE(name == last_typed ||
                name == last_typed + "_sum" ||
                name == last_typed + "_count")
        << "sample " << name << " not under its family (last TYPE: "
        << last_typed << ")";
  }
}

TEST(PromConformanceTest, RegisteredHelpTextWinsAndIsEscaped) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(1);
  registry.SetHelp("rows", "Rows scanned\nsecond line \\ done");
  const std::string text = registry.ToPrometheusText();
  EXPECT_TRUE(Contains(
      text, "# HELP pmkm_rows Rows scanned\\nsecond line \\\\ done"))
      << text;
}

TEST(PromConformanceTest, CountersAreMonotonicAcrossScrapes) {
  MetricsRegistry registry;
  Counter& c = registry.counter("rows");
  Histogram& h = registry.histogram("lat_us");
  double last_counter = 0.0, last_count = 0.0, last_sum = 0.0;
  for (int scrape = 0; scrape < 5; ++scrape) {
    c.Increment(scrape);  // including a zero-increment scrape
    h.Record(10.0 * scrape + 1.0);
    const std::string text = registry.ToPrometheusText();
    const double counter = SampleValue(text, "pmkm_rows");
    const double count = SampleValue(text, "pmkm_lat_us_count");
    const double sum = SampleValue(text, "pmkm_lat_us_sum");
    EXPECT_GE(counter, last_counter);
    EXPECT_GE(count, last_count);
    EXPECT_GE(sum, last_sum);
    last_counter = counter;
    last_count = count;
    last_sum = sum;
  }
}

TEST(PromConformanceTest, RollingExportsStayMonotonicAsWindowEmpties) {
  MetricsRegistry registry;
  RollingHistogram& rh = registry.rolling_histogram("roll_us", 5);
  RollingCounter& rc = registry.rolling_counter("events", 5);
  rh.RecordAt(100.0, 0);
  rc.IncrementAt(3, 0);
  const std::string before = registry.ToPrometheusText();
  // The wall-clock window may or may not still contain tick 0 at scrape
  // time; either way the cumulative series must not regress.
  const double count0 = SampleValue(before, "pmkm_roll_us_count");
  const double total0 = SampleValue(before, "pmkm_events");
  EXPECT_DOUBLE_EQ(count0, 1.0);
  EXPECT_DOUBLE_EQ(total0, 3.0);
  // Even with the window provably empty (snapshot far in the future),
  // the instruments report cumulative _count/_sum and counter totals.
  EXPECT_EQ(rh.SnapshotAt(1000).count, 0u);
  EXPECT_EQ(rc.SnapshotAt(1000).window_count, 0u);
  const std::string after = registry.ToPrometheusText();
  EXPECT_GE(SampleValue(after, "pmkm_roll_us_count"), count0);
  EXPECT_GE(SampleValue(after, "pmkm_events"), total0);
  // The windowed quantile samples carry the window label.
  EXPECT_TRUE(Contains(after, "pmkm_roll_us{window=\"5s\",quantile=\"0.999\"}"))
      << after;
}

// Golden scrape: a deterministic registry renders byte-for-byte stably.
// This pins the exposition layout — if the format changes on purpose,
// update the golden text here and bump DESIGN.md §14.
TEST(PromConformanceTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.SetRunId("cafe0123");
  registry.counter("rows").Increment(42);
  registry.gauge("queue.depth").Set(3);
  registry.gauge("queue.depth").Set(2);  // max stays 3
  Histogram& h = registry.histogram("lat_us");
  for (int i = 0; i < 4; ++i) h.Record(8.0);  // single bucket, exact ends
  registry.SetHelp("rows", "Rows scanned.");
  const std::string expected =
      "# HELP pmkm_run_info Active run identity (run_id label).\n"
      "# TYPE pmkm_run_info gauge\n"
      "pmkm_run_info{run_id=\"cafe0123\"} 1\n"
      "# HELP pmkm_rows Rows scanned.\n"
      "# TYPE pmkm_rows counter\n"
      "pmkm_rows 42\n"
      "# HELP pmkm_queue_depth Last observed value of pmkm_queue_depth.\n"
      "# TYPE pmkm_queue_depth gauge\n"
      "pmkm_queue_depth 2\n"
      "# HELP pmkm_queue_depth_max High-water mark of pmkm_queue_depth.\n"
      "# TYPE pmkm_queue_depth_max gauge\n"
      "pmkm_queue_depth_max 3\n"
      "# HELP pmkm_lat_us Distribution of pmkm_lat_us.\n"
      "# TYPE pmkm_lat_us summary\n"
      "pmkm_lat_us{quantile=\"0.5\"} 8\n"
      "pmkm_lat_us{quantile=\"0.95\"} 8\n"
      "pmkm_lat_us{quantile=\"0.99\"} 8\n"
      "pmkm_lat_us{quantile=\"0.999\"} 8\n"
      "pmkm_lat_us_sum 32\n"
      "pmkm_lat_us_count 4\n";
  EXPECT_EQ(registry.ToPrometheusText(), expected);
}

}  // namespace
}  // namespace pmkm
