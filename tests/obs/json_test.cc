#include "obs/json.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(JsonValueTest, ScalarsDumpCompactly) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(uint64_t{18446744073709551615ULL}).Dump(),
            JsonValue(1.8446744073709552e19).Dump());
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonValueTest, IntegralDoublesPrintAsIntegers) {
  EXPECT_EQ(JsonValue(3.0).Dump(), "3");
  const std::string fractional = JsonValue(3.25).Dump();
  EXPECT_NE(fractional.find('.'), std::string::npos) << fractional;
}

TEST(JsonValueTest, ObjectPreservesInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", 1);
  obj.Set("a", 2);
  obj.Set("b", 3);  // overwrite in place, keep position
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
  ASSERT_TRUE(obj.Has("a"));
  EXPECT_EQ(obj.Find("a")->AsInt(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonValueTest, NestedDumpParseRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", "scan");
  obj.Set("rows", 12000);
  obj.Set("degraded", false);
  JsonValue arr = JsonValue::Array();
  arr.Append(1.5);
  arr.Append("two");
  arr.Append(JsonValue());
  obj.Set("list", std::move(arr));

  for (int indent : {-1, 0, 2}) {
    auto parsed = JsonValue::Parse(obj.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->Dump(), obj.Dump());
  }
}

TEST(JsonValueTest, EscapesControlAndQuoteCharacters) {
  const std::string raw = "a\"b\\c\n\t\x01";
  const std::string dumped = JsonValue(raw).Dump();
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->AsString(), raw);
}

TEST(JsonValueTest, ParsesUnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");
}

TEST(JsonValueTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonValueTest, ParsesNumbers) {
  auto parsed = JsonValue::Parse("[-1, 0.5, 1e3, 2.5e-2]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 4u);
  EXPECT_DOUBLE_EQ(parsed->at(0).AsDouble(), -1.0);
  EXPECT_DOUBLE_EQ(parsed->at(1).AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(parsed->at(2).AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(parsed->at(3).AsDouble(), 0.025);
}

TEST(JsonValueTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
}

}  // namespace
}  // namespace pmkm
