#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, TracksValueAndMax) {
  Gauge g;
  g.Set(5);
  g.Set(9);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 9);
  g.Add(10);
  EXPECT_EQ(g.value(), 13);
  EXPECT_EQ(g.max(), 13);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Record(10.0);
  h.Record(100.0);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 111.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
}

TEST(HistogramTest, PercentilesAreOrderedAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const double p50 = h.Percentile(50);
  const double p95 = h.Percentile(95);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  // Log-bucketed: p50 of U[1,1000] should land within its covering power
  // of two of the true median.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1024.0);
}

TEST(HistogramTest, SingleValuePercentilesAreExact) {
  Histogram h;
  h.Record(77.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 77.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 77.0);
}

TEST(HistogramTest, MinMaxAreExactNotBucketRounded) {
  // min/max are CAS-tracked exactly; only the quantiles in between are
  // approximated by the log2 buckets.
  Histogram h;
  h.Record(3.7);
  h.Record(1234567.89);
  h.Record(100.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.7);
  EXPECT_DOUBLE_EQ(h.max(), 1234567.89);
  const auto s = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(s.min, 3.7);
  EXPECT_DOUBLE_EQ(s.max, 1234567.89);
}

TEST(HistogramTest, P999IsolatesTheTail) {
  // 9990 fast samples and 10 slow outliers: p99 sits in the fast
  // population, p99.9 must reach into the outliers.
  Histogram h;
  for (int i = 0; i < 9990; ++i) h.Record(100.0);
  for (int i = 0; i < 10; ++i) h.Record(50000.0);
  const auto s = h.TakeSnapshot();
  EXPECT_LT(s.p99, 1000.0);
  EXPECT_GE(s.p999, 32768.0);  // inside the outliers' bucket [2^15, 2^16)
  EXPECT_LE(s.p999, s.max);
}

TEST(HistogramTest, SnapshotQuantilesAreOrdered) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(static_cast<double>(i));
  const auto s = h.TakeSnapshot();
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
}

TEST(HistogramTest, QuantileErrorBoundedByBucketGeometry) {
  // Bucket b covers [2^(b-1), 2^b), so any quantile estimate is within a
  // factor of 2 of the true order statistic. Check every exported
  // quantile against its exact value on a uniform distribution.
  Histogram h;
  constexpr int kN = 4096;
  for (int i = 1; i <= kN; ++i) h.Record(static_cast<double>(i));
  const struct {
    double p;
    double exact;
  } cases[] = {{50.0, kN * 0.50}, {95.0, kN * 0.95},
               {99.0, kN * 0.99}, {99.9, kN * 0.999}};
  for (const auto& c : cases) {
    const double estimate = h.Percentile(c.p);
    EXPECT_GE(estimate, c.exact / 2.0) << "p" << c.p;
    EXPECT_LE(estimate, c.exact * 2.0) << "p" << c.p;
  }
}

TEST(HistogramTest, SubUnitValuesLandInTheBottomBucket) {
  // Values below 1 (including 0 and negatives) share bucket 0; min/max
  // still report them exactly.
  Histogram h;
  h.Record(0.0);
  h.Record(0.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.25);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.Percentile(99), 1.0);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& a = registry.counter("rows");
  Counter& b = registry.counter("rows");
  EXPECT_EQ(&a, &b);  // get-or-create returns the same instrument
  a.Increment(7);
  EXPECT_EQ(registry.counter("rows").value(), 7u);
  registry.gauge("depth").Set(3);
  registry.histogram("lat_us").Record(12.0);

  const JsonValue json = registry.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_DOUBLE_EQ(json.Find("counters")->Find("rows")->AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(
      json.Find("gauges")->Find("depth")->Find("value")->AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(
      json.Find("histograms")->Find("lat_us")->Find("count")->AsDouble(),
      1.0);
}

TEST(MetricsRegistryTest, JsonStringRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.counter("op.scan.rows_in").Increment(123);
  registry.histogram("queue.points.pop_wait_us").Record(5.0);
  auto parsed = JsonValue::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(
      parsed->Find("counters")->Find("op.scan.rows_in")->AsDouble(), 123.0);
}

TEST(MetricsRegistryTest, PrometheusTextSanitizesNames) {
  MetricsRegistry registry;
  registry.counter("op.scan#0.rows_in").Increment(5);
  registry.gauge("queue.points.depth").Set(2);
  registry.histogram("lat_us").Record(3.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("pmkm_op_scan_0_rows_in 5"), std::string::npos)
      << text;
  EXPECT_NE(text.find("pmkm_queue_points_depth 2"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  // No unsanitized characters may survive in metric names ("# TYPE"
  // comment markers are the only legitimate '#').
  EXPECT_EQ(text.find("scan#"), std::string::npos);
}

// Many threads hammering the same instruments: run under
// PMKM_SANITIZE=thread to prove the relaxed-atomics design is race-free.
TEST(MetricsRegistryTest, ConcurrentRecordingIsConsistent) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter& c = registry.counter("hammer.count");
      Gauge& g = registry.gauge("hammer.depth");
      Histogram& h = registry.histogram("hammer.lat_us");
      for (int i = 0; i < kIters; ++i) {
        c.Increment();
        g.Set((t * kIters + i) % 17);
        h.Record(static_cast<double>(1 + (i % 1000)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("hammer.count").value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(registry.histogram("hammer.lat_us").count(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(registry.histogram("hammer.lat_us").min(), 1.0);
  EXPECT_DOUBLE_EQ(registry.histogram("hammer.lat_us").max(), 1000.0);
  EXPECT_LE(registry.gauge("hammer.depth").max(), 16);
}

// Concurrent get-or-create of distinct names must also be safe.
TEST(MetricsRegistryTest, ConcurrentRegistration) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; ++i) {
        registry.counter("c" + std::to_string(i)).Increment();
        registry.histogram("h" + std::to_string((t + i) % 50)).Record(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.counter("c0").value(), 8u);
}

}  // namespace
}  // namespace pmkm
