// DebugServer (obs/debug_server.h): endpoint rendering, the real HTTP
// surface over loopback sockets, slow-client bounds, and clean shutdown.

#include "obs/debug_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/runboard.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace pmkm {
namespace obs {
namespace {

// Minimal blocking HTTP client: sends `request` verbatim, returns the
// full response (headers + body) until the server closes the connection.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& target) {
  return RawRequest(port, "GET " + target + " HTTP/1.1\r\n"
                          "Host: localhost\r\nConnection: close\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(DebugServerTest, StartsOnEphemeralPortAndStops) {
  MetricsRegistry registry;
  DebugServer server(&registry, nullptr);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(DebugServerTest, StartTwiceFails) {
  DebugServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
}

TEST(DebugServerTest, HealthzOverRealSocket) {
  DebugServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/healthz");
  EXPECT_TRUE(Contains(response, "HTTP/1.1 200 OK")) << response;
  EXPECT_TRUE(Contains(response, "Content-Length:")) << response;
  EXPECT_EQ(BodyOf(response), "ok\n");
  server.Stop();
}

TEST(DebugServerTest, MetricsEndpointServesPrometheusText) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(7);
  DebugServer server(&registry, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/metrics");
  EXPECT_TRUE(Contains(response, "HTTP/1.1 200 OK")) << response;
  EXPECT_TRUE(Contains(response, "pmkm_rows 7")) << response;
  // Live scrape semantics: a second scrape sees newer values.
  registry.counter("rows").Increment(5);
  EXPECT_TRUE(Contains(Get(server.port(), "/metrics"), "pmkm_rows 12"));
  server.Stop();
}

TEST(DebugServerTest, RunzServesBoardStateAsJson) {
  DebugServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  server.board()->BeginRun("deadbeef", "chunk=1000", {"scan", "merge"});
  OperatorStats stats;
  stats.name = "scan";
  stats.rows_in = 123;
  server.board()->PublishOperator(0, stats);
  const std::string body = BodyOf(Get(server.port(), "/runz"));
  auto doc = JsonValue::Parse(body);
  ASSERT_TRUE(doc.ok()) << body;
  const JsonValue* run_id = doc->Find("run_id");
  ASSERT_NE(run_id, nullptr);
  EXPECT_EQ(run_id->AsString(), "deadbeef");
  server.board()->EndRun(true, "ok", JsonValue::Object());
  const std::string after = BodyOf(Get(server.port(), "/runz"));
  EXPECT_TRUE(Contains(after, "\"ok\"")) << after;
  server.Stop();
}

TEST(DebugServerTest, TracezServesRecentSpans) {
  TraceRecorder tracer;
  TraceEvent event;
  event.name = "merge.cell";
  event.category = "merge";
  event.start_us = 100;
  event.dur_us = 250;
  tracer.Add(std::move(event));
  DebugServer server(nullptr, &tracer);
  ASSERT_TRUE(server.Start().ok());
  const std::string body = BodyOf(Get(server.port(), "/tracez"));
  auto doc = JsonValue::Parse(body);
  ASSERT_TRUE(doc.ok()) << body;
  const JsonValue* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ(events->items().front().Find("name")->AsString(),
            "merge.cell");
  server.Stop();
}

TEST(DebugServerTest, UnknownPathIs404AndPostIs405) {
  DebugServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(Contains(Get(server.port(), "/nope"), "404"));
  EXPECT_TRUE(Contains(
      RawRequest(server.port(),
                 "POST /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
      "405"));
  server.Stop();
}

TEST(DebugServerTest, HeadRequestOmitsBody) {
  DebugServer server(nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(), "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_TRUE(Contains(response, "200 OK")) << response;
  EXPECT_TRUE(Contains(response, "Content-Length: 3")) << response;
  EXPECT_EQ(BodyOf(response), "");
  server.Stop();
}

TEST(DebugServerTest, OversizedRequestIsRejected) {
  DebugServer server(nullptr, nullptr);
  DebugServer::Options options;
  options.max_request_bytes = 128;
  ASSERT_TRUE(server.Start(options).ok());
  const std::string huge_target(4096, 'a');
  const std::string response = RawRequest(
      server.port(), "GET /" + huge_target + " HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(Contains(response, "431")) << response.substr(0, 200);
  server.Stop();
}

TEST(DebugServerTest, SlowClientDoesNotWedgeTheServer) {
  DebugServer server(nullptr, nullptr);
  DebugServer::Options options;
  options.io_timeout_ms = 100;
  options.num_threads = 1;  // one stalled handler would block everything
  ASSERT_TRUE(server.Start(options).ok());
  // Open a connection and send nothing: the read timeout must reclaim
  // the single worker, after which a well-behaved request succeeds.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string response = Get(server.port(), "/healthz");
  EXPECT_TRUE(Contains(response, "200 OK")) << response;
  ::close(fd);
  server.Stop();
}

TEST(DebugServerTest, RenderResponseDispatch) {
  MetricsRegistry registry;
  registry.counter("rows").Increment(1);
  TraceRecorder tracer;
  DebugServer server(&registry, &tracer);
  // RenderResponse is the socket-free surface the schedcheck sweeps use;
  // it must work without Start().
  EXPECT_TRUE(Contains(server.RenderResponse("/"), "200 OK"));
  EXPECT_TRUE(Contains(server.RenderResponse("/healthz"), "ok"));
  EXPECT_TRUE(Contains(server.RenderResponse("/metrics"), "pmkm_rows"));
  EXPECT_TRUE(Contains(server.RenderResponse("/statusz"), "uptime"));
  EXPECT_TRUE(Contains(server.RenderResponse("/runz"), "active"));
  EXPECT_TRUE(Contains(server.RenderResponse("/tracez"), "events"));
  EXPECT_TRUE(Contains(server.RenderResponse("/pprofz"), "200 OK"));
  EXPECT_TRUE(Contains(server.RenderResponse("/missing"), "404"));
  // Query strings are ignored for dispatch.
  EXPECT_TRUE(Contains(server.RenderResponse("/healthz?x=1"), "ok"));
}

TEST(DebugServerTest, NullSinksServePlaceholders) {
  DebugServer server(nullptr, nullptr);
  EXPECT_TRUE(
      Contains(server.RenderResponse("/metrics"), "not collected"));
  EXPECT_TRUE(Contains(server.RenderResponse("/tracez"), "events"));
}

}  // namespace
}  // namespace obs
}  // namespace pmkm
