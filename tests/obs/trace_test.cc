#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(ScopedSpanTest, NullRecorderIsFullyDisabled) {
  ScopedSpan span(nullptr, "noop");
  EXPECT_FALSE(span.enabled());
  span.AddArg("ignored", 1);  // must be a safe no-op
}

TEST(ScopedSpanTest, RecordsOneCompleteEventWithArgs) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "partial.chunk", "compute");
    EXPECT_TRUE(span.enabled());
    span.AddArg("cell", "cell_1_2");
    span.AddArg("points", 512);
  }
  ASSERT_EQ(recorder.size(), 1u);
  const TraceEvent e = recorder.Events()[0];
  EXPECT_EQ(e.name, "partial.chunk");
  EXPECT_EQ(e.category, "compute");
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].first, "cell");
  EXPECT_EQ(e.args[0].second.AsString(), "cell_1_2");
}

TEST(ScopedSpanTest, DurationCoversTheScope) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_GE(recorder.Events()[0].dur_us, 4000u);
}

// Golden shape test: the export must be exactly what Chrome/Perfetto
// expects — {"traceEvents": [{name, cat, ph:"X", ts, dur, pid, tid}],
// "displayTimeUnit": "ms"} — verified by parsing the JSON back.
TEST(TraceRecorderTest, JsonMatchesChromeTraceShape) {
  TraceRecorder recorder;
  { ScopedSpan a(&recorder, "scan.bucket", "io"); }
  {
    ScopedSpan b(&recorder, "merge.cell", "compute");
    b.AddArg("cell", "cell_0_0");
  }

  auto parsed = JsonValue::Parse(recorder.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  for (const JsonValue& e : events->items()) {
    EXPECT_EQ(e.Find("ph")->AsString(), "X");
    EXPECT_TRUE(e.Find("name")->is_string());
    EXPECT_TRUE(e.Find("cat")->is_string());
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
    EXPECT_EQ(e.Find("pid")->AsInt(), 1);
    EXPECT_TRUE(e.Find("tid")->is_number());
  }
  const JsonValue& merge = events->at(1);
  EXPECT_EQ(merge.Find("name")->AsString(), "merge.cell");
  EXPECT_EQ(merge.Find("args")->Find("cell")->AsString(), "cell_0_0");
}

TEST(TraceRecorderTest, ThreadsGetDenseDistinctTids) {
  TraceRecorder recorder;
  // Both threads must be alive at once: after a join the OS may recycle
  // the native thread id, which correctly maps to the same trace lane.
  std::atomic<int> arrived{0};
  auto worker = [&](const char* name) {
    { ScopedSpan s(&recorder, name); }
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  };
  std::thread t1(worker, "a");
  std::thread t2(worker, "b");
  t1.join();
  t2.join();
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // Dense ids: the first two threads seen get 1 and 2.
  EXPECT_GE(events[0].tid, 1u);
  EXPECT_LE(events[0].tid, 2u);
  EXPECT_GE(events[1].tid, 1u);
  EXPECT_LE(events[1].tid, 2u);
}

TEST(TraceRecorderTest, WriteJsonProducesALoadableFile) {
  TraceRecorder recorder;
  { ScopedSpan s(&recorder, "op"); }
  const std::string path =
      testing::TempDir() + "/pmkm_trace_test.trace.json";
  ASSERT_TRUE(recorder.WriteJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = JsonValue::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("traceEvents")->size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, ConcurrentSpansAllArrive) {
  TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan s(&recorder, "burst");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.size(),
            static_cast<size_t>(kThreads) * kSpans);
}

}  // namespace
}  // namespace pmkm
