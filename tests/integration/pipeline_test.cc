// End-to-end integration: MISR swath simulation → grid buckets on disk →
// streamed partial/merge clustering → histogram compression. Exercises
// every library working together the way examples/misr_compression does.

#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/metrics.h"
#include "data/misr.h"
#include "histogram/histogram.h"
#include "stream/engine.h"
#include "stream/plan.h"

namespace pmkm {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_e2e_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(PipelineTest, SwathToHistograms) {
  // 1. Simulate and bin (coarse 15° cells keep the test fast).
  MisrSimConfig sim_config;
  sim_config.seed = 99;
  MisrSwathSimulator sim(sim_config);
  auto grid = sim.SimulateToGrid(3, /*cell_degrees=*/15.0);
  ASSERT_TRUE(grid.ok());
  ASSERT_GT(grid->num_cells(), 5u);

  // 2. Stage bucket files for cells with enough points.
  std::vector<std::string> paths;
  std::map<GridCellId, Dataset> originals;
  for (const auto& [id, bucket] : grid->buckets()) {
    if (bucket.size() < 100) continue;
    GridBucket gb;
    gb.cell = id;
    gb.points = bucket;
    const std::string path = (dir_ / (id.ToString() + ".pmkb")).string();
    ASSERT_TRUE(WriteGridBucket(path, gb).ok());
    paths.push_back(path);
    originals[id] = bucket;
  }
  ASSERT_GT(paths.size(), 2u);

  // 3. One streamed query plan over every bucket.
  KMeansConfig partial;
  partial.k = 8;
  partial.restarts = 2;
  MergeKMeansConfig merge;
  merge.k = 8;
  ResourceModel resources;
  resources.cores = 3;
  resources.memory_bytes_per_operator = 64 << 10;
  auto run = PipelineBuilder()
                 .WithPartialKMeans(partial)
                 .WithMerge(merge)
                 .WithResources(resources)
                 .Run(paths);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_EQ(run->cells.size(), paths.size());

  // 4. Every cell: mass conservation, sensible quality, compressible.
  for (const auto& [id, cell] : run->cells) {
    const Dataset& original = originals.at(id);
    EXPECT_EQ(cell.input_points, original.size());
    double mass = 0.0;
    for (double w : cell.model.weights) mass += w;
    EXPECT_NEAR(mass, static_cast<double>(original.size()), 1e-6);

    // Quality: beat the trivial 1-cluster model on raw points.
    Dataset mean_model(original.dim());
    mean_model.Append(original.Mean());
    EXPECT_LT(Sse(cell.model.centroids, original),
              Sse(mean_model, original));

    auto hist = MultivariateHistogram::FromModel(cell.model);
    ASSERT_TRUE(hist.ok());
    EXPECT_GT(hist->CompressionRatio(original.size()), 1.0);
    EXPECT_NEAR(hist->total_count(),
                static_cast<double>(original.size()), 1e-6);
  }
}

TEST_F(PipelineTest, StreamedRunIsDeterministic) {
  MisrSwathSimulator sim;
  auto grid = sim.SimulateToGrid(1, 20.0);
  ASSERT_TRUE(grid.ok());
  std::vector<std::string> paths;
  for (const auto& [id, bucket] : grid->buckets()) {
    if (bucket.size() < 200) continue;
    GridBucket gb;
    gb.cell = id;
    gb.points = bucket;
    const std::string path = (dir_ / (id.ToString() + ".pmkb")).string();
    ASSERT_TRUE(WriteGridBucket(path, gb).ok());
    paths.push_back(path);
    if (paths.size() == 3) break;
  }
  ASSERT_GE(paths.size(), 1u);

  KMeansConfig partial;
  partial.k = 5;
  partial.restarts = 2;
  partial.seed = 31;
  MergeKMeansConfig merge;
  merge.k = 5;
  ResourceModel resources;
  resources.cores = 4;  // clones must not affect results
  resources.memory_bytes_per_operator = 32 << 10;

  PipelineBuilder builder;
  builder.WithPartialKMeans(partial).WithMerge(merge);
  auto a = builder.WithResources(resources).Run(paths);
  resources.cores = 2;
  auto b = builder.WithResources(resources).Run(paths);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->cells.size(), b->cells.size());
  for (const auto& [id, cell] : a->cells) {
    const auto& other = b->cells.at(id);
    EXPECT_EQ(cell.model.centroids, other.model.centroids);
    EXPECT_EQ(cell.model.sse, other.model.sse);
  }
}

TEST_F(PipelineTest, HistogramSamplePreservesCellMoments) {
  // Cluster a cell, build the spread-aware histogram from raw data, sample
  // a reconstruction, and compare first moments — the compression fidelity
  // loop of the motivating application.
  Rng rng(5);
  MisrSwathSimulator sim;
  const Dataset swath = sim.SimulatePoints(20000);
  GridIndex grid(swath.dim(), 30.0);
  ASSERT_TRUE(grid.AddAll(swath).ok());
  const Dataset* biggest = nullptr;
  for (const auto& [id, bucket] : grid.buckets()) {
    if (biggest == nullptr || bucket.size() > biggest->size()) {
      biggest = &bucket;
    }
  }
  ASSERT_NE(biggest, nullptr);
  ASSERT_GT(biggest->size(), 300u);

  KMeansConfig config;
  config.k = 12;
  config.restarts = 3;
  auto model = KMeans(config).Fit(*biggest);
  ASSERT_TRUE(model.ok());
  auto hist = MultivariateHistogram::Build(*model, *biggest);
  ASSERT_TRUE(hist.ok());

  const Dataset sample = hist->SampleReconstruction(20000, &rng);
  const auto orig_mean = biggest->Mean();
  const auto sample_mean = sample.Mean();
  for (size_t d = 2; d < biggest->dim(); ++d) {  // radiance attributes
    EXPECT_NEAR(sample_mean[d], orig_mean[d],
                0.05 * std::max(1.0, std::abs(orig_mean[d])));
  }
}

}  // namespace
}  // namespace pmkm
