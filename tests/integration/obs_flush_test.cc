// Observability artifacts must survive runs that never finish (the
// end-of-run-only export gap). Two regressions against the real
// pmkm_cluster binary:
//
//   1. SIGKILL mid-run — the periodic SnapshotFlusher has already put a
//      parseable metrics snapshot on disk, so a kill -9 loses at most one
//      flush tick, not the whole run's telemetry.
//   2. A failed run — the failure path exports everything collected up
//      to the error before the process exits non-zero.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class ObsFlushTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_obsflush_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Dir(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  // Generates a workload big enough that the stream run takes a while.
  std::vector<std::string> MakeBuckets() {
    const std::string cmd = std::string(PMKM_TOOL_GENBUCKETS) +
                            " --out=" + Dir("buckets") +
                            " --mode=cells --cells=6 --n=20000 "
                            "> /dev/null 2>&1";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    std::vector<std::string> buckets;
    for (const auto& e : fs::directory_iterator(Dir("buckets"))) {
      buckets.push_back(e.path().string());
    }
    EXPECT_FALSE(buckets.empty());
    return buckets;
  }

  // Launches pmkm_cluster via `sh -c "exec ..."` so the returned pid IS
  // the tool (exec replaces the shell), then the test can SIGKILL it.
  static pid_t Spawn(const std::string& command) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      const std::string exec_cmd =
          "exec " + command + " > /dev/null 2>&1";
      ::execl("/bin/sh", "sh", "-c", exec_cmd.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    return pid;
  }

  fs::path dir_;
};

TEST_F(ObsFlushTest, SigkillMidRunLeavesParseableSnapshots) {
  const std::vector<std::string> buckets = MakeBuckets();
  std::string cmd = std::string(PMKM_TOOL_CLUSTER) +
                    " --algo=stream --k=8 --restarts=6 --quiet" +
                    " --out=" + Dir("models") +
                    " --run_id=killtest01" +
                    " --flush_interval_ms=20" +
                    " --metrics_out=" + Dir("run.metrics.json") +
                    " --prom_out=" + Dir("run.prom");
  for (const std::string& b : buckets) cmd += " " + b;

  const pid_t pid = Spawn(cmd);
  ASSERT_GT(pid, 0);
  // Wait for the first flush to land, then kill -9 with no grace.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(Dir("run.metrics.json")) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);

  ASSERT_TRUE(fs::exists(Dir("run.metrics.json")))
      << "no snapshot was flushed before the kill";
  const std::string json = ReadAll(Dir("run.metrics.json"));
  auto doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << "torn snapshot: " << json.substr(0, 200);
  EXPECT_NE(doc->Find("counters"), nullptr);
  // The snapshot is tagged with the run id passed on the command line.
  const JsonValue* run_id = doc->Find("run_id");
  ASSERT_NE(run_id, nullptr);
  EXPECT_EQ(run_id->AsString(), "killtest01");
  // The Prometheus artifact flushed too (atomically: never half-written).
  if (fs::exists(Dir("run.prom"))) {
    EXPECT_NE(ReadAll(Dir("run.prom")).find("# TYPE"), std::string::npos);
  }
}

TEST_F(ObsFlushTest, FailedRunStillExportsArtifacts) {
  // Point the tool at a bucket path that does not exist: the stream run
  // fails, the process exits non-zero, and the metrics collected before
  // the failure are still exported.
  const std::string cmd =
      std::string(PMKM_TOOL_CLUSTER) +
      " --algo=stream --k=4 --quiet --out=" + Dir("models") +
      " --flush_interval_ms=0" +  // end-of-run-only: the failure path
      " --metrics_out=" + Dir("fail.metrics.json") + " " +
      Dir("no_such_bucket.pmkb") + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, 0);
  ASSERT_TRUE(fs::exists(Dir("fail.metrics.json")))
      << "failure path skipped the artifact export";
  auto doc = JsonValue::Parse(ReadAll(Dir("fail.metrics.json")));
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("counters"), nullptr);
}

}  // namespace
}  // namespace pmkm
