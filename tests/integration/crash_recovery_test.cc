// Crash-recovery integration: kills the real pmkm_cluster binary at
// deterministic fault points (SIGKILL via crash faults, torn journal
// writes), resumes from the checkpoint, and asserts the final model files
// are bytewise identical to an uninterrupted reference run. The
// randomized kill-sweep over many seeds lives in
// scripts/run_crash_sweep.sh; this test pins one reproducible scenario
// per crash site so a regression fails fast in CI.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Dir(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  // Runs `command` with PMKM_FAULTS set to `faults` (empty = no faults).
  int Run(const std::string& command, const std::string& faults = "") {
    std::string full = "env ";
    full += faults.empty() ? "-u PMKM_FAULTS"
                           : "PMKM_FAULTS='" + faults + "'";
    full += " " + command + " > /dev/null 2>&1";
    return std::system(full.c_str());
  }

  // Generates the shared input buckets and the uninterrupted reference
  // models; returns the space-joined bucket path list.
  std::string PrepareReference() {
    EXPECT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" +
                  Dir("buckets") + " --mode=cells --cells=3 --n=500"),
              0);
    std::string buckets;
    for (const auto& e : fs::directory_iterator(Dir("buckets"))) {
      buckets += " " + e.path().string();
    }
    EXPECT_EQ(Run(ClusterCommand(Dir("ref"), /*checkpoint=*/false) +
                  buckets),
              0);
    return buckets;
  }

  std::string ClusterCommand(const std::string& out,
                             bool checkpoint = true) const {
    std::string cmd = std::string(PMKM_TOOL_CLUSTER) +
                      " --algo=stream --k=5 --restarts=2 --quiet --out=" +
                      out;
    if (checkpoint) cmd += " --checkpoint_dir=" + Dir("ckpt");
    return cmd;
  }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  // Every reference model must exist in `out` with identical bytes.
  void ExpectModelsMatchReference(const std::string& out) {
    size_t models = 0;
    for (const auto& e : fs::directory_iterator(Dir("ref"))) {
      ++models;
      const std::string other =
          (fs::path(out) / e.path().filename()).string();
      ASSERT_TRUE(fs::exists(other)) << other;
      EXPECT_EQ(ReadAll(e.path().string()), ReadAll(other))
          << e.path().filename() << " differs from the reference";
    }
    EXPECT_EQ(models, 3u);
  }

  // Crashes the first run with `faults`, then resumes (faultless) until
  // it exits cleanly, and checks bitwise identity with the reference.
  void CrashThenResume(const std::string& faults, const std::string& out,
                       const std::string& buckets) {
    EXPECT_NE(Run(ClusterCommand(out) + buckets, faults), 0)
        << "the crash fault " << faults << " did not kill the run";
    // The journal left behind must always be inspectable, however torn.
    EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " checkpoint " +
                  Dir("ckpt")),
              0);
    int rc = -1;
    for (int attempt = 0; attempt < 5 && rc != 0; ++attempt) {
      rc = Run(ClusterCommand(out) + buckets);
    }
    ASSERT_EQ(rc, 0) << "run did not recover after 5 resumes";
    ExpectModelsMatchReference(out);
  }

  fs::path dir_;
};

TEST_F(CrashRecoveryTest, KilledAtCheckpointAppend) {
  const std::string buckets = PrepareReference();
  // Hit 1 is the kRunBegin record; hit 3 dies while journaling the second
  // completed cell, after cell one is already durable.
  CrashThenResume("checkpoint.append:n=3,crash=1", Dir("m1"), buckets);
}

TEST_F(CrashRecoveryTest, KilledAtJournalFsync) {
  const std::string buckets = PrepareReference();
  CrashThenResume("io.fsync:n=2,crash=1", Dir("m2"), buckets);
}

TEST_F(CrashRecoveryTest, KilledAtModelRename) {
  const std::string buckets = PrepareReference();
  // The run itself completes (journal sealed); the crash lands in the
  // atomic model publish, so recovery recomputes from a complete journal
  // rotation rather than a partial one.
  CrashThenResume("io.rename:n=1,crash=1", Dir("m3"), buckets);
}

TEST_F(CrashRecoveryTest, TornJournalWriteThenResume) {
  const std::string buckets = PrepareReference();
  // Not a process kill: the append tears half a frame onto disk and
  // errors out. The failed run exits nonzero under the default failfast
  // policy; the resume must truncate the torn tail and finish.
  EXPECT_NE(Run(ClusterCommand(Dir("m4")) + buckets,
                "journal.torn:n=2"),
            0);
  EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " checkpoint " +
                Dir("ckpt")),
            0);
  ASSERT_EQ(Run(ClusterCommand(Dir("m4")) + buckets), 0);
  ExpectModelsMatchReference(Dir("m4"));
}

TEST_F(CrashRecoveryTest, RepeatedKillsEventuallyFinish) {
  const std::string buckets = PrepareReference();
  // Die during a cell append on every attempt: each run advances the
  // journal by at most one cell before being killed, and the final clean
  // run finishes from wherever the crash loop got to. This pins the
  // invariant that repeated kills never corrupt the checkpoint into an
  // unrecoverable state.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(Run(ClusterCommand(Dir("m5")) + buckets,
                  "checkpoint.append:n=2,crash=1"),
              0);
  }
  ASSERT_EQ(Run(ClusterCommand(Dir("m5")) + buckets), 0);
  ExpectModelsMatchReference(Dir("m5"));
}

}  // namespace
}  // namespace pmkm
