#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "data/generator.h"

namespace pmkm {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

GridBucket MakeBucket(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  GridBucket b;
  b.cell = GridCellId{12, -34};
  b.points = GenerateUniform(n, dim, -10.0, 10.0, &rng);
  return b;
}

TEST_F(IoTest, RoundTrip) {
  const GridBucket original = MakeBucket(257, 6, 1);
  const std::string path = Path("a.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, original).ok());
  auto read = ReadGridBucket(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->cell, original.cell);
  EXPECT_EQ(read->points, original.points);
}

TEST_F(IoTest, EmptyBucketRoundTrip) {
  GridBucket empty;
  empty.cell = GridCellId{0, 0};
  empty.points = Dataset(4);
  const std::string path = Path("empty.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, empty).ok());
  auto read = ReadGridBucket(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->points.size(), 0u);
  EXPECT_EQ(read->points.dim(), 4u);
}

TEST_F(IoTest, ChunkedReaderSeesAllPointsInOrder) {
  const GridBucket original = MakeBucket(100, 3, 2);
  const std::string path = Path("chunked.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, original).ok());

  auto reader = GridBucketReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->total_points(), 100u);
  EXPECT_EQ(reader->dim(), 3u);
  EXPECT_EQ(reader->cell(), original.cell);

  Dataset all(3);
  Dataset chunk(3);
  size_t chunks = 0;
  for (;;) {
    auto more = reader->Next(7, &chunk);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    EXPECT_LE(chunk.size(), 7u);
    all.AppendAll(chunk);
    ++chunks;
  }
  EXPECT_EQ(chunks, 15u);  // ceil(100/7)
  EXPECT_EQ(all, original.points);
}

TEST_F(IoTest, OpenMissingFileFails) {
  EXPECT_TRUE(
      GridBucketReader::Open(Path("missing.pmkb")).status().IsIOError());
}

TEST_F(IoTest, BadMagicRejected) {
  const std::string path = Path("junk.pmkb");
  std::ofstream(path) << "this is not a bucket file at all, sorry";
  EXPECT_TRUE(ReadGridBucket(path).status().IsIOError());
}

TEST_F(IoTest, TruncatedPayloadDetected) {
  const GridBucket original = MakeBucket(64, 4, 3);
  const std::string path = Path("trunc.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, original).ok());
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 64);
  EXPECT_TRUE(ReadGridBucket(path).status().IsIOError());
}

TEST_F(IoTest, CorruptPayloadFailsChecksum) {
  const GridBucket original = MakeBucket(64, 4, 4);
  const std::string path = Path("corrupt.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, original).ok());
  {
    // Flip one payload byte in place.
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40, std::ios::beg);
    char c;
    f.seekg(40, std::ios::beg);
    f.get(c);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(40, std::ios::beg);
    f.put(c);
  }
  const auto st = ReadGridBucket(path).status();
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
}

TEST_F(IoTest, WriteGridBucketsWritesEveryCell) {
  GridIndex index(3);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(index
                    .Add(std::vector<double>{rng.Uniform(-5, 5),
                                             rng.Uniform(-5, 5),
                                             rng.Normal()})
                    .ok());
  }
  auto paths = WriteGridBuckets(Path("buckets"), index);
  ASSERT_TRUE(paths.ok()) << paths.status();
  EXPECT_EQ(paths->size(), index.num_cells());
  size_t total = 0;
  for (const auto& p : *paths) {
    auto bucket = ReadGridBucket(p);
    ASSERT_TRUE(bucket.ok());
    total += bucket->points.size();
  }
  EXPECT_EQ(total, 50u);
}

TEST_F(IoTest, ReaderNextRejectsZeroMaxPoints) {
  const GridBucket original = MakeBucket(8, 2, 6);
  const std::string path = Path("zero.pmkb");
  ASSERT_TRUE(WriteGridBucket(path, original).ok());
  auto reader = GridBucketReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Dataset chunk(2);
  EXPECT_TRUE(reader->Next(0, &chunk).status().IsInvalidArgument());
}

TEST(Fnv1aTest, KnownProperties) {
  const char data[] = "hello";
  const uint64_t h1 =
      internal::Fnv1a64(data, 5, internal::kFnvOffset);
  const uint64_t h2 =
      internal::Fnv1a64(data, 5, internal::kFnvOffset);
  EXPECT_EQ(h1, h2);
  // Chaining equals one-shot.
  const uint64_t partial = internal::Fnv1a64(data, 2, internal::kFnvOffset);
  const uint64_t chained = internal::Fnv1a64(data + 2, 3, partial);
  EXPECT_EQ(chained, h1);
  // Different data → different hash.
  EXPECT_NE(internal::Fnv1a64("hellp", 5, internal::kFnvOffset), h1);
}

}  // namespace
}  // namespace pmkm
