#include "data/grid.h"

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(GridCellIdTest, OrderingAndToString) {
  const GridCellId a{10, -20};
  const GridCellId b{10, -19};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.ToString(), "cell_10_-20");
}

TEST(GridIndexTest, CellOfBasic) {
  GridIndex index(2);
  EXPECT_EQ(index.CellOf(10.5, 20.5), (GridCellId{10, 20}));
  EXPECT_EQ(index.CellOf(-0.5, -0.5), (GridCellId{-1, -1}));
  EXPECT_EQ(index.CellOf(0.0, 0.0), (GridCellId{0, 0}));
}

TEST(GridIndexTest, LongitudeWraps) {
  GridIndex index(2);
  // 190°E wraps to -170°.
  EXPECT_EQ(index.CellOf(0.0, 190.0), index.CellOf(0.0, -170.0));
  EXPECT_EQ(index.CellOf(0.0, 360.0), index.CellOf(0.0, 0.0));
  EXPECT_EQ(index.CellOf(0.0, -181.0), index.CellOf(0.0, 179.0));
}

TEST(GridIndexTest, PoleIsClampedIntoLastRow) {
  GridIndex index(2);
  EXPECT_EQ(index.CellOf(90.0, 0.0).lat_index, 89);
  EXPECT_EQ(index.CellOf(-90.0, 0.0).lat_index, -90);
}

TEST(GridIndexTest, CoarserCells) {
  GridIndex index(2, 10.0);
  EXPECT_EQ(index.CellOf(25.0, -35.0), (GridCellId{2, -4}));
}

TEST(GridIndexTest, AddBinsPoints) {
  GridIndex index(4);
  ASSERT_TRUE(index.Add(std::vector<double>{10.5, 20.5, 1.0, 2.0}).ok());
  ASSERT_TRUE(index.Add(std::vector<double>{10.7, 20.1, 3.0, 4.0}).ok());
  ASSERT_TRUE(index.Add(std::vector<double>{-5.5, 7.2, 5.0, 6.0}).ok());
  EXPECT_EQ(index.num_cells(), 2u);
  EXPECT_EQ(index.num_points(), 3u);

  auto bucket = index.Bucket(GridCellId{10, 20});
  ASSERT_TRUE(bucket.ok());
  EXPECT_EQ((*bucket)->size(), 2u);
  // Full vectors (including lat/lon) are stored.
  EXPECT_DOUBLE_EQ((**bucket)(0, 0), 10.5);
  EXPECT_DOUBLE_EQ((**bucket)(1, 3), 4.0);
}

TEST(GridIndexTest, BucketNotFound) {
  GridIndex index(2);
  EXPECT_TRUE(index.Bucket(GridCellId{0, 0}).status().IsNotFound());
}

TEST(GridIndexTest, AddRejectsWrongDimension) {
  GridIndex index(3);
  EXPECT_TRUE(
      index.Add(std::vector<double>{1.0, 2.0}).IsInvalidArgument());
}

TEST(GridIndexTest, AddRejectsNonFiniteCoordinates) {
  GridIndex index(2);
  const double nan = std::nan("");
  EXPECT_TRUE(
      index.Add(std::vector<double>{nan, 0.0}).IsInvalidArgument());
  EXPECT_TRUE(index.Add(std::vector<double>{0.0, HUGE_VAL})
                  .IsInvalidArgument());
}

TEST(GridIndexTest, AddAllAndCellIdsSorted) {
  GridIndex index(2);
  Dataset d(2);
  d.Append(std::vector<double>{5.5, 5.5});
  d.Append(std::vector<double>{1.5, 1.5});
  d.Append(std::vector<double>{5.9, 5.1});
  ASSERT_TRUE(index.AddAll(d).ok());
  const auto ids = index.CellIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_EQ(ids[0], (GridCellId{1, 1}));
}

TEST(GridIndexTest, TakeBucketsEmptiesIndex) {
  GridIndex index(2);
  ASSERT_TRUE(index.Add(std::vector<double>{1.0, 1.0}).ok());
  auto buckets = index.TakeBuckets();
  EXPECT_EQ(buckets.size(), 1u);
  EXPECT_EQ(index.num_cells(), 0u);
  EXPECT_EQ(index.num_points(), 0u);
}

}  // namespace
}  // namespace pmkm
