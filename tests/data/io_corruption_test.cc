// Corruption matrix for the grid-bucket format: every class of on-disk
// damage must surface as a descriptive Status, never a crash or a
// silently-wrong dataset.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/io.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class IoCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_corrupt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Writes a healthy 3-point, 2-d bucket and returns its path.
  std::string WriteHealthyBucket(const std::string& name = "cell.pmkb") {
    GridBucket bucket;
    bucket.cell = GridCellId{4, -2};
    bucket.points = Dataset(2);
    bucket.points.Append(std::vector<double>{1.0, 2.0});
    bucket.points.Append(std::vector<double>{3.0, 4.0});
    bucket.points.Append(std::vector<double>{5.0, 6.0});
    const std::string path = (dir_ / name).string();
    EXPECT_TRUE(WriteGridBucket(path, bucket).ok());
    return path;
  }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path,
                       const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Reads the whole bucket through the streaming reader, mirroring how the
  // scan operator consumes it (so mid-stream failures surface the same way).
  static Status ReadFully(const std::string& path) {
    auto reader = GridBucketReader::Open(path);
    if (!reader.ok()) return reader.status();
    Dataset chunk(reader->dim());
    for (;;) {
      auto more = reader->Next(2, &chunk);
      if (!more.ok()) return more.status();
      if (!*more) return Status::OK();
    }
  }

  fs::path dir_;
};

TEST_F(IoCorruptionTest, HealthyBucketRoundTrips) {
  const std::string path = WriteHealthyBucket();
  auto bucket = ReadGridBucket(path);
  ASSERT_TRUE(bucket.ok());
  EXPECT_EQ(bucket->points.size(), 3u);
  EXPECT_EQ(bucket->cell, (GridCellId{4, -2}));
  EXPECT_TRUE(ReadFully(path).ok());
}

TEST_F(IoCorruptionTest, ZeroLengthFile) {
  const std::string path = (dir_ / "empty.pmkb").string();
  WriteAll(path, {});
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("short header"), std::string::npos) << st;
}

TEST_F(IoCorruptionTest, TruncatedHeader) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(16);  // half the 32-byte header
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("short header"), std::string::npos) << st;
}

TEST_F(IoCorruptionTest, BadMagic) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes[0] = 'X';
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("bad magic"), std::string::npos) << st;
}

TEST_F(IoCorruptionTest, UnsupportedVersion) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes[4] = 99;  // version field, little-endian u32 at offset 4
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("unsupported bucket version 99"),
            std::string::npos)
      << st;
}

TEST_F(IoCorruptionTest, ZeroDimensionality) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = 0;  // dim u32 at offset 8
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("zero dimensionality"), std::string::npos)
      << st;
}

TEST_F(IoCorruptionTest, FlippedPayloadByteFailsChecksum) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes[32 + 3] ^= 0x40;  // inside the first double of the payload
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("checksum mismatch"), std::string::npos)
      << st;
}

TEST_F(IoCorruptionTest, TruncatedChecksumTrailer) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 8);  // drop the whole trailer
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("missing checksum"), std::string::npos) << st;
}

TEST_F(IoCorruptionTest, TruncatedPayload) {
  const std::string path = WriteHealthyBucket();
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(32 + 2 * sizeof(double));  // one point of three, no trailer
  WriteAll(path, bytes);
  const Status st = ReadFully(path);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("truncated bucket payload"),
            std::string::npos)
      << st;
}

TEST_F(IoCorruptionTest, MissingFile) {
  const Status st = ReadFully((dir_ / "never_written.pmkb").string());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("cannot open"), std::string::npos) << st;
}

// --- crash-safe (atomic) publication -----------------------------------

TEST_F(IoCorruptionTest, SuccessfulWriteLeavesNoTmpFile) {
  const std::string path = WriteHealthyBucket();
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(IoCorruptionTest, UnclosedStreamingWriterPublishesNothing) {
  const std::string path = (dir_ / "crashed.pmkb").string();
  {
    auto writer = GridBucketWriter::Open(path, GridCellId{1, 1}, 2);
    ASSERT_TRUE(writer.ok());
    const double point[2] = {1.0, 2.0};
    ASSERT_TRUE(writer->Append(point).ok());
    // Writer destroyed without Close(): simulated crash mid-bucket.
  }
  EXPECT_FALSE(fs::exists(path));   // destination never appeared
  EXPECT_TRUE(fs::exists(path + ".tmp"));  // partial data stayed staged
  EXPECT_TRUE(ReadFully(path).IsIOError());
}

TEST_F(IoCorruptionTest, ClosedStreamingWriterPublishesAtomically) {
  const std::string path = (dir_ / "done.pmkb").string();
  auto writer = GridBucketWriter::Open(path, GridCellId{1, 1}, 2);
  ASSERT_TRUE(writer.ok());
  const double a[2] = {1.0, 2.0};
  const double b[2] = {3.0, 4.0};
  ASSERT_TRUE(writer->Append(a).ok());
  ASSERT_TRUE(writer->Append(b).ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto bucket = ReadGridBucket(path);
  ASSERT_TRUE(bucket.ok());
  EXPECT_EQ(bucket->points.size(), 2u);
}

}  // namespace
}  // namespace pmkm
