#include "data/misr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pmkm {
namespace {

TEST(MisrSwathTest, DimIncludesLatLon) {
  MisrSimConfig config;
  config.num_attributes = 6;
  MisrSwathSimulator sim(config);
  EXPECT_EQ(sim.dim(), 8u);
}

TEST(MisrSwathTest, CoordinatesAreValid) {
  MisrSwathSimulator sim;
  const Dataset d = sim.SimulateOrbits(1);
  ASSERT_GT(d.size(), 0u);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d(i, 0), -90.0);
    EXPECT_LE(d(i, 0), 90.0);
    EXPECT_GE(d(i, 1), -180.0);
    EXPECT_LT(d(i, 1), 180.0);
  }
}

TEST(MisrSwathTest, DeterministicForSameSeed) {
  MisrSimConfig config;
  config.seed = 77;
  MisrSwathSimulator a(config), b(config);
  EXPECT_EQ(a.SimulateOrbits(1), b.SimulateOrbits(1));
}

TEST(MisrSwathTest, SimulatePointsMeetsMinimum) {
  MisrSwathSimulator sim;
  const Dataset d = sim.SimulatePoints(5000);
  EXPECT_GE(d.size(), 5000u);
}

TEST(MisrSwathTest, OrbitsCoverBothHemispheres) {
  MisrSwathSimulator sim;
  const Dataset d = sim.SimulateOrbits(1);
  bool north = false, south = false;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d(i, 0) > 30.0) north = true;
    if (d(i, 0) < -30.0) south = true;
  }
  EXPECT_TRUE(north);
  EXPECT_TRUE(south);
}

TEST(MisrSwathTest, NodeRegressionShiftsLongitudes) {
  // Consecutive orbits must not retrace the same longitudes: the points of
  // one grid cell arrive spread across many orbits (the paper's Fig. 1
  // acquisition pattern).
  MisrSwathSimulator sim;
  const Dataset orbit1 = sim.SimulateOrbits(1);
  const Dataset orbit2 = sim.SimulateOrbits(1);
  double mean1 = 0.0, mean2 = 0.0;
  size_t n1 = 0, n2 = 0;
  for (size_t i = 0; i < orbit1.size(); ++i) {
    if (std::abs(orbit1(i, 0)) < 10.0) {  // equatorial band
      mean1 += orbit1(i, 1);
      ++n1;
    }
  }
  for (size_t i = 0; i < orbit2.size(); ++i) {
    if (std::abs(orbit2(i, 0)) < 10.0) {
      mean2 += orbit2(i, 1);
      ++n2;
    }
  }
  ASSERT_GT(n1, 0u);
  ASSERT_GT(n2, 0u);
  EXPECT_NE(std::round(mean1 / n1), std::round(mean2 / n2));
}

TEST(MisrSwathTest, AttributesTrackLatitudeBrightness) {
  // Regional base brightness falls toward the poles; equatorial radiances
  // should exceed polar ones on average.
  MisrSwathSimulator sim;
  const Dataset d = sim.SimulateOrbits(2);
  double eq = 0.0, pole = 0.0;
  size_t neq = 0, npole = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (std::abs(d(i, 0)) < 15.0) {
      eq += d(i, 2);
      ++neq;
    } else if (std::abs(d(i, 0)) > 70.0) {
      pole += d(i, 2);
      ++npole;
    }
  }
  ASSERT_GT(neq, 0u);
  ASSERT_GT(npole, 0u);
  EXPECT_GT(eq / neq, pole / npole);
}

TEST(MisrSwathTest, SimulateToGridBinsEverything) {
  MisrSwathSimulator sim;
  auto grid = sim.SimulateToGrid(1);
  ASSERT_TRUE(grid.ok()) << grid.status();
  EXPECT_GT(grid->num_cells(), 100u);
  size_t total = 0;
  for (const auto& [id, bucket] : grid->buckets()) {
    total += bucket.size();
  }
  EXPECT_EQ(total, grid->num_points());
}

TEST(MisrSwathTest, MultipleOrbitsRevisitCells) {
  // After enough orbits, at least some cells contain points from more
  // than one orbit (points per cell grows superlinearly vs one orbit).
  MisrSimConfig config;
  MisrSwathSimulator sim(config);
  auto grid = sim.SimulateToGrid(15);  // ~ one day: full regression cycle
  ASSERT_TRUE(grid.ok());
  size_t max_points = 0;
  for (const auto& [id, bucket] : grid->buckets()) {
    max_points = std::max(max_points, bucket.size());
  }
  EXPECT_GT(max_points, 20u);
}

}  // namespace
}  // namespace pmkm
