#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pmkm {
namespace {

TEST(GaussianMixtureTest, CreateValidates) {
  EXPECT_TRUE(
      GaussianMixtureGenerator::Create({}).status().IsInvalidArgument());

  GaussianComponent bad_weight{{0.0}, {1.0}, 0.0};
  EXPECT_TRUE(GaussianMixtureGenerator::Create({bad_weight})
                  .status()
                  .IsInvalidArgument());

  GaussianComponent a{{0.0, 0.0}, {1.0, 1.0}, 1.0};
  GaussianComponent mismatched{{0.0}, {1.0}, 1.0};
  EXPECT_TRUE(GaussianMixtureGenerator::Create({a, mismatched})
                  .status()
                  .IsInvalidArgument());

  GaussianComponent neg_std{{0.0, 0.0}, {1.0, -1.0}, 1.0};
  EXPECT_TRUE(GaussianMixtureGenerator::Create({neg_std})
                  .status()
                  .IsInvalidArgument());
}

TEST(GaussianMixtureTest, SingleComponentMoments) {
  GaussianComponent c{{5.0, -3.0}, {2.0, 0.5}, 1.0};
  auto gen = GaussianMixtureGenerator::Create({c});
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  const Dataset d = gen->Sample(50000, &rng);
  ASSERT_EQ(d.size(), 50000u);
  const auto mean = d.Mean();
  EXPECT_NEAR(mean[0], 5.0, 0.05);
  EXPECT_NEAR(mean[1], -3.0, 0.02);
  // Sample stddev of coordinate 0.
  double var = 0.0;
  for (size_t i = 0; i < d.size(); ++i) {
    var += (d(i, 0) - mean[0]) * (d(i, 0) - mean[0]);
  }
  var /= static_cast<double>(d.size());
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(GaussianMixtureTest, MixingWeightsRespected) {
  GaussianComponent a{{0.0}, {0.01}, 3.0};
  GaussianComponent b{{100.0}, {0.01}, 1.0};
  auto gen = GaussianMixtureGenerator::Create({a, b});
  ASSERT_TRUE(gen.ok());
  Rng rng(2);
  const Dataset d = gen->Sample(20000, &rng);
  size_t near_zero = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d(i, 0) < 50.0) ++near_zero;
  }
  EXPECT_NEAR(static_cast<double>(near_zero) / d.size(), 0.75, 0.02);
}

TEST(GaussianMixtureTest, DeterministicGivenSeed) {
  GaussianComponent c{{0.0}, {1.0}, 1.0};
  auto gen = GaussianMixtureGenerator::Create({c});
  ASSERT_TRUE(gen.ok());
  Rng r1(9), r2(9);
  EXPECT_EQ(gen->Sample(100, &r1), gen->Sample(100, &r2));
}

TEST(MisrLikeCellTest, SpecShapesRespected) {
  Rng rng(3);
  MisrCellSpec spec;
  spec.dim = 6;
  spec.num_components = 8;
  const auto gen = MakeMisrLikeCell(spec, &rng);
  EXPECT_EQ(gen.dim(), 6u);
  EXPECT_EQ(gen.components().size(), 8u);
  // Zipf-ish weights: first component heaviest.
  EXPECT_GT(gen.components()[0].weight, gen.components()[7].weight);
}

TEST(MisrLikeCellTest, AttributesAreCorrelated) {
  Rng rng(4);
  MisrCellSpec spec;
  spec.correlation = 0.9;
  const Dataset d = GenerateMisrLikeCell(20000, &rng, spec);
  ASSERT_EQ(d.dim(), 6u);
  // Pearson correlation between attributes 0 and 1 across the mixture
  // should be clearly positive thanks to the shared latent factor.
  const auto mean = d.Mean();
  double c01 = 0.0, v0 = 0.0, v1 = 0.0;
  for (size_t i = 0; i < d.size(); ++i) {
    const double a = d(i, 0) - mean[0];
    const double b = d(i, 1) - mean[1];
    c01 += a * b;
    v0 += a * a;
    v1 += b * b;
  }
  const double corr = c01 / std::sqrt(v0 * v1);
  EXPECT_GT(corr, 0.5);
}

TEST(MisrLikeCellTest, RequestedSize) {
  Rng rng(5);
  EXPECT_EQ(GenerateMisrLikeCell(250, &rng).size(), 250u);
  EXPECT_EQ(GenerateMisrLikeCell(0, &rng).size(), 0u);
}

TEST(GenerateUniformTest, Bounds) {
  Rng rng(6);
  const Dataset d = GenerateUniform(5000, 3, -2.0, 7.0, &rng);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(d(i, j), -2.0);
      EXPECT_LT(d(i, j), 7.0);
    }
  }
}

TEST(GenerateSeparatedClustersTest, CentersReturnedAndSeparated) {
  Rng rng(7);
  std::vector<std::vector<double>> centers;
  const Dataset d =
      GenerateSeparatedClusters(1000, 4, 5, 50.0, 0.5, &rng, &centers);
  EXPECT_EQ(d.size(), 1000u);
  ASSERT_EQ(centers.size(), 5u);
  for (size_t i = 0; i < centers.size(); ++i) {
    for (size_t j = i + 1; j < centers.size(); ++j) {
      double dist_sq = 0.0;
      for (size_t dd = 0; dd < 4; ++dd) {
        const double diff = centers[i][dd] - centers[j][dd];
        dist_sq += diff * diff;
      }
      EXPECT_GE(std::sqrt(dist_sq), 50.0 * 0.9);
    }
  }
}

}  // namespace
}  // namespace pmkm
