#include "data/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/generator.h"

namespace pmkm {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_csv_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(CsvTest, RoundTripWithHeader) {
  Rng rng(1);
  const Dataset original = GenerateUniform(57, 4, -1e3, 1e3, &rng);
  const std::string path = Path("a.csv");
  ASSERT_TRUE(WriteCsv(path, original).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok()) << read.status();
  ASSERT_EQ(read->size(), original.size());
  ASSERT_EQ(read->dim(), original.dim());
  // precision=17 round-trips doubles exactly.
  EXPECT_EQ(*read, original);
}

TEST_F(CsvTest, RoundTripWithoutHeader) {
  Rng rng(2);
  const Dataset original = GenerateUniform(20, 2, 0, 1, &rng);
  CsvOptions options;
  options.header = false;
  const std::string path = Path("nh.csv");
  ASSERT_TRUE(WriteCsv(path, original, options).ok());
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, original);
}

TEST_F(CsvTest, WeightedRoundTrip) {
  Rng rng(3);
  WeightedDataset original(3);
  for (int i = 0; i < 25; ++i) {
    original.Append(std::vector<double>{rng.Normal(), rng.Normal(),
                                        rng.Normal()},
                    1.0 + rng.UniformInt(50));
  }
  const std::string path = Path("w.csv");
  ASSERT_TRUE(WriteWeightedCsv(path, original).ok());
  auto read = ReadWeightedCsv(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->points(), original.points());
  EXPECT_EQ(read->weights(), original.weights());
}

TEST_F(CsvTest, HeaderIsDetectedAutomatically) {
  const std::string path = Path("h.csv");
  std::ofstream(path) << "x,y\n1.5,2.5\n3.5,4.5\n";
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
  EXPECT_DOUBLE_EQ((*read)(0, 0), 1.5);
}

TEST_F(CsvTest, EmptyLinesSkipped) {
  const std::string path = Path("e.csv");
  std::ofstream(path) << "1,2\n\n  \n3,4\n";
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
}

TEST_F(CsvTest, InconsistentColumnsRejected) {
  const std::string path = Path("bad.csv");
  std::ofstream(path) << "1,2\n3,4,5\n";
  EXPECT_TRUE(ReadCsv(path).status().IsInvalidArgument());
}

TEST_F(CsvTest, NonNumericMidFileRejected) {
  const std::string path = Path("mid.csv");
  std::ofstream(path) << "1,2\nfoo,bar\n";
  EXPECT_TRUE(ReadCsv(path).status().IsInvalidArgument());
}

TEST_F(CsvTest, EmptyFileRejected) {
  const std::string path = Path("empty.csv");
  std::ofstream(path) << "";
  EXPECT_TRUE(ReadCsv(path).status().IsInvalidArgument());
}

TEST_F(CsvTest, MissingFileFails) {
  EXPECT_TRUE(ReadCsv(Path("ghost.csv")).status().IsIOError());
}

TEST_F(CsvTest, WeightedRejectsNonPositiveWeight) {
  const std::string path = Path("wz.csv");
  std::ofstream(path) << "a0,weight\n1.0,0.0\n";
  EXPECT_TRUE(ReadWeightedCsv(path).status().IsInvalidArgument());
}

TEST_F(CsvTest, ScientificNotationParsed) {
  const std::string path = Path("sci.csv");
  std::ofstream(path) << "1e3,-2.5E-2\n";
  auto read = ReadCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ((*read)(0, 0), 1000.0);
  EXPECT_DOUBLE_EQ((*read)(0, 1), -0.025);
}

}  // namespace
}  // namespace pmkm
