#include "data/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"

namespace pmkm {
namespace {

TEST(StatsTest, EmptyDatasetRejected) {
  EXPECT_TRUE(ProfileDataset(Dataset(3)).status().IsInvalidArgument());
}

TEST(StatsTest, KnownMoments) {
  Dataset data(2);
  data.Append(std::vector<double>{1.0, 10.0});
  data.Append(std::vector<double>{3.0, 10.0});
  data.Append(std::vector<double>{5.0, 10.0});
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_points, 3u);
  EXPECT_DOUBLE_EQ(profile->attributes[0].min, 1.0);
  EXPECT_DOUBLE_EQ(profile->attributes[0].max, 5.0);
  EXPECT_DOUBLE_EQ(profile->attributes[0].mean, 3.0);
  // Population stddev of {1,3,5} = sqrt(8/3).
  EXPECT_NEAR(profile->attributes[0].stddev, std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(profile->attributes[1].stddev, 0.0);
}

TEST(StatsTest, PerfectCorrelation) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    data.Append(std::vector<double>{static_cast<double>(i),
                                    2.0 * i + 5.0});
  }
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->Correlation(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(profile->Correlation(1, 0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(profile->Correlation(0, 0), 1.0);
}

TEST(StatsTest, AntiCorrelation) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    data.Append(std::vector<double>{static_cast<double>(i),
                                    -3.0 * i});
  }
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->Correlation(0, 1), -1.0, 1e-12);
}

TEST(StatsTest, ZeroVarianceAttributeCorrelatesZero) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) {
    data.Append(std::vector<double>{static_cast<double>(i), 7.0});
  }
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(profile->Correlation(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(profile->Correlation(1, 1), 1.0);
}

TEST(StatsTest, IndependentAttributesNearZero) {
  Rng rng(1);
  const Dataset data = GenerateUniform(20000, 2, 0, 1, &rng);
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_NEAR(profile->Correlation(0, 1), 0.0, 0.03);
  EXPECT_NEAR(profile->attributes[0].mean, 0.5, 0.01);
  EXPECT_NEAR(profile->attributes[0].stddev, std::sqrt(1.0 / 12.0), 0.01);
}

TEST(StatsTest, MisrCellsShowCrossChannelCorrelation) {
  // The workload property the compression approach relies on: MISR-like
  // radiance channels must be strongly correlated.
  Rng rng(2);
  const Dataset cell = GenerateMisrLikeCell(10000, &rng);
  auto profile = ProfileDataset(cell);
  ASSERT_TRUE(profile.ok());
  double min_corr = 1.0;
  for (size_t a = 0; a < profile->dim; ++a) {
    for (size_t b = a + 1; b < profile->dim; ++b) {
      min_corr = std::min(min_corr, profile->Correlation(a, b));
    }
  }
  EXPECT_GT(min_corr, 0.3);
}

TEST(StatsTest, ToStringMentionsEverything) {
  Dataset data(2);
  data.Append(std::vector<double>{1.0, 2.0});
  data.Append(std::vector<double>{3.0, 4.0});
  auto profile = ProfileDataset(data);
  ASSERT_TRUE(profile.ok());
  const std::string text = profile->ToString();
  EXPECT_NE(text.find("2 points x 2 attributes"), std::string::npos);
  EXPECT_NE(text.find("correlation"), std::string::npos);
}

}  // namespace
}  // namespace pmkm
