#include "data/slicing.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"

namespace pmkm {
namespace {

TEST(SpatialGridTest, Validation) {
  Rng rng(1);
  const Dataset cell = GenerateUniform(10, 3, 0, 1, &rng);
  EXPECT_TRUE(SplitSpatialGrid(cell, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      SplitSpatialGrid(cell, 2, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(
      SplitSpatialGrid(cell, 2, 0, 5).status().IsInvalidArgument());
}

TEST(SpatialGridTest, EmptyCellYieldsNoParts) {
  auto parts = SplitSpatialGrid(Dataset(2), 3);
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts->empty());
}

TEST(SpatialGridTest, PartsAreSpatiallyDisjointAndComplete) {
  Rng rng(2);
  const Dataset cell = GenerateUniform(2000, 4, -10, 10, &rng);
  auto parts = SplitSpatialGrid(cell, 3);
  ASSERT_TRUE(parts.ok());
  ASSERT_LE(parts->size(), 9u);
  size_t total = 0;
  std::multiset<double> seen;
  for (const Dataset& p : *parts) {
    EXPECT_FALSE(p.empty());
    total += p.size();
    seen.insert(p.values().begin(), p.values().end());
    // Disjoint bounding boxes along the grid: all points of a part fall
    // into one grid bucket — verify x-range width is below one grid step.
    double min_x = p(0, 0), max_x = min_x;
    for (size_t i = 1; i < p.size(); ++i) {
      min_x = std::min(min_x, p(i, 0));
      max_x = std::max(max_x, p(i, 0));
    }
    EXPECT_LE(max_x - min_x, 20.0 / 3.0 + 1e-9);
  }
  EXPECT_EQ(total, cell.size());
  std::multiset<double> original(cell.values().begin(),
                                 cell.values().end());
  EXPECT_EQ(seen, original);
}

TEST(SpatialGridTest, GridSideOneReturnsWholeCell) {
  Rng rng(3);
  const Dataset cell = GenerateUniform(50, 2, 0, 1, &rng);
  auto parts = SplitSpatialGrid(cell, 1);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 1u);
  EXPECT_EQ((*parts)[0].size(), 50u);
}

TEST(SpatialGridTest, DegenerateAxisHandled) {
  // All points share x: the x-axis has zero span, everything lands in one
  // column, but y still splits.
  Dataset cell(2);
  for (int i = 0; i < 30; ++i) {
    cell.Append(std::vector<double>{5.0, static_cast<double>(i)});
  }
  auto parts = SplitSpatialGrid(cell, 3);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 3u);  // three y-rows
}

TEST(SpatialGridTest, CustomDimensions) {
  // Use attributes 2 and 3 as the spatial axes.
  Rng rng(4);
  Dataset cell(4);
  for (int i = 0; i < 100; ++i) {
    cell.Append(std::vector<double>{0.0, 0.0, rng.Uniform(0, 10),
                                    rng.Uniform(0, 10)});
  }
  auto parts = SplitSpatialGrid(cell, 2, 2, 3);
  ASSERT_TRUE(parts.ok());
  EXPECT_GE(parts->size(), 2u);
}

TEST(StripesTest, Validation) {
  Rng rng(5);
  const Dataset cell = GenerateUniform(10, 2, 0, 1, &rng);
  EXPECT_TRUE(SplitStripes(cell, 0).status().IsInvalidArgument());
  EXPECT_TRUE(SplitStripes(cell, 2, 9).status().IsInvalidArgument());
}

TEST(StripesTest, StripesAreSortedAndBalanced) {
  Rng rng(6);
  const Dataset cell = GenerateUniform(101, 2, -5, 5, &rng);
  auto parts = SplitStripes(cell, 4, 1);  // slice along coordinate 1
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 4u);
  size_t total = 0;
  double prev_max = -1e30;
  for (const Dataset& p : *parts) {
    total += p.size();
    EXPECT_GE(p.size(), 25u);
    EXPECT_LE(p.size(), 26u);
    double lo = p(0, 1), hi = p(0, 1);
    for (size_t i = 1; i < p.size(); ++i) {
      lo = std::min(lo, p(i, 1));
      hi = std::max(hi, p(i, 1));
    }
    EXPECT_GE(lo, prev_max - 1e-12);  // stripes ordered along the axis
    prev_max = hi;
  }
  EXPECT_EQ(total, 101u);
}

TEST(StripesTest, FewerPointsThanParts) {
  Rng rng(7);
  const Dataset cell = GenerateUniform(3, 2, 0, 1, &rng);
  auto parts = SplitStripes(cell, 10);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 3u);  // empty stripes dropped
}

}  // namespace
}  // namespace pmkm
