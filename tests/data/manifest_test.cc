// The run journal's durability contract: whatever is on disk — clean,
// torn, flipped, duplicated, truncated at any byte — recovery must land on
// the last valid epoch without crashing, and a resumed writer must extend
// a valid prefix.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "data/manifest.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class ManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_manifest_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    FaultRegistry::Global().Reset();
  }
  void TearDown() override {
    FaultRegistry::Global().Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string JournalPath(const std::string& name = "j.pmkj") const {
    return (dir_ / name).string();
  }

  static std::vector<uint8_t> Payload(size_t len, uint8_t fill) {
    return std::vector<uint8_t>(len, fill);
  }

  // Writes `n` records (type = i+1, payload i+1 bytes of value i) and
  // returns the journal path.
  std::string WriteJournal(size_t n) {
    const std::string path = JournalPath();
    auto writer = JournalWriter::Open(path);
    EXPECT_TRUE(writer.ok()) << writer.status();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(
          writer->Append(static_cast<uint32_t>(i + 1),
                         Payload(i + 1, static_cast<uint8_t>(i)))
              .ok());
    }
    EXPECT_TRUE(writer->Close().ok());
    return path;
  }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path,
                       const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(ManifestTest, Crc32cKnownVectors) {
  // RFC 3720 / iSCSI test vectors for CRC32C.
  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  const std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xe3069283u);
}

TEST_F(ManifestTest, EmptyAndMissingJournals) {
  auto missing = RecoverJournal(JournalPath("absent.pmkj"));
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_TRUE(missing->records.empty());
  EXPECT_EQ(missing->epoch, 0u);
  EXPECT_FALSE(missing->torn_tail);

  const std::string path = WriteJournal(0);
  auto empty = RecoverJournal(path);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->records.empty());
  EXPECT_EQ(empty->epoch, 0u);
  EXPECT_FALSE(empty->torn_tail);
  EXPECT_EQ(empty->valid_bytes, internal::kJournalHeaderBytes);
}

TEST_F(ManifestTest, RoundTripManyRecords) {
  const size_t kRecords = 64;
  const std::string path = WriteJournal(kRecords);
  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  ASSERT_EQ(recovery->records.size(), kRecords);
  EXPECT_EQ(recovery->epoch, kRecords);
  EXPECT_FALSE(recovery->torn_tail);
  for (size_t i = 0; i < kRecords; ++i) {
    const JournalRecord& r = recovery->records[i];
    EXPECT_EQ(r.type, i + 1);
    EXPECT_EQ(r.seq, i + 1);
    ASSERT_EQ(r.payload.size(), i + 1);
    for (uint8_t b : r.payload) EXPECT_EQ(b, static_cast<uint8_t>(i));
  }
}

TEST_F(ManifestTest, ReopenResumesSequence) {
  const std::string path = WriteJournal(3);
  auto writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ(writer->recovered().epoch, 3u);
  EXPECT_EQ(writer->next_seq(), 4u);
  ASSERT_TRUE(writer->Append(9, Payload(4, 0xaa)).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 4u);
  EXPECT_EQ(recovery->records.back().seq, 4u);
  EXPECT_EQ(recovery->records.back().type, 9u);
}

TEST_F(ManifestTest, TruncateModeDiscardsHistory) {
  const std::string path = WriteJournal(5);
  auto writer = JournalWriter::Open(path, /*truncate=*/true);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->next_seq(), 1u);
  ASSERT_TRUE(writer->Append(1, Payload(1, 0)).ok());
  ASSERT_TRUE(writer->Close().ok());
  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 1u);
  EXPECT_EQ(recovery->epoch, 1u);
}

// Truncation at EVERY byte boundary of the last record: the valid prefix
// must always be the first two records, never a crash, never a phantom
// third record.
TEST_F(ManifestTest, TruncationAtEveryByteOfLastRecord) {
  const std::string path = WriteJournal(3);
  const std::vector<char> full = ReadAll(path);
  const size_t last_record_bytes = internal::kRecordFixedBytes + 3;
  const size_t prefix_end = full.size() - last_record_bytes;

  for (size_t cut = prefix_end; cut < full.size(); ++cut) {
    WriteAll(path, std::vector<char>(full.begin(), full.begin() + cut));
    auto recovery = RecoverJournal(path);
    ASSERT_TRUE(recovery.ok()) << "cut at " << cut;
    EXPECT_EQ(recovery->records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(recovery->epoch, 2u) << "cut at " << cut;
    EXPECT_EQ(recovery->torn_tail, cut != prefix_end) << "cut at " << cut;
    EXPECT_EQ(recovery->valid_bytes, prefix_end) << "cut at " << cut;
  }
}

// A truncated journal, reopened for append, extends the valid prefix and
// the discarded tail stays gone.
TEST_F(ManifestTest, ReopenAfterTornTailTruncatesAndResumes) {
  const std::string path = WriteJournal(3);
  std::vector<char> bytes = ReadAll(path);
  bytes.resize(bytes.size() - 5);  // tear the last record
  WriteAll(path, bytes);

  auto writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->recovered().torn_tail);
  EXPECT_EQ(writer->recovered().epoch, 2u);
  EXPECT_EQ(writer->next_seq(), 3u);
  ASSERT_TRUE(writer->Append(7, Payload(2, 0xbb)).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 3u);
  EXPECT_FALSE(recovery->torn_tail);
  EXPECT_EQ(recovery->records.back().type, 7u);
  EXPECT_EQ(recovery->records.back().seq, 3u);
}

// Bit flips across every byte of the file: recovery never crashes and
// never returns MORE than the records preceding the flipped byte.
TEST_F(ManifestTest, BitFlipAtEveryByteNeverCrashes) {
  const std::string path = WriteJournal(3);
  const std::vector<char> full = ReadAll(path);
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<char> bytes = full;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x40);
    WriteAll(path, bytes);
    auto recovery = RecoverJournal(path);
    ASSERT_TRUE(recovery.ok()) << "flip at " << i;
    EXPECT_LE(recovery->records.size(), 3u) << "flip at " << i;
    // A flip inside record k's frame invalidates it and everything after.
    if (recovery->records.size() < 3) {
      EXPECT_TRUE(recovery->torn_tail) << "flip at " << i;
      EXPECT_FALSE(recovery->tail_error.empty()) << "flip at " << i;
    }
    for (size_t r = 0; r < recovery->records.size(); ++r) {
      EXPECT_EQ(recovery->records[r].seq, r + 1) << "flip at " << i;
    }
  }
}

// A duplicated tail record (e.g. a retried append that survived twice) is
// structurally valid framing but breaks the seq chain — the duplicate is
// discarded as a torn tail.
TEST_F(ManifestTest, DuplicateTailRecordDiscarded) {
  const std::string path = WriteJournal(2);
  std::vector<char> bytes = ReadAll(path);
  const size_t last_record_bytes = internal::kRecordFixedBytes + 2;
  const std::vector<char> tail(bytes.end() - last_record_bytes,
                               bytes.end());
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  WriteAll(path, bytes);

  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 2u);
  EXPECT_EQ(recovery->epoch, 2u);
  EXPECT_TRUE(recovery->torn_tail);
}

TEST_F(ManifestTest, BadMagicAndVersionAreEmptyNotFatal) {
  const std::string path = JournalPath();
  WriteAll(path, {'J', 'U', 'N', 'K', 1, 0, 0, 0});
  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
  EXPECT_TRUE(recovery->torn_tail);

  // Short file (less than a header).
  WriteAll(path, {'P'});
  recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
}

TEST_F(ManifestTest, CorruptLengthFieldCannotDriveAllocation) {
  const std::string path = WriteJournal(1);
  std::vector<char> bytes = ReadAll(path);
  // Overwrite the first record's payload_len with a huge value.
  const size_t off = internal::kJournalHeaderBytes;
  bytes[off] = static_cast<char>(0xff);
  bytes[off + 1] = static_cast<char>(0xff);
  bytes[off + 2] = static_cast<char>(0xff);
  bytes[off + 3] = static_cast<char>(0x7f);
  WriteAll(path, bytes);
  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
  EXPECT_TRUE(recovery->torn_tail);
}

// The "journal.torn" fault writes half a frame then errors — recovery must
// land on the pre-append epoch, exactly like a real torn write.
TEST_F(ManifestTest, TornWriteFaultLeavesRecoverablePrefix) {
  const std::string path = WriteJournal(2);
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    FaultRegistry::Global().Arm("journal.torn", FaultSpec{.nth = 1});
    EXPECT_FALSE(writer->Append(5, Payload(8, 0xcc)).ok());
    FaultRegistry::Global().Reset();
  }
  auto recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 2u);
  EXPECT_EQ(recovery->epoch, 2u);
  EXPECT_TRUE(recovery->torn_tail);

  // And a writer reopening it truncates the garbage and resumes cleanly.
  auto writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->next_seq(), 3u);
  ASSERT_TRUE(writer->Append(5, Payload(8, 0xcc)).ok());
  ASSERT_TRUE(writer->Close().ok());
  recovery = RecoverJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 3u);
  EXPECT_FALSE(recovery->torn_tail);
}

TEST_F(ManifestTest, AppendFaultReturnsError) {
  const std::string path = JournalPath();
  auto writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  FaultRegistry::Global().Arm("journal.append", FaultSpec{.nth = 1});
  EXPECT_FALSE(writer->Append(1, Payload(1, 0)).ok());
  FaultRegistry::Global().Reset();
  ASSERT_TRUE(writer->Append(1, Payload(1, 0)).ok());
  ASSERT_TRUE(writer->Close().ok());
}

TEST_F(ManifestTest, SyncFaultPropagates) {
  const std::string path = JournalPath();
  auto writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(1, Payload(1, 0)).ok());
  FaultRegistry::Global().Arm("io.fsync", FaultSpec{.nth = 1});
  EXPECT_FALSE(writer->Sync().ok());
  FaultRegistry::Global().Reset();
  EXPECT_TRUE(writer->Sync().ok());
}

TEST_F(ManifestTest, AtomicWriteFileRoundTrip) {
  const std::string path = (dir_ / "blob.bin").string();
  const std::string content = "hello\0world durable bytes";
  ASSERT_TRUE(AtomicWriteFile(path, content).ok());
  const std::vector<char> read = ReadAll(path);
  EXPECT_EQ(std::string(read.begin(), read.end()), content);
  // No staging residue.
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwrite is atomic too.
  ASSERT_TRUE(AtomicWriteFile(path, std::string("v2")).ok());
  const std::vector<char> read2 = ReadAll(path);
  EXPECT_EQ(std::string(read2.begin(), read2.end()), "v2");
}

TEST_F(ManifestTest, AtomicWriteFileFaultsLeaveTargetUntouched) {
  const std::string path = (dir_ / "blob.bin").string();
  ASSERT_TRUE(AtomicWriteFile(path, std::string("v1")).ok());

  FaultRegistry::Global().Arm("io.rename", FaultSpec{.nth = 1});
  EXPECT_FALSE(AtomicWriteFile(path, std::string("v2")).ok());
  FaultRegistry::Global().Reset();
  const std::vector<char> read = ReadAll(path);
  EXPECT_EQ(std::string(read.begin(), read.end()), "v1");

  FaultRegistry::Global().Arm("io.fsync", FaultSpec{.nth = 1});
  EXPECT_FALSE(AtomicWriteFile(path, std::string("v3")).ok());
  FaultRegistry::Global().Reset();
  const std::vector<char> read2 = ReadAll(path);
  EXPECT_EQ(std::string(read2.begin(), read2.end()), "v1");
}

TEST_F(ManifestTest, FsyncHelpers) {
  const std::string path = (dir_ / "f.bin").string();
  ASSERT_TRUE(AtomicWriteFile(path, std::string("x")).ok());
  EXPECT_TRUE(FsyncPath(path).ok());
  EXPECT_TRUE(FsyncPath(dir_.string()).ok());
  EXPECT_TRUE(FsyncFileAndDir(path).ok());
  EXPECT_FALSE(FsyncPath((dir_ / "absent").string()).ok());
}

}  // namespace
}  // namespace pmkm
