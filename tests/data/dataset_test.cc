#include "data/dataset.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/weighted.h"

namespace pmkm {
namespace {

Dataset MakeSequential(size_t n, size_t dim) {
  Dataset d(dim);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<double>(i * dim + j);
    }
    d.Append(p);
  }
  return d;
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(3);
  EXPECT_TRUE(d.empty());
  d.Append(std::vector<double>{1.0, 2.0, 3.0});
  d.Append(std::vector<double>{4.0, 5.0, 6.0});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 2), 6.0);
  auto row = d.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
}

TEST(DatasetTest, MutableRowWritesThrough) {
  Dataset d = MakeSequential(2, 2);
  d.MutableRow(0)[1] = 99.0;
  EXPECT_DOUBLE_EQ(d(0, 1), 99.0);
}

TEST(DatasetTest, FromFlatValidatesMultiple) {
  auto ok = Dataset::FromFlat(2, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_DOUBLE_EQ((*ok)(1, 0), 3.0);

  auto bad = Dataset::FromFlat(3, {1, 2, 3, 4});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto zero = Dataset::FromFlat(0, {});
  EXPECT_TRUE(zero.status().IsInvalidArgument());
}

TEST(DatasetTest, AppendAllConcatenates) {
  Dataset a = MakeSequential(2, 2);
  Dataset b = MakeSequential(3, 2);
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a(2, 0), 0.0);  // first row of b
}

TEST(DatasetTest, SliceCopiesRange) {
  Dataset d = MakeSequential(5, 2);
  Dataset s = d.Slice(1, 3);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  EXPECT_EQ(d.Slice(2, 2).size(), 0u);
}

TEST(DatasetTest, MeanIsCoordinatewise) {
  Dataset d(2);
  d.Append(std::vector<double>{0.0, 10.0});
  d.Append(std::vector<double>{2.0, 20.0});
  d.Append(std::vector<double>{4.0, 30.0});
  const auto mean = d.Mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 20.0);
}

TEST(DatasetTest, ShuffleIsAPermutation) {
  Dataset d = MakeSequential(50, 1);
  Dataset original = d;
  Rng rng(3);
  d.Shuffle(&rng);
  EXPECT_EQ(d.size(), original.size());
  std::multiset<double> a(d.values().begin(), d.values().end());
  std::multiset<double> b(original.values().begin(),
                          original.values().end());
  EXPECT_EQ(a, b);
  EXPECT_NE(d.values(), original.values());  // 50! permutations: ~certain
}

TEST(DatasetTest, SplitRandomPreservesAllPoints) {
  Dataset d = MakeSequential(103, 2);
  Rng rng(5);
  const auto parts = SplitRandom(d, 10, &rng);
  ASSERT_EQ(parts.size(), 10u);
  size_t total = 0;
  std::multiset<double> seen;
  for (const auto& p : parts) {
    total += p.size();
    // Near-equal sizes: 103/10 → sizes in {10, 11}.
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
    seen.insert(p.values().begin(), p.values().end());
  }
  EXPECT_EQ(total, 103u);
  std::multiset<double> original(d.values().begin(), d.values().end());
  EXPECT_EQ(seen, original);
}

TEST(DatasetTest, SplitContiguousKeepsOrder) {
  Dataset d = MakeSequential(7, 1);
  const auto parts = SplitContiguous(d, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size(), 3u);  // 7 = 3+2+2
  EXPECT_EQ(parts[1].size(), 2u);
  EXPECT_EQ(parts[2].size(), 2u);
  EXPECT_DOUBLE_EQ(parts[0](0, 0), 0.0);
  EXPECT_DOUBLE_EQ(parts[1](0, 0), 3.0);
  EXPECT_DOUBLE_EQ(parts[2](1, 0), 6.0);
}

TEST(DatasetTest, SplitMorePartsThanPoints) {
  Dataset d = MakeSequential(2, 1);
  Rng rng(1);
  const auto parts = SplitRandom(d, 5, &rng);
  ASSERT_EQ(parts.size(), 5u);
  size_t nonempty = 0;
  for (const auto& p : parts) {
    if (!p.empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2u);
}

TEST(WeightedDatasetTest, FromUnweightedHasUnitWeights) {
  const WeightedDataset w =
      WeightedDataset::FromUnweighted(MakeSequential(4, 2));
  EXPECT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 4.0);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w.weight(i), 1.0);
  }
}

TEST(WeightedDatasetTest, CreateValidatesSizes) {
  auto bad = WeightedDataset::Create(MakeSequential(3, 2), {1.0, 2.0});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  auto ok = WeightedDataset::Create(MakeSequential(2, 2), {1.0, 5.0});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->TotalWeight(), 6.0);
}

TEST(WeightedDatasetTest, AppendAllConcatenatesWeights) {
  WeightedDataset a(2);
  a.Append(std::vector<double>{1, 2}, 3.0);
  WeightedDataset b(2);
  b.Append(std::vector<double>{4, 5}, 7.0);
  a.AppendAll(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.weight(1), 7.0);
  EXPECT_DOUBLE_EQ(a.TotalWeight(), 10.0);
}

}  // namespace
}  // namespace pmkm
