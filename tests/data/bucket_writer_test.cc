#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"

namespace pmkm {
namespace {

class BucketWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_bw_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(BucketWriterTest, StreamedWriteMatchesBulkWrite) {
  Rng rng(1);
  GridBucket bucket;
  bucket.cell = GridCellId{7, -8};
  bucket.points = GenerateUniform(333, 5, -100, 100, &rng);

  const std::string bulk = Path("bulk.pmkb");
  ASSERT_TRUE(WriteGridBucket(bulk, bucket).ok());

  const std::string streamed = Path("streamed.pmkb");
  auto writer = GridBucketWriter::Open(streamed, bucket.cell, 5);
  ASSERT_TRUE(writer.ok());
  // Append in two unequal batches plus single points.
  ASSERT_TRUE(writer->AppendAll(bucket.points.Slice(0, 100)).ok());
  for (size_t i = 100; i < 150; ++i) {
    ASSERT_TRUE(writer->Append(bucket.points.Row(i)).ok());
  }
  ASSERT_TRUE(writer->AppendAll(bucket.points.Slice(150, 333)).ok());
  EXPECT_EQ(writer->points_written(), 333u);
  ASSERT_TRUE(writer->Close().ok());

  // Byte-identical files.
  std::ifstream a(bulk, std::ios::binary), b(streamed, std::ios::binary);
  const std::string ca((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
  const std::string cb((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(ca, cb);

  auto read = ReadGridBucket(streamed);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->points, bucket.points);
  EXPECT_EQ(read->cell, bucket.cell);
}

TEST_F(BucketWriterTest, ZeroDimRejected) {
  EXPECT_TRUE(GridBucketWriter::Open(Path("z.pmkb"), {0, 0}, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BucketWriterTest, WrongDimensionRejected) {
  auto writer = GridBucketWriter::Open(Path("d.pmkb"), {0, 0}, 3);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->Append(std::vector<double>{1.0, 2.0})
                  .IsInvalidArgument());
}

TEST_F(BucketWriterTest, UseAfterCloseFails) {
  auto writer = GridBucketWriter::Open(Path("c.pmkb"), {0, 0}, 2);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(std::vector<double>{1.0, 2.0}).ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_TRUE(writer->Append(std::vector<double>{3.0, 4.0})
                  .IsFailedPrecondition());
  EXPECT_TRUE(writer->Close().IsFailedPrecondition());
}

TEST_F(BucketWriterTest, UnclosedFileFailsValidationOnRead) {
  const std::string path = Path("unclosed.pmkb");
  {
    auto writer = GridBucketWriter::Open(path, {1, 2}, 2);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(std::vector<double>{1.0, 2.0}).ok());
    // Deliberately no Close(): header count stays 0, checksum missing.
    // Destroying the stream flushes what was written.
  }
  auto read = ReadGridBucket(path);
  // Either the count is 0 with a garbage "checksum" region (payload bytes
  // interpreted as checksum fail the hash of an empty payload), or the
  // read errors out — both reject the half-written file.
  if (read.ok()) {
    // count==0 + first 16 payload bytes misread as checksum: the empty
    // payload hashes to the FNV offset, which cannot equal point data for
    // this input.
    FAIL() << "unclosed bucket file was accepted";
  }
  EXPECT_TRUE(read.status().IsIOError());
}

TEST_F(BucketWriterTest, EmptyBucketViaWriter) {
  const std::string path = Path("empty.pmkb");
  auto writer = GridBucketWriter::Open(path, {3, 4}, 6);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  auto read = ReadGridBucket(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->points.size(), 0u);
  EXPECT_EQ(read->cell, (GridCellId{3, 4}));
}

TEST_F(BucketWriterTest, LargeStreamedBucketChunkReads) {
  Rng rng(2);
  const std::string path = Path("large.pmkb");
  auto writer = GridBucketWriter::Open(path, {0, 0}, 6);
  ASSERT_TRUE(writer.ok());
  size_t total = 0;
  for (int batch = 0; batch < 20; ++batch) {
    const Dataset points = GenerateMisrLikeCell(997, &rng);
    ASSERT_TRUE(writer->AppendAll(points).ok());
    total += points.size();
  }
  ASSERT_TRUE(writer->Close().ok());

  auto reader = GridBucketReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->total_points(), total);
  Dataset chunk(6);
  size_t seen = 0;
  for (;;) {
    auto more = reader->Next(4096, &chunk);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    seen += chunk.size();
  }
  EXPECT_EQ(seen, total);
}

}  // namespace
}  // namespace pmkm
