#!/usr/bin/env python3
"""Golden-violation suite for tools/pmkm_detcheck.py (DESIGN.md §17).

Runs the analyzer in fixture mode (--files, no compdb gate) over each
file in tests/detcheck/fixtures/ and asserts, per fixture:

  - the exit code (65 for the deliberate violations, 0 for the clean
    twins — the sysexits contract shared with pmkm_ctxcheck/pmkm_lint),
  - the rule tag of every expected finding, and
  - the full witness chain root -> ... -> violating operation, because
    the chain IS the product: a finding without the path that reaches
    it is not actionable.

The fp-flags pair (rule D4) is special: the violation lives in the
compile command, not the source, so this runner synthesizes a one-entry
compile_commands.json per fixture — value-unsafe flags and no
-ffp-contract=off for the positive, a compliant command for the clean
twin — and passes it via --compdb alongside --files.

Registered as ctest `detcheck.fixtures` (label `lint`). Run directly:

  tests/detcheck/run_fixture_tests.py [--root REPO]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FIXDIR = os.path.join("tests", "detcheck", "fixtures")

# fixture basename -> (expected exit, [required output substrings]).
# Chains assert function names, not line numbers, so reformatting a
# fixture comment does not break the suite; the arrow line pins the leaf.
EXPECTATIONS = {
    "unordered_iter_violation.cc": (65, [
        "[unordered-iter] iterates hash-ordered unordered_map `table_` "
        "on an output path",
        "detfix::TableEncoder::EncodeTable",
        "-> range-for over table_",
    ]),
    "unordered_iter_clean.cc": (0, ["0 new finding(s)"]),
    "nondet_source_violation.cc": (65, [
        "[nondet-source] calls `time` on an output path (wall clock)",
        "[nondet-source] declares `mt19937` on an output path",
        "detfix::EncodeSnapshot",
        "detfix::Stamp",
        "-> time",
        "-> declare mt19937",
    ]),
    "nondet_source_clean.cc": (0, ["0 new finding(s)"]),
    "ptr_order_violation.cc": (65, [
        "[ptr-order] iterates pointer-keyed map `index_` on an "
        "output path",
        "[ptr-order] casts a pointer to uintptr_t on an output path",
        "detfix::PointerIndexEncoder::EncodeIndex",
        "-> range-for over index_",
        "-> reinterpret_cast<uintptr_t>",
    ]),
    "ptr_order_clean.cc": (0, ["0 new finding(s)"]),
    "fp_flags_violation.cc": (65, [
        "[fp-flags] deterministic TU compiled without -ffp-contract=off",
        "[fp-flags] deterministic TU compiled with -ffast-math",
        "detfix::ReduceBlock",
        "-> flags:ffp-contract",
        "-> flags:ffast-math",
    ]),
    "fp_flags_clean.cc": (0, ["0 new finding(s)"]),
}

# Synthesized compile command per fp-flags fixture (D4 audits the
# command string, so no compiler ever actually runs it).
FP_COMMANDS = {
    "fp_flags_violation.cc":
        "g++ -std=c++20 -O2 -ffast-math -c {file} -o {obj}",
    "fp_flags_clean.cc":
        "g++ -std=c++20 -O2 -ffp-contract=off -c {file} -o {obj}",
}


def run_fixture(analyzer, root, fixture):
    """Runs the analyzer over one fixture, synthesizing a compdb for the
    fp-flags pair. Returns (exit_code, combined_output)."""
    rel = os.path.join(FIXDIR, fixture)
    cmd = [sys.executable, analyzer, "--root", root, "--no-baseline",
           "--files", os.path.join(root, rel)]
    if fixture in FP_COMMANDS:
        entry = {
            "directory": root,
            "file": rel,
            "command": FP_COMMANDS[fixture].format(
                file=rel, obj=fixture + ".o"),
        }
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as tmp:
            json.dump([entry], tmp)
            tmp_path = tmp.name
        cmd += ["--compdb", tmp_path]
    else:
        tmp_path = None
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    finally:
        if tmp_path is not None:
            os.unlink(tmp_path)
    return proc.returncode, proc.stdout + proc.stderr


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        help="repository root (default: two levels above this script)")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    analyzer = os.path.join(root, "tools", "pmkm_detcheck.py")

    fixtures = sorted(os.listdir(os.path.join(root, FIXDIR)))
    missing = set(EXPECTATIONS) - set(fixtures)
    extra = [f for f in fixtures if f.endswith(".cc")
             and f not in EXPECTATIONS]
    if missing or extra:
        for f in sorted(missing):
            print(f"FAIL: fixture listed in EXPECTATIONS but absent: {f}")
        for f in extra:
            print(f"FAIL: fixture on disk without an expectation: {f}")
        return 1

    failures = 0
    for fixture, (want_exit, want_substrings) in sorted(
            EXPECTATIONS.items()):
        got_exit, out = run_fixture(analyzer, root, fixture)
        problems = []
        if got_exit != want_exit:
            problems.append(f"exit {got_exit}, want {want_exit}")
        for needle in want_substrings:
            if needle not in out:
                problems.append(f"missing output: {needle!r}")
        if problems:
            failures += 1
            print(f"FAIL {fixture}")
            for p in problems:
                print(f"  {p}")
            print("  --- analyzer output ---")
            for line in out.splitlines():
                print(f"  {line}")
        else:
            print(f"PASS {fixture} (exit {got_exit})")

    total = len(EXPECTATIONS)
    print(f"detcheck fixtures: {total - failures}/{total} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
