// pmkm_detcheck golden fixture — POSITIVE for rule `nondet-source` (D2).
//
// Two distinct leaks into a PMKM_DETERMINISTIC encoder:
//   1. a wall-clock stamp (time()) reached through a helper — the chain
//      EncodeSnapshot -> Stamp -> time must be reported;
//   2. a std::mt19937 declared on the output path itself, outside the
//      sanctioned common/rng.h seed plumbing.
// This file compiles but is deliberately wrong.

#include <cstdint>
#include <ctime>
#include <random>
#include <vector>

#include "common/annotations.h"

namespace detfix {

uint64_t Stamp() { return static_cast<uint64_t>(time(nullptr)); }

std::vector<uint8_t> EncodeSnapshot(
    const std::vector<double>& xs) PMKM_DETERMINISTIC {
  // pmkm-lint: allow(raw-random) — this fixture IS the violation.
  std::mt19937 jitter(12345);
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(Stamp() & 0xff));
  out.push_back(static_cast<uint8_t>(jitter() & 0xff));
  out.push_back(static_cast<uint8_t>(xs.size() & 0xff));
  return out;
}

}  // namespace detfix
