// pmkm_detcheck golden fixture — NEGATIVE twin for rule `ptr-order`
// (D3): the same shape keyed on a stable uint64_t id instead of an
// address. The key order is a pure function of the inserted data, so
// the analyzer must stay silent.

#include <cstdint>
#include <map>
#include <vector>

#include "common/annotations.h"

namespace detfix {

struct Item {
  uint64_t id = 0;
  int weight = 0;
};

class IdIndexEncoder {
 public:
  std::vector<uint8_t> EncodeIndex() PMKM_DETERMINISTIC {
    std::vector<uint8_t> out;
    for (const auto& entry : index_) {
      out.push_back(static_cast<uint8_t>(entry.first & 0xff));
      out.push_back(static_cast<uint8_t>(entry.second & 0xff));
    }
    return out;
  }

  void Insert(const Item& item, int rank) { index_[item.id] = rank; }

 private:
  std::map<uint64_t, int> index_;
};

std::vector<uint8_t> Touch(IdIndexEncoder& enc) {
  return enc.EncodeIndex();
}

}  // namespace detfix
