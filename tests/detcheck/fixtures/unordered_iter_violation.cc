// pmkm_detcheck golden fixture — POSITIVE for rule `unordered-iter` (D1).
//
// A PMKM_DETERMINISTIC encoder range-fors over a std::unordered_map
// member: iteration order depends on hashing, insertion history, and the
// libstdc++ version, so the emitted bytes differ between runs. The
// analyzer must report the witness chain EncodeTable -> range-for over
// table_. This file compiles but is deliberately wrong.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"

namespace detfix {

class TableEncoder {
 public:
  std::vector<uint8_t> EncodeTable() PMKM_DETERMINISTIC {
    std::vector<uint8_t> out;
    for (const auto& entry : table_) {
      out.push_back(static_cast<uint8_t>(entry.second & 0xff));
    }
    return out;
  }

  void Insert(const std::string& key, int value) { table_[key] = value; }

 private:
  std::unordered_map<std::string, int> table_;
};

std::vector<uint8_t> Touch(TableEncoder& enc) { return enc.EncodeTable(); }

}  // namespace detfix
