// pmkm_detcheck golden fixture — POSITIVE for rule `ptr-order` (D3).
//
// Two address-derived leaks into a PMKM_DETERMINISTIC encoder:
//   1. iterating a std::map keyed on pointers — ordered, but ordered by
//      ADDRESS, which ASLR re-randomizes every process, so the byte
//      order differs between two invocations on identical input;
//   2. reinterpret_cast of a pointer to uintptr_t, emitting the address
//      itself.
// This file compiles but is deliberately wrong.

#include <cstdint>
#include <map>
#include <vector>

#include "common/annotations.h"

namespace detfix {

struct Item {
  int weight = 0;
};

class PointerIndexEncoder {
 public:
  std::vector<uint8_t> EncodeIndex() PMKM_DETERMINISTIC {
    std::vector<uint8_t> out;
    for (const auto& entry : index_) {
      out.push_back(static_cast<uint8_t>(entry.second & 0xff));
      const uint64_t tag = reinterpret_cast<uintptr_t>(entry.first);
      out.push_back(static_cast<uint8_t>(tag & 0xff));
    }
    return out;
  }

  void Insert(const Item* item, int rank) { index_[item] = rank; }

 private:
  std::map<const Item*, int> index_;
};

std::vector<uint8_t> Touch(PointerIndexEncoder& enc) {
  return enc.EncodeIndex();
}

}  // namespace detfix
