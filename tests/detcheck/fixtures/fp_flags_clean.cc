// pmkm_detcheck golden fixture — NEGATIVE twin for rule `fp-flags`
// (D4): byte-identical math to the violation fixture, but the runner
// synthesizes a compliant compile command (-ffp-contract=off present,
// no value-unsafe flags), so the analyzer must stay silent.

#include <cstddef>
#include <vector>

#include "common/annotations.h"

namespace detfix {

double ReduceBlockClean(const std::vector<double>& xs) PMKM_DETERMINISTIC {
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i] * xs[i];
  }
  return acc;
}

}  // namespace detfix
