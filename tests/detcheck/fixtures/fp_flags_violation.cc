// pmkm_detcheck golden fixture — POSITIVE for rule `fp-flags` (D4).
//
// The source itself is fine: a PMKM_DETERMINISTIC reduction over
// doubles. The violation lives in the compile command: the fixture
// runner (run_fixture_tests.py) synthesizes a compile_commands.json
// entry for this TU WITHOUT -ffp-contract=off and WITH -ffast-math, and
// the analyzer must flag both — FMA contraction and value-unsafe math
// make the reduction's bytes vary by compiler and architecture. The
// clean twin gets a compliant command for identical source.

#include <cstddef>
#include <vector>

#include "common/annotations.h"

namespace detfix {

double ReduceBlock(const std::vector<double>& xs) PMKM_DETERMINISTIC {
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i] * xs[i];
  }
  return acc;
}

}  // namespace detfix
