// pmkm_detcheck golden fixture — NEGATIVE twin for rule `nondet-source`
// (D2). The encoder emits only a pure function of its input, and the
// surrounding code reads steady_clock for a latency metric — the one
// clock the rule deliberately does NOT flag (monotonic, metrics-only;
// see the steady_clock rationale in tools/pmkm_detcheck.py). The
// analyzer must stay silent.

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/annotations.h"

namespace detfix {

std::vector<uint8_t> EncodeSnapshot(
    const std::vector<double>& xs) PMKM_DETERMINISTIC {
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(xs.size() & 0xff));
  for (const double x : xs) {
    out.push_back(static_cast<uint8_t>(static_cast<uint64_t>(x) & 0xff));
  }
  // Metrics only: the duration never reaches `out`.
  (void)(std::chrono::steady_clock::now() - start);
  return out;
}

}  // namespace detfix
