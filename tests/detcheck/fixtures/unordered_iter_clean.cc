// pmkm_detcheck golden fixture — NEGATIVE twin for rule `unordered-iter`
// (D1): the same encoder over an ordered std::map. Iteration order is
// the key order, a pure function of the inserted data, so the bytes are
// stable and the analyzer must stay silent.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace detfix {

class TableEncoder {
 public:
  std::vector<uint8_t> EncodeTable() PMKM_DETERMINISTIC {
    std::vector<uint8_t> out;
    for (const auto& entry : table_) {
      out.push_back(static_cast<uint8_t>(entry.second & 0xff));
    }
    return out;
  }

  void Insert(const std::string& key, int value) { table_[key] = value; }

 private:
  std::map<std::string, int> table_;
};

std::vector<uint8_t> Touch(TableEncoder& enc) { return enc.EncodeTable(); }

}  // namespace detfix
