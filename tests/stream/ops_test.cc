#include "stream/ops.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_ops_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteCell(const std::string& name, GridCellId id, size_t n,
                        uint64_t seed) {
    Rng rng(seed);
    GridBucket bucket;
    bucket.cell = id;
    bucket.points = GenerateMisrLikeCell(n, &rng);
    const std::string path = (dir_ / name).string();
    PMKM_CHECK_OK(WriteGridBucket(path, bucket));
    return path;
  }

  std::filesystem::path dir_;
};

KMeansConfig PartialConfig(size_t k = 8) {
  KMeansConfig config;
  config.k = k;
  config.restarts = 2;
  return config;
}

MergeKMeansConfig MergeConfig(size_t k = 8) {
  MergeKMeansConfig config;
  config.k = k;
  return config;
}

TEST_F(OpsTest, ScanEmitsAllChunksWithMetadata) {
  const std::string path = WriteCell("a.pmkb", {3, 4}, 100, 1);
  auto out = std::make_shared<PointChunkQueue>(64);
  ScanOperator scan({path}, 30, out);
  ASSERT_TRUE(scan.Run().ok());
  EXPECT_EQ(scan.chunks_emitted(), 4u);  // ceil(100/30)

  size_t total = 0;
  uint32_t next_id = 0;
  while (auto chunk = out->Pop()) {
    EXPECT_EQ(chunk->cell, (GridCellId{3, 4}));
    EXPECT_EQ(chunk->total_partitions, 4u);
    EXPECT_EQ(chunk->partition_id, next_id++);
    total += chunk->points.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(OpsTest, ScanMultipleFiles) {
  const std::string p1 = WriteCell("a.pmkb", {0, 0}, 50, 1);
  const std::string p2 = WriteCell("b.pmkb", {1, 1}, 70, 2);
  auto out = std::make_shared<PointChunkQueue>(64);
  ScanOperator scan({p1, p2}, 25, out);
  ASSERT_TRUE(scan.Run().ok());
  EXPECT_EQ(scan.chunks_emitted(), 5u);  // 2 + 3
}

TEST_F(OpsTest, ScanFailsOnMissingFile) {
  auto out = std::make_shared<PointChunkQueue>(4);
  ScanOperator scan({(dir_ / "nope.pmkb").string()}, 10, out);
  EXPECT_TRUE(scan.Run().IsIOError());
  // Producer must still have closed the queue.
  EXPECT_EQ(out->Pop(), std::nullopt);
}

TEST_F(OpsTest, SingleCellPipelineMatchesDriver) {
  const std::string path = WriteCell("cell.pmkb", {10, 20}, 500, 3);
  auto points = std::make_shared<PointChunkQueue>(8);
  auto centroids = std::make_shared<CentroidQueue>(8);

  Executor executor;
  executor.Add(std::make_unique<ScanOperator>(
      std::vector<std::string>{path}, 100, points));
  executor.Add(std::make_unique<PartialKMeansOperator>(PartialConfig(),
                                                       points, centroids));
  auto merge = std::make_unique<MergeKMeansOperator>(MergeConfig(),
                                                     centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));

  ASSERT_TRUE(executor.Run().ok());
  ASSERT_EQ(merge_raw->results().size(), 1u);
  const CellClustering& cell =
      merge_raw->results().at(GridCellId{10, 20});
  EXPECT_EQ(cell.model.k(), 8u);
  EXPECT_EQ(cell.input_points, 500u);
  EXPECT_EQ(cell.pooled_centroids, 40u);  // 5 chunks × 8
  double mass = 0.0;
  for (double w : cell.model.weights) mass += w;
  EXPECT_NEAR(mass, 500.0, 1e-6);
}

TEST_F(OpsTest, ClonedPartialOperatorsProduceCompleteResult) {
  const std::string path = WriteCell("cell.pmkb", {0, 0}, 1200, 4);
  auto points = std::make_shared<PointChunkQueue>(4);
  auto centroids = std::make_shared<CentroidQueue>(4);

  Executor executor;
  executor.Add(std::make_unique<ScanOperator>(
      std::vector<std::string>{path}, 150, points));
  for (int c = 0; c < 3; ++c) {
    executor.Add(std::make_unique<PartialKMeansOperator>(
        PartialConfig(), points, centroids,
        "partial#" + std::to_string(c)));
  }
  auto merge = std::make_unique<MergeKMeansOperator>(MergeConfig(),
                                                     centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));

  ASSERT_TRUE(executor.Run().ok());
  const CellClustering& cell = merge_raw->results().at(GridCellId{0, 0});
  EXPECT_EQ(cell.input_points, 1200u);
  EXPECT_EQ(cell.pooled_centroids, 64u);  // 8 chunks × 8
}

TEST_F(OpsTest, MultipleCellsEachGetMerged) {
  std::vector<std::string> paths;
  for (int i = 0; i < 4; ++i) {
    paths.push_back(WriteCell("c" + std::to_string(i) + ".pmkb",
                              {i, -i}, 200 + 50 * i, 10 + i));
  }
  auto points = std::make_shared<PointChunkQueue>(8);
  auto centroids = std::make_shared<CentroidQueue>(8);
  Executor executor;
  executor.Add(std::make_unique<ScanOperator>(paths, 64, points));
  executor.Add(std::make_unique<PartialKMeansOperator>(PartialConfig(4),
                                                       points, centroids));
  auto merge = std::make_unique<MergeKMeansOperator>(MergeConfig(4),
                                                     centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));
  ASSERT_TRUE(executor.Run().ok());
  ASSERT_EQ(merge_raw->results().size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto& cell = merge_raw->results().at(GridCellId{i, -i});
    EXPECT_EQ(cell.input_points, 200u + 50 * i);
  }
}

TEST_F(OpsTest, MemoryScanMatchesFileScan) {
  Rng rng(5);
  GridBucket bucket;
  bucket.cell = GridCellId{7, 8};
  bucket.points = GenerateMisrLikeCell(300, &rng);

  auto q1 = std::make_shared<PointChunkQueue>(64);
  MemoryScanOperator mem({bucket}, 80, q1);
  ASSERT_TRUE(mem.Run().ok());

  const std::string path = (dir_ / "same.pmkb").string();
  ASSERT_TRUE(WriteGridBucket(path, bucket).ok());
  auto q2 = std::make_shared<PointChunkQueue>(64);
  ScanOperator file({path}, 80, q2);
  ASSERT_TRUE(file.Run().ok());

  for (;;) {
    auto a = q1->Pop();
    auto b = q2->Pop();
    EXPECT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->points, b->points);
    EXPECT_EQ(a->partition_id, b->partition_id);
    EXPECT_EQ(a->total_partitions, b->total_partitions);
  }
}

TEST_F(OpsTest, CorruptBucketMidStreamAbortsPipeline) {
  // Failure injection: second of three bucket files is corrupted. The
  // pipeline must fail with an IO error and not hang any operator.
  std::vector<std::string> paths;
  paths.push_back(WriteCell("ok1.pmkb", {0, 0}, 300, 20));
  paths.push_back(WriteCell("bad.pmkb", {1, 1}, 300, 21));
  paths.push_back(WriteCell("ok2.pmkb", {2, 2}, 300, 22));
  {
    std::fstream f(paths[1],
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(48, std::ios::beg);
    f.put('\x5a');
  }
  auto points = std::make_shared<PointChunkQueue>(2);
  auto centroids = std::make_shared<CentroidQueue>(2);
  Executor executor;
  executor.Add(std::make_unique<ScanOperator>(paths, 100, points));
  executor.Add(std::make_unique<PartialKMeansOperator>(PartialConfig(4),
                                                       points, centroids));
  executor.Add(
      std::make_unique<MergeKMeansOperator>(MergeConfig(4), centroids));
  const Status st = executor.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError() || st.IsCancelled()) << st;
}

TEST_F(OpsTest, ExecutorPropagatesOperatorFailure) {
  // Scan on a missing file must abort the whole pipeline: the merge
  // operator unblocks and the executor reports the IO error.
  auto points = std::make_shared<PointChunkQueue>(2);
  auto centroids = std::make_shared<CentroidQueue>(2);
  Executor executor;
  executor.Add(std::make_unique<ScanOperator>(
      std::vector<std::string>{(dir_ / "ghost.pmkb").string()}, 10,
      points));
  executor.Add(std::make_unique<PartialKMeansOperator>(PartialConfig(),
                                                       points, centroids));
  executor.Add(
      std::make_unique<MergeKMeansOperator>(MergeConfig(), centroids));
  const Status st = executor.Run();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st;
}

}  // namespace
}  // namespace pmkm
