// End-to-end resilience of the streamed partial/merge pipeline: injected
// read faults, a permanently corrupt bucket, executor-level operator
// restarts, and the stall watchdog. Every scenario is seeded and exact.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "stream/engine.h"
#include "stream/plan.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

constexpr size_t kNumCells = 50;
constexpr size_t kPointsPerCell = 40;
constexpr int kCorruptCellLat = 25;  // cell_25_0 gets truncated on disk

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().Reset();
    dir_ = fs::temp_directory_path() /
           ("pmkm_resilience_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultRegistry::Global().Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Writes kNumCells healthy buckets (2-d Gaussian blobs) and returns their
  // paths in scan order.
  std::vector<std::string> WriteBuckets() {
    std::vector<std::string> paths;
    Rng rng(42);
    for (size_t i = 0; i < kNumCells; ++i) {
      GridBucket bucket;
      bucket.cell = GridCellId{static_cast<int32_t>(i), 0};
      bucket.points = Dataset(2);
      for (size_t p = 0; p < kPointsPerCell; ++p) {
        bucket.points.Append(std::vector<double>{
            static_cast<double>(i) * 10.0 + rng.Normal(0.0, 1.0),
            rng.Normal(0.0, 1.0)});
      }
      const std::string path =
          (dir_ / (bucket.cell.ToString() + ".pmkb")).string();
      EXPECT_TRUE(WriteGridBucket(path, bucket).ok());
      paths.push_back(path);
    }
    return paths;
  }

  // Truncates the bucket mid-payload: reads fail partway through the
  // bucket, after the header (so the scan knows which cell to quarantine).
  static void CorruptBucket(const std::string& path) {
    std::error_code ec;
    fs::resize_file(path, 32 + 10 * 2 * sizeof(double), ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  // Small memory budget => chunk_points 16 => 3 partitions per 40-point
  // cell, exercising partition resume and the merge completeness check.
  static ResourceModel SmallResources() {
    ResourceModel resources;
    resources.memory_bytes_per_operator = 1024;
    resources.cores = 3;  // 2 partial clones
    return resources;
  }

  static KMeansConfig PartialConfig() {
    KMeansConfig config;
    config.k = 2;
    config.restarts = 2;
    return config;
  }

  static MergeKMeansConfig MergeConfig() {
    MergeKMeansConfig config;
    config.k = 2;
    config.restarts = 2;
    return config;
  }

  // The standard small-resource pipeline over on-disk buckets.
  static Result<StreamRunResult> RunStream(
      const std::vector<std::string>& paths,
      const StreamExecOptions& exec) {
    return PipelineBuilder()
        .WithPartialKMeans(PartialConfig())
        .WithMerge(MergeConfig())
        .WithResources(SmallResources())
        .WithExecution(exec)
        .Run(paths);
  }

  fs::path dir_;
};

TEST_F(ResilienceTest, SkipAndContinueQuarantinesCorruptBucketUnderFaults) {
  std::vector<std::string> paths = WriteBuckets();
  CorruptBucket(paths[kCorruptCellLat]);
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("io.read:p=0.05,seed=7")
                  .ok());

  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kSkipAndContinue;
  exec.io_retry.max_attempts = 8;
  exec.io_retry.initial_backoff_ms = 0;  // retry without sleeping

  auto run = RunStream(paths, exec);
  ASSERT_TRUE(run.ok()) << run.status();

  // All healthy cells clustered; exactly the corrupt one quarantined.
  EXPECT_EQ(run->cells.size(), kNumCells - 1);
  ASSERT_EQ(run->report.quarantined.size(), 1u) << run->report.Summary();
  const QuarantinedCellReport& q = run->report.quarantined[0];
  EXPECT_TRUE(q.cell_known);
  EXPECT_EQ(q.cell, (GridCellId{kCorruptCellLat, 0}));
  EXPECT_NE(q.reason.find("truncated bucket payload"), std::string::npos)
      << q.reason;
  EXPECT_EQ(run->cells.count(GridCellId{kCorruptCellLat, 0}), 0u);
  for (const auto& [cell, clustering] : run->cells) {
    EXPECT_EQ(clustering.input_points, kPointsPerCell);
  }
  // 5% faults over ~250 read hits: retries must have been absorbed.
  EXPECT_GT(run->report.io_retries, 0u);
  EXPECT_TRUE(run->report.degraded);
  EXPECT_EQ(run->report.failure_policy, FailurePolicy::kSkipAndContinue);
}

TEST_F(ResilienceTest, SkipAndContinueIsDeterministicPerSeed) {
  std::vector<std::string> paths = WriteBuckets();
  CorruptBucket(paths[kCorruptCellLat]);

  auto run_once = [&]() {
    FaultRegistry::Global().Reset();
    EXPECT_TRUE(FaultRegistry::Global()
                    .ArmFromString("io.read:p=0.05,seed=7")
                    .ok());
    StreamExecOptions exec;
    exec.failure_policy = FailurePolicy::kSkipAndContinue;
    exec.io_retry.max_attempts = 8;
    exec.io_retry.initial_backoff_ms = 0;
    return RunStream(paths, exec);
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The scan thread consumes the per-site fault stream sequentially, so
  // the retry count and the quarantine list reproduce exactly.
  EXPECT_EQ(a->report.io_retries, b->report.io_retries);
  ASSERT_EQ(a->report.quarantined.size(), b->report.quarantined.size());
  EXPECT_EQ(a->cells.size(), b->cells.size());
}

TEST_F(ResilienceTest, FailFastReturnsFirstErrorOnCorruptBucket) {
  std::vector<std::string> paths = WriteBuckets();
  CorruptBucket(paths[kCorruptCellLat]);

  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kFailFast;
  auto run = RunStream(paths, exec);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsIOError()) << run.status();
  EXPECT_NE(run.status().message().find("truncated bucket payload"),
            std::string::npos)
      << run.status();
}

TEST_F(ResilienceTest, FailFastSurfacesInjectedFault) {
  std::vector<std::string> paths = WriteBuckets();
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("io.read:n=20,msg=injected read fault")
                  .ok());
  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kFailFast;
  auto run = RunStream(paths, exec);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsIOError()) << run.status();
  EXPECT_EQ(run.status().message(), "injected read fault");
}

TEST_F(ResilienceTest, RetryOperatorRestartsScanAndRecoversFully) {
  std::vector<std::string> paths = WriteBuckets();
  // One-shot fault: the 30th read hit fails once, then the site is clean,
  // so an executor-level restart of the scan recovers everything.
  ASSERT_TRUE(FaultRegistry::Global().ArmFromString("io.read:n=30").ok());

  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kRetryOperator;
  exec.max_retries = 2;
  auto run = RunStream(paths, exec);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->cells.size(), kNumCells);  // nothing lost
  EXPECT_EQ(run->report.operator_restarts, 1u);
  EXPECT_TRUE(run->report.quarantined.empty());
  EXPECT_FALSE(run->report.degraded);
  for (const auto& [cell, clustering] : run->cells) {
    EXPECT_EQ(clustering.input_points, kPointsPerCell);
  }
}

TEST_F(ResilienceTest, RetryOperatorExhaustionFailsTheRun) {
  std::vector<std::string> paths = WriteBuckets();
  CorruptBucket(paths[kCorruptCellLat]);  // permanent: restarts can't help

  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kRetryOperator;
  exec.max_retries = 2;
  auto run = RunStream(paths, exec);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsIOError()) << run.status();
}

TEST_F(ResilienceTest, WatchdogDetectsStalledOperator) {
  // In-memory pipeline with a 60 s stall injected into the first chunk the
  // partial operator picks up; the watchdog must fire within the
  // configured timeout instead of hanging for the full minute.
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromString("op.stall:n=1,stall_ms=60000")
                  .ok());

  std::vector<GridBucket> cells;
  Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    GridBucket bucket;
    bucket.cell = GridCellId{i, 0};
    bucket.points = Dataset(2);
    for (size_t p = 0; p < 32; ++p) {
      bucket.points.Append(
          std::vector<double>{rng.Normal(i * 10.0, 1.0), rng.Normal(0, 1)});
    }
    cells.push_back(std::move(bucket));
  }

  ResourceModel resources;
  resources.cores = 2;  // one partial clone: the stall stalls the pipeline
  StreamExecOptions exec;
  exec.op_timeout_ms = 300;

  const auto started = std::chrono::steady_clock::now();
  auto run = PipelineBuilder()
                 .WithPartialKMeans(PartialConfig())
                 .WithMerge(MergeConfig())
                 .WithResources(resources)
                 .WithChunkPoints(8)
                 .WithExecution(exec)
                 .RunInMemory(std::move(cells));
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - started);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsDeadlineExceeded()) << run.status();
  EXPECT_NE(run.status().message().find("watchdog"), std::string::npos)
      << run.status();
  EXPECT_LT(elapsed.count(), 30) << "watchdog took too long to fire";
}

TEST_F(ResilienceTest, WatchdogStaysQuietOnHealthyRun) {
  std::vector<std::string> paths = WriteBuckets();
  StreamExecOptions exec;
  exec.op_timeout_ms = 10000;
  auto run = RunStream(paths, exec);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->cells.size(), kNumCells);
  EXPECT_TRUE(run->report.stalled_operators.empty());
  EXPECT_FALSE(run->report.degraded);
}

TEST_F(ResilienceTest, SkipAndContinueSurvivesUnreadableFirstBucket) {
  std::vector<std::string> paths = WriteBuckets();
  CorruptBucket(paths[0]);
  // Also make it unopenable so even the planner's probe must skip it.
  {
    std::ofstream out(paths[0], std::ios::binary | std::ios::trunc);
    out.write("XX", 2);
  }
  StreamExecOptions exec;
  exec.failure_policy = FailurePolicy::kSkipAndContinue;
  exec.io_retry.max_attempts = 2;
  exec.io_retry.initial_backoff_ms = 0;
  auto run = RunStream(paths, exec);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->cells.size(), kNumCells - 1);
  ASSERT_EQ(run->report.quarantined.size(), 1u);
  EXPECT_TRUE(run->report.degraded);
}

}  // namespace
}  // namespace pmkm
