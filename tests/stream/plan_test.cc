#include "stream/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "cluster/metrics.h"
#include "data/generator.h"
#include "stream/engine.h"

namespace pmkm {
namespace {

TEST(ResourceModelTest, EffectiveCoresAutodetectsPositive) {
  ResourceModel r;
  EXPECT_GE(r.EffectiveCores(), 1u);
  r.cores = 3;
  EXPECT_EQ(r.EffectiveCores(), 3u);
}

TEST(PlanTest, PartitionSizeScalesWithMemory) {
  ResourceModel small;
  small.memory_bytes_per_operator = 1 << 16;  // 64 KiB
  ResourceModel large;
  large.memory_bytes_per_operator = 1 << 24;  // 16 MiB
  const PhysicalPlan ps = PlanPartialMerge(6, 100000, small);
  const PhysicalPlan pl = PlanPartialMerge(6, 100000, large);
  EXPECT_LT(ps.chunk_points, pl.chunk_points);
  // 64 KiB / (6·8·4) = 341 points.
  EXPECT_EQ(ps.chunk_points, (1u << 16) / (6 * 8 * 4));
}

TEST(PlanTest, CloneCountBoundedByChunks) {
  ResourceModel r;
  r.cores = 16;
  r.memory_bytes_per_operator = 1 << 30;  // one huge chunk
  const PhysicalPlan plan = PlanPartialMerge(6, 1000, r);
  EXPECT_EQ(plan.partial_clones, 1u);  // only one chunk exists
}

TEST(PlanTest, ClonesUseAvailableCores) {
  ResourceModel r;
  r.cores = 8;
  r.memory_bytes_per_operator = 1 << 14;  // many small chunks
  const PhysicalPlan plan = PlanPartialMerge(6, 100000, r);
  EXPECT_EQ(plan.partial_clones, 7u);  // cores − 1
  EXPECT_GE(plan.queue_capacity, 2 * plan.partial_clones);
}

TEST(PlanTest, QueueCapacityRule) {
  // cap = max(2, min(2·clones, clones · memory / chunk_bytes)).
  // Planner-sized chunks occupy a quarter of the budget (factor-4 working
  // set), so the 2·clones term binds...
  EXPECT_EQ(PlanQueueCapacity(4, 100, 6, 100 * 6 * 8 * 4), 8u);
  // ...a chunk as large as the whole budget leaves one buffered chunk per
  // clone...
  EXPECT_EQ(PlanQueueCapacity(4, 400, 6, 400 * 6 * 8), 4u);
  // ...and chunks larger than the budget clamp to the floor of 2.
  EXPECT_EQ(PlanQueueCapacity(4, 4000, 6, 400 * 6 * 8), 2u);
  EXPECT_EQ(PlanQueueCapacity(1, 1, 1, 0), 2u);  // floor holds everywhere
}

TEST(PlanTest, PlannerQueueCapacityFollowsRule) {
  for (size_t cores : {2u, 4u, 9u}) {
    ResourceModel r;
    r.cores = cores;
    r.memory_bytes_per_operator = 1 << 16;
    const PhysicalPlan plan = PlanPartialMerge(6, 1000000, r);
    EXPECT_EQ(plan.queue_capacity,
              PlanQueueCapacity(plan.partial_clones, plan.chunk_points, 6,
                                r.memory_bytes_per_operator));
    // Planner-derived chunks always fit the budget 4×, so the capacity
    // equals the historical 2·clones rule.
    EXPECT_EQ(plan.queue_capacity,
              std::max<size_t>(2, 2 * plan.partial_clones));
  }
}

TEST(PlanTest, MinimumOnePointPartition) {
  ResourceModel r;
  r.memory_bytes_per_operator = 1;  // absurdly small budget
  const PhysicalPlan plan = PlanPartialMerge(6, 100, r);
  EXPECT_GE(plan.chunk_points, 1u);
}

class PlanRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_plan_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(PlanRunTest, EndToEndOverFiles) {
  Rng rng(1);
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    GridBucket bucket;
    bucket.cell = GridCellId{i, i};
    bucket.points = GenerateMisrLikeCell(400, &rng);
    const std::string path =
        (dir_ / (bucket.cell.ToString() + ".pmkb")).string();
    ASSERT_TRUE(WriteGridBucket(path, bucket).ok());
    paths.push_back(path);
  }
  KMeansConfig partial;
  partial.k = 6;
  partial.restarts = 2;
  MergeKMeansConfig merge;
  merge.k = 6;
  ResourceModel resources;
  resources.cores = 4;
  resources.memory_bytes_per_operator = 6 * 8 * 4 * 100;  // 100-pt chunks

  auto result = PipelineBuilder()
                    .WithPartialKMeans(partial)
                    .WithMerge(merge)
                    .WithResources(resources)
                    .Run(paths);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan.chunk_points, 100u);
  EXPECT_EQ(result->cells.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto& cell = result->cells.at(GridCellId{i, i});
    EXPECT_EQ(cell.input_points, 400u);
    EXPECT_EQ(cell.model.k(), 6u);
  }
  EXPECT_GT(result->wall_seconds, 0.0);
}

TEST_F(PlanRunTest, EmptyPathListRejected) {
  KMeansConfig partial;
  MergeKMeansConfig merge;
  EXPECT_TRUE(PipelineBuilder()
                  .WithPartialKMeans(partial)
                  .WithMerge(merge)
                  .Run({})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PlanRunTest, InMemoryVariantMatchesFileVariant) {
  Rng rng(2);
  GridBucket bucket;
  bucket.cell = GridCellId{5, 5};
  bucket.points = GenerateMisrLikeCell(600, &rng);
  const std::string path = (dir_ / "x.pmkb").string();
  ASSERT_TRUE(WriteGridBucket(path, bucket).ok());

  KMeansConfig partial;
  partial.k = 5;
  partial.restarts = 2;
  partial.seed = 9;
  MergeKMeansConfig merge;
  merge.k = 5;
  ResourceModel resources;
  resources.cores = 2;
  resources.memory_bytes_per_operator = 6 * 8 * 4 * 150;

  PipelineBuilder builder;
  builder.WithPartialKMeans(partial).WithMerge(merge).WithResources(
      resources);
  auto from_file = builder.Run({path});
  auto in_memory = builder.WithChunkPoints(150).RunInMemory({bucket});
  ASSERT_TRUE(from_file.ok() && in_memory.ok());
  const auto& a = from_file->cells.at(bucket.cell);
  const auto& b = in_memory->cells.at(bucket.cell);
  EXPECT_EQ(a.model.centroids, b.model.centroids);
  EXPECT_EQ(a.model.sse, b.model.sse);
}

TEST_F(PlanRunTest, InMemoryEmptyCellsRejected) {
  KMeansConfig partial;
  MergeKMeansConfig merge;
  EXPECT_TRUE(PipelineBuilder()
                  .WithPartialKMeans(partial)
                  .WithMerge(merge)
                  .RunInMemory({})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pmkm
