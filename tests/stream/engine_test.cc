// EngineOptions / EngineFlags / PipelineBuilder: the unified front door
// to the streamed partial/merge pipeline.

#include "stream/engine.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/flags.h"
#include "data/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmkm {
namespace {

GridBucket MakeBucket(int id, size_t n, uint64_t seed) {
  Rng rng(seed);
  GridBucket bucket;
  bucket.cell = GridCellId{id, id};
  bucket.points = GenerateMisrLikeCell(n, &rng);
  return bucket;
}

TEST(EngineFlagsTest, RegistersAndConverts) {
  EngineFlags flags;
  FlagParser parser;
  flags.Register(&parser);
  const char* argv[] = {"prog",          "--k=7",
                        "--restarts=3",  "--memory-kib=64",
                        "--cores=5",     "--failure_policy=skip",
                        "--kernel=scalar"};
  ASSERT_TRUE(parser.Parse(7, const_cast<char**>(argv)).ok());
  auto options = flags.ToOptions();
  ASSERT_TRUE(options.ok()) << options.status();
  EXPECT_EQ(options->partial.k, 7u);
  EXPECT_EQ(options->partial.restarts, 3u);
  EXPECT_EQ(options->merge.k, 7u);
  EXPECT_EQ(options->resources.memory_bytes_per_operator, 64u << 10);
  EXPECT_EQ(options->resources.cores, 5u);
  EXPECT_EQ(options->exec.failure_policy,
            FailurePolicy::kSkipAndContinue);
  EXPECT_EQ(options->kernel, KernelKind::kScalar);
}

TEST(EngineFlagsTest, RejectsBadValues) {
  {
    EngineFlags flags;
    flags.k = 0;
    EXPECT_TRUE(flags.ToOptions().status().IsInvalidArgument());
  }
  {
    EngineFlags flags;
    flags.failure_policy = "shrug";
    EXPECT_TRUE(flags.ToOptions().status().IsInvalidArgument());
  }
  {
    EngineFlags flags;
    flags.kernel = "mmx";
    EXPECT_TRUE(flags.ToOptions().status().IsInvalidArgument());
  }
}

TEST(PipelineBuilderTest, RunInMemoryIsDeterministic) {
  KMeansConfig partial;
  partial.k = 5;
  partial.restarts = 2;
  partial.seed = 9;
  MergeKMeansConfig merge;
  merge.k = 5;
  ResourceModel resources;
  resources.cores = 2;
  resources.memory_bytes_per_operator = 6 * 8 * 4 * 150;

  PipelineBuilder builder;
  builder.WithPartialKMeans(partial).WithMerge(merge).WithResources(
      resources);
  auto first = builder.RunInMemory({MakeBucket(1, 600, 2)});
  auto second = builder.RunInMemory({MakeBucket(1, 600, 2)});
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  const auto& a = first->cells.at(GridCellId{1, 1});
  const auto& b = second->cells.at(GridCellId{1, 1});
  EXPECT_EQ(a.model.centroids, b.model.centroids);
  EXPECT_EQ(a.model.sse, b.model.sse);
}

TEST(PipelineBuilderTest, ResultIdenticalAcrossKernels) {
  // --kernel is a pure speed knob: the streamed pipeline's output is
  // bitwise identical under every available kernel.
  KMeansConfig partial;
  partial.k = 6;
  partial.restarts = 2;
  MergeKMeansConfig merge;
  merge.k = 6;
  ResourceModel resources;
  resources.cores = 3;

  auto Run = [&](KernelKind kind) {
    return PipelineBuilder()
        .WithPartialKMeans(partial)
        .WithMerge(merge)
        .WithResources(resources)
        .WithKernel(kind)
        .RunInMemory({MakeBucket(2, 1500, 3)});
  };
  auto ref = Run(KernelKind::kScalar);
  ASSERT_TRUE(ref.ok()) << ref.status();
  for (const DistanceKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name());
    auto alt = Run(kernel->kind());
    ASSERT_TRUE(alt.ok()) << alt.status();
    const auto& a = ref->cells.at(GridCellId{2, 2});
    const auto& b = alt->cells.at(GridCellId{2, 2});
    EXPECT_EQ(a.model.centroids, b.model.centroids);
    EXPECT_EQ(a.model.sse, b.model.sse);
  }
}

TEST(PipelineBuilderTest, OperatorStatsNameActiveKernel) {
  auto result = PipelineBuilder()
                    .WithKernel(KernelKind::kScalar)
                    .RunInMemory({MakeBucket(3, 800, 4)});
  ASSERT_TRUE(result.ok()) << result.status();
  bool partial_seen = false, merge_seen = false;
  for (const OperatorStats& stats : result->operator_stats) {
    if (stats.name.rfind("partial-kmeans", 0) == 0) {
      partial_seen = true;
      EXPECT_EQ(stats.kernel, "scalar");
    } else if (stats.name == "merge-kmeans") {
      merge_seen = true;
      EXPECT_EQ(stats.kernel, "scalar");
    }
  }
  EXPECT_TRUE(partial_seen);
  EXPECT_TRUE(merge_seen);
}

TEST(PipelineBuilderTest, WithMetricsAndTraceWireSinks) {
  MetricsRegistry registry;
  TraceRecorder trace;
  auto result = PipelineBuilder()
                    .WithMetrics(&registry)
                    .WithTrace(&trace)
                    .RunInMemory({MakeBucket(4, 500, 5)});
  ASSERT_TRUE(result.ok()) << result.status();
  // The queue gauges only exist when the metrics sink was attached.
  const std::string json = registry.ToJsonString();
  EXPECT_NE(json.find("queue.points.depth"), std::string::npos);
  EXPECT_GT(trace.size(), 0u);
}

TEST(PipelineBuilderTest, ChunkOverrideKeepsQueueRule) {
  // A forced chunk size larger than the memory budget must clamp the
  // queue to the floor of 2 instead of buffering 2·clones giant chunks.
  ResourceModel resources;
  resources.cores = 5;
  resources.memory_bytes_per_operator = 6 * 8 * 4 * 100;  // 100-pt chunks
  KMeansConfig partial;
  partial.k = 4;
  partial.restarts = 1;
  MergeKMeansConfig merge;
  merge.k = 4;
  auto result = PipelineBuilder()
                    .WithPartialKMeans(partial)
                    .WithMerge(merge)
                    .WithResources(resources)
                    .WithChunkPoints(2000)
                    .RunInMemory({MakeBucket(5, 4000, 6)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan.chunk_points, 2000u);
  EXPECT_EQ(result->plan.queue_capacity,
            PlanQueueCapacity(result->plan.partial_clones, 2000, 6,
                              resources.memory_bytes_per_operator));
}

TEST(PipelineBuilderTest, ExplainNamesKernel) {
  // Explain goes through bucket files; write one.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("pmkm_engine_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const GridBucket bucket = MakeBucket(6, 300, 7);
  const std::string path = (dir / "cell.pmkb").string();
  ASSERT_TRUE(WriteGridBucket(path, bucket).ok());
  auto text = PipelineBuilder()
                  .WithKernel(KernelKind::kScalar)
                  .Explain({path});
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("kernel=scalar"), std::string::npos);
}

}  // namespace
}  // namespace pmkm
