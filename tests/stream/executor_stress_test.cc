// Stress and failure-injection tests for the stream executor: many cells,
// many clones, tiny queues (maximum back-pressure), and operators that
// fail at arbitrary points of the pipeline lifecycle.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <string>

#include "common/fault.h"
#include "data/generator.h"
#include "stream/engine.h"
#include "stream/ops.h"
#include "stream/plan.h"

namespace pmkm {
namespace {

KMeansConfig PartialConfig() {
  KMeansConfig config;
  config.k = 4;
  config.restarts = 1;
  return config;
}

MergeKMeansConfig MergeConfig() {
  MergeKMeansConfig config;
  config.k = 4;
  return config;
}

std::vector<GridBucket> MakeCells(size_t count, size_t points,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<GridBucket> cells;
  for (size_t c = 0; c < count; ++c) {
    GridBucket bucket;
    bucket.cell = GridCellId{static_cast<int32_t>(c), 0};
    bucket.points = GenerateMisrLikeCell(points, &rng);
    cells.push_back(std::move(bucket));
  }
  return cells;
}

TEST(ExecutorStressTest, ManyCellsManyClonesTinyQueues) {
  // 12 cells × 6 chunks over 5 clones through capacity-1 queues: maximum
  // back-pressure and interleaving. Everything must arrive exactly once.
  auto points = std::make_shared<PointChunkQueue>(1);
  auto centroids = std::make_shared<CentroidQueue>(1);
  Executor executor;
  executor.Add(std::make_unique<MemoryScanOperator>(MakeCells(12, 300, 1),
                                                    50, points));
  for (int c = 0; c < 5; ++c) {
    executor.Add(std::make_unique<PartialKMeansOperator>(
        PartialConfig(), points, centroids,
        "clone#" + std::to_string(c)));
  }
  auto merge =
      std::make_unique<MergeKMeansOperator>(MergeConfig(), centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));
  ASSERT_TRUE(executor.Run().ok());
  ASSERT_EQ(merge_raw->results().size(), 12u);
  for (const auto& [id, cell] : merge_raw->results()) {
    EXPECT_EQ(cell.input_points, 300u);
    EXPECT_EQ(cell.pooled_centroids, 24u);  // 6 chunks × 4
  }
}

TEST(ExecutorStressTest, RepeatedRunsAreIdenticalUnderContention) {
  // The determinism guarantee under the most adversarial scheduling we can
  // provoke in-process: tiny queues, more clones than cores.
  Dataset first_centroids(1);
  double first_sse = -1.0;
  for (int round = 0; round < 3; ++round) {
    auto points = std::make_shared<PointChunkQueue>(1);
    auto centroids = std::make_shared<CentroidQueue>(1);
    Executor executor;
    executor.Add(std::make_unique<MemoryScanOperator>(
        MakeCells(1, 1200, 7), 150, points));
    for (int c = 0; c < 6; ++c) {
      executor.Add(std::make_unique<PartialKMeansOperator>(
          PartialConfig(), points, centroids,
          "clone#" + std::to_string(c)));
    }
    auto merge =
        std::make_unique<MergeKMeansOperator>(MergeConfig(), centroids);
    auto* merge_raw = merge.get();
    executor.Add(std::move(merge));
    ASSERT_TRUE(executor.Run().ok());
    const auto& cell = merge_raw->results().begin()->second;
    if (round == 0) {
      first_centroids = cell.model.centroids;
      first_sse = cell.model.sse;
    } else {
      EXPECT_EQ(cell.model.centroids, first_centroids);
      EXPECT_EQ(cell.model.sse, first_sse);
    }
  }
}

// An operator that consumes chunks and fails after a fixed number.
class FailingOperator : public Operator {
 public:
  FailingOperator(std::shared_ptr<PointChunkQueue> in,
                  std::shared_ptr<CentroidQueue> out, int fail_after)
      : Operator("failing"),
        in_(std::move(in)),
        out_(std::move(out)),
        fail_after_(fail_after) {
    out_->AddProducer();
  }

  Status Run() override {
    struct Closer {
      CentroidQueue* q;
      ~Closer() { q->CloseProducer(); }
    } closer{out_.get()};
    int seen = 0;
    while (auto chunk = in_->Pop()) {
      if (++seen > fail_after_) {
        return Status::Internal("injected failure");
      }
    }
    return Status::OK();
  }

  void Abort() override {
    in_->Cancel();
    out_->Cancel();
  }

 private:
  std::shared_ptr<PointChunkQueue> in_;
  std::shared_ptr<CentroidQueue> out_;
  int fail_after_;
};

TEST(ExecutorStressTest, MidPipelineFailureUnblocksEveryone) {
  for (int fail_after : {0, 1, 3}) {
    auto points = std::make_shared<PointChunkQueue>(1);
    auto centroids = std::make_shared<CentroidQueue>(1);
    Executor executor;
    executor.Add(std::make_unique<MemoryScanOperator>(
        MakeCells(4, 400, 11), 40, points));
    executor.Add(std::make_unique<FailingOperator>(points, centroids,
                                                   fail_after));
    executor.Add(
        std::make_unique<MergeKMeansOperator>(MergeConfig(), centroids));
    const Status st = executor.Run();  // must terminate, not hang
    ASSERT_FALSE(st.ok()) << "fail_after=" << fail_after;
    EXPECT_TRUE(st.IsInternal() || st.IsCancelled()) << st;
  }
}

TEST(ExecutorStressTest, EmptyPipelineRunsClean) {
  Executor executor;
  EXPECT_TRUE(executor.Run().ok());
  EXPECT_EQ(executor.num_operators(), 0u);
}

TEST(ExecutorStressTest, SeededFaultSweepNeverProducesWrongResults) {
  // 100 seeded runs with both read faults and partial-compute faults armed.
  // The contract under kSkipAndContinue: the run always terminates OK, and
  // every cell is either clustered from ALL of its points or explicitly
  // quarantined — never silently wrong, never hung.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "pmkm_fault_sweep";
  fs::remove_all(dir);
  fs::create_directories(dir);

  constexpr size_t kCells = 6;
  constexpr size_t kPoints = 180;
  std::vector<std::string> paths;
  {
    Rng rng(99);
    for (size_t c = 0; c < kCells; ++c) {
      GridBucket bucket;
      bucket.cell = GridCellId{static_cast<int32_t>(c), 0};
      bucket.points = Dataset(2);
      for (size_t p = 0; p < kPoints; ++p) {
        bucket.points.Append(std::vector<double>{
            rng.Normal(c * 8.0, 1.0), rng.Normal(0.0, 1.0)});
      }
      const std::string path =
          (dir / (bucket.cell.ToString() + ".pmkb")).string();
      ASSERT_TRUE(WriteGridBucket(path, bucket).ok());
      paths.push_back(path);
    }
  }

  ResourceModel resources;
  resources.memory_bytes_per_operator = 1024;  // chunk = 16 pts, 12 parts
  resources.cores = 4;                         // 3 partial clones

  for (uint64_t seed = 1; seed <= 100; ++seed) {
    FaultRegistry::Global().Reset();
    ASSERT_TRUE(FaultRegistry::Global()
                    .ArmFromString(
                        "io.read:p=0.05,seed=" + std::to_string(seed) +
                        ";op.partial:p=0.05,code=deadline,seed=" +
                        std::to_string(seed + 1000))
                    .ok());

    StreamExecOptions exec;
    exec.failure_policy = FailurePolicy::kSkipAndContinue;
    exec.io_retry.max_attempts = 3;
    exec.io_retry.initial_backoff_ms = 0;

    auto run = PipelineBuilder()
                   .WithPartialKMeans(PartialConfig())
                   .WithMerge(MergeConfig())
                   .WithResources(resources)
                   .WithExecution(exec)
                   .Run(paths);
    ASSERT_TRUE(run.ok()) << "seed=" << seed << ": " << run.status();

    std::set<GridCellId> quarantined;
    for (const auto& q : run->report.quarantined) {
      if (q.cell_known) {
        EXPECT_TRUE(quarantined.insert(q.cell).second)
            << "seed=" << seed << ": cell " << q.cell.ToString()
            << " quarantined twice";
      }
    }
    // Clustered ∩ quarantined = ∅, and clustered cells saw every point.
    for (const auto& [cell, clustering] : run->cells) {
      EXPECT_EQ(quarantined.count(cell), 0u)
          << "seed=" << seed << ": cell " << cell.ToString()
          << " both clustered and quarantined";
      EXPECT_EQ(clustering.input_points, kPoints)
          << "seed=" << seed << ": cell " << cell.ToString()
          << " clustered from partial input";
    }
    // Every cell is accounted for exactly once.
    EXPECT_EQ(run->cells.size() + run->report.quarantined.size(), kCells)
        << "seed=" << seed << ": " << run->report.Summary();
    EXPECT_EQ(run->report.degraded, !run->report.quarantined.empty())
        << "seed=" << seed;
  }
  FaultRegistry::Global().Reset();
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(ExecutorStressTest, MergeAloneSeesEndOfStream) {
  // A merge with a producer-less queue must terminate immediately: zero
  // producers means end-of-stream by definition.
  auto centroids = std::make_shared<CentroidQueue>(2);
  Executor executor;
  auto merge =
      std::make_unique<MergeKMeansOperator>(MergeConfig(), centroids);
  auto* merge_raw = merge.get();
  executor.Add(std::move(merge));
  ASSERT_TRUE(executor.Run().ok());
  EXPECT_TRUE(merge_raw->results().empty());
}

}  // namespace
}  // namespace pmkm
