// TSan regression tests for BoundedBlockingQueue shutdown paths.
//
// PR 4 made AttachMetrics synchronized (it used to write the instrument
// pointers unguarded, racing any in-flight Push/Pop that read them). These
// tests hammer exactly that interleaving — queue teardown via Cancel /
// CloseProducer while instruments are being attached and snapshots read —
// and exist to keep the ThreadSanitizer suite (scripts/run_sanitizers.sh
// tsan) red if the race ever comes back.

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "stream/queue.h"

namespace pmkm {
namespace {

TEST(QueueShutdownTest, ConcurrentAttachMetricsWhileStreaming) {
  for (int round = 0; round < 8; ++round) {
    BoundedBlockingQueue<int> queue(4);
    MetricsRegistry registry;
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr int kItemsPerProducer = 500;

    for (int p = 0; p < kProducers; ++p) queue.AddProducer();

    std::vector<std::thread> threads;
    threads.reserve(kProducers + kConsumers + 1);

    // Re-attach instruments continuously while the stream is moving: the
    // queue must never read a half-written QueueMetrics struct.
    threads.emplace_back([&queue, &registry] {
      for (int i = 0; i < 200; ++i) {
        QueueMetrics metrics;
        metrics.depth = &registry.gauge("queue.depth");
        metrics.push_block_us = &registry.histogram("queue.push_block_us");
        metrics.pop_wait_us = &registry.histogram("queue.pop_wait_us");
        queue.AttachMetrics(metrics);
        queue.AttachMetrics(QueueMetrics{});  // detach again
      }
    });

    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&queue] {
        for (int i = 0; i < kItemsPerProducer; ++i) {
          if (!queue.Push(i)) break;
        }
        queue.CloseProducer();
      });
    }

    std::atomic<int> popped{0};
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&queue, &popped] {
        while (queue.Pop().has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    for (auto& t : threads) t.join();
    EXPECT_EQ(popped.load(), kProducers * kItemsPerProducer);
    EXPECT_EQ(queue.total_pushed(),
              static_cast<uint64_t>(kProducers * kItemsPerProducer));
    EXPECT_LE(queue.HighWaterMark(), queue.capacity());
  }
}

TEST(QueueShutdownTest, CancelRacesAttachAndBlockedThreads) {
  for (int round = 0; round < 16; ++round) {
    BoundedBlockingQueue<int> queue(2);
    MetricsRegistry registry;
    queue.AddProducer();

    std::vector<std::thread> threads;

    // Producers block on the tiny capacity until Cancel releases them.
    for (int p = 0; p < 2; ++p) {
      threads.emplace_back([&queue] {
        for (int i = 0; i < 1000; ++i) {
          if (!queue.Push(i)) return;  // cancelled
        }
      });
    }
    // One consumer drains slowly so producers really do block.
    threads.emplace_back([&queue] {
      for (int i = 0; i < 10; ++i) {
        if (!queue.Pop().has_value()) return;
      }
      while (queue.Pop().has_value()) {
      }
    });
    // Metrics attach/detach churn during the teardown.
    threads.emplace_back([&queue, &registry] {
      QueueMetrics metrics;
      metrics.depth = &registry.gauge("depth");
      for (int i = 0; i < 100; ++i) {
        queue.AttachMetrics(metrics);
        queue.AttachMetrics(QueueMetrics{});
      }
    });
    // Snapshot readers race the teardown too.
    threads.emplace_back([&queue] {
      for (int i = 0; i < 100; ++i) {
        (void)queue.Depth();
        (void)queue.HighWaterMark();
        (void)queue.total_pushed();
        (void)queue.cancelled();
      }
    });

    queue.Cancel();
    for (auto& t : threads) t.join();
    EXPECT_TRUE(queue.cancelled());
    // Cancelled queue rejects further traffic.
    EXPECT_FALSE(queue.Push(1));
    EXPECT_FALSE(queue.Pop().has_value());
    queue.CloseProducer();
  }
}

TEST(QueueShutdownTest, CloseProducerWakesAllBlockedConsumers) {
  BoundedBlockingQueue<int> queue(4);
  queue.AddProducer();

  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&queue, &finished] {
      while (queue.Pop().has_value()) {
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  ASSERT_TRUE(queue.Push(1));
  queue.CloseProducer();  // end of stream: every consumer must wake
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 4);
}

}  // namespace
}  // namespace pmkm
