// Checkpoint/restore (stream/checkpoint.h): payload codecs round-trip
// bit-exactly, the writer's rotation rules (fingerprint mismatch,
// completed run, --no-resume) hold, corruption degrades instead of
// crashing, and a resumed pipeline run is bitwise-identical to an
// uninterrupted one.

#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "data/generator.h"
#include "obs/metrics.h"
#include "stream/engine.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

Dataset MustDataset(size_t dim, std::vector<double> flat) {
  auto data = Dataset::FromFlat(dim, std::move(flat));
  PMKM_CHECK(data.ok());
  return std::move(data).value();
}

// A CellClustering with deliberately awkward doubles (subnormal, -0.0,
// huge) — the codec stores IEEE-754 bit patterns, so all must survive.
CellClustering MakeCell(int id) {
  CellClustering cell;
  cell.cell = GridCellId{id, -id};
  cell.input_points = 12345;
  cell.pooled_centroids = 40;
  cell.merge_seconds = 0.125;
  cell.model.centroids = MustDataset(
      3, {1.5, -0.0, 4.9e-324, 1e308, -2.25, 0.1 + 0.2});
  cell.model.weights = {600.0, 0.5};
  cell.model.sse = 42.4242424242;
  cell.model.mse_per_point = 42.4242424242 / 12345.0;
  cell.model.iterations = 17;
  cell.model.converged = true;
  return cell;
}

void ExpectCellsEqual(const CellClustering& a, const CellClustering& b) {
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.input_points, b.input_points);
  EXPECT_EQ(a.pooled_centroids, b.pooled_centroids);
  EXPECT_EQ(a.merge_seconds, b.merge_seconds);
  EXPECT_EQ(a.model.centroids, b.model.centroids);
  EXPECT_EQ(a.model.weights, b.model.weights);
  EXPECT_EQ(a.model.sse, b.model.sse);
  EXPECT_EQ(a.model.mse_per_point, b.model.mse_per_point);
  EXPECT_EQ(a.model.iterations, b.model.iterations);
  EXPECT_EQ(a.model.converged, b.model.converged);
  // -0.0 == 0.0 under operator==; pin the sign bit explicitly.
  EXPECT_EQ(std::signbit(a.model.centroids.values()[1]),
            std::signbit(b.model.centroids.values()[1]));
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_ckpt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    FaultRegistry::Global().Reset();
  }
  void TearDown() override {
    FaultRegistry::Global().Reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string CkptDir() const { return (dir_ / "ckpt").string(); }

  CheckpointOptions Options(bool resume = true) const {
    CheckpointOptions options;
    options.dir = CkptDir();
    options.resume = resume;
    return options;
  }

  std::vector<char> ReadJournal() const {
    std::ifstream in(CheckpointJournalPath(CkptDir()), std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  void WriteJournal(const std::vector<char>& bytes) const {
    std::ofstream out(CheckpointJournalPath(CkptDir()),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, CellCompletePayloadRoundTrip) {
  const CellClustering cell = MakeCell(3);
  const std::vector<uint8_t> payload = EncodeCellComplete(cell);
  auto decoded = DecodeCellComplete(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectCellsEqual(cell, *decoded);
}

TEST_F(CheckpointTest, PartialStatePayloadRoundTrip) {
  MergeKMeansConfig config;
  config.k = 3;
  IncrementalMergeKMeans merge(2, config);
  auto push = [&](double base) {
    auto points = MustDataset(
        2, {base, base + 1, base + 2, base + 3, base + 4, base + 5});
    auto weighted =
        WeightedDataset::Create(std::move(points), {3.0, 2.0, 1.0});
    ASSERT_TRUE(weighted.ok());
    ASSERT_TRUE(merge.Push(*weighted).ok());
  };
  push(0.0);
  push(10.0);

  const GridCellId id{7, -9};
  const IncrementalMergeState state = merge.SaveState();
  const std::vector<uint8_t> payload = EncodePartialState(id, state);
  auto decoded = DecodePartialState(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->first, id);
  EXPECT_EQ(decoded->second.partitions_merged, state.partitions_merged);
  EXPECT_EQ(decoded->second.last_sse, state.last_sse);
  EXPECT_EQ(decoded->second.running.points(), state.running.points());
  EXPECT_EQ(decoded->second.running.weights(), state.running.weights());

  // Restoring the decoded snapshot reproduces the fold bit-for-bit.
  IncrementalMergeKMeans resumed(2, config);
  ASSERT_TRUE(resumed.RestoreState(std::move(decoded->second)).ok());
  push(20.0);
  auto direct = merge.Finish();
  {
    auto points = MustDataset(2, {20.0, 21, 22, 23, 24, 25});
    auto weighted =
        WeightedDataset::Create(std::move(points), {3.0, 2.0, 1.0});
    ASSERT_TRUE(weighted.ok());
    ASSERT_TRUE(resumed.Push(*weighted).ok());
  }
  auto via_snapshot = resumed.Finish();
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_TRUE(via_snapshot.ok()) << via_snapshot.status();
  EXPECT_EQ(direct->centroids, via_snapshot->centroids);
  EXPECT_EQ(direct->sse, via_snapshot->sse);
}

TEST_F(CheckpointTest, DecodeRejectsTruncatedAndGarbagePayloads) {
  const std::vector<uint8_t> payload = EncodeCellComplete(MakeCell(1));
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeCellComplete(
        std::span<const uint8_t>(payload.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
  // Unknown version.
  std::vector<uint8_t> wrong_version = payload;
  wrong_version[0] = 0xee;
  EXPECT_FALSE(DecodeCellComplete(wrong_version).ok());
  // Arbitrary garbage: an error, never a crash or a giant allocation.
  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  EXPECT_FALSE(DecodeCellComplete(garbage).ok());
  EXPECT_FALSE(DecodePartialState(garbage).ok());
}

TEST_F(CheckpointTest, WriterStateReplaysThroughLoad) {
  const uint64_t fp = 0xfeedbeefcafe1234ull;
  {
    auto writer = CheckpointWriter::Open(Options(), fp);
    ASSERT_TRUE(writer.ok()) << writer.status();
    EXPECT_FALSE(writer->recovered().journal_found);
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(1)).ok());
    MergeKMeansConfig config;
    config.k = 2;
    IncrementalMergeKMeans merge(3, config);
    ASSERT_TRUE(
        writer->AppendPartialState(GridCellId{2, -2}, merge.SaveState())
            .ok());
    EXPECT_EQ(writer->cells_appended(), 1u);
    // seq: 1=kRunBegin, 2=cell, 3=partial.
    EXPECT_EQ(writer->epoch(), 3u);
  }

  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->journal_found);
  EXPECT_TRUE(loaded->fingerprint_known);
  EXPECT_EQ(loaded->config_fingerprint, fp);
  EXPECT_FALSE(loaded->run_complete);
  ASSERT_EQ(loaded->completed.size(), 1u);
  ExpectCellsEqual(loaded->completed.at(GridCellId{1, -1}), MakeCell(1));
  EXPECT_EQ(loaded->partials.size(), 1u);

  // A completing cell supersedes its partial snapshot; Finalize seals.
  {
    auto writer = CheckpointWriter::Open(Options(), fp);
    ASSERT_TRUE(writer.ok()) << writer.status();
    EXPECT_EQ(writer->recovered().completed.size(), 1u);
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(2)).ok());
    ASSERT_TRUE(writer->Finalize().ok());
    ASSERT_TRUE(writer->Finalize().ok());  // idempotent
  }
  loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->run_complete);
  EXPECT_EQ(loaded->completed.size(), 2u);
  EXPECT_TRUE(loaded->partials.empty());
}

TEST_F(CheckpointTest, FingerprintMismatchStartsFresh) {
  {
    auto writer = CheckpointWriter::Open(Options(), 111);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(1)).ok());
  }
  auto writer = CheckpointWriter::Open(Options(), 222);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_TRUE(writer->recovered().completed.empty());
  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->config_fingerprint, 222u);
  EXPECT_TRUE(loaded->completed.empty());
}

TEST_F(CheckpointTest, CompletedRunStartsFresh) {
  {
    auto writer = CheckpointWriter::Open(Options(), 5);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(1)).ok());
    ASSERT_TRUE(writer->Finalize().ok());
  }
  auto writer = CheckpointWriter::Open(Options(), 5);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->recovered().completed.empty());
}

TEST_F(CheckpointTest, NoResumeDiscardsJournal) {
  {
    auto writer = CheckpointWriter::Open(Options(), 5);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(1)).ok());
  }
  auto writer = CheckpointWriter::Open(Options(/*resume=*/false), 5);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->recovered().completed.empty());
  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->completed.empty());
}

TEST_F(CheckpointTest, TornTailRecoversToLastCell) {
  {
    auto writer = CheckpointWriter::Open(Options(), 5);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(1)).ok());
    ASSERT_TRUE(writer->AppendCellComplete(MakeCell(2)).ok());
  }
  std::vector<char> bytes = ReadJournal();
  bytes.resize(bytes.size() - 7);  // tear cell 2's record
  WriteJournal(bytes);

  auto writer = CheckpointWriter::Open(Options(), 5);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_TRUE(writer->recovered().torn_tail);
  ASSERT_EQ(writer->recovered().completed.size(), 1u);
  EXPECT_EQ(writer->recovered().completed.begin()->first,
            (GridCellId{1, -1}));
  // The torn frame was truncated: re-appending cell 2 yields a clean
  // journal with both cells.
  ASSERT_TRUE(writer->AppendCellComplete(MakeCell(2)).ok());
  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->torn_tail);
  EXPECT_EQ(loaded->completed.size(), 2u);
}

// ---- End-to-end engine resume --------------------------------------------

GridBucket MakeBucket(int id, size_t n, uint64_t seed) {
  Rng rng(seed);
  GridBucket bucket;
  bucket.cell = GridCellId{id, id};
  bucket.points = GenerateMisrLikeCell(n, &rng);
  return bucket;
}

class CheckpointEngineTest : public CheckpointTest {
 protected:
  std::vector<std::string> WriteBuckets(size_t cells, size_t points) {
    const fs::path bucket_dir = dir_ / "buckets";
    fs::create_directories(bucket_dir);
    std::vector<std::string> paths;
    for (size_t i = 0; i < cells; ++i) {
      GridBucket bucket =
          MakeBucket(static_cast<int>(i + 1), points, 100 + i);
      const std::string path =
          (bucket_dir / (bucket.cell.ToString() + ".pmkb")).string();
      EXPECT_TRUE(WriteGridBucket(path, bucket).ok());
      paths.push_back(path);
    }
    return paths;
  }

  PipelineBuilder Builder() const {
    KMeansConfig partial;
    partial.k = 4;
    partial.restarts = 2;
    partial.seed = 7;
    MergeKMeansConfig merge;
    merge.k = 4;
    ResourceModel resources;
    resources.cores = 3;
    resources.memory_bytes_per_operator = 6 * 8 * 4 * 100;  // ~100-pt chunks
    return PipelineBuilder()
        .WithPartialKMeans(partial)
        .WithMerge(merge)
        .WithResources(resources);
  }

  static void ExpectRunsBitwiseEqual(const StreamRunResult& a,
                                     const StreamRunResult& b) {
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (const auto& [id, cell] : a.cells) {
      SCOPED_TRACE(id.ToString());
      auto it = b.cells.find(id);
      ASSERT_NE(it, b.cells.end());
      EXPECT_EQ(cell.model.centroids, it->second.model.centroids);
      EXPECT_EQ(cell.model.weights, it->second.model.weights);
      EXPECT_EQ(cell.model.sse, it->second.model.sse);
    }
  }
};

TEST_F(CheckpointEngineTest, ResumedRunIsBitwiseIdentical) {
  const std::vector<std::string> paths = WriteBuckets(3, 400);
  auto reference = Builder().Run(paths);
  ASSERT_TRUE(reference.ok()) << reference.status();

  MetricsRegistry registry;
  auto full = Builder()
                  .WithCheckpoint(CkptDir())
                  .WithMetrics(&registry)
                  .Run(paths);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->report.checkpoint_cells, 3u);
  EXPECT_EQ(full->report.cells_resumed, 0u);
  EXPECT_FALSE(full->report.checkpoint_degraded);
  ExpectRunsBitwiseEqual(*reference, *full);
  EXPECT_NE(registry.ToJsonString().find("checkpoint.records"),
            std::string::npos);
  {
    auto loaded = LoadCheckpoint(CkptDir());
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->run_complete);
  }
  const std::vector<char> journal = ReadJournal();

  // Interrupted after one cell: keep header + kRunBegin + first cell
  // record, exactly as if the process died mid-run.
  {
    auto recovery = RecoverJournal(CheckpointJournalPath(CkptDir()));
    ASSERT_TRUE(recovery.ok());
    ASSERT_GE(recovery->records.size(), 3u);
    size_t keep = internal::kJournalHeaderBytes;
    for (size_t i = 0; i < 2; ++i) {
      keep += internal::kRecordFixedBytes + recovery->records[i].payload.size();
    }
    WriteJournal(std::vector<char>(journal.begin(),
                                   journal.begin() +
                                       static_cast<ptrdiff_t>(keep)));
  }
  auto resumed = Builder().WithCheckpoint(CkptDir()).Run(paths);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->report.cells_resumed, 1u);
  EXPECT_EQ(resumed->cells.size(), 3u);
  EXPECT_EQ(resumed->report.checkpoint_cells, 2u);
  ExpectRunsBitwiseEqual(*reference, *resumed);

  // Interrupted after every cell but before the kRunEnd seal: nothing to
  // execute, the result is reconstructed from the journal alone.
  WriteJournal(std::vector<char>(
      journal.begin(),
      journal.end() - static_cast<ptrdiff_t>(internal::kRecordFixedBytes)));
  auto all_restored = Builder().WithCheckpoint(CkptDir()).Run(paths);
  ASSERT_TRUE(all_restored.ok()) << all_restored.status();
  EXPECT_EQ(all_restored->report.cells_resumed, 3u);
  ExpectRunsBitwiseEqual(*reference, *all_restored);
  // ... and that run re-seals the journal.
  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->run_complete);
}

TEST_F(CheckpointEngineTest, NoResumeRecomputesEverything) {
  const std::vector<std::string> paths = WriteBuckets(2, 300);
  auto first = Builder().WithCheckpoint(CkptDir()).Run(paths);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second =
      Builder().WithCheckpoint(CkptDir()).WithResume(false).Run(paths);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->report.cells_resumed, 0u);
  EXPECT_EQ(second->report.checkpoint_cells, 2u);
}

TEST_F(CheckpointEngineTest, DifferentConfigDoesNotResume) {
  const std::vector<std::string> paths = WriteBuckets(2, 300);
  auto first = Builder().WithCheckpoint(CkptDir()).Run(paths);
  ASSERT_TRUE(first.ok()) << first.status();
  // Interrupt the journal so it would be resumable under the same config.
  std::vector<char> bytes = ReadJournal();
  bytes.resize(bytes.size() - internal::kRecordFixedBytes);
  WriteJournal(bytes);

  KMeansConfig partial;
  partial.k = 5;  // different k → different fingerprint
  partial.restarts = 2;
  partial.seed = 7;
  MergeKMeansConfig merge;
  merge.k = 5;
  auto other = Builder()
                   .WithPartialKMeans(partial)
                   .WithMerge(merge)
                   .WithCheckpoint(CkptDir())
                   .Run(paths);
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_EQ(other->report.cells_resumed, 0u);
  for (const auto& [id, cell] : other->cells) {
    EXPECT_EQ(cell.model.k(), 5u) << id.ToString();
  }
}

TEST_F(CheckpointEngineTest, RunInMemoryRejectsCheckpoint) {
  auto result = Builder()
                    .WithCheckpoint(CkptDir())
                    .RunInMemory({MakeBucket(1, 200, 3)});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(CheckpointEngineTest, OpenFailureDegradesUnderSkipPolicy) {
  const std::vector<std::string> paths = WriteBuckets(2, 300);
  // The kRunBegin append in Open() hits "checkpoint.append" first.
  FaultRegistry::Global().Arm("checkpoint.append", FaultSpec{.nth = 1});
  auto failfast = Builder().WithCheckpoint(CkptDir()).Run(paths);
  EXPECT_FALSE(failfast.ok());

  FaultRegistry::Global().Reset();
  FaultRegistry::Global().Arm("checkpoint.append", FaultSpec{.nth = 1});
  auto tolerant = Builder()
                      .WithCheckpoint(CkptDir())
                      .WithFailurePolicy(FailurePolicy::kSkipAndContinue)
                      .Run(paths);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status();
  EXPECT_TRUE(tolerant->report.checkpoint_degraded);
  EXPECT_EQ(tolerant->cells.size(), 2u);
  EXPECT_FALSE(tolerant->report.degraded);  // the clustering itself is fine
}

TEST_F(CheckpointEngineTest, AppendFailureLatchesInsteadOfFailing) {
  const std::vector<std::string> paths = WriteBuckets(2, 300);
  // kRunBegin (hit 1) succeeds; every cell append after that fails.
  FaultRegistry::Global().Arm(
      "checkpoint.append", FaultSpec{.nth = 2, .permanent = true});
  auto run = Builder()
                 .WithCheckpoint(CkptDir())
                 .WithFailurePolicy(FailurePolicy::kSkipAndContinue)
                 .Run(paths);
  FaultRegistry::Global().Reset();
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->cells.size(), 2u);
  EXPECT_TRUE(run->report.checkpoint_degraded);
  // No kRunEnd was written: the journal is not falsely marked complete.
  auto loaded = LoadCheckpoint(CkptDir());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->run_complete);
  EXPECT_TRUE(loaded->completed.empty());
}

}  // namespace
}  // namespace pmkm
