// Integration coverage for the observability layer: running the real
// partial/merge pipeline must populate per-operator stats, queue
// snapshots, the metrics registry, the trace recorder, and the EXPLAIN
// ANALYZE rendering.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "stream/explain.h"
#include "stream/plan.h"

namespace pmkm {
namespace {

GridBucket MakeBucket(int lat, int lon, size_t n, uint64_t seed) {
  GridBucket bucket;
  bucket.cell = GridCellId{lat, lon};
  Rng rng(seed);
  MisrCellSpec spec;
  spec.dim = 4;
  bucket.points = GenerateMisrLikeCell(n, &rng, spec);
  return bucket;
}

KMeansConfig PartialConfig() {
  KMeansConfig config;
  config.k = 5;
  config.restarts = 2;
  return config;
}

MergeKMeansConfig MergeConfig() {
  MergeKMeansConfig config;
  config.k = 5;
  return config;
}

const OperatorStats* FindStats(const StreamRunResult& result,
                               const std::string& name) {
  for (const OperatorStats& s : result.operator_stats) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(ObservabilityTest, InMemoryRunPopulatesOperatorAndQueueStats) {
  std::vector<GridBucket> cells = {MakeBucket(1, 2, 600, 7),
                                   MakeBucket(3, 4, 600, 8)};
  ResourceModel resources;
  resources.cores = 3;
  MetricsRegistry registry;
  TraceRecorder tracer;
  auto result = PipelineBuilder()
                    .WithPartialKMeans(PartialConfig())
                    .WithMerge(MergeConfig())
                    .WithResources(resources)
                    .WithChunkPoints(200)
                    .WithMetrics(&registry)
                    .WithTrace(&tracer)
                    .RunInMemory(cells);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cells.size(), 2u);

  // One stats entry per operator instance: scan + clones + merge.
  ASSERT_EQ(result->operator_stats.size(),
            1 + result->plan.partial_clones + 1);
  const OperatorStats* scan = FindStats(*result, "memory-scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows_out, 1200u);
  EXPECT_EQ(scan->bytes_out, 1200u * 4 * sizeof(double));
  EXPECT_GT(scan->wall_seconds, 0.0);

  uint64_t partial_rows_in = 0;
  uint64_t partial_iters = 0;
  for (const OperatorStats& s : result->operator_stats) {
    if (s.name.rfind("partial-kmeans", 0) == 0) {
      partial_rows_in += s.rows_in;
      partial_iters += s.kmeans_iterations;
    }
  }
  EXPECT_EQ(partial_rows_in, 1200u);
  EXPECT_GT(partial_iters, 0u);

  const OperatorStats* merge = FindStats(*result, "merge-kmeans");
  ASSERT_NE(merge, nullptr);
  // 3 chunks per cell × k=5 centroids × 2 cells in, k per cell out.
  EXPECT_EQ(merge->rows_in, 30u);
  EXPECT_EQ(merge->rows_out, 10u);

  // Queue snapshots: the mark respects capacity and everything scanned
  // traveled through the points queue.
  ASSERT_EQ(result->queues.size(), 2u);
  for (const QueueStatsSnapshot& q : result->queues) {
    EXPECT_LE(q.high_water_mark, q.capacity);
    EXPECT_GT(q.total_pushed, 0u);
  }
  EXPECT_EQ(result->queues[0].name, "points");
  EXPECT_EQ(result->queues[1].name, "centroids");
  EXPECT_EQ(result->queues[0].total_pushed, 6u);  // 3 chunks × 2 cells

  // Registry export parses and carries the per-operator counters.
  auto parsed = JsonValue::Parse(registry.ToJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->Find("counters")
                       ->Find("op.memory-scan.rows_out")
                       ->AsDouble(),
                   1200.0);
  EXPECT_TRUE(parsed->Find("histograms")->Has("queue.points.pop_wait_us"));

  // The trace saw operator lifetimes and per-chunk/cell spans.
  EXPECT_GT(tracer.size(), 0u);
  bool saw_partial_chunk = false;
  for (const TraceEvent& e : tracer.Events()) {
    if (e.name == "partial.chunk") saw_partial_chunk = true;
  }
  EXPECT_TRUE(saw_partial_chunk);

  // And the run report still works.
  EXPECT_FALSE(result->report.Summary().empty());
  EXPECT_FALSE(result->report.degraded);
}

TEST(ObservabilityTest, OnDiskRunPopulatesStatsAndExplainAnalyze) {
  const std::string dir = testing::TempDir() + "/pmkm_obs_it";
  std::filesystem::create_directories(dir);
  std::vector<std::string> paths;
  for (int i = 0; i < 2; ++i) {
    const GridBucket bucket = MakeBucket(i, i, 500, 20 + i);
    const std::string path = dir + "/bucket" + std::to_string(i) + ".pmkb";
    ASSERT_TRUE(WriteGridBucket(path, bucket).ok());
    paths.push_back(path);
  }
  ResourceModel resources;
  resources.cores = 2;
  MetricsRegistry registry;
  auto result = PipelineBuilder()
                    .WithPartialKMeans(PartialConfig())
                    .WithMerge(MergeConfig())
                    .WithResources(resources)
                    .WithMetrics(&registry)
                    .Run(paths);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cells.size(), 2u);

  const OperatorStats* scan = FindStats(*result, "scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows_in, 1000u);
  EXPECT_EQ(scan->rows_out, 1000u);
  EXPECT_EQ(scan->retries, 0u);
  EXPECT_EQ(scan->items_dropped, 0u);

  const std::string analyze = ExplainAnalyzePartialMerge(
      PartialConfig(), MergeConfig(), *result);
  EXPECT_NE(analyze.find("merge-kmeans"), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("partial-kmeans"), std::string::npos);
  EXPECT_NE(analyze.find("scan"), std::string::npos);
  EXPECT_NE(analyze.find("exchange \"points\""), std::string::npos);
  EXPECT_NE(analyze.find("exchange \"centroids\""), std::string::npos);
  EXPECT_NE(analyze.find("rows=1000/1000"), std::string::npos);
  EXPECT_NE(analyze.find("total: wall="), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(ObservabilityTest, DisabledObsLeavesSinksUntouchedButKeepsStats) {
  std::vector<GridBucket> cells = {MakeBucket(5, 6, 300, 9)};
  ResourceModel resources;
  resources.cores = 2;
  auto result = PipelineBuilder()
                    .WithPartialKMeans(PartialConfig())
                    .WithMerge(MergeConfig())
                    .WithResources(resources)
                    .WithChunkPoints(100)
                    .RunInMemory(cells);
  ASSERT_TRUE(result.ok()) << result.status();
  // Stats and queue snapshots are always collected — only the registry
  // and trace sinks are optional.
  EXPECT_FALSE(result->operator_stats.empty());
  ASSERT_EQ(result->queues.size(), 2u);
  EXPECT_EQ(result->queues[0].total_pushed, 3u);
  const OperatorStats* scan = FindStats(*result, "memory-scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows_out, 300u);
}

}  // namespace
}  // namespace pmkm
