#include "stream/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pmkm {
namespace {

TEST(QueueTest, FifoSingleThread) {
  BoundedBlockingQueue<int> q(10);
  q.AddProducer();
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  q.CloseProducer();
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), std::nullopt);  // closed and drained
}

TEST(QueueTest, PopAfterCloseDrainsRemainder) {
  BoundedBlockingQueue<int> q(4);
  q.AddProducer();
  q.Push(7);
  q.CloseProducer();
  EXPECT_EQ(q.Pop(), 7);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(QueueTest, BlockingPopWakesOnPush) {
  BoundedBlockingQueue<int> q(2);
  q.AddProducer();
  std::optional<int> got;
  std::thread consumer([&] { got = q.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(42);
  consumer.join();
  EXPECT_EQ(got, 42);
  q.CloseProducer();
}

TEST(QueueTest, BlockingPushWakesOnPop) {
  BoundedBlockingQueue<int> q(1);
  q.AddProducer();
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks: queue full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  q.CloseProducer();
}

TEST(QueueTest, MultiProducerCloseSemantics) {
  BoundedBlockingQueue<int> q(100);
  q.AddProducer();
  q.AddProducer();
  q.Push(1);
  q.CloseProducer();
  // One producer still open: queue not ended.
  q.Push(2);
  q.CloseProducer();
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(QueueTest, CancelUnblocksEveryone) {
  BoundedBlockingQueue<int> q(1);
  q.AddProducer();
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> results{0};
  std::thread blocked_producer([&] {
    if (!q.Push(2)) results.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Cancel();
  blocked_producer.join();
  EXPECT_EQ(results.load(), 1);
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_FALSE(q.Push(3));
  EXPECT_TRUE(q.cancelled());
}

TEST(QueueTest, MpmcStressAllItemsDeliveredExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2500;
  BoundedBlockingQueue<int> q(8);
  for (int p = 0; p < kProducers; ++p) q.AddProducer();

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
      q.CloseProducer();
    });
  }
  std::mutex mu;
  std::vector<int> consumed;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> local;
      while (auto item = q.Pop()) local.push_back(*item);
      std::lock_guard<std::mutex> lock(mu);
      consumed.insert(consumed.end(), local.begin(), local.end());
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(consumed.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::sort(consumed.begin(), consumed.end());
  for (size_t i = 0; i < consumed.size(); ++i) {
    EXPECT_EQ(consumed[i], static_cast<int>(i));
  }
}

TEST(QueueTest, MoveOnlyItems) {
  BoundedBlockingQueue<std::unique_ptr<int>> q(2);
  q.AddProducer();
  q.Push(std::make_unique<int>(5));
  q.CloseProducer();
  auto item = q.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

TEST(QueueTest, SizeAndCapacity) {
  BoundedBlockingQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_EQ(q.size(), 0u);
  q.AddProducer();
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.size(), 2u);
  q.CloseProducer();
}

TEST(QueueTest, DepthAndHighWaterMarkSingleThread) {
  BoundedBlockingQueue<int> q(4);
  EXPECT_EQ(q.Depth(), 0u);
  EXPECT_EQ(q.HighWaterMark(), 0u);
  q.AddProducer();
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Depth(), 3u);
  EXPECT_EQ(q.HighWaterMark(), 3u);
  q.Pop();
  q.Pop();
  EXPECT_EQ(q.Depth(), 1u);
  EXPECT_EQ(q.HighWaterMark(), 3u);  // sticky after draining
  q.Push(4);
  EXPECT_EQ(q.HighWaterMark(), 3u);  // depth 2 < previous peak
  q.CloseProducer();
  EXPECT_EQ(q.total_pushed(), 4u);
}

TEST(QueueTest, HighWaterMarkUnderConcurrentPushPop) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  constexpr size_t kCapacity = 6;
  BoundedBlockingQueue<int> q(kCapacity);
  for (int p = 0; p < kProducers; ++p) q.AddProducer();
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(q.Push(i));
      q.CloseProducer();
    });
  }
  std::atomic<size_t> consumed{0};
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (q.Pop()) consumed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(consumed.load(),
            static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.total_pushed(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
  // Fast producers vs. slow consumers must have filled the queue at least
  // once, and the mark can never exceed the capacity bound.
  EXPECT_GE(q.HighWaterMark(), 1u);
  EXPECT_LE(q.HighWaterMark(), kCapacity);
}

TEST(QueueTest, AttachMetricsRecordsDepthAndBlockTimes) {
  MetricsRegistry registry;
  BoundedBlockingQueue<int> q(1);
  q.AttachMetrics(QueueMetrics{&registry.gauge("q.depth"),
                               &registry.histogram("q.push_block_us"),
                               &registry.histogram("q.pop_wait_us")});
  q.AddProducer();
  ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(registry.gauge("q.depth").value(), 1);
  std::thread producer([&] { ASSERT_TRUE(q.Push(2)); });  // blocks on full
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_EQ(q.Pop(), 2);
  q.CloseProducer();
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_EQ(registry.gauge("q.depth").max(), 1);
  // The producer blocked ~15ms before the pop made room.
  ASSERT_GE(registry.histogram("q.push_block_us").count(), 1u);
  EXPECT_GE(registry.histogram("q.push_block_us").max(), 1000.0);
}

}  // namespace
}  // namespace pmkm
