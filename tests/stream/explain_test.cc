#include "stream/explain.h"

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(ExplainTest, RendersEveryOperatorAndKnob) {
  KMeansConfig partial;
  partial.k = 40;
  partial.restarts = 10;
  MergeKMeansConfig merge;
  merge.k = 40;
  PhysicalPlan plan;
  plan.chunk_points = 5461;
  plan.partial_clones = 7;
  plan.queue_capacity = 14;

  const std::string text = ExplainPartialMergePlan(
      3, 60000, 6, partial, merge, plan);
  EXPECT_NE(text.find("merge-kmeans (k=40, seeding=heaviest"),
            std::string::npos);
  EXPECT_NE(text.find("partial-kmeans ×7 clones"), std::string::npos);
  EXPECT_NE(text.find("R=10"), std::string::npos);
  EXPECT_NE(text.find("chunk=5461 pts"), std::string::npos);
  EXPECT_NE(text.find("queue cap 14"), std::string::npos);
  EXPECT_NE(text.find("scan (3 buckets, ~60000 pts, dim 6)"),
            std::string::npos);
}

TEST(ExplainTest, SingularForms) {
  KMeansConfig partial;
  MergeKMeansConfig merge;
  PhysicalPlan plan;
  plan.partial_clones = 1;
  const std::string text =
      ExplainPartialMergePlan(1, 100, 2, partial, merge, plan);
  EXPECT_NE(text.find("×1 clone ("), std::string::npos);
  EXPECT_NE(text.find("(1 bucket,"), std::string::npos);
}

}  // namespace
}  // namespace pmkm
