// Schedule sweeps over the real Executor's supervision paths
// (DESIGN.md §12): retry/restart, skip-and-continue, fail-fast teardown,
// and a queue-connected producer/consumer pipeline. Requires the
// PMKM_SCHEDCHECK=ON build (skips elsewhere).

#include "stream/operator.h"

#include <memory>
#include <optional>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/schedcheck/hooks.h"
#include "common/schedcheck/sweep.h"
#include "common/status.h"
#include "stream/queue.h"

namespace pmkm {
namespace {

using schedcheck::SweepOptions;
using schedcheck::SweepResult;
using schedcheck::SweepSchedules;

// Fails its first `failures` Run() attempts, then succeeds. Restartable.
class FlakyOperator : public Operator {
 public:
  explicit FlakyOperator(int failures) : Operator("flaky"), left_(failures) {
    set_failure_policy(FailurePolicy::kRetryOperator);
  }

  Status Run() override {
    TickProgress();
    if (left_ > 0) {
      --left_;
      return Status::Internal("transient failure (seeded)");
    }
    return Status::OK();
  }
  void Abort() override {}
  bool SupportsRestart() const override { return true; }
  Status PrepareRestart() override { return Status::OK(); }

 private:
  int left_;
};

// Always fails; under kSkipAndContinue the pipeline must degrade, not die.
class DoomedOperator : public Operator {
 public:
  DoomedOperator() : Operator("doomed") {
    set_failure_policy(FailurePolicy::kSkipAndContinue);
  }
  Status Run() override {
    TickProgress();
    return Status::Internal("permanent failure (seeded)");
  }
  void Abort() override {}
};

class HealthyOperator : public Operator {
 public:
  HealthyOperator() : Operator("healthy") {}
  Status Run() override {
    TickProgress();
    return Status::OK();
  }
  void Abort() override {}
};

// Producer/consumer pair over a real bounded queue; Abort cancels the
// queue exactly like the production scan/cluster operators do.
class ProducerOperator : public Operator {
 public:
  ProducerOperator(BoundedBlockingQueue<int>* q, int n)
      : Operator("producer"), q_(q), n_(n) {
    q_->AddProducer();
  }
  Status Run() override {
    for (int i = 0; i < n_; ++i) {
      if (!q_->Push(i)) {
        q_->CloseProducer();
        return Status::Cancelled("queue cancelled");
      }
      TickProgress();
    }
    q_->CloseProducer();
    return Status::OK();
  }
  void Abort() override { q_->Cancel(); }

 private:
  BoundedBlockingQueue<int>* q_;
  int n_;
};

class ConsumerOperator : public Operator {
 public:
  ConsumerOperator(BoundedBlockingQueue<int>* q, int* popped)
      : Operator("consumer"), q_(q), popped_(popped) {}
  Status Run() override {
    while (q_->Pop().has_value()) {
      ++*popped_;
      TickProgress();
    }
    return q_->cancelled() ? Status::Cancelled("queue cancelled")
                           : Status::OK();
  }
  void Abort() override { q_->Cancel(); }

 private:
  BoundedBlockingQueue<int>* q_;
  int* popped_;
};

class ExecutorSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!schedcheck::HooksEnabledInBuild()) {
      GTEST_SKIP() << "requires a PMKM_SCHEDCHECK=ON build";
    }
    // Restart warnings are expected thousands of times across the sweep.
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

// Retry path: a transiently failing restartable operator must end OK with
// exactly one recorded restart, in every schedule.
TEST_F(ExecutorSweepTest, RetryPathIsScheduleIndependent) {
  SweepOptions options;
  options.name = "executor_retry";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  const SweepResult res = SweepSchedules(options, [] {
    Executor exec;
    exec.Add(std::make_unique<FlakyOperator>(1));
    exec.Add(std::make_unique<HealthyOperator>());
    ExecutorOptions run_options;
    run_options.max_retries = 2;
    const Status st = exec.Run(run_options);
    return !st.ok() || exec.report().total_restarts != 1 ||
           exec.report().degraded;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Skip path: a doomed kSkipAndContinue operator must degrade the pipeline
// without failing it or disturbing the healthy operator.
TEST_F(ExecutorSweepTest, SkipPathIsScheduleIndependent) {
  SweepOptions options;
  options.name = "executor_skip";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  const SweepResult res = SweepSchedules(options, [] {
    Executor exec;
    exec.Add(std::make_unique<DoomedOperator>());
    exec.Add(std::make_unique<HealthyOperator>());
    const Status st = exec.Run(ExecutorOptions{});
    if (!st.ok() || !exec.report().degraded) return true;
    for (const OperatorOutcome& outcome : exec.report().operators) {
      if (outcome.name == "doomed" && !outcome.skipped) return true;
      if (outcome.name == "healthy" && !outcome.status.ok()) return true;
    }
    return false;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Fail-fast teardown: when retries are exhausted the pipeline must abort —
// cancelling the shared queue so neither side wedges — in every schedule.
TEST_F(ExecutorSweepTest, FailFastTeardownNeverWedges) {
  SweepOptions options;
  options.name = "executor_failfast";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  options.strategy = schedcheck::ScheduleOptions::Strategy::kPCT;
  const SweepResult res = SweepSchedules(options, [] {
    BoundedBlockingQueue<int> q(1);
    int popped = 0;
    Executor exec;
    exec.Add(std::make_unique<ProducerOperator>(&q, 3));
    exec.Add(std::make_unique<ConsumerOperator>(&q, &popped));
    exec.Add(std::make_unique<FlakyOperator>(99));  // exhausts retries
    ExecutorOptions run_options;
    run_options.max_retries = 1;
    const Status st = exec.Run(run_options);
    return st.ok();  // bug: the poisoned pipeline reported success
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Pipeline path: producer → queue → consumer must conserve items under
// every interleaving of pushes, pops, and the executor's join dance.
TEST_F(ExecutorSweepTest, PipelineConservesItems) {
  SweepOptions options;
  options.name = "executor_pipeline";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  const SweepResult res = SweepSchedules(options, [] {
    BoundedBlockingQueue<int> q(1);
    int popped = 0;
    Executor exec;
    exec.Add(std::make_unique<ProducerOperator>(&q, 3));
    exec.Add(std::make_unique<ConsumerOperator>(&q, &popped));
    const Status st = exec.Run(ExecutorOptions{});
    return !st.ok() || popped != 3;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

}  // namespace
}  // namespace pmkm
