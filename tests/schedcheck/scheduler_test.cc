// Deterministic schedule explorer tests (DESIGN.md §12).
//
// Everything here runs against the always-instrumented sync doubles
// (schedcheck::Mutex/CondVar) and schedcheck::Thread, so the scheduler is
// exercised in every build configuration.

#include "common/schedcheck/scheduler.h"

#include <chrono>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/schedcheck/lock_graph.h"
#include "common/schedcheck/sweep.h"
#include "common/schedcheck/sync.h"
#include "common/schedcheck/thread.h"

namespace pmkm {
namespace schedcheck {
namespace {

// Runs `body` as one scheduler episode, catching a poison unwind the same
// way SweepSchedules does, and returns the episode result.
ScheduleResult RunEpisode(const ScheduleOptions& options,
                          const std::function<void()>& body) {
  Scheduler& sched = Scheduler::Global();
  sched.BeginEpisode(options);
  try {
    body();
  } catch (const EpisodePoisoned&) {
  }
  return sched.EndEpisode();
}

TEST(SchedulerTest, OutsideEpisodeHooksPassThrough) {
  EXPECT_FALSE(Scheduler::Global().OnScheduledThread());
  // Sync points on an unscheduled thread must be plain primitives.
  Mutex mu;
  CondVar cv;
  {
    MutexLock lock(&mu);
    EXPECT_TRUE(cv.WaitFor(mu, std::chrono::microseconds(1)));
  }
  Scheduler::Global().Yield();  // no-op off-episode
}

TEST(SchedulerTest, SerializesThreadsAndCompletes) {
  ScheduleOptions options;
  options.seed = 42;
  int counter = 0;
  Mutex mu;
  const ScheduleResult r = RunEpisode(options, [&] {
    auto work = [&] {
      for (int i = 0; i < 10; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    };
    Thread t1(work, "w1");
    Thread t2(work, "w2");
    t1.Join();
    t2.Join();
  });
  EXPECT_EQ(counter, 20);
  EXPECT_FALSE(r.deadlock);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_GT(r.steps, 0);
}

// Interleaving order of two workers appending to a shared log, as a
// function of the seed only.
std::vector<int> TraceForSeed(uint64_t seed, std::vector<int>* choices) {
  ScheduleOptions options;
  options.seed = seed;
  std::vector<int> order;
  Mutex mu;
  const ScheduleResult r = RunEpisode(options, [&] {
    auto worker = [&](int id) {
      for (int i = 0; i < 4; ++i) {
        MutexLock lock(&mu);
        order.push_back(id);
      }
    };
    Thread t1([&] { worker(1); }, "w1");
    Thread t2([&] { worker(2); }, "w2");
    t1.Join();
    t2.Join();
  });
  if (choices != nullptr) *choices = r.choices;
  return order;
}

TEST(SchedulerTest, SameSeedSameSchedule) {
  std::vector<int> choices_a;
  std::vector<int> choices_b;
  const std::vector<int> trace_a = TraceForSeed(12345, &choices_a);
  const std::vector<int> trace_b = TraceForSeed(12345, &choices_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(choices_a, choices_b);
}

TEST(SchedulerTest, DifferentSeedsReachDifferentSchedules) {
  const std::vector<int> baseline = TraceForSeed(1, nullptr);
  bool saw_different = false;
  for (uint64_t seed = 2; seed <= 20 && !saw_different; ++seed) {
    saw_different = TraceForSeed(seed, nullptr) != baseline;
  }
  EXPECT_TRUE(saw_different);
}

// A condvar wait that nobody ever signals: in the modeled world the waiter
// never sleeps on the real condvar, so the stuck state is detected as a
// deterministic deadlock instead of a hang.
TEST(SchedulerTest, LostWakeupReportsDeadlock) {
  ScheduleOptions options;
  options.seed = 7;
  bool woke = false;
  const ScheduleResult r = RunEpisode(options, [&] {
    Mutex mu;
    CondVar cv;
    Thread waiter(
        [&] {
          MutexLock lock(&mu);
          cv.Wait(mu);  // bug double: no notify anywhere
          woke = true;
        },
        "waiter");
    waiter.Join();
  });
  EXPECT_TRUE(r.deadlock);
  EXPECT_FALSE(woke);
  EXPECT_NE(r.detail.find("condvar"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("waiter"), std::string::npos) << r.detail;
}

// Classic AB-BA: the schedule sweep must find a seed whose interleaving
// actually deadlocks. The lock-order witness would flag the inversion
// first (that is its job); park it with a capturing handler so the
// explorer gets to demonstrate the deadlock itself.
TEST(SchedulerTest, SweepFindsAbBaDeadlock) {
  LockGraph::Global().SetCycleHandler([](const CycleReport&) {});
  SweepOptions options;
  options.name = "abba_deadlock";
  options.num_seeds = 200;
  const SweepResult res = SweepSchedules(options, [] {
    Mutex a;
    Mutex b;
    Thread t1(
        [&] {
          a.Lock();
          Scheduler::Global().Yield();
          b.Lock();
          b.Unlock();
          a.Unlock();
        },
        "t1");
    Thread t2(
        [&] {
          b.Lock();
          Scheduler::Global().Yield();
          a.Lock();
          a.Unlock();
          b.Unlock();
        },
        "t2");
    t1.Join();
    t2.Join();
    return false;  // the scheduler itself must report the deadlock
  });
  LockGraph::Global().SetCycleHandler(nullptr);
  LockGraph::Global().ResetForTest();
  EXPECT_TRUE(res.bug_found);
  EXPECT_TRUE(res.deadlock);
  EXPECT_GT(res.failing_seed, 0u);
  EXPECT_LE(res.seeds_run, 200);
}

// WaitFor never sleeps on real time inside an episode: waking the waiter
// "by timeout" is a scheduling decision, so a 24h timeout returns
// instantly when the timeout path is the only way forward.
TEST(SchedulerTest, WaitForTimeoutIsASchedulingChoice) {
  ScheduleOptions options;
  options.seed = 3;
  bool timed_out = false;
  const ScheduleResult r = RunEpisode(options, [&] {
    Mutex mu;
    CondVar cv;
    MutexLock lock(&mu);
    timed_out = cv.WaitFor(mu, std::chrono::hours(24));
  });
  EXPECT_TRUE(timed_out);
  EXPECT_FALSE(r.deadlock);
}

// With a signaller racing a timed waiter, exhaustive exploration visits
// both the signal path and the timeout path, and no schedule deadlocks.
TEST(SchedulerTest, ExhaustiveExploresBothSignalAndTimeoutPaths) {
  int timeout_runs = 0;
  int signal_runs = 0;
  ExhaustiveOptions options;
  options.name = "signal_vs_timeout";
  options.max_runs = 5000;
  const ExhaustiveResult res = ExploreExhaustive(options, [&] {
    Mutex mu;
    CondVar cv;
    bool flag = false;
    bool saw_timeout = false;
    Thread signaller(
        [&] {
          MutexLock lock(&mu);
          flag = true;
          cv.NotifyOne();
        },
        "signaller");
    {
      MutexLock lock(&mu);
      if (!flag) {
        // One timed attempt (so the all-timeouts branch stays finite for
        // the odometer), then an untimed wait for the signal.
        if (cv.WaitFor(mu, std::chrono::hours(1))) saw_timeout = true;
        while (!flag) cv.Wait(mu);
      }
    }
    signaller.Join();
    (saw_timeout ? timeout_runs : signal_runs) += 1;
    return false;
  });
  EXPECT_FALSE(res.bug_found) << res.detail;
  EXPECT_TRUE(res.exhausted_all);
  EXPECT_GE(timeout_runs, 1);
  EXPECT_GE(signal_runs, 1);
}

// The torn read/modify/write every concurrency tutorial starts with: the
// exhaustive explorer must find the lost update without any seed luck.
TEST(SchedulerTest, ExhaustiveFindsTornIncrement) {
  ExhaustiveOptions options;
  options.name = "torn_increment";
  options.max_runs = 2000;
  int lost_update_x = 0;
  const ExhaustiveResult res = ExploreExhaustive(options, [&] {
    int x = 0;
    auto racy_increment = [&x] {
      const int loaded = x;
      Scheduler::Global().Yield();  // the load/store gap, made schedulable
      x = loaded + 1;
    };
    Thread t1(racy_increment, "inc1");
    Thread t2(racy_increment, "inc2");
    t1.Join();
    t2.Join();
    if (x != 2) lost_update_x = x;
    return x != 2;
  });
  EXPECT_TRUE(res.bug_found);
  EXPECT_EQ(lost_update_x, 1);
  EXPECT_FALSE(res.failing_choices.empty());
}

// The fixed version of the same code has no bug in *any* schedule, and the
// explorer can prove it by exhausting the schedule space.
TEST(SchedulerTest, ExhaustiveProvesLockedIncrementCorrect) {
  ExhaustiveOptions options;
  options.name = "locked_increment";
  options.max_runs = 5000;
  const ExhaustiveResult res = ExploreExhaustive(options, [&] {
    Mutex mu;
    int x = 0;
    auto safe_increment = [&] {
      MutexLock lock(&mu);
      ++x;
    };
    Thread t1(safe_increment, "inc1");
    Thread t2(safe_increment, "inc2");
    t1.Join();
    t2.Join();
    return x != 2;
  });
  EXPECT_FALSE(res.bug_found) << res.detail;
  EXPECT_TRUE(res.exhausted_all);
  EXPECT_GT(res.runs, 1);
}

// Step budgets turn runaway schedules into a reported result, not a hang.
TEST(SchedulerTest, StepBudgetPoisonsInsteadOfHanging) {
  ScheduleOptions options;
  options.seed = 5;
  options.max_steps = 50;
  const ScheduleResult r = RunEpisode(options, [&] {
    for (int i = 0; i < 10000; ++i) Scheduler::Global().Yield();
  });
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.deadlock);
}

// PCT priority fuzzing is an alternative strategy; it must find the same
// ordering bug the random sweep finds.
TEST(SchedulerTest, PctStrategyFindsOrderingBug) {
  SweepOptions options;
  options.name = "pct_ordering";
  options.num_seeds = 500;
  options.strategy = ScheduleOptions::Strategy::kPCT;
  const SweepResult res = SweepSchedules(options, [] {
    int stage = 0;
    Thread writer(
        [&] {
          Scheduler::Global().Yield();
          stage = 1;
        },
        "writer");
    // Bug double: reader assumes the writer already ran.
    Scheduler::Global().Yield();
    const bool reader_saw_zero = (stage == 0);
    writer.Join();
    return reader_saw_zero;
  });
  EXPECT_TRUE(res.bug_found);
}

}  // namespace
}  // namespace schedcheck
}  // namespace pmkm
