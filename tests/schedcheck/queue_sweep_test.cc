// Schedule sweeps over the *real* BoundedBlockingQueue (DESIGN.md §12).
//
// These drive the production queue — not a double — through its
// shutdown, cancel, and metrics-attach paths under thousands of seeded
// schedules. They need the pmkm::Mutex/CondVar hooks, which are compiled
// in only under PMKM_SCHEDCHECK=ON; in other builds they skip.
//
// Seed budgets scale with PMKM_SCHEDCHECK_SEEDS (nightly CI raises it).

#include "stream/queue.h"

#include <optional>

#include <gtest/gtest.h>

#include "common/schedcheck/hooks.h"
#include "common/schedcheck/sweep.h"
#include "common/schedcheck/thread.h"
#include "obs/metrics.h"

namespace pmkm {
namespace {

using schedcheck::SweepOptions;
using schedcheck::SweepResult;
using schedcheck::SweepSchedules;

class QueueSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!schedcheck::HooksEnabledInBuild()) {
      GTEST_SKIP() << "requires a PMKM_SCHEDCHECK=ON build";
    }
  }
};

// Shutdown path: every pushed item must be popped exactly once, and the
// consumer must see end-of-stream after the last producer closes — in
// every explored schedule.
TEST_F(QueueSweepTest, ShutdownDrainsExactlyOnce) {
  SweepOptions options;
  options.name = "queue_shutdown";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  const SweepResult res = SweepSchedules(options, [] {
    BoundedBlockingQueue<int> q(2);
    q.AddProducer();
    q.AddProducer();
    auto producer = [&q] {
      for (int i = 0; i < 2; ++i) q.Push(i);
      q.CloseProducer();
    };
    int popped = 0;
    bool saw_end = false;
    schedcheck::Thread p1(producer, "producer1");
    schedcheck::Thread p2(producer, "producer2");
    schedcheck::Thread consumer(
        [&] {
          while (q.Pop().has_value()) ++popped;
          saw_end = true;
        },
        "consumer");
    p1.Join();
    p2.Join();
    consumer.Join();
    return popped != 4 || !saw_end;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Cancel path: whatever the interleaving, Cancel must unwedge a producer
// blocked on a full queue and a consumer blocked on an empty one, and the
// queue must end cancelled.
TEST_F(QueueSweepTest, CancelUnblocksEveryParty) {
  SweepOptions options;
  options.name = "queue_cancel";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  options.strategy = schedcheck::ScheduleOptions::Strategy::kPCT;
  const SweepResult res = SweepSchedules(options, [] {
    BoundedBlockingQueue<int> q(1);
    q.AddProducer();
    bool producer_done = false;
    bool consumer_done = false;
    schedcheck::Thread producer(
        [&] {
          for (int i = 0; i < 3; ++i) {
            if (!q.Push(i)) break;  // cancelled mid-stream
          }
          producer_done = true;
        },
        "producer");
    schedcheck::Thread consumer(
        [&] {
          while (q.Pop().has_value()) {
          }
          consumer_done = true;
        },
        "consumer");
    q.Cancel();
    producer.Join();
    consumer.Join();
    return !producer_done || !consumer_done || !q.cancelled();
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Attach path: AttachMetrics racing live producers/consumers. This is the
// production code whose pre-fix shapes are re-created as seeded-bug
// doubles in seeded_bugs_test.cc; the fixed code must survive the same
// schedules with instruments recording sane values.
TEST_F(QueueSweepTest, AttachMetricsRacesPushPop) {
  MetricsRegistry registry;
  QueueMetrics metrics;
  metrics.depth = &registry.gauge("queue_depth");
  metrics.push_block_us = &registry.histogram("push_block_us");
  metrics.pop_wait_us = &registry.histogram("pop_wait_us");

  SweepOptions options;
  options.name = "queue_attach_metrics";
  options.num_seeds = schedcheck::SeedsFromEnvOr(1000);
  const SweepResult res = SweepSchedules(options, [&metrics] {
    BoundedBlockingQueue<int> q(1);
    q.AddProducer();
    schedcheck::Thread producer(
        [&] {
          for (int i = 0; i < 3; ++i) q.Push(i);
          q.CloseProducer();
        },
        "producer");
    schedcheck::Thread attacher([&] { q.AttachMetrics(metrics); },
                                "attacher");
    int popped = 0;
    while (q.Pop().has_value()) ++popped;
    producer.Join();
    attacher.Join();
    return popped != 3;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
  // The gauge only saw real depths (capacity 1): high water <= 1.
  EXPECT_LE(registry.gauge("queue_depth").max(), 1);
}

}  // namespace
}  // namespace pmkm
