// Runtime lock-order witness tests (DESIGN.md §12).
//
// Uses the always-instrumented schedcheck::Mutex doubles, so the witness
// is exercised in every build configuration, including the default tier-1
// build where pmkm::Mutex hooks are compiled out.

#include "common/schedcheck/lock_graph.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/schedcheck/sync.h"

namespace pmkm {
namespace schedcheck {
namespace {

class LockGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockGraph::Global().ResetForTest();
    LockGraph::Global().SetCycleHandler(
        [this](const CycleReport& report) { reports_.push_back(report); });
  }
  void TearDown() override {
    LockGraph::Global().SetCycleHandler(nullptr);
    LockGraph::Global().ResetForTest();
  }

  std::vector<CycleReport> reports_;
};

TEST_F(LockGraphTest, NestedAcquireRecordsEdgeWithoutFiring) {
  Mutex outer;
  Mutex inner;
  outer.Lock();
  inner.Lock();
  inner.Unlock();
  outer.Unlock();
  EXPECT_EQ(LockGraph::Global().edge_count(), 1u);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockGraphTest, ConsistentOrderNeverFires) {
  Mutex a;
  Mutex b;
  for (int i = 0; i < 10; ++i) {
    a.Lock();
    b.Lock();
    b.Unlock();
    a.Unlock();
  }
  EXPECT_TRUE(reports_.empty());
}

// The headline acceptance test: an A→B then B→A acquisition pattern must
// fire the cycle handler on the *first* inversion, and the report must
// carry the witness context (static acquisition sites + held chains) for
// both directions.
TEST_F(LockGraphTest, InversionFiresWithBothWitnessStacks) {
  Mutex a;
  Mutex b;
  a.Lock();
  b.Lock();  // records class(a) → class(b)
  b.Unlock();
  a.Unlock();
  b.Lock();
  a.Lock();  // records class(b) → class(a): closes the cycle
  a.Unlock();
  b.Unlock();

  ASSERT_EQ(reports_.size(), 1u);
  const CycleReport& report = reports_[0];
  ASSERT_EQ(report.edges.size(), 2u);
  for (const CycleReport::Edge& edge : report.edges) {
    EXPECT_NE(edge.from_site.find("lock_graph_test.cc"), std::string::npos)
        << edge.from_site;
    EXPECT_NE(edge.to_site.find("lock_graph_test.cc"), std::string::npos)
        << edge.to_site;
    EXPECT_FALSE(edge.held_chain.empty());
  }
  // The two edges witness opposite directions of the same class pair.
  EXPECT_EQ(report.edges[0].from_class, report.edges[1].to_class);
  EXPECT_EQ(report.edges[0].to_class, report.edges[1].from_class);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("lock_graph_test.cc"), std::string::npos) << text;
}

TEST_F(LockGraphTest, ThreeLockCycleFires) {
  Mutex a;
  Mutex b;
  Mutex c;
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  b.Lock();
  c.Lock();
  c.Unlock();
  b.Unlock();
  EXPECT_TRUE(reports_.empty());
  c.Lock();
  a.Lock();  // closes a → b → c → a
  a.Unlock();
  c.Unlock();
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].edges.size(), 3u);
}

// TryLock cannot deadlock (it never blocks), so it joins the held chain
// but must not record an ordering edge that could later complete a cycle.
TEST_F(LockGraphTest, TryLockRecordsNoOrderingEdge) {
  Mutex a;
  Mutex b;
  a.Lock();
  ASSERT_TRUE(b.TryLock());
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(LockGraph::Global().edge_count(), 0u);
  b.Lock();
  a.Lock();  // would close a cycle if TryLock had recorded a→b
  a.Unlock();
  b.Unlock();
  EXPECT_TRUE(reports_.empty());
}

// Two instances sharing one construction site (members of one struct, or
// a container of locks) form a single class; nesting them in either order
// is recorded as a same-class edge but is not fatal — instance-level
// cycles are the schedule explorer's job.
struct SharedSiteLocks {
  Mutex m;
};

TEST_F(LockGraphTest, SameClassNestingRecordedButNotFatal) {
  auto p1 = std::make_unique<SharedSiteLocks>();
  auto p2 = std::make_unique<SharedSiteLocks>();
  p1->m.Lock();
  p2->m.Lock();
  p2->m.Unlock();
  p1->m.Unlock();
  p2->m.Lock();
  p1->m.Lock();  // instance-level inversion within one class
  p1->m.Unlock();
  p2->m.Unlock();
  EXPECT_TRUE(reports_.empty());
  EXPECT_EQ(LockGraph::Global().edge_count(), 1u);  // the self-edge
}

TEST_F(LockGraphTest, ExportsNameClassesAndEdges) {
  Mutex a;
  Mutex b;
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  const std::string json = LockGraph::Global().ToJson();
  EXPECT_NE(json.find("\"classes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"edges\""), std::string::npos) << json;
  EXPECT_NE(json.find("lock_graph_test.cc"), std::string::npos) << json;
  const std::string dot = LockGraph::Global().ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("->"), std::string::npos) << dot;
}

TEST_F(LockGraphTest, DescribeInstanceNamesConstructionSite) {
  Mutex m;
  const std::string desc = LockGraph::Global().DescribeInstance(&m);
  EXPECT_NE(desc.find("lock_graph_test.cc"), std::string::npos) << desc;
  EXPECT_NE(
      LockGraph::Global().DescribeInstance(nullptr).find("unregistered"),
      std::string::npos);
}

TEST_F(LockGraphTest, ResetForTestDropsEdges) {
  Mutex a;
  Mutex b;
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
  ASSERT_GE(LockGraph::Global().edge_count(), 1u);
  LockGraph::Global().ResetForTest();
  EXPECT_EQ(LockGraph::Global().edge_count(), 0u);
  // After the reset, the former inversion direction is just a fresh edge.
  b.Lock();
  a.Lock();
  a.Unlock();
  b.Unlock();
  EXPECT_TRUE(reports_.empty());
}

}  // namespace
}  // namespace schedcheck
}  // namespace pmkm
