// Seeded-bug doubles: the two concurrency bugs this project actually
// shipped and later fixed, re-created here in their *pre-fix* code shape
// so the schedule explorer re-finds each one deterministically from a
// printed seed (DESIGN.md §12). Each double is paired with its post-fix
// shape, which the same sweep must clear.
//
// Bug 1 — AttachMetrics swap race: AttachMetrics originally wrote the
// queue's metrics struct without holding mu_, so Push/Pop (reading it
// under mu_) could observe a torn, half-attached instrument set.
//
// Bug 2 — condvar histogram-null race: Push tested the block-time
// histogram pointer before waiting on not_full_, then re-read the member
// after the wait — but the wait releases mu_, so a concurrent
// AttachMetrics could swap the instrument to null mid-wait and the
// post-wait dereference crashed. The fix captures the pointer before
// waiting.
//
// Built on the always-instrumented doubles in schedcheck/sync.h, so these
// regressions run in every build configuration, not just PMKM_SCHEDCHECK.

#include <gtest/gtest.h>

#include "common/schedcheck/scheduler.h"
#include "common/schedcheck/sweep.h"
#include "common/schedcheck/sync.h"
#include "common/schedcheck/thread.h"

namespace pmkm {
namespace schedcheck {
namespace {

// ---------------------------------------------------------------------------
// Bug 1 double: torn metrics attach.

// Stand-in for QueueMetrics: three instrument pointers, modeled as ints so
// "torn" is directly observable (a real reader would dereference a
// half-swapped pointer set).
struct TornAttachQueue {
  Mutex mu;
  int depth = 0;
  int push_block = 0;
  int pop_wait = 0;

  // Pre-fix shape: the attach writes the three fields with no lock. The
  // Yields stand in for the instruction boundaries a preempting thread
  // could land on.
  void AttachPreFix(int generation) {
    depth = generation;
    Scheduler::Global().Yield();
    push_block = generation;
    Scheduler::Global().Yield();
    pop_wait = generation;
  }

  void AttachFixed(int generation) {
    MutexLock lock(&mu);
    depth = generation;
    Scheduler::Global().Yield();
    push_block = generation;
    Scheduler::Global().Yield();
    pop_wait = generation;
  }

  // The queue-operation side: reads the instrument set under mu_, as
  // Push/Pop always did. Returns true when it observed a torn set.
  bool ReadSawTorn() {
    MutexLock lock(&mu);
    return !(depth == push_block && push_block == pop_wait);
  }
};

bool TornAttachBody(bool fixed) {
  TornAttachQueue q;
  Thread attacher(
      [&] {
        if (fixed) {
          q.AttachFixed(1);
        } else {
          q.AttachPreFix(1);
        }
      },
      "attacher");
  bool torn = false;
  for (int i = 0; i < 4; ++i) {
    if (q.ReadSawTorn()) torn = true;
  }
  attacher.Join();
  return torn;
}

// Acceptance: the pre-fix shape is caught within <= 1000 seeded schedules.
TEST(SeededBugsTest, AttachSwapRaceCaughtWithin1000Seeds) {
  SweepOptions options;
  options.name = "attach_swap_race";
  options.first_seed = 1;
  options.num_seeds = 1000;
  const SweepResult res = SweepSchedules(options, [] {
    return TornAttachBody(/*fixed=*/false);
  });
  ASSERT_TRUE(res.bug_found)
      << "torn attach not found in " << res.seeds_run << " schedules";
  EXPECT_LE(res.seeds_run, 1000);
  EXPECT_FALSE(res.deadlock);  // invariant violation, not a deadlock

  // Reproducibility: the printed seed replays the exact failing schedule.
  SweepOptions replay;
  replay.name = "attach_swap_race_replay";
  replay.first_seed = res.failing_seed;
  replay.num_seeds = 1;
  const SweepResult again = SweepSchedules(replay, [] {
    return TornAttachBody(/*fixed=*/false);
  });
  EXPECT_TRUE(again.bug_found);
  EXPECT_EQ(again.seeds_run, 1);
  EXPECT_EQ(again.failing_seed, res.failing_seed);
}

TEST(SeededBugsTest, AttachSwapFixSurvivesSweep) {
  SweepOptions options;
  options.name = "attach_swap_fixed";
  options.num_seeds = 300;
  const SweepResult res = SweepSchedules(options, [] {
    return TornAttachBody(/*fixed=*/true);
  });
  EXPECT_FALSE(res.bug_found) << res.detail;
  EXPECT_EQ(res.seeds_run, 300);
}

// The same pre-fix shape is also within reach of bounded exhaustive
// exploration — no seeds involved at all.
TEST(SeededBugsTest, AttachSwapRaceFoundExhaustively) {
  ExhaustiveOptions options;
  options.name = "attach_swap_exhaustive";
  options.max_runs = 5000;
  const ExhaustiveResult res = ExploreExhaustive(options, [] {
    return TornAttachBody(/*fixed=*/false);
  });
  EXPECT_TRUE(res.bug_found);
  EXPECT_FALSE(res.failing_choices.empty());
}

// ---------------------------------------------------------------------------
// Bug 2 double: histogram detached to null across a condvar wait.

struct NullSwapQueue {
  Mutex mu;
  CondVar not_full;
  bool full = true;
  int* push_block_us;  // the attached instrument; Detach swaps it to null

  explicit NullSwapQueue(int* hist) : push_block_us(hist) {}

  // Pre-fix Push: tests the member before the wait, re-reads it after.
  // Returns true when the post-wait read found null (the crash, made
  // observable).
  bool PushPreFix() {
    MutexLock lock(&mu);
    if (full && push_block_us != nullptr) {
      while (full) not_full.Wait(mu);
      if (push_block_us == nullptr) return true;  // would be a null deref
      *push_block_us += 1;
    } else {
      while (full) not_full.Wait(mu);
    }
    return false;
  }

  // Post-fix Push: captures the pointer before waiting (registry-owned
  // instruments outlive the queue, so the captured pointer stays valid).
  bool PushFixed() {
    MutexLock lock(&mu);
    if (int* hist = push_block_us; full && hist != nullptr) {
      while (full) not_full.Wait(mu);
      *hist += 1;
    } else {
      while (full) not_full.Wait(mu);
    }
    return false;
  }

  void DetachInstruments() {
    MutexLock lock(&mu);
    push_block_us = nullptr;
  }

  void MakeRoom() {
    MutexLock lock(&mu);
    full = false;
    not_full.NotifyAll();
  }
};

bool NullSwapBody(bool fixed) {
  int histogram = 0;
  NullSwapQueue q(&histogram);
  bool pusher_saw_null = false;
  Thread pusher(
      [&] { pusher_saw_null = fixed ? q.PushFixed() : q.PushPreFix(); },
      "pusher");
  Thread detacher([&] { q.DetachInstruments(); }, "detacher");
  q.MakeRoom();
  pusher.Join();
  detacher.Join();
  return pusher_saw_null;
}

TEST(SeededBugsTest, CondvarHistogramNullCaughtWithin1000Seeds) {
  SweepOptions options;
  options.name = "condvar_histogram_null";
  options.first_seed = 1;
  options.num_seeds = 1000;
  const SweepResult res = SweepSchedules(options, [] {
    return NullSwapBody(/*fixed=*/false);
  });
  ASSERT_TRUE(res.bug_found)
      << "null-swap race not found in " << res.seeds_run << " schedules";
  EXPECT_LE(res.seeds_run, 1000);
  EXPECT_FALSE(res.deadlock);

  SweepOptions replay;
  replay.name = "condvar_histogram_null_replay";
  replay.first_seed = res.failing_seed;
  replay.num_seeds = 1;
  const SweepResult again = SweepSchedules(replay, [] {
    return NullSwapBody(/*fixed=*/false);
  });
  EXPECT_TRUE(again.bug_found);
  EXPECT_EQ(again.seeds_run, 1);
}

TEST(SeededBugsTest, CondvarHistogramFixSurvivesSweep) {
  SweepOptions options;
  options.name = "condvar_histogram_fixed";
  options.num_seeds = 300;
  const SweepResult res = SweepSchedules(options, [] {
    return NullSwapBody(/*fixed=*/true);
  });
  EXPECT_FALSE(res.bug_found) << res.detail;
  EXPECT_EQ(res.seeds_run, 300);
}

// PCT priority fuzzing also lands on the null-swap ordering — the two
// strategies are interchangeable for bugs this shallow.
TEST(SeededBugsTest, PctFindsCondvarHistogramNull) {
  SweepOptions options;
  options.name = "condvar_histogram_null_pct";
  options.num_seeds = 1000;
  options.strategy = ScheduleOptions::Strategy::kPCT;
  const SweepResult res = SweepSchedules(options, [] {
    return NullSwapBody(/*fixed=*/false);
  });
  EXPECT_TRUE(res.bug_found);
}

}  // namespace
}  // namespace schedcheck
}  // namespace pmkm
