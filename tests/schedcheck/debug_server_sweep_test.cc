// Schedule sweeps over the debug-server observability surfaces
// (DESIGN.md §12, §14): RunBoard publishes racing status reads, and
// DebugServer::RenderResponse scraping concurrently with engine-side
// publishes. These drive the render path directly — never the blocking
// accept() loop, which would wedge a deterministic schedule episode.
//
// Requires the pmkm::Mutex/CondVar hooks (PMKM_SCHEDCHECK=ON); skips
// elsewhere.

#include "obs/debug_server.h"

#include <string>

#include <gtest/gtest.h>

#include "common/schedcheck/hooks.h"
#include "common/schedcheck/sweep.h"
#include "common/schedcheck/thread.h"
#include "obs/metrics.h"
#include "obs/runboard.h"
#include "obs/stats.h"

namespace pmkm {
namespace {

using schedcheck::SweepOptions;
using schedcheck::SweepResult;
using schedcheck::SweepSchedules;

class DebugServerSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!schedcheck::HooksEnabledInBuild()) {
      GTEST_SKIP() << "requires a PMKM_SCHEDCHECK=ON build";
    }
  }
};

// Operators publishing into their slots while a scraper reads status:
// every schedule must yield internally consistent snapshots (the slot
// table never shrinks mid-run, counts never go backwards).
TEST_F(DebugServerSweepTest, PublishRacingStatusReads) {
  SweepOptions options;
  options.name = "runboard_publish_status";
  options.num_seeds = schedcheck::SeedsFromEnvOr(500);
  const SweepResult res = SweepSchedules(options, [] {
    obs::RunBoard board;
    board.BeginRun("sweep01", "chunk=64", {"scan", "merge"});
    bool bad = false;
    schedcheck::Thread publisher(
        [&board] {
          OperatorStats stats;
          stats.name = "scan";
          for (int i = 1; i <= 3; ++i) {
            stats.rows_in = static_cast<uint64_t>(i * 100);
            board.PublishOperator(0, stats);
          }
        },
        "publisher");
    schedcheck::Thread scraper(
        [&board, &bad] {
          uint64_t last_rows = 0;
          for (int i = 0; i < 3; ++i) {
            const obs::RunBoard::StatusSnapshot s = board.TakeStatus();
            if (!s.active || s.run_id != "sweep01" ||
                s.operators.size() != 2) {
              bad = true;
              return;
            }
            // Published rows only grow within a run.
            if (s.operators[0].rows_in < last_rows) {
              bad = true;
              return;
            }
            last_rows = s.operators[0].rows_in;
          }
        },
        "scraper");
    publisher.Join();
    scraper.Join();
    return bad;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// EndRun racing a scrape: the scraper sees either the active run or the
// completed one — never a torn in-between (result without run id, runs
// completed ahead of started, ...).
TEST_F(DebugServerSweepTest, EndRunRacingScrape) {
  SweepOptions options;
  options.name = "runboard_endrun_scrape";
  options.num_seeds = schedcheck::SeedsFromEnvOr(500);
  const SweepResult res = SweepSchedules(options, [] {
    obs::RunBoard board;
    board.BeginRun("sweep02", "chunk=64", {"scan"});
    bool bad = false;
    schedcheck::Thread finisher(
        [&board] {
          board.EndRun(true, "ok", JsonValue::Object());
        },
        "finisher");
    schedcheck::Thread scraper(
        [&board, &bad] {
          const obs::RunBoard::StatusSnapshot s = board.TakeStatus();
          if (s.runs_started != 1) bad = true;
          if (s.runs_completed > s.runs_started) bad = true;
          if (s.active && s.run_id != "sweep02") bad = true;
          if (!s.active && s.last_status != "ok") bad = true;
        },
        "scraper");
    finisher.Join();
    scraper.Join();
    return bad;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

// Full render path under contention: /statusz, /runz and /metrics
// rendered while the board churns through a complete run and the
// registry records. Renders must always be well-formed 200 responses.
TEST_F(DebugServerSweepTest, RenderRacingRunLifecycle) {
  SweepOptions options;
  options.name = "debug_server_render";
  options.num_seeds = schedcheck::SeedsFromEnvOr(300);
  const SweepResult res = SweepSchedules(options, [] {
    MetricsRegistry registry;
    obs::DebugServer server(&registry, nullptr);
    bool bad = false;
    schedcheck::Thread engine(
        [&server, &registry] {
          server.board()->BeginRun("sweep03", "chunk=8", {"scan"});
          registry.counter("rows").Increment(8);
          OperatorStats stats;
          stats.name = "scan";
          stats.rows_in = 8;
          server.board()->PublishOperator(0, stats);
          server.board()->EndRun(true, "ok", JsonValue::Object());
        },
        "engine");
    schedcheck::Thread scraper(
        [&server, &bad] {
          for (const char* target : {"/statusz", "/runz", "/metrics"}) {
            const std::string response = server.RenderResponse(target);
            if (response.find("HTTP/1.1 200 OK") == std::string::npos) {
              bad = true;
              return;
            }
          }
        },
        "scraper");
    engine.Join();
    scraper.Join();
    return bad;
  });
  EXPECT_FALSE(res.bug_found)
      << "seed " << res.failing_seed << ": " << res.detail;
}

}  // namespace
}  // namespace pmkm
