#include "histogram/adaptive.h"

#include <gtest/gtest.h>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

AdaptivePartialMergeConfig Config(size_t max_k, double lambda,
                                  size_t partitions) {
  AdaptivePartialMergeConfig config;
  config.partial.max_k = max_k;
  config.partial.lambda = lambda;
  config.num_partitions = partitions;
  return config;
}

TEST(AdaptivePartialMergeTest, Validation) {
  AdaptivePartialMergeConfig bad = Config(0, 1.0, 4);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Config(8, -1.0, 4);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Config(8, 1.0, 0);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  const AdaptivePartialMergeKMeans apm(Config(8, 1.0, 4));
  EXPECT_TRUE(apm.Run(Dataset(2)).status().IsInvalidArgument());
  EXPECT_TRUE(apm.RunChunks({}).status().IsInvalidArgument());
}

TEST(AdaptivePartialMergeTest, MassConservedAndKBounded) {
  Rng rng(1);
  const Dataset cell = GenerateMisrLikeCell(4000, &rng);
  const AdaptivePartialMergeKMeans apm(Config(32, 10.0, 8));
  auto result = apm.Run(cell);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->partition_effective_k.size(), 8u);
  for (size_t ek : result->partition_effective_k) {
    EXPECT_GE(ek, 1u);
    EXPECT_LE(ek, 32u);
  }
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, 4000.0, 1e-6);
  EXPECT_LE(result->model.k(), result->final_k);
}

TEST(AdaptivePartialMergeTest, LambdaShrinksPartitionCodebooks) {
  Rng rng(2);
  const Dataset cell = GenerateMisrLikeCell(4000, &rng);
  auto mild = AdaptivePartialMergeKMeans(Config(32, 0.0, 5)).Run(cell);
  auto heavy =
      AdaptivePartialMergeKMeans(Config(32, 2000.0, 5)).Run(cell);
  ASSERT_TRUE(mild.ok() && heavy.ok());
  size_t mild_total = 0, heavy_total = 0;
  for (size_t ek : mild->partition_effective_k) mild_total += ek;
  for (size_t ek : heavy->partition_effective_k) heavy_total += ek;
  EXPECT_LT(heavy_total, mild_total);
  EXPECT_EQ(mild->pooled_centroids, mild_total);
}

TEST(AdaptivePartialMergeTest, AdaptsToTrueStructure) {
  // A 3-blob cell with max_k=16: each partition should starve most
  // codewords and land near 3.
  Rng rng(3);
  const Dataset cell =
      GenerateSeparatedClusters(3000, 2, 3, 400.0, 1.0, &rng);
  const AdaptivePartialMergeKMeans apm(Config(16, 100.0, 5));
  auto result = apm.Run(cell);
  ASSERT_TRUE(result.ok());
  for (size_t ek : result->partition_effective_k) {
    EXPECT_GE(ek, 3u);
    EXPECT_LE(ek, 8u);
  }
  // The final model should cover the 3 blobs well.
  Dataset mean_model(cell.dim());
  mean_model.Append(cell.Mean());
  EXPECT_LT(Sse(result->model.centroids, cell),
            0.05 * Sse(mean_model, cell));
}

TEST(AdaptivePartialMergeTest, ExplicitMergeKRespected) {
  Rng rng(4);
  const Dataset cell = GenerateMisrLikeCell(2000, &rng);
  AdaptivePartialMergeConfig config = Config(24, 10.0, 6);
  config.merge.k = 5;
  auto result = AdaptivePartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->final_k, 5u);
  EXPECT_LE(result->model.k(), 5u);
}

TEST(AdaptivePartialMergeTest, DeterministicForSeed) {
  Rng rng(5);
  const Dataset cell = GenerateMisrLikeCell(1500, &rng);
  auto a = AdaptivePartialMergeKMeans(Config(16, 5.0, 4)).Run(cell);
  auto b = AdaptivePartialMergeKMeans(Config(16, 5.0, 4)).Run(cell);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->model.centroids, b->model.centroids);
  EXPECT_EQ(a->partition_effective_k, b->partition_effective_k);
}

}  // namespace
}  // namespace pmkm
