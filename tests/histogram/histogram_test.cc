#include "histogram/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.h"
#include "data/generator.h"

namespace pmkm {
namespace {

ClusteringModel FitModel(const Dataset& cell, size_t k) {
  KMeansConfig config;
  config.k = k;
  config.restarts = 3;
  auto model = KMeans(config).Fit(cell);
  PMKM_CHECK(model.ok());
  return std::move(model).value();
}

TEST(HistogramTest, BuildValidates) {
  Rng rng(1);
  const Dataset cell = GenerateMisrLikeCell(500, &rng);
  ClusteringModel empty;
  EXPECT_TRUE(MultivariateHistogram::Build(empty, cell)
                  .status()
                  .IsInvalidArgument());

  const ClusteringModel model = FitModel(cell, 5);
  const Dataset wrong_dim = GenerateUniform(10, 3, 0, 1, &rng);
  EXPECT_TRUE(MultivariateHistogram::Build(model, wrong_dim)
                  .status()
                  .IsInvalidArgument());
}

TEST(HistogramTest, CountsSumToCellSize) {
  Rng rng(2);
  const Dataset cell = GenerateMisrLikeCell(1200, &rng);
  auto hist = MultivariateHistogram::Build(FitModel(cell, 10), cell);
  ASSERT_TRUE(hist.ok());
  EXPECT_NEAR(hist->total_count(), 1200.0, 1e-9);
  EXPECT_LE(hist->num_buckets(), 10u);
  for (const auto& b : hist->buckets()) {
    EXPECT_GT(b.count, 0.0);
  }
}

TEST(HistogramTest, EncodeDecodeRoundTripsToNearestBucket) {
  Rng rng(3);
  const Dataset cell = GenerateMisrLikeCell(800, &rng);
  auto hist = MultivariateHistogram::Build(FitModel(cell, 8), cell);
  ASSERT_TRUE(hist.ok());
  for (size_t i = 0; i < 20; ++i) {
    const size_t id = hist->Encode(cell.Row(i));
    EXPECT_LT(id, hist->num_buckets());
    const auto rep = hist->Decode(id);
    EXPECT_EQ(rep.size(), cell.dim());
  }
}

TEST(HistogramTest, ReconstructionMseMatchesClusterQuality) {
  Rng rng(4);
  const Dataset cell = GenerateMisrLikeCell(1000, &rng);
  const ClusteringModel model = FitModel(cell, 12);
  auto hist = MultivariateHistogram::Build(model, cell);
  ASSERT_TRUE(hist.ok());
  // Bucket representatives are cluster means of assigned points, which is
  // exactly what minimizes in-bucket MSE — the histogram error must be no
  // worse than the model's per-point error.
  EXPECT_LE(hist->ReconstructionMse(cell),
            model.mse_per_point * (1.0 + 1e-9));
}

TEST(HistogramTest, MoreBucketsLowerError) {
  Rng rng(5);
  const Dataset cell = GenerateMisrLikeCell(2000, &rng);
  auto coarse = MultivariateHistogram::Build(FitModel(cell, 4), cell);
  auto fine = MultivariateHistogram::Build(FitModel(cell, 32), cell);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LT(fine->ReconstructionMse(cell),
            coarse->ReconstructionMse(cell));
}

TEST(HistogramTest, CompressionRatioScales) {
  Rng rng(6);
  const Dataset cell = GenerateMisrLikeCell(20000, &rng);
  auto hist = MultivariateHistogram::Build(FitModel(cell, 40), cell);
  ASSERT_TRUE(hist.ok());
  // 20k×6 doubles vs ≤40 buckets × (2·6+1) doubles: ≥ ~200×.
  EXPECT_GT(hist->CompressionRatio(20000), 100.0);
  EXPECT_EQ(hist->CompressedBytes(),
            hist->num_buckets() * (6 * 2 + 1) * sizeof(double));
}

TEST(HistogramTest, SampleReconstructionMatchesMoments) {
  // Build from a simple two-blob cell; samples from the histogram must
  // reproduce the blob means and mass split.
  Rng rng(7);
  Dataset cell(1);
  for (int i = 0; i < 3000; ++i) {
    cell.Append(std::vector<double>{rng.Normal(0.0, 1.0)});
  }
  for (int i = 0; i < 1000; ++i) {
    cell.Append(std::vector<double>{rng.Normal(100.0, 1.0)});
  }
  auto hist = MultivariateHistogram::Build(FitModel(cell, 2), cell);
  ASSERT_TRUE(hist.ok());
  Rng sample_rng(8);
  const Dataset sample = hist->SampleReconstruction(10000, &sample_rng);
  size_t low = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    if (sample(i, 0) < 50.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / 10000.0, 0.75, 0.03);
}

TEST(HistogramTest, FromModelUsesWeightsAndZeroSpread) {
  ClusteringModel model;
  model.centroids = Dataset(2);
  model.centroids.Append(std::vector<double>{1.0, 2.0});
  model.centroids.Append(std::vector<double>{5.0, 6.0});
  model.weights = {30.0, 70.0};
  auto hist = MultivariateHistogram::FromModel(model);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->num_buckets(), 2u);
  EXPECT_DOUBLE_EQ(hist->total_count(), 100.0);
  EXPECT_DOUBLE_EQ(hist->buckets()[0].stddev[0], 0.0);
}

TEST(HistogramTest, FromModelDropsZeroWeightBuckets) {
  ClusteringModel model;
  model.centroids = Dataset(1);
  model.centroids.Append(std::vector<double>{1.0});
  model.centroids.Append(std::vector<double>{2.0});
  model.weights = {10.0, 0.0};
  auto hist = MultivariateHistogram::FromModel(model);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->num_buckets(), 1u);
}

}  // namespace
}  // namespace pmkm
