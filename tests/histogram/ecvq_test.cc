#include "histogram/ecvq.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"

namespace pmkm {
namespace {

EcvqConfig Config(size_t max_k, double lambda) {
  EcvqConfig config;
  config.max_k = max_k;
  config.lambda = lambda;
  return config;
}

TEST(EcvqTest, Validation) {
  Rng rng(1);
  const Dataset data = GenerateUniform(100, 2, 0, 1, &rng);
  EXPECT_TRUE(
      FitEcvq(Dataset(2), Config(4, 1.0)).status().IsInvalidArgument());
  EXPECT_TRUE(FitEcvq(data, Config(0, 1.0)).status().IsInvalidArgument());
  EXPECT_TRUE(
      FitEcvq(data, Config(4, -1.0)).status().IsInvalidArgument());
}

TEST(EcvqTest, LambdaZeroKeepsFullCodebook) {
  Rng rng(2);
  const Dataset data = GenerateMisrLikeCell(2000, &rng);
  auto result = FitEcvq(data, Config(16, 0.0));
  ASSERT_TRUE(result.ok());
  // With no rate penalty nothing should starve on rich continuous data.
  EXPECT_EQ(result->effective_k, 16u);
  EXPECT_GT(result->rate_bits, 0.0);
}

TEST(EcvqTest, LargerLambdaShrinksEffectiveK) {
  Rng rng(3);
  const Dataset data = GenerateMisrLikeCell(3000, &rng);
  auto mild = FitEcvq(data, Config(32, 0.0));
  auto heavy = FitEcvq(data, Config(32, 2000.0));
  ASSERT_TRUE(mild.ok() && heavy.ok());
  EXPECT_LT(heavy->effective_k, mild->effective_k);
  EXPECT_GE(heavy->effective_k, 1u);
  // Fewer codewords → lower rate, higher distortion.
  EXPECT_LT(heavy->rate_bits, mild->rate_bits);
  EXPECT_GT(heavy->distortion, mild->distortion);
}

TEST(EcvqTest, AdaptsKToTrueClusterCount) {
  // 3 well-separated blobs, max_k = 16 and a moderate λ: ECVQ should land
  // near k = 3, the paper's "find an optimal k for a partition on the fly".
  Rng rng(4);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(3000, 2, 3, 300.0, 1.0, &rng, &centers);
  auto result = FitEcvq(data, Config(16, 100.0));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->effective_k, 3u);
  EXPECT_LE(result->effective_k, 6u);
}

TEST(EcvqTest, WeightsSumToTotalMass) {
  Rng rng(5);
  const Dataset data = GenerateMisrLikeCell(1000, &rng);
  auto result = FitEcvq(data, Config(8, 1.0));
  ASSERT_TRUE(result.ok());
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, 1000.0, 1e-6);
}

TEST(EcvqTest, RateIsEntropyBounded) {
  Rng rng(6);
  const Dataset data = GenerateMisrLikeCell(1500, &rng);
  auto result = FitEcvq(data, Config(16, 1.0));
  ASSERT_TRUE(result.ok());
  // Entropy of k symbols ≤ log2 k.
  EXPECT_LE(result->rate_bits,
            std::log2(static_cast<double>(result->effective_k)) + 1e-9);
  EXPECT_GE(result->rate_bits, 0.0);
}

TEST(EcvqTest, DeterministicForSeed) {
  Rng rng(7);
  const Dataset data = GenerateMisrLikeCell(800, &rng);
  auto a = FitEcvq(data, Config(12, 5.0));
  auto b = FitEcvq(data, Config(12, 5.0));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->model.centroids, b->model.centroids);
  EXPECT_EQ(a->effective_k, b->effective_k);
}

TEST(EcvqTest, WeightedInputSupported) {
  WeightedDataset data(1);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 1.0)}, 2.0);
    data.Append(std::vector<double>{rng.Normal(50.0, 1.0)}, 1.0);
  }
  auto result = FitEcvq(data, Config(8, 50.0));
  ASSERT_TRUE(result.ok());
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, 600.0, 1e-6);
}

}  // namespace
}  // namespace pmkm
