// pmkm_ctxcheck golden fixture — POSITIVE for rule `bounded-handler`.
//
// A PMKM_BOUNDED_HANDLER session handler parks on an *untimed*
// CondVar::Wait: one slow client now pins a pool thread forever, and a
// handful of them starve the whole handler pool. The analyzer must
// report the witness chain HandleConnection -> AwaitWork -> Wait.
// This file compiles but is deliberately wrong.

#include "common/annotations.h"

namespace ctxfix {

class SessionServer {
 public:
  void HandleConnection(int /*fd*/) PMKM_BOUNDED_HANDLER {
    pmkm::MutexLock lock(mu_);
    AwaitWork();
  }

 private:
  void AwaitWork() PMKM_REQUIRES(mu_) {
    while (!ready_) cv_.Wait(mu_);  // unbounded: no timeout, pool thread pinned
  }

  pmkm::Mutex mu_;
  pmkm::CondVar cv_;
  bool ready_ PMKM_GUARDED_BY(mu_) = false;
};

void Touch(SessionServer& s) { s.HandleConnection(3); }

}  // namespace ctxfix
