// pmkm_ctxcheck golden fixture — NEGATIVE for rule `wait-free`.
//
// The wait-free Record touches only fixed-size atomics (the
// RollingHistogram::Record shape): a CAS-claimed slot index plus relaxed
// adds. The analyzer must report nothing.

#include <atomic>
#include <cstdint>

#include "common/annotations.h"

namespace ctxfix {

class SampleRecorder {
 public:
  void Record(double v) PMKM_WAITFREE {
    const uint64_t bucket = v < 0 ? 0 : static_cast<uint64_t>(v) % 64;
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> counts_[64] = {};
  std::atomic<uint64_t> total_{0};
};

void Touch(SampleRecorder& r) { r.Record(1.0); }

}  // namespace ctxfix
