// pmkm_ctxcheck golden fixture — NEGATIVE for rule `signal-safe`.
//
// The handler touches only async-signal-safe operations: atomics, memcpy
// into a preallocated ring slot, and a helper that does the same. The
// analyzer must report nothing.

#include <atomic>
#include <cstring>

#include "common/annotations.h"

namespace ctxfix {

struct Ring {
  std::atomic<unsigned> next{0};
  unsigned long slots[64][8];
};

Ring g_ring;

void StoreSample(const unsigned long* frames, unsigned n) {
  const unsigned idx = g_ring.next.fetch_add(1) % 64;
  if (n > 8) n = 8;
  std::memcpy(g_ring.slots[idx], frames, n * sizeof(unsigned long));
}

void OnProfileSignal(int /*signum*/) PMKM_SIGNAL_SAFE {
  unsigned long frames[8] = {0};
  StoreSample(frames, 8);
}

}  // namespace ctxfix
