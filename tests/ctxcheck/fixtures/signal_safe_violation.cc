// pmkm_ctxcheck golden fixture — POSITIVE for rule `signal-safe`.
//
// A PMKM_SIGNAL_SAFE root reaches malloc through a helper: allocation is
// never async-signal-safe (the interrupted thread may hold the allocator
// lock). The analyzer must report the full witness chain
//   OnProfileSignal -> GrowScratch -> malloc
// Expected by tests/ctxcheck/run_fixture_tests.py; this file compiles but
// is deliberately wrong.

#include <cstdlib>

#include "common/annotations.h"

namespace ctxfix {

void* g_scratch = nullptr;

// Lazy allocation looks harmless at the call site; only the whole-program
// walk connects it to the signal context.
void GrowScratch() { g_scratch = std::malloc(64); }

void OnProfileSignal(int /*signum*/) PMKM_SIGNAL_SAFE { GrowScratch(); }

}  // namespace ctxfix
