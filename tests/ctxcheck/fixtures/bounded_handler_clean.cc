// pmkm_ctxcheck golden fixture — NEGATIVE for rule `bounded-handler`.
//
// The handler only parks on CondVar::WaitFor with a deadline: a slow
// client costs at most the timeout, never a pinned pool thread. The
// analyzer must report nothing.

#include <chrono>

#include "common/annotations.h"

namespace ctxfix {

class SessionServer {
 public:
  void HandleConnection(int /*fd*/) PMKM_BOUNDED_HANDLER {
    pmkm::MutexLock lock(mu_);
    while (!ready_) {
      if (cv_.WaitFor(mu_, std::chrono::milliseconds(100)) ==
          std::cv_status::timeout) {
        return;  // bounded: give the pool thread back
      }
    }
  }

 private:
  pmkm::Mutex mu_;
  pmkm::CondVar cv_;
  bool ready_ PMKM_GUARDED_BY(mu_) = false;
};

void Touch(SessionServer& s) { s.HandleConnection(3); }

}  // namespace ctxfix
