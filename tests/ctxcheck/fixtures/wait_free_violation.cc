// pmkm_ctxcheck golden fixture — POSITIVE for rule `wait-free`.
//
// A PMKM_WAITFREE hot-path Record grows a vector: push_back may allocate
// (and in a shared recorder would need a lock anyway). The analyzer must
// report the witness chain Record -> push_back. This file compiles but is
// deliberately wrong.

#include <vector>

#include "common/annotations.h"

namespace ctxfix {

class SampleRecorder {
 public:
  void Record(double v) PMKM_WAITFREE { samples_.push_back(v); }

 private:
  std::vector<double> samples_;
};

void Touch(SampleRecorder& r) { r.Record(1.0); }

}  // namespace ctxfix
