// pmkm_ctxcheck golden fixture — POSITIVE for rule `no-block-under-lock`.
//
// Append holds mu_ (via MutexLock) across a helper that issues blocking
// write/fsync syscalls: every other thread touching this journal now
// waits on disk latency. The analyzer must report the witness chain
//   Append -> WriteRecord -> write (and fsync)
// This file compiles but is deliberately wrong.

#include <unistd.h>

#include "common/annotations.h"

namespace ctxfix {

class Journal {
 public:
  void Append(const char* buf, int n) {
    pmkm::MutexLock lock(mu_);
    seq_++;
    WriteRecord(buf, n);
  }

 private:
  // Blocking I/O hidden one call deep — the lock is still held here.
  void WriteRecord(const char* buf, int n) {
    (void)write(fd_, buf, static_cast<size_t>(n));
    (void)fsync(fd_);
  }

  pmkm::Mutex mu_;
  long seq_ PMKM_GUARDED_BY(mu_) = 0;
  int fd_ = -1;
};

void Touch(Journal& j) { j.Append("x", 1); }

}  // namespace ctxfix
