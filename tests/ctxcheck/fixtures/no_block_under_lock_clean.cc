// pmkm_ctxcheck golden fixture — NEGATIVE for rule `no-block-under-lock`.
//
// The lock only covers in-memory state; the blocking write/fsync happen
// after the scoped lock closes. The direct CondVar::Wait by the lock
// holder is exempt (the wait releases mu_). The analyzer must report
// nothing.

#include <unistd.h>

#include "common/annotations.h"

namespace ctxfix {

class Journal {
 public:
  void Append(const char* buf, int n) {
    {
      pmkm::MutexLock lock(mu_);
      while (draining_) cv_.Wait(mu_);  // direct wait: releases mu_
      seq_++;
    }
    // Off-lock: disk latency no longer serializes other threads.
    (void)write(fd_, buf, static_cast<size_t>(n));
    (void)fsync(fd_);
  }

 private:
  pmkm::Mutex mu_;
  pmkm::CondVar cv_;
  bool draining_ PMKM_GUARDED_BY(mu_) = false;
  long seq_ PMKM_GUARDED_BY(mu_) = 0;
  int fd_ = -1;
};

void Touch(Journal& j) { j.Append("x", 1); }

}  // namespace ctxfix
