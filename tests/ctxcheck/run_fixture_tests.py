#!/usr/bin/env python3
"""Golden-violation suite for tools/pmkm_ctxcheck.py (DESIGN.md §16).

Runs the analyzer in fixture mode (--files, no compdb gate) over each
file in tests/ctxcheck/fixtures/ and asserts, per fixture:

  - the exit code (65 for the deliberate violations, 0 for the clean
    twins — the sysexits contract shared with pmkm_lint/pmkm_inspect),
  - the rule tag of every expected finding, and
  - the full witness chain root -> ... -> violating operation, line by
    line, because the chain IS the product: a finding without the path
    that reaches it is not actionable.

Registered as ctest `ctxcheck.fixtures` (label `lint`). Run directly:

  tests/ctxcheck/run_fixture_tests.py [--root REPO]
"""

import argparse
import os
import subprocess
import sys

FIXDIR = os.path.join("tests", "ctxcheck", "fixtures")

# fixture basename -> (expected exit, [required output substrings]).
# Chains assert function names, not line numbers, so reformatting a
# fixture comment does not break the suite; the arrow line pins the leaf.
EXPECTATIONS = {
    "signal_safe_violation.cc": (65, [
        "[signal-safe] allocating/throwing call in signal context",
        "ctxfix::OnProfileSignal",
        "ctxfix::GrowScratch",
        "-> malloc",
    ]),
    "signal_safe_clean.cc": (0, ["0 new finding(s)"]),
    "no_block_under_lock_violation.cc": (65, [
        "[no-block-under-lock] `write` blocks while the caller holds "
        "a pmkm::Mutex",
        "[no-block-under-lock] `fsync` blocks while the caller holds "
        "a pmkm::Mutex",
        "ctxfix::Journal::Append",
        "ctxfix::Journal::WriteRecord",
        "-> write",
        "-> fsync",
    ]),
    "no_block_under_lock_clean.cc": (0, ["0 new finding(s)"]),
    "wait_free_violation.cc": (65, [
        "[wait-free] allocating/throwing call on a wait-free path",
        "ctxfix::SampleRecorder::Record",
        "-> push_back",
    ]),
    "wait_free_clean.cc": (0, ["0 new finding(s)"]),
    "bounded_handler_violation.cc": (65, [
        "[bounded-handler] unbounded CondVar::Wait in a bounded "
        "handler; use WaitFor",
        "ctxfix::SessionServer::HandleConnection",
        "ctxfix::SessionServer::AwaitWork",
        "-> Wait",
    ]),
    "bounded_handler_clean.cc": (0, ["0 new finding(s)"]),
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        help="repository root (default: two levels above this script)")
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    analyzer = os.path.join(root, "tools", "pmkm_ctxcheck.py")

    fixtures = sorted(os.listdir(os.path.join(root, FIXDIR)))
    missing = set(EXPECTATIONS) - set(fixtures)
    extra = [f for f in fixtures if f.endswith(".cc")
             and f not in EXPECTATIONS]
    if missing or extra:
        for f in sorted(missing):
            print(f"FAIL: fixture listed in EXPECTATIONS but absent: {f}")
        for f in extra:
            print(f"FAIL: fixture on disk without an expectation: {f}")
        return 1

    failures = 0
    for fixture, (want_exit, want_substrings) in sorted(
            EXPECTATIONS.items()):
        path = os.path.join(root, FIXDIR, fixture)
        proc = subprocess.run(
            [sys.executable, analyzer, "--root", root, "--no-baseline",
             "--files", path],
            capture_output=True, text=True)
        out = proc.stdout + proc.stderr
        problems = []
        if proc.returncode != want_exit:
            problems.append(
                f"exit {proc.returncode}, want {want_exit}")
        for needle in want_substrings:
            if needle not in out:
                problems.append(f"missing output: {needle!r}")
        if problems:
            failures += 1
            print(f"FAIL {fixture}")
            for p in problems:
                print(f"  {p}")
            print("  --- analyzer output ---")
            for line in out.splitlines():
                print(f"  {line}")
        else:
            print(f"PASS {fixture} (exit {proc.returncode})")

    total = len(EXPECTATIONS)
    print(f"ctxcheck fixtures: {total - failures}/{total} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
