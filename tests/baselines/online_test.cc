#include "baselines/online.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

TEST(OnlineKMeansTest, SnapshotBeforeDataFails) {
  OnlineKMeans online(2, {});
  EXPECT_TRUE(online.Snapshot().status().IsFailedPrecondition());
}

TEST(OnlineKMeansTest, FirstKPointsBecomeCentroids) {
  OnlineKMeansConfig config;
  config.k = 3;
  OnlineKMeans online(1, config);
  for (double x : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(online.Observe({&x, 1}).ok());
  }
  auto model = online.Snapshot();
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->k(), 3u);
  EXPECT_DOUBLE_EQ(model->centroids(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model->centroids(2, 0), 3.0);
}

TEST(OnlineKMeansTest, IncrementalMeanIsExactForOneCluster) {
  OnlineKMeansConfig config;
  config.k = 1;
  OnlineKMeans online(1, config);
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    const double x = static_cast<double>(i);
    ASSERT_TRUE(online.Observe({&x, 1}).ok());
    sum += x;
  }
  auto model = online.Snapshot();
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->centroids(0, 0), sum / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(model->weights[0], 100.0);
}

TEST(OnlineKMeansTest, DimensionMismatchRejected) {
  OnlineKMeans online(3, {});
  EXPECT_TRUE(
      online.Observe(std::vector<double>{1.0}).IsInvalidArgument());
}

TEST(OnlineKMeansTest, TracksSeparatedBlobs) {
  Rng rng(1);
  OnlineKMeansConfig config;
  config.k = 2;
  OnlineKMeans online(1, config);
  Dataset data(1);
  // Seed points from both blobs first so initialization spans them.
  data.Append(std::vector<double>{0.0});
  data.Append(std::vector<double>{300.0});
  for (int i = 0; i < 1000; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 1.0)});
    data.Append(std::vector<double>{rng.Normal(300.0, 1.0)});
  }
  ASSERT_TRUE(online.ObserveAll(data).ok());
  auto model = online.Snapshot(&data);
  ASSERT_TRUE(model.ok());
  std::vector<double> c{model->centroids(0, 0), model->centroids(1, 0)};
  std::sort(c.begin(), c.end());
  EXPECT_NEAR(c[0], 0.0, 1.0);
  EXPECT_NEAR(c[1], 300.0, 1.0);
  EXPECT_LT(model->mse_per_point, 3.0);
}

TEST(OnlineKMeansTest, SnapshotEvaluatesAgainstProvidedData) {
  Rng rng(2);
  const Dataset data = GenerateMisrLikeCell(1000, &rng);
  OnlineKMeansConfig config;
  config.k = 10;
  OnlineKMeans online(data.dim(), config);
  ASSERT_TRUE(online.ObserveAll(data).ok());
  auto model = online.Snapshot(&data);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, Sse(model->centroids, data),
              1e-6 * (1.0 + model->sse));
  EXPECT_EQ(online.points_seen(), 1000u);
}

}  // namespace
}  // namespace pmkm
