#include "baselines/minibatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/distance.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

MiniBatchConfig Config(size_t k) {
  MiniBatchConfig config;
  config.k = k;
  return config;
}

TEST(MiniBatchTest, Validation) {
  Rng rng(1);
  const Dataset data = GenerateUniform(10, 2, 0, 1, &rng);
  MiniBatchConfig zero_k = Config(0);
  EXPECT_TRUE(MiniBatchKMeans(data, zero_k).status().IsInvalidArgument());
  MiniBatchConfig big_k = Config(100);
  EXPECT_TRUE(MiniBatchKMeans(data, big_k).status().IsInvalidArgument());
  MiniBatchConfig zero_batch = Config(2);
  zero_batch.batch_size = 0;
  EXPECT_TRUE(
      MiniBatchKMeans(data, zero_batch).status().IsInvalidArgument());
}

TEST(MiniBatchTest, RecoversSeparatedClusters) {
  Rng rng(2);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(4000, 3, 5, 200.0, 1.0, &rng, &centers);
  auto model = MiniBatchKMeans(data, Config(5));
  ASSERT_TRUE(model.ok());
  for (const auto& truth : centers) {
    double best = 1e30;
    for (size_t j = 0; j < model->k(); ++j) {
      best = std::min(best,
                      SquaredL2(std::span<const double>(truth),
                                model->centroids.Row(j)));
    }
    EXPECT_LT(std::sqrt(best), 3.0);
  }
}

TEST(MiniBatchTest, DeterministicForSeed) {
  Rng rng(3);
  const Dataset data = GenerateMisrLikeCell(2000, &rng);
  auto a = MiniBatchKMeans(data, Config(8));
  auto b = MiniBatchKMeans(data, Config(8));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->centroids, b->centroids);
}

TEST(MiniBatchTest, SseEvaluatedOnFullData) {
  Rng rng(4);
  const Dataset data = GenerateMisrLikeCell(1500, &rng);
  auto model = MiniBatchKMeans(data, Config(10));
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, Sse(model->centroids, data),
              1e-6 * (1.0 + model->sse));
  EXPECT_NEAR(model->mse_per_point, model->sse / 1500.0, 1e-12);
  double mass = 0.0;
  for (double w : model->weights) mass += w;
  EXPECT_NEAR(mass, 1500.0, 1e-9);
}

TEST(MiniBatchTest, QualityWithinFactorOfFullLloyd) {
  Rng rng(5);
  const Dataset data = GenerateMisrLikeCell(4000, &rng);
  auto mb = MiniBatchKMeans(data, Config(20));
  ASSERT_TRUE(mb.ok());
  KMeansConfig kconfig;
  kconfig.k = 20;
  kconfig.restarts = 3;
  auto full = KMeans(kconfig).Fit(data);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(mb->sse, 3.0 * full->sse);
}

TEST(MiniBatchTest, StopsEarlyWhenConverged) {
  // Trivially clusterable data: two tight blobs, k=2. SGD steps shrink as
  // 1/count, so movement falls under tol well before max_batches.
  Rng rng(6);
  Dataset data(1);
  for (int i = 0; i < 500; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 0.01)});
    data.Append(std::vector<double>{rng.Normal(100.0, 0.01)});
  }
  MiniBatchConfig config = Config(2);
  config.max_batches = 10000;
  config.tol = 1e-3;
  auto model = MiniBatchKMeans(data, config);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->converged);
  EXPECT_LT(model->iterations, 10000u);
}

}  // namespace
}  // namespace pmkm
