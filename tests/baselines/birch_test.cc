#include "baselines/birch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/distance.h"
#include "cluster/metrics.h"
#include "data/generator.h"

namespace pmkm {
namespace {

BirchConfig Config(size_t k, size_t max_leaves = 128) {
  BirchConfig config;
  config.k = k;
  config.max_leaf_entries = max_leaves;
  config.global.restarts = 3;
  return config;
}

TEST(ClusteringFeatureTest, AddAndCentroid) {
  ClusteringFeature cf(2);
  cf.Add(std::vector<double>{1.0, 2.0});
  cf.Add(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(cf.n, 2.0);
  const auto c = cf.Centroid();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 3.0);
  EXPECT_DOUBLE_EQ(cf.ss, 1 + 4 + 9 + 16);
}

TEST(ClusteringFeatureTest, WeightedAdd) {
  ClusteringFeature cf(1);
  cf.Add(std::vector<double>{10.0}, 3.0);
  cf.Add(std::vector<double>{0.0}, 1.0);
  EXPECT_DOUBLE_EQ(cf.Centroid()[0], 7.5);
}

TEST(ClusteringFeatureTest, RadiusOfIdenticalPointsIsZero) {
  ClusteringFeature cf(2);
  for (int i = 0; i < 5; ++i) cf.Add(std::vector<double>{3.0, 4.0});
  EXPECT_NEAR(cf.Radius(), 0.0, 1e-9);
}

TEST(ClusteringFeatureTest, RadiusMatchesStddev) {
  // Points at ±1 around 0 in 1-D: variance 1, radius 1.
  ClusteringFeature cf(1);
  cf.Add(std::vector<double>{1.0});
  cf.Add(std::vector<double>{-1.0});
  EXPECT_NEAR(cf.Radius(), 1.0, 1e-12);
}

TEST(ClusteringFeatureTest, MergeEqualsBulkAdd) {
  ClusteringFeature a(2), b(2), all(2);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> p{rng.Normal(), rng.Normal()};
    (i % 2 == 0 ? a : b).Add(p);
    all.Add(p);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.n, all.n);
  EXPECT_NEAR(a.ss, all.ss, 1e-9);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(a.ls[d], all.ls[d], 1e-9);
  }
}

TEST(ClusteringFeatureTest, CentroidDistance) {
  ClusteringFeature a(2), b(2);
  a.Add(std::vector<double>{0.0, 0.0});
  b.Add(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.CentroidDistanceSq(b), 25.0);
}

TEST(BirchTest, RejectsWrongDimension) {
  Birch birch(3, Config(2));
  EXPECT_TRUE(
      birch.Insert(std::vector<double>{1.0, 2.0}).IsInvalidArgument());
}

TEST(BirchTest, FinishWithoutInsertFails) {
  Birch birch(2, Config(2));
  EXPECT_TRUE(birch.Finish().status().IsFailedPrecondition());
}

TEST(BirchTest, LeafMassEqualsInsertedPoints) {
  Rng rng(2);
  const Dataset data = GenerateMisrLikeCell(2000, &rng);
  Birch birch(data.dim(), Config(10, 64));
  ASSERT_TRUE(birch.InsertAll(data).ok());
  const WeightedDataset leaves = birch.LeafCentroids();
  EXPECT_NEAR(leaves.TotalWeight(), 2000.0, 1e-6);
  EXPECT_LE(birch.num_leaf_entries(), 64u);
}

TEST(BirchTest, MemoryEnvelopeTriggersRebuilds) {
  Rng rng(3);
  const Dataset data = GenerateUniform(3000, 4, -100, 100, &rng);
  BirchConfig config = Config(5, 32);
  Birch birch(data.dim(), config);
  ASSERT_TRUE(birch.InsertAll(data).ok());
  EXPECT_LE(birch.num_leaf_entries(), 32u);
  EXPECT_GT(birch.rebuilds(), 0u);
  EXPECT_GT(birch.threshold(), 0.0);
}

TEST(BirchTest, RecoversWellSeparatedClusters) {
  Rng rng(4);
  std::vector<std::vector<double>> centers;
  const Dataset data =
      GenerateSeparatedClusters(3000, 3, 4, 200.0, 1.0, &rng, &centers);
  Birch birch(3, Config(4, 128));
  ASSERT_TRUE(birch.InsertAll(data).ok());
  auto model = birch.Finish();
  ASSERT_TRUE(model.ok()) << model.status();
  ASSERT_EQ(model->k(), 4u);
  for (const auto& truth : centers) {
    double best = 1e30;
    for (size_t j = 0; j < model->k(); ++j) {
      best = std::min(best,
                      SquaredL2(std::span<const double>(truth),
                                model->centroids.Row(j)));
    }
    EXPECT_LT(std::sqrt(best), 3.0);
  }
}

TEST(BirchTest, FewDistinctPointsPassThrough) {
  Birch birch(1, Config(5, 16));
  for (double x : {1.0, 2.0, 3.0}) {
    ASSERT_TRUE(birch.Insert({&x, 1}).ok());
  }
  auto model = birch.Finish();
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->k(), 3u);
  EXPECT_DOUBLE_EQ(model->sse, 0.0);
}

TEST(BirchTest, IdenticalPointsCollapseToOneLeaf) {
  Birch birch(2, Config(2, 16));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(birch.Insert(std::vector<double>{5.0, 5.0}).ok());
  }
  // Zero radius: everything absorbs into the very first leaf entry.
  EXPECT_EQ(birch.num_leaf_entries(), 1u);
  const WeightedDataset leaves = birch.LeafCentroids();
  EXPECT_DOUBLE_EQ(leaves.weight(0), 100.0);
}

TEST(BirchTest, QualityWithinFactorOfSerialKMeans) {
  Rng rng(5);
  const Dataset data = GenerateMisrLikeCell(4000, &rng);
  Birch birch(data.dim(), Config(20, 256));
  ASSERT_TRUE(birch.InsertAll(data).ok());
  auto birch_model = birch.Finish();
  ASSERT_TRUE(birch_model.ok());

  KMeansConfig kconfig;
  kconfig.k = 20;
  kconfig.restarts = 3;
  auto serial = KMeans(kconfig).Fit(data);
  ASSERT_TRUE(serial.ok());

  const double birch_sse = Sse(birch_model->centroids, data);
  EXPECT_LT(birch_sse, 5.0 * serial->sse);
}

}  // namespace
}  // namespace pmkm
