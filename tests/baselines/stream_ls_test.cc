#include "baselines/stream_ls.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/distance.h"
#include "data/generator.h"

namespace pmkm {
namespace {

StreamLsConfig Config(size_t k, size_t chunk = 500) {
  StreamLsConfig config;
  config.k = k;
  config.chunk_points = chunk;
  config.max_sweeps = 5;
  return config;
}

TEST(KMedianCostTest, KnownValue) {
  Dataset medians(1);
  medians.Append(std::vector<double>{0.0});
  WeightedDataset data(1);
  data.Append(std::vector<double>{3.0}, 2.0);   // 2·3
  data.Append(std::vector<double>{-4.0}, 1.0);  // 1·4
  EXPECT_DOUBLE_EQ(KMedianCost(medians, data), 10.0);
}

TEST(LocalSearchTest, EmptyChunkRejected) {
  Rng rng(1);
  EXPECT_TRUE(LocalSearchKMedian(WeightedDataset(2), Config(3), &rng)
                  .status()
                  .IsInvalidArgument());
}

TEST(LocalSearchTest, TinyChunkPassesThrough) {
  Rng rng(2);
  WeightedDataset data(1);
  data.Append(std::vector<double>{1.0}, 2.0);
  data.Append(std::vector<double>{5.0}, 3.0);
  auto medians = LocalSearchKMedian(data, Config(5), &rng);
  ASSERT_TRUE(medians.ok());
  EXPECT_EQ(medians->size(), 2u);
  EXPECT_DOUBLE_EQ(medians->TotalWeight(), 5.0);
}

TEST(LocalSearchTest, MediansAreInputPoints) {
  Rng rng(3);
  WeightedDataset data(1);
  for (int i = 0; i < 100; ++i) {
    data.Append(std::vector<double>{static_cast<double>(i)}, 1.0);
  }
  auto medians = LocalSearchKMedian(data, Config(4), &rng);
  ASSERT_TRUE(medians.ok());
  for (size_t j = 0; j < medians->size(); ++j) {
    const double v = medians->Row(j)[0];
    EXPECT_DOUBLE_EQ(v, std::round(v));  // integers in, integers out
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 99.0);
  }
}

TEST(LocalSearchTest, MassIsConserved) {
  Rng rng(4);
  WeightedDataset data(2);
  double total = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double w = 1.0 + rng.UniformInt(5);
    data.Append(std::vector<double>{rng.Normal(), rng.Normal()}, w);
    total += w;
  }
  auto medians = LocalSearchKMedian(data, Config(6), &rng);
  ASSERT_TRUE(medians.ok());
  EXPECT_NEAR(medians->TotalWeight(), total, 1e-9);
}

TEST(LocalSearchTest, FindsSeparatedBlobs) {
  Rng rng(5);
  WeightedDataset data(1);
  for (int i = 0; i < 150; ++i) {
    data.Append(std::vector<double>{rng.Normal(0.0, 1.0)}, 1.0);
    data.Append(std::vector<double>{rng.Normal(500.0, 1.0)}, 1.0);
  }
  StreamLsConfig config = Config(2);
  auto medians = LocalSearchKMedian(data, config, &rng);
  ASSERT_TRUE(medians.ok());
  ASSERT_EQ(medians->size(), 2u);
  std::vector<double> c{medians->Row(0)[0], medians->Row(1)[0]};
  std::sort(c.begin(), c.end());
  EXPECT_LT(std::abs(c[0]), 5.0);
  EXPECT_LT(std::abs(c[1] - 500.0), 5.0);
  // Each blob carries ~half the mass.
  EXPECT_NEAR(medians->weight(0), 150.0, 10.0);
}

TEST(StreamLocalSearchTest, ProcessesChunksAndRetains) {
  Rng rng(6);
  StreamLocalSearch stream(6, Config(5, 400));
  const Dataset data = GenerateMisrLikeCell(2000, &rng);
  ASSERT_TRUE(stream.Append(data).ok());
  // 5 full chunks of 400 → 5·k retained.
  EXPECT_EQ(stream.retained_medians(), 25u);
}

TEST(StreamLocalSearchTest, FinishWithoutDataFails) {
  StreamLocalSearch stream(2, Config(3));
  EXPECT_TRUE(stream.Finish().status().IsFailedPrecondition());
}

TEST(StreamLocalSearchTest, FinishProducesKCenters) {
  Rng rng(7);
  StreamLocalSearch stream(6, Config(8, 300));
  ASSERT_TRUE(stream.Append(GenerateMisrLikeCell(1500, &rng)).ok());
  auto model = stream.Finish();
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_LE(model->k(), 8u);
  EXPECT_GE(model->k(), 1u);
  double mass = 0.0;
  for (double w : model->weights) mass += w;
  EXPECT_NEAR(mass, 1500.0, 1e-6);
}

TEST(StreamLocalSearchTest, RereductionBoundsRetainedSet) {
  Rng rng(8);
  StreamLsConfig config = Config(10, 100);
  config.max_retained = 30;
  StreamLocalSearch stream(6, config);
  ASSERT_TRUE(stream.Append(GenerateMisrLikeCell(2000, &rng)).ok());
  EXPECT_LE(stream.retained_medians(), 30u);
}

TEST(StreamLocalSearchTest, DimensionMismatchRejected) {
  StreamLocalSearch stream(3, Config(2));
  Rng rng(9);
  EXPECT_TRUE(stream.Append(GenerateUniform(10, 2, 0, 1, &rng))
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pmkm
