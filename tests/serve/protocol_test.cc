// Conformance tests for the serve wire protocol: golden byte vectors for
// the hello and frame layouts (so an incompatible change to the wire
// format fails loudly), version-skew negotiation in both directions, and
// rejection of truncated/corrupt/oversized input on every decode path.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/manifest.h"
#include "stream/ops.h"

namespace pmkm {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Handshake.

TEST(HelloTest, GoldenBytes) {
  // [u32 magic "PMKS"][u32 version], little-endian. These exact bytes are
  // the wire contract; a codec change that alters them breaks every
  // deployed peer.
  const std::vector<uint8_t> expected = {0x50, 0x4D, 0x4B, 0x53,
                                         0x02, 0x00, 0x00, 0x00};
  EXPECT_EQ(EncodeHello(2), expected);
  EXPECT_EQ(EncodeHello(kProtocolVersion).size(), kHelloBytes);
}

TEST(HelloTest, Roundtrip) {
  for (uint32_t v : {1u, 2u, 7u, 0xFFFFFFFFu}) {
    auto decoded = DecodeHello(EncodeHello(v));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded.value(), v);
  }
}

TEST(HelloTest, BadMagicRejected) {
  std::vector<uint8_t> hello = EncodeHello(kProtocolVersion);
  hello[0] ^= 0xFF;
  EXPECT_TRUE(DecodeHello(hello).status().IsInvalidArgument());
}

TEST(HelloTest, TruncatedRejected) {
  const std::vector<uint8_t> hello = EncodeHello(kProtocolVersion);
  for (size_t n = 0; n < hello.size(); ++n) {
    auto decoded =
        DecodeHello(std::span<const uint8_t>(hello.data(), n));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << n << " bytes";
  }
}

TEST(NegotiateTest, BothDirectionsOfSkew) {
  // Peer older (but supported): effective = peer's version.
  auto v1 = NegotiateVersion(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1u);
  // Same version.
  auto v2 = NegotiateVersion(kProtocolVersion);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), kProtocolVersion);
  // Peer newer: effective = ours (the peer is expected to downshift).
  auto v99 = NegotiateVersion(99);
  ASSERT_TRUE(v99.ok());
  EXPECT_EQ(v99.value(), kProtocolVersion);
  // Peer below the floor: rejected.
  EXPECT_TRUE(
      NegotiateVersion(kMinProtocolVersion - 1).status()
          .IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Framing.

TEST(FrameTest, GoldenLayout) {
  // [u32 payload_len][u32 type][payload][u32 crc32c(type || payload)].
  const std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kSubmitJob, payload);
  ASSERT_EQ(wire.size(), kFrameFixedBytes + payload.size());

  auto read_u32 = [&wire](size_t off) {
    uint32_t v = 0;
    std::memcpy(&v, wire.data() + off, 4);
    return v;  // little-endian host; asserted by the golden hello test
  };
  EXPECT_EQ(read_u32(0), payload.size());
  EXPECT_EQ(read_u32(4), static_cast<uint32_t>(FrameType::kSubmitJob));
  EXPECT_EQ(std::vector<uint8_t>(wire.begin() + 8,
                                 wire.end() - 4),
            payload);
  // The trailer is CRC32C over the type tag bytes then the payload —
  // recomputed here independently to pin the definition.
  const uint32_t type_le = static_cast<uint32_t>(FrameType::kSubmitJob);
  const uint32_t expected_crc =
      Crc32c(payload.data(), payload.size(), Crc32c(&type_le, 4));
  EXPECT_EQ(read_u32(wire.size() - 4), expected_crc);
}

TEST(FrameTest, RoundtripIncludingEmptyPayload) {
  for (const std::vector<uint8_t>& payload :
       {std::vector<uint8_t>{}, std::vector<uint8_t>{0x42},
        std::vector<uint8_t>(1000, 0xAB)}) {
    const std::vector<uint8_t> wire =
        EncodeFrame(FrameType::kPing, payload);
    size_t consumed = 0;
    auto frame = DecodeFrame(wire, &consumed);
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(frame.value()->type,
              static_cast<uint32_t>(FrameType::kPing));
    EXPECT_EQ(frame.value()->payload, payload);
  }
}

TEST(FrameTest, IncrementalDecodeNeedsMoreBytes) {
  // Every strict prefix must come back as "need more", never an error:
  // this is exactly what a socket delivering one byte at a time looks
  // like.
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kJobStatus, payload);
  for (size_t n = 0; n < wire.size(); ++n) {
    size_t consumed = 99;
    auto frame =
        DecodeFrame(std::span<const uint8_t>(wire.data(), n), &consumed);
    ASSERT_TRUE(frame.ok()) << "prefix " << n << ": " << frame.status();
    EXPECT_FALSE(frame.value().has_value()) << "prefix " << n;
    EXPECT_EQ(consumed, 0u) << "prefix " << n;
  }
}

TEST(FrameTest, CorruptByteRejectedAsIoError) {
  const std::vector<uint8_t> payload = {10, 20, 30, 40};
  const std::vector<uint8_t> good =
      EncodeFrame(FrameType::kListJobs, payload);
  // Flip one bit in each payload byte and in each CRC byte: all must be
  // caught by the trailer check.
  for (size_t i = 8; i < good.size(); ++i) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0x01;
    size_t consumed = 0;
    auto frame = DecodeFrame(bad, &consumed);
    EXPECT_TRUE(frame.status().IsIOError()) << "byte " << i;
  }
}

TEST(FrameTest, OversizedLengthRejectedWithoutAllocation) {
  std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kPing, std::vector<uint8_t>{});
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(wire.data(), &huge, 4);
  size_t consumed = 0;
  auto frame = DecodeFrame(wire, &consumed);
  EXPECT_TRUE(frame.status().IsOutOfRange());
}

TEST(FrameTest, ConsumesExactlyOneFrame) {
  const std::vector<uint8_t> first =
      EncodeFrame(FrameType::kPing, std::vector<uint8_t>{0x01});
  std::vector<uint8_t> wire = first;
  const std::vector<uint8_t> second =
      EncodeFrame(FrameType::kCancelJob, std::vector<uint8_t>{0x02});
  wire.insert(wire.end(), second.begin(), second.end());

  size_t consumed = 0;
  auto frame = DecodeFrame(wire, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(frame.value()->type, static_cast<uint32_t>(FrameType::kPing));

  // The rest of the buffer decodes as the second frame.
  size_t consumed2 = 0;
  auto frame2 = DecodeFrame(
      std::span<const uint8_t>(wire.data() + consumed,
                               wire.size() - consumed),
      &consumed2);
  ASSERT_TRUE(frame2.ok()) << frame2.status();
  ASSERT_TRUE(frame2.value().has_value());
  EXPECT_EQ(frame2.value()->type,
            static_cast<uint32_t>(FrameType::kCancelJob));
}

// ---------------------------------------------------------------------------
// Payload codecs.

JobSpec MakeSpec() {
  JobSpec spec;
  spec.bucket_paths = {"/data/a.pmkb", "/data/b.pmkb"};
  spec.engine.k = 12;
  spec.engine.restarts = 3;
  spec.engine.memory_kib = 256;
  spec.engine.cores = 4;
  spec.engine.failure_policy = "skip";
  spec.engine.max_retries = 1;
  spec.engine.op_timeout_ms = 5000;
  spec.engine.kernel = "scalar";
  spec.engine.checkpoint_dir = "/tmp/ckpt";
  spec.engine.checkpoint_sync = 0;
  spec.engine.resume = false;
  spec.run_id = "run-golden-1";
  spec.client = "tester";
  return spec;
}

void ExpectSpecEq(const JobSpec& a, const JobSpec& b, bool v2_fields) {
  EXPECT_EQ(a.bucket_paths, b.bucket_paths);
  EXPECT_EQ(a.engine.k, b.engine.k);
  EXPECT_EQ(a.engine.restarts, b.engine.restarts);
  EXPECT_EQ(a.engine.memory_kib, b.engine.memory_kib);
  EXPECT_EQ(a.engine.cores, b.engine.cores);
  EXPECT_EQ(a.engine.failure_policy, b.engine.failure_policy);
  EXPECT_EQ(a.engine.max_retries, b.engine.max_retries);
  EXPECT_EQ(a.engine.op_timeout_ms, b.engine.op_timeout_ms);
  EXPECT_EQ(a.engine.kernel, b.engine.kernel);
  EXPECT_EQ(a.engine.checkpoint_dir, b.engine.checkpoint_dir);
  EXPECT_EQ(a.engine.checkpoint_sync, b.engine.checkpoint_sync);
  EXPECT_EQ(a.engine.resume, b.engine.resume);
  if (v2_fields) {
    EXPECT_EQ(a.run_id, b.run_id);
    EXPECT_EQ(a.client, b.client);
  }
}

TEST(JobSpecCodecTest, RoundtripV2) {
  const JobSpec spec = MakeSpec();
  auto decoded = DecodeJobSpec(EncodeJobSpec(spec, 2), 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSpecEq(spec, decoded.value(), /*v2_fields=*/true);
}

TEST(JobSpecCodecTest, V1DropsV2Fields) {
  // v2 client → v1 server: the v1 encoding simply omits run_id/client.
  const JobSpec spec = MakeSpec();
  auto decoded = DecodeJobSpec(EncodeJobSpec(spec, 1), 1);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSpecEq(spec, decoded.value(), /*v2_fields=*/false);
  EXPECT_TRUE(decoded.value().run_id.empty());
  EXPECT_TRUE(decoded.value().client.empty());
}

TEST(JobSpecCodecTest, V1PayloadDecodesOnV2Peer) {
  // v1 client → v2 server: the server decodes at the negotiated version
  // (1), defaulting the missing fields.
  const JobSpec spec = MakeSpec();
  auto decoded = DecodeJobSpec(EncodeJobSpec(spec, 1), 1);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded.value().run_id.empty());
}

TEST(JobSpecCodecTest, TrailingBytesIgnoredForForwardCompat) {
  // A future minor version appends fields; this build must ignore them.
  std::vector<uint8_t> payload = EncodeJobSpec(MakeSpec(), 2);
  payload.insert(payload.end(), {0x01, 0x02, 0x03, 0x04});
  auto decoded = DecodeJobSpec(payload, 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectSpecEq(MakeSpec(), decoded.value(), /*v2_fields=*/true);
}

TEST(JobSpecCodecTest, TruncationRejectedAtEveryLength) {
  const std::vector<uint8_t> payload = EncodeJobSpec(MakeSpec(), 2);
  for (size_t n = 0; n < payload.size(); ++n) {
    auto decoded = DecodeJobSpec(
        std::span<const uint8_t>(payload.data(), n), 2);
    EXPECT_FALSE(decoded.ok()) << "prefix " << n;
  }
}

TEST(JobSpecCodecTest, AbsurdPathCountRejected) {
  // A corrupt count must be rejected against the remaining bytes, not
  // trusted into a giant reserve().
  std::vector<uint8_t> payload = EncodeJobSpec(MakeSpec(), 2);
  const uint32_t absurd = 0x40000000;
  std::memcpy(payload.data(), &absurd, 4);  // path_count is field one
  EXPECT_TRUE(DecodeJobSpec(payload, 2).status().IsOutOfRange());
}

JobInfo MakeInfo() {
  JobInfo info;
  info.job_id = 42;
  info.state = JobState::kFailed;
  info.client = "tester";
  info.run_id = "run-abc";
  info.status = Status::IOError("disk on fire");
  info.cells = 17;
  info.wall_seconds = 2.75;
  return info;
}

TEST(JobInfoCodecTest, Roundtrip) {
  const JobInfo info = MakeInfo();
  auto decoded = DecodeJobInfo(EncodeJobInfo(info));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().job_id, info.job_id);
  EXPECT_EQ(decoded.value().state, info.state);
  EXPECT_EQ(decoded.value().client, info.client);
  EXPECT_EQ(decoded.value().run_id, info.run_id);
  EXPECT_EQ(decoded.value().status.code(), info.status.code());
  EXPECT_EQ(decoded.value().status.message(), info.status.message());
  EXPECT_EQ(decoded.value().cells, info.cells);
  EXPECT_EQ(decoded.value().wall_seconds, info.wall_seconds);
}

TEST(JobInfoCodecTest, BadStateTagRejected) {
  std::vector<uint8_t> payload = EncodeJobInfo(MakeInfo());
  const uint32_t bad_state = 250;
  std::memcpy(payload.data() + 8, &bad_state, 4);  // after u64 job_id
  EXPECT_TRUE(DecodeJobInfo(payload).status().IsOutOfRange());
}

TEST(JobListCodecTest, RoundtripAndOrder) {
  std::vector<JobInfo> jobs;
  for (uint64_t id : {3u, 1u, 7u}) {
    JobInfo info;
    info.job_id = id;
    info.state = JobState::kDone;
    info.cells = id * 10;
    jobs.push_back(info);
  }
  auto decoded = DecodeJobList(EncodeJobList(jobs));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded.value().size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].job_id, jobs[i].job_id);
    EXPECT_EQ(decoded.value()[i].cells, jobs[i].cells);
  }
}

TEST(JobListCodecTest, AbsurdCountRejected) {
  std::vector<uint8_t> payload = EncodeJobList({});
  const uint32_t absurd = 0x7FFFFFFF;
  std::memcpy(payload.data(), &absurd, 4);
  EXPECT_TRUE(DecodeJobList(payload).status().IsOutOfRange());
}

TEST(ModelSetCodecTest, BitExactRoundtrip) {
  // The byte-identity guarantee between LocalService and RemoteService
  // rests on this codec restoring every double bitwise — including
  // awkward values like denormals and values with no short decimal form.
  CellClustering cell;
  cell.cell = GridCellId{-3, 17};
  cell.input_points = 12345;
  cell.pooled_centroids = 678;
  cell.merge_seconds = 0.1 + 0.2;  // 0.30000000000000004
  Dataset centroids(3);
  const double rows[2][3] = {
      {1.0 / 3.0, -2.5e-308, 1e300},
      {0.0, -0.0, 6.02214076e23},
  };
  centroids.Append(rows[0]);
  centroids.Append(rows[1]);
  cell.model.centroids = centroids;
  cell.model.weights = {600.25, 0.125};
  cell.model.sse = 1.0000000000000002;
  cell.model.mse_per_point = 1e-17;
  cell.model.iterations = 31;
  cell.model.converged = true;

  std::map<GridCellId, CellClustering> cells;
  cells[cell.cell] = cell;
  auto decoded = DecodeModelSet(EncodeModelSet(cells));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded.value().size(), 1u);
  const CellClustering& back = decoded.value().at(cell.cell);
  EXPECT_EQ(back.input_points, cell.input_points);
  EXPECT_EQ(back.pooled_centroids, cell.pooled_centroids);
  EXPECT_EQ(back.merge_seconds, cell.merge_seconds);
  EXPECT_EQ(back.model.centroids, cell.model.centroids);
  EXPECT_EQ(back.model.weights, cell.model.weights);
  EXPECT_EQ(back.model.sse, cell.model.sse);
  EXPECT_EQ(back.model.mse_per_point, cell.model.mse_per_point);
  EXPECT_EQ(back.model.iterations, cell.model.iterations);
  EXPECT_EQ(back.model.converged, cell.model.converged);
  // -0.0 must stay -0.0 (EXPECT_EQ(0.0, -0.0) passes, so check the sign
  // bit explicitly).
  EXPECT_TRUE(std::signbit(back.model.centroids(1, 1)));
}

TEST(ModelSetCodecTest, AbsurdCellCountRejected) {
  std::vector<uint8_t> payload =
      EncodeModelSet(std::map<GridCellId, CellClustering>{});
  const uint32_t absurd = 0x7FFFFFFF;
  std::memcpy(payload.data(), &absurd, 4);
  EXPECT_TRUE(DecodeModelSet(payload).status().IsOutOfRange());
}

TEST(U64CodecTest, RoundtripAndTruncation) {
  auto decoded = DecodeU64(EncodeU64(0xDEADBEEFCAFEF00Dull));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), 0xDEADBEEFCAFEF00Dull);
  EXPECT_FALSE(DecodeU64(std::vector<uint8_t>(7, 0)).ok());
}

TEST(ReplyCodecTest, RoundtripOkWithBody) {
  const std::vector<uint8_t> body = {9, 8, 7};
  auto decoded = DecodeReply(EncodeReply(Status::OK(), body));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded.value().status.ok());
  EXPECT_EQ(decoded.value().body, body);
}

TEST(ReplyCodecTest, RoundtripErrorStatus) {
  const Status error = Status::NotFound("job 9 unknown");
  auto decoded =
      DecodeReply(EncodeReply(error, std::vector<uint8_t>{}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded.value().status.IsNotFound());
  EXPECT_EQ(decoded.value().status.message(), error.message());
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(ReplyCodecTest, BadStatusCodeRejected) {
  std::vector<uint8_t> payload =
      EncodeReply(Status::OK(), std::vector<uint8_t>{});
  const uint32_t bad = 999;
  std::memcpy(payload.data(), &bad, 4);
  EXPECT_TRUE(DecodeReply(payload).status().IsOutOfRange());
}

}  // namespace
}  // namespace serve
}  // namespace pmkm
