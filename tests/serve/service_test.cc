// ClusterService end to end: LocalService job lifecycle, admission
// control and graceful drain, and RemoteService against a live
// ServeDaemon on a unix socket — including the headline guarantee that
// local and remote execution of the same spec produce byte-identical
// models.

#include "serve/service.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/io.h"
#include "serve/daemon.h"
#include "serve/local_service.h"
#include "serve/protocol.h"
#include "serve/remote_service.h"

namespace pmkm {
namespace serve {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmkm_service_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes a deterministic bucket file and returns its path.
  std::string WriteBucket(int id, size_t points, uint64_t seed) {
    Rng rng(seed);
    GridBucket bucket;
    bucket.cell = GridCellId{id, id};
    bucket.points = GenerateMisrLikeCell(points, &rng);
    const std::string path =
        (dir_ / ("cell" + std::to_string(id) + ".pmkb")).string();
    EXPECT_TRUE(WriteGridBucket(path, bucket).ok());
    return path;
  }

  /// A small, fast, fully deterministic job over `paths`.
  JobSpec MakeSpec(std::vector<std::string> paths,
                   const std::string& client = "") {
    JobSpec spec;
    spec.bucket_paths = std::move(paths);
    spec.engine.k = 4;
    spec.engine.restarts = 2;
    spec.engine.memory_kib = 64;
    spec.engine.cores = 2;
    spec.engine.kernel = "scalar";
    spec.client = client;
    return spec;
  }

  /// A FIFO with no writer: the worker that picks this "bucket" up blocks
  /// opening it, deterministically pinning the worker until
  /// ReleaseFifo(). The job then fails on the empty read — which is fine;
  /// these jobs exist only to occupy workers.
  std::string MakeBlockingFifo() {
    const std::string path = (dir_ / "block.fifo").string();
    EXPECT_EQ(::mkfifo(path.c_str(), 0600), 0);
    return path;
  }

  void ReleaseFifo(const std::string& path) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ::close(fd);  // reader sees EOF; the blocked job fails and finishes
  }

  std::filesystem::path dir_;
};

TEST_F(ServiceTest, LocalRunsJobToDone) {
  LocalService service(LocalServiceOptions{});
  const JobSpec spec =
      MakeSpec({WriteBucket(1, 600, 2), WriteBucket(2, 400, 3)});

  auto job_id = service.SubmitJob(spec);
  ASSERT_TRUE(job_id.ok()) << job_id.status();

  auto info = service.AwaitJob(job_id.value(), 120000);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_TRUE(info->status.ok());
  EXPECT_EQ(info->cells, 2u);
  EXPECT_FALSE(info->run_id.empty());  // generated when the spec had none
  EXPECT_GE(info->wall_seconds, 0.0);

  auto cells = service.FetchModel(job_id.value());
  ASSERT_TRUE(cells.ok()) << cells.status();
  EXPECT_EQ(cells->size(), 2u);
  EXPECT_GT(cells->at(GridCellId{1, 1}).model.centroids.size(), 0u);

  // The LocalService-only full result is available for kDone jobs.
  auto run = service.RunResult(job_id.value());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->cells.size(), 2u);

  auto jobs = service.ListJobs();
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 1u);
  EXPECT_EQ(jobs->front().job_id, job_id.value());

  EXPECT_NE(service.JobsJson().find("\"done\""), std::string::npos);
}

TEST_F(ServiceTest, LocalRejectsInvalidSpecs) {
  LocalService service(LocalServiceOptions{});
  JobSpec bad_k = MakeSpec({WriteBucket(1, 100, 2)});
  bad_k.engine.k = 0;
  EXPECT_TRUE(service.SubmitJob(bad_k).status().IsInvalidArgument());

  EXPECT_TRUE(
      service.SubmitJob(MakeSpec({})).status().IsInvalidArgument());
}

TEST_F(ServiceTest, LocalUnknownIdsAreNotFound) {
  LocalService service(LocalServiceOptions{});
  EXPECT_TRUE(service.JobStatus(404).status().IsNotFound());
  EXPECT_TRUE(service.FetchModel(404).status().IsNotFound());
  EXPECT_TRUE(service.CancelJob(404).IsNotFound());
  EXPECT_TRUE(service.AwaitJob(404, 100).status().IsNotFound());
}

TEST_F(ServiceTest, LocalQueueFullRejectsBeforeConsumingAnId) {
  LocalServiceOptions options;
  options.max_queued_jobs = 0;  // every submit finds the queue "full"
  LocalService service(options);
  auto rejected = service.SubmitJob(MakeSpec({WriteBucket(1, 100, 2)}));
  EXPECT_TRUE(rejected.status().IsFailedPrecondition());
  // The rejected submit consumed nothing: the job table stays empty.
  auto jobs = service.ListJobs();
  ASSERT_TRUE(jobs.ok());
  EXPECT_TRUE(jobs->empty());
}

TEST_F(ServiceTest, LocalPerClientCapAndQueuedCancel) {
  LocalServiceOptions options;
  options.num_workers = 1;
  options.max_jobs_per_client = 1;
  LocalService service(options);

  // Pin the single worker on a FIFO so later jobs stay deterministically
  // queued.
  const std::string fifo = MakeBlockingFifo();
  auto blocked = service.SubmitJob(MakeSpec({fifo}, "alice"));
  ASSERT_TRUE(blocked.ok()) << blocked.status();

  // alice is at her cap of 1 live job; bob is not affected.
  EXPECT_TRUE(service.SubmitJob(MakeSpec({fifo}, "alice"))
                  .status()
                  .IsFailedPrecondition());
  auto queued = service.SubmitJob(MakeSpec({fifo}, "bob"));
  ASSERT_TRUE(queued.ok()) << queued.status();

  // bob's job cannot start (worker busy): AwaitJob times out...
  EXPECT_TRUE(service.AwaitJob(queued.value(), 50)
                  .status()
                  .IsDeadlineExceeded());
  // ...and FetchModel refuses while non-terminal.
  EXPECT_TRUE(service.FetchModel(queued.value())
                  .status()
                  .IsFailedPrecondition());

  // Cancelling the queued job is immediate and terminal.
  ASSERT_TRUE(service.CancelJob(queued.value()).ok());
  auto info = service.JobStatus(queued.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_TRUE(info->status.IsCancelled());
  EXPECT_TRUE(service.FetchModel(queued.value()).status().IsCancelled());
  // A second cancel of a terminal job is refused.
  EXPECT_TRUE(service.CancelJob(queued.value()).IsFailedPrecondition());

  // With bob's job cancelled, alice's cap is the only live job; bob can
  // submit again... but first release the worker so teardown can drain.
  ReleaseFifo(fifo);
  auto final_info = service.AwaitJob(blocked.value(), 120000);
  ASSERT_TRUE(final_info.ok()) << final_info.status();
  EXPECT_EQ(final_info->state, JobState::kFailed);
  EXPECT_FALSE(final_info->status.ok());
}

TEST_F(ServiceTest, LocalDrainKeepsAcceptedJobsAndRejectsNew) {
  LocalService service(LocalServiceOptions{});
  const std::string path = WriteBucket(1, 500, 4);
  auto accepted = service.SubmitJob(MakeSpec({path}));
  ASSERT_TRUE(accepted.ok()) << accepted.status();

  service.BeginDrain();
  EXPECT_TRUE(service.draining());
  // New work is refused...
  EXPECT_TRUE(
      service.SubmitJob(MakeSpec({path})).status().IsFailedPrecondition());
  // ...but the accepted job is never lost: drain completes it.
  service.Drain();
  auto info = service.JobStatus(accepted.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kDone);
  auto cells = service.FetchModel(accepted.value());
  ASSERT_TRUE(cells.ok()) << cells.status();
  EXPECT_EQ(cells->size(), 1u);
}

TEST_F(ServiceTest, ListJobsIsAscendingUnderAdversarialCompletionOrder) {
  // ListJobs and /jobz promise strictly ascending job_id order
  // (service.h) no matter in what order jobs reach terminal states.
  // Pin the single worker, queue five more jobs, then terminalize the
  // queued ones in a deliberately scrambled order via CancelJob.
  LocalServiceOptions options;
  options.num_workers = 1;
  LocalService service(options);
  const std::string fifo = MakeBlockingFifo();

  auto blocker = service.SubmitJob(MakeSpec({fifo}, "pin"));
  ASSERT_TRUE(blocker.ok()) << blocker.status();
  std::vector<uint64_t> queued;
  for (int i = 0; i < 5; ++i) {
    auto id = service.SubmitJob(
        MakeSpec({fifo}, "client" + std::to_string(i)));
    ASSERT_TRUE(id.ok()) << id.status();
    queued.push_back(id.value());
  }
  // Adversarial terminal order: 3rd, 1st, 5th, 2nd, 4th.
  for (const int idx : {2, 0, 4, 1, 3}) {
    ASSERT_TRUE(service.CancelJob(queued[idx]).ok());
  }
  ReleaseFifo(fifo);
  auto final_info = service.AwaitJob(blocker.value(), 120000);
  ASSERT_TRUE(final_info.ok()) << final_info.status();

  auto jobs = service.ListJobs();
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs->size(), 6u);
  for (size_t i = 1; i < jobs->size(); ++i) {
    EXPECT_LT(jobs->at(i - 1).job_id, jobs->at(i).job_id)
        << "ListJobs not strictly ascending at index " << i;
  }

  // /jobz emits the same ascending order: pull the "job_id" values out
  // of the JSON in document order.
  const std::string json = service.JobsJson();
  std::vector<uint64_t> jobz_ids;
  size_t pos = 0;
  while ((pos = json.find("\"job_id\"", pos)) != std::string::npos) {
    pos = json.find(':', pos);
    ASSERT_NE(pos, std::string::npos);
    jobz_ids.push_back(std::stoull(json.substr(pos + 1)));
  }
  ASSERT_EQ(jobz_ids.size(), 6u);
  for (size_t i = 1; i < jobz_ids.size(); ++i) {
    EXPECT_LT(jobz_ids[i - 1], jobz_ids[i])
        << "/jobz not strictly ascending at index " << i;
  }
}

TEST_F(ServiceTest, RemoteMatchesLocalByteForByte) {
  const std::vector<std::string> paths = {WriteBucket(1, 600, 2),
                                          WriteBucket(2, 400, 3)};
  const JobSpec spec = MakeSpec(paths, "ci");

  // Reference: the same spec through an embedded LocalService.
  std::map<GridCellId, CellClustering> local_cells;
  {
    LocalService local(LocalServiceOptions{});
    auto job_id = local.SubmitJob(spec);
    ASSERT_TRUE(job_id.ok()) << job_id.status();
    ASSERT_TRUE(local.AwaitJob(job_id.value(), 120000).ok());
    auto cells = local.FetchModel(job_id.value());
    ASSERT_TRUE(cells.ok()) << cells.status();
    local_cells = std::move(cells).value();
  }

  // Same spec through a daemon over a unix socket.
  ServeDaemon daemon;
  DaemonOptions options;
  options.endpoint = "unix:" + (dir_ / "serve.sock").string();
  ASSERT_TRUE(daemon.Start(options).ok());

  RemoteService remote;
  ASSERT_TRUE(remote.Connect(daemon.bound_endpoint()).ok());
  EXPECT_TRUE(remote.connected());
  EXPECT_EQ(remote.negotiated_version(), kProtocolVersion);
  EXPECT_TRUE(remote.Ping().ok());

  auto job_id = remote.SubmitJob(spec);
  ASSERT_TRUE(job_id.ok()) << job_id.status();
  auto info = remote.AwaitJob(job_id.value(), 120000);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_EQ(info->client, "ci");
  auto remote_cells = remote.FetchModel(job_id.value());
  ASSERT_TRUE(remote_cells.ok()) << remote_cells.status();

  // The headline acceptance guarantee: identical bytes, not "close".
  // merge_seconds is wall-clock and legitimately differs between runs;
  // zero it on both sides so the comparison covers every model byte.
  auto strip_timing = [](std::map<GridCellId, CellClustering> cells) {
    for (auto& [id, cell] : cells) cell.merge_seconds = 0.0;
    return cells;
  };
  EXPECT_EQ(EncodeModelSet(strip_timing(local_cells)),
            EncodeModelSet(strip_timing(remote_cells.value())));

  auto listed = remote.ListJobs();
  ASSERT_TRUE(listed.ok()) << listed.status();
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ(listed->front().job_id, job_id.value());

  // Daemon-side drain: admission stops, results stay fetchable.
  daemon.BeginDrain();
  EXPECT_TRUE(remote.SubmitJob(spec).status().IsFailedPrecondition());
  EXPECT_TRUE(remote.FetchModel(job_id.value()).ok());

  remote.Disconnect();
  daemon.DrainAndStop();
}

TEST_F(ServiceTest, RemoteErrorSemanticsMatchLocal) {
  ServeDaemon daemon;
  DaemonOptions options;
  options.endpoint = "unix:" + (dir_ / "serve.sock").string();
  ASSERT_TRUE(daemon.Start(options).ok());

  RemoteService remote;
  ASSERT_TRUE(remote.Connect(daemon.bound_endpoint()).ok());

  // Status objects survive the wire: same code, same category.
  EXPECT_TRUE(remote.JobStatus(404).status().IsNotFound());
  EXPECT_TRUE(remote.FetchModel(404).status().IsNotFound());
  EXPECT_TRUE(remote.CancelJob(404).IsNotFound());

  JobSpec bad = MakeSpec({"/nonexistent.pmkb"});
  bad.engine.k = 0;
  EXPECT_TRUE(remote.SubmitJob(bad).status().IsInvalidArgument());

  remote.Disconnect();
  daemon.Stop();
}

TEST_F(ServiceTest, RemoteFailsFastWhenNotConnected) {
  RemoteService remote;
  EXPECT_FALSE(remote.connected());
  EXPECT_TRUE(remote.Ping().IsFailedPrecondition());
  EXPECT_TRUE(remote.SubmitJob(MakeSpec({"x"}))
                  .status()
                  .IsFailedPrecondition());
  // Connecting to a dead endpoint fails cleanly, not hangs.
  EXPECT_FALSE(
      remote.Connect("unix:" + (dir_ / "nothing.sock").string()).ok());
}

}  // namespace
}  // namespace serve
}  // namespace pmkm
