// Smoke tests for the CLI tools: generate → cluster → inspect, driven as
// real subprocesses (paths injected by CMake via compile definitions).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "cluster/serialize.h"
#include "data/io.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_tools_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int Run(const std::string& command) {
    return std::system((command + " > /dev/null 2>&1").c_str());
  }

  /// The subprocess's actual exit code (Run returns the raw wait status).
  int ExitCode(const std::string& command) {
    const int status = Run(command);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string Dir(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

TEST_F(ToolsTest, GenerateCellsMode) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" +
                Dir("b") + " --mode=cells --cells=3 --n=500"),
            0);
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    ++files;
    auto bucket = ReadGridBucket(e.path().string());
    ASSERT_TRUE(bucket.ok()) << bucket.status();
    EXPECT_EQ(bucket->points.size(), 500u);
    EXPECT_EQ(bucket->points.dim(), 6u);
  }
  EXPECT_EQ(files, 3u);
}

TEST_F(ToolsTest, GenerateSwathMode) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" +
                Dir("s") +
                " --mode=swath --orbits=1 --cell-degrees=30 "
                "--min-cell-points=50"),
            0);
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(Dir("s"))) {
    ++files;
    auto bucket = ReadGridBucket(e.path().string());
    ASSERT_TRUE(bucket.ok());
    EXPECT_GE(bucket->points.size(), 50u);
  }
  EXPECT_GT(files, 0u);
}

TEST_F(ToolsTest, BadModeFails) {
  EXPECT_NE(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("x") +
                " --mode=bogus"),
            0);
}

TEST_F(ToolsTest, EndToEndClusterAndInspect) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=2 --n=800"),
            0);
  std::string buckets;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    buckets += " " + e.path().string();
  }
  for (const std::string algo : {"pm", "serial", "stream"}) {
    const std::string out = Dir("m_" + algo);
    ASSERT_EQ(Run(std::string(PMKM_TOOL_CLUSTER) + " --algo=" + algo +
                  " --k=8 --restarts=2 --splits=4 --out=" + out +
                  buckets),
              0)
        << algo;
    size_t models = 0;
    for (const auto& e : fs::directory_iterator(out)) {
      ++models;
      auto model = LoadModel(e.path().string());
      ASSERT_TRUE(model.ok()) << model.status();
      EXPECT_LE(model->k(), 8u);
      // Inspect must succeed on the model file too.
      EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " " +
                    e.path().string()),
                0);
    }
    EXPECT_EQ(models, 2u) << algo;
  }
}

TEST_F(ToolsTest, StreamObservabilityOutputsAndInspect) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=2 --n=600"),
            0);
  std::string buckets;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    buckets += " " + e.path().string();
  }
  const std::string metrics = Dir("run.metrics.json");
  const std::string prom = Dir("run.prom");
  const std::string trace = Dir("run.trace.json");
  const std::string stdout_file = Dir("cluster.out");
  // --stats goes to stdout; capture it instead of discarding.
  ASSERT_EQ(std::system((std::string(PMKM_TOOL_CLUSTER) +
                         " --algo=stream --k=6 --restarts=2 --stats" +
                         " --metrics_out=" + metrics +
                         " --prom_out=" + prom + " --trace_out=" + trace +
                         " --out=" + Dir("m") + buckets + " > " +
                         stdout_file + " 2>&1")
                            .c_str()),
            0);

  std::ifstream in(stdout_file);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_NE(text.find("merge-kmeans"), std::string::npos);
  EXPECT_NE(text.find("partial-kmeans"), std::string::npos);
  EXPECT_NE(text.find("exchange \"points\""), std::string::npos);

  ASSERT_TRUE(fs::exists(metrics));
  ASSERT_TRUE(fs::exists(prom));
  ASSERT_TRUE(fs::exists(trace));
  EXPECT_GT(fs::file_size(trace), 0u);

  // Both machine-readable outputs round-trip through pmkm_inspect.
  EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " metrics " + metrics),
            0);
  EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " trace " + trace), 0);
  // Wrong subcommand/file pairings fail loudly.
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " metrics " + prom), 0);
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " trace " + metrics), 0);
}

TEST_F(ToolsTest, InspectBucket) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=1 --n=100"),
            0);
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    EXPECT_EQ(
        Run(std::string(PMKM_TOOL_INSPECT) + " " + e.path().string()), 0);
  }
}

TEST_F(ToolsTest, InspectRejectsGarbage) {
  const std::string path = Dir("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pmkm file";
  }
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " " + path), 0);
}

TEST_F(ToolsTest, InspectExitCodesAreStatusDerived) {
  // The documented sysexits contract: every failure path exits with
  // StatusExitCode(status), never an ad-hoc 1.
  const std::string inspect(PMKM_TOOL_INSPECT);

  // 64 EX_USAGE: bad flags, and no input files.
  EXPECT_EQ(ExitCode(inspect + " --no-such-flag x.pmkb"), 64);
  EXPECT_EQ(ExitCode(inspect), 64);

  // 66 EX_NOINPUT: the file does not exist.
  EXPECT_EQ(ExitCode(inspect + " " + Dir("missing.pmkb")), 66);

  // 65 EX_DATAERR: readable file, but not a pmkm format.
  const std::string garbage = Dir("garbage.bin");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a pmkm file";
  }
  EXPECT_EQ(ExitCode(inspect + " " + garbage), 65);

  // 74 EX_IOERR: right magic, corrupt payload.
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=1 --n=100"),
            0);
  std::string bucket;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    bucket = e.path().string();
  }
  ASSERT_FALSE(bucket.empty());
  const std::string truncated = Dir("truncated.pmkb");
  {
    std::ifstream in(bucket, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(ExitCode(inspect + " " + truncated), 74);

  // Several inputs: every failure renders, the first one's code wins.
  EXPECT_EQ(
      ExitCode(inspect + " " + Dir("missing.pmkb") + " " + garbage), 66);
  EXPECT_EQ(
      ExitCode(inspect + " " + garbage + " " + Dir("missing.pmkb")), 65);

  // A failing input does not mask a later success, nor vice versa: the
  // good file still renders, but the exit code reflects the failure.
  EXPECT_EQ(ExitCode(inspect + " " + bucket + " " + garbage), 65);

  // 0 on full success.
  EXPECT_EQ(ExitCode(inspect + " " + bucket), 0);
}

TEST_F(ToolsTest, ClusterWithoutInputsFails) {
  EXPECT_NE(Run(std::string(PMKM_TOOL_CLUSTER) + " --k=4"), 0);
}

}  // namespace
}  // namespace pmkm
