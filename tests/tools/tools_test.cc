// Smoke tests for the CLI tools: generate → cluster → inspect, driven as
// real subprocesses (paths injected by CMake via compile definitions).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "cluster/serialize.h"
#include "data/io.h"

namespace pmkm {
namespace {

namespace fs = std::filesystem;

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("pmkm_tools_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int Run(const std::string& command) {
    return std::system((command + " > /dev/null 2>&1").c_str());
  }

  std::string Dir(const std::string& sub) const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

TEST_F(ToolsTest, GenerateCellsMode) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" +
                Dir("b") + " --mode=cells --cells=3 --n=500"),
            0);
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    ++files;
    auto bucket = ReadGridBucket(e.path().string());
    ASSERT_TRUE(bucket.ok()) << bucket.status();
    EXPECT_EQ(bucket->points.size(), 500u);
    EXPECT_EQ(bucket->points.dim(), 6u);
  }
  EXPECT_EQ(files, 3u);
}

TEST_F(ToolsTest, GenerateSwathMode) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" +
                Dir("s") +
                " --mode=swath --orbits=1 --cell-degrees=30 "
                "--min-cell-points=50"),
            0);
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(Dir("s"))) {
    ++files;
    auto bucket = ReadGridBucket(e.path().string());
    ASSERT_TRUE(bucket.ok());
    EXPECT_GE(bucket->points.size(), 50u);
  }
  EXPECT_GT(files, 0u);
}

TEST_F(ToolsTest, BadModeFails) {
  EXPECT_NE(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("x") +
                " --mode=bogus"),
            0);
}

TEST_F(ToolsTest, EndToEndClusterAndInspect) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=2 --n=800"),
            0);
  std::string buckets;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    buckets += " " + e.path().string();
  }
  for (const std::string algo : {"pm", "serial", "stream"}) {
    const std::string out = Dir("m_" + algo);
    ASSERT_EQ(Run(std::string(PMKM_TOOL_CLUSTER) + " --algo=" + algo +
                  " --k=8 --restarts=2 --splits=4 --out=" + out +
                  buckets),
              0)
        << algo;
    size_t models = 0;
    for (const auto& e : fs::directory_iterator(out)) {
      ++models;
      auto model = LoadModel(e.path().string());
      ASSERT_TRUE(model.ok()) << model.status();
      EXPECT_LE(model->k(), 8u);
      // Inspect must succeed on the model file too.
      EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " " +
                    e.path().string()),
                0);
    }
    EXPECT_EQ(models, 2u) << algo;
  }
}

TEST_F(ToolsTest, StreamObservabilityOutputsAndInspect) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=2 --n=600"),
            0);
  std::string buckets;
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    buckets += " " + e.path().string();
  }
  const std::string metrics = Dir("run.metrics.json");
  const std::string prom = Dir("run.prom");
  const std::string trace = Dir("run.trace.json");
  const std::string stdout_file = Dir("cluster.out");
  // --stats goes to stdout; capture it instead of discarding.
  ASSERT_EQ(std::system((std::string(PMKM_TOOL_CLUSTER) +
                         " --algo=stream --k=6 --restarts=2 --stats" +
                         " --metrics_out=" + metrics +
                         " --prom_out=" + prom + " --trace_out=" + trace +
                         " --out=" + Dir("m") + buckets + " > " +
                         stdout_file + " 2>&1")
                            .c_str()),
            0);

  std::ifstream in(stdout_file);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_NE(text.find("merge-kmeans"), std::string::npos);
  EXPECT_NE(text.find("partial-kmeans"), std::string::npos);
  EXPECT_NE(text.find("exchange \"points\""), std::string::npos);

  ASSERT_TRUE(fs::exists(metrics));
  ASSERT_TRUE(fs::exists(prom));
  ASSERT_TRUE(fs::exists(trace));
  EXPECT_GT(fs::file_size(trace), 0u);

  // Both machine-readable outputs round-trip through pmkm_inspect.
  EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " metrics " + metrics),
            0);
  EXPECT_EQ(Run(std::string(PMKM_TOOL_INSPECT) + " trace " + trace), 0);
  // Wrong subcommand/file pairings fail loudly.
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " metrics " + prom), 0);
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " trace " + metrics), 0);
}

TEST_F(ToolsTest, InspectBucket) {
  ASSERT_EQ(Run(std::string(PMKM_TOOL_GENBUCKETS) + " --out=" + Dir("b") +
                " --mode=cells --cells=1 --n=100"),
            0);
  for (const auto& e : fs::directory_iterator(Dir("b"))) {
    EXPECT_EQ(
        Run(std::string(PMKM_TOOL_INSPECT) + " " + e.path().string()), 0);
  }
}

TEST_F(ToolsTest, InspectRejectsGarbage) {
  const std::string path = Dir("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a pmkm file";
  }
  EXPECT_NE(Run(std::string(PMKM_TOOL_INSPECT) + " " + path), 0);
}

TEST_F(ToolsTest, ClusterWithoutInputsFails) {
  EXPECT_NE(Run(std::string(PMKM_TOOL_CLUSTER) + " --k=4"), 0);
}

}  // namespace
}  // namespace pmkm
