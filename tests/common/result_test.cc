#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace pmkm {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Chain(int x, int* out) {
  PMKM_ASSIGN_OR_RETURN(int h, Half(x));
  PMKM_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Chain(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(Chain(6, &out).IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Chain(5, &out).IsInvalidArgument());
}

TEST(ResultTest, ValueOrDieMovesOut) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(std::move(r).ValueOrDie(), "abc");
}

TEST(ResultTest, ErrorAccessorReturnsStatus) {
  Result<int> r(Status::IOError("disk on fire"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.error().IsIOError());
  EXPECT_EQ(r.error().message(), "disk on fire");
}

using ResultDeathTest = ::testing::Test;

TEST(ResultDeathTest, ValueOnErrorDiesWithStatusMessage) {
  Result<int> r(Status::NotFound("widget 7 missing"));
  EXPECT_DEATH((void)r.value(), "widget 7 missing");
}

TEST(ResultDeathTest, DereferenceOnErrorDies) {
  Result<std::string> r(Status::IOError("bad sector"));
  EXPECT_DEATH((void)r->size(), "bad sector");
}

TEST(ResultDeathTest, ErrorOnOkResultDies) {
  Result<int> r(5);
  EXPECT_DEATH((void)r.error(), "OK Result");
}

}  // namespace
}  // namespace pmkm
