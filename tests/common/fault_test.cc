#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pmkm {
namespace {

// Every test drives the process-global registry, so each one starts and
// ends from a clean slate.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_F(FaultTest, DisarmedSiteNeverFires) {
  FaultRegistry& reg = FaultRegistry::Global();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(reg.Hit("io.read").ok());
  }
  EXPECT_EQ(reg.hits("io.read"), 0u);  // fast path skips counting
}

TEST_F(FaultTest, NthHitFiresExactlyOnce) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.nth = 3;
  reg.Arm("io.read", spec);
  EXPECT_TRUE(reg.Hit("io.read").ok());
  EXPECT_TRUE(reg.Hit("io.read").ok());
  const Status third = reg.Hit("io.read");
  EXPECT_TRUE(third.IsIOError());
  EXPECT_EQ(third.message(), "injected fault at io.read");
  EXPECT_TRUE(reg.Hit("io.read").ok());
  EXPECT_EQ(reg.hits("io.read"), 4u);
  EXPECT_EQ(reg.failures("io.read"), 1u);
}

TEST_F(FaultTest, PermanentNthFiresFromNOnwards) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.nth = 2;
  spec.permanent = true;
  reg.Arm("op.partial", spec);
  EXPECT_TRUE(reg.Hit("op.partial").ok());
  EXPECT_FALSE(reg.Hit("op.partial").ok());
  EXPECT_FALSE(reg.Hit("op.partial").ok());
  EXPECT_EQ(reg.failures("op.partial"), 2u);
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultRegistry& reg = FaultRegistry::Global();
    reg.Reset();
    FaultSpec spec;
    spec.probability = 0.3;
    spec.seed = seed;
    reg.Arm("io.read", spec);
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) {
      outcomes.push_back(!reg.Hit("io.read").ok());
    }
    return outcomes;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // ~30% of 50 hits should fire; sanity-check it's neither 0 nor all.
  const size_t fired = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 50u);
}

TEST_F(FaultTest, MaxFailuresCapsInjection) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_failures = 2;
  reg.Arm("io.write", spec);
  EXPECT_FALSE(reg.Hit("io.write").ok());
  EXPECT_FALSE(reg.Hit("io.write").ok());
  EXPECT_TRUE(reg.Hit("io.write").ok());  // cap reached
  EXPECT_EQ(reg.failures("io.write"), 2u);
}

TEST_F(FaultTest, StallSiteStallsButNeverErrors) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.nth = 2;
  spec.stall_ms = 1234;
  reg.Arm("op.stall", spec);
  // Hit() and StallMs() share the site's hit counter; the error channel
  // stays clean for stall specs no matter which hit fires.
  EXPECT_TRUE(reg.Hit("op.stall").ok());       // hit 1
  EXPECT_EQ(reg.StallMs("op.stall"), 1234u);   // hit 2 == nth
  EXPECT_EQ(reg.StallMs("op.stall"), 0u);      // hit 3
  EXPECT_EQ(reg.hits("op.stall"), 3u);
}

TEST_F(FaultTest, CustomCodeAndMessage) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.nth = 1;
  spec.code = StatusCode::kInternal;
  spec.message = "simulated crash";
  reg.Arm("queue.push", spec);
  const Status st = reg.Hit("queue.push");
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(st.message(), "simulated crash");
}

TEST_F(FaultTest, DisarmStopsInjection) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.probability = 1.0;
  reg.Arm("io.read", spec);
  EXPECT_FALSE(reg.Hit("io.read").ok());
  reg.Disarm("io.read");
  EXPECT_TRUE(reg.Hit("io.read").ok());
}

TEST_F(FaultTest, ArmFromStringParsesFullGrammar) {
  FaultRegistry& reg = FaultRegistry::Global();
  ASSERT_TRUE(reg.ArmFromString(
                     "io.read:p=0.5,seed=9,max=3;"
                     "op.partial:n=2,perm=1,code=deadline,msg=slow worker")
                  .ok());
  EXPECT_TRUE(reg.Hit("op.partial").ok());
  const Status st = reg.Hit("op.partial");
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(st.message(), "slow worker");
  // io.read armed probabilistically; just confirm it's counting hits.
  (void)reg.Hit("io.read");
  EXPECT_EQ(reg.hits("io.read"), 1u);
}

TEST_F(FaultTest, ArmFromStringRejectsMalformedSpecs) {
  FaultRegistry& reg = FaultRegistry::Global();
  EXPECT_TRUE(reg.ArmFromString("no-colon-here").IsInvalidArgument());
  EXPECT_TRUE(reg.ArmFromString("io.read:p").IsInvalidArgument());
  EXPECT_TRUE(reg.ArmFromString("io.read:p=abc").IsInvalidArgument());
  EXPECT_TRUE(reg.ArmFromString("io.read:bogus=1").IsInvalidArgument());
  EXPECT_TRUE(reg.ArmFromString("io.read:code=teapot").IsInvalidArgument());
  EXPECT_TRUE(reg.ArmFromString(":p=1").IsInvalidArgument());
}

TEST_F(FaultTest, FaultPointMacroPropagates) {
  FaultRegistry& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.nth = 1;
  reg.Arm("macro.site", spec);
  auto guarded = []() -> Status {
    PMKM_FAULT_POINT("macro.site");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().IsIOError());
  EXPECT_TRUE(guarded().ok());
}

}  // namespace
}  // namespace pmkm
