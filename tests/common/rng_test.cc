#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace pmkm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Reseed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
  // n = 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.UniformDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng c1 = parent.Fork(1);
  Rng parent2(42);
  Rng c2 = parent2.Fork(1);
  // Same parent seed + tag → same child stream.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.Next(), c2.Next());
  // Different tags → different streams.
  Rng parent3(42);
  Rng c3 = parent3.Fork(2);
  Rng parent4(42);
  Rng c4 = parent4.Fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c3.Next() == c4.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace pmkm
