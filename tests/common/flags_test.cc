#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace pmkm {
namespace {

// Builds an argv-style array from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, ParsesIntDoubleStringBool) {
  int64_t n = 0;
  double x = 0.0;
  std::string s;
  bool b = false;
  FlagParser parser;
  parser.AddInt("n", &n, "count")
      .AddDouble("x", &x, "value")
      .AddString("s", &s, "name")
      .AddBool("b", &b, "toggle");
  ArgvBuilder args({"prog", "--n=42", "--x=2.5", "--s=hello", "--b"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(FlagsTest, SpaceSeparatedValues) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  ArgvBuilder args({"prog", "--n", "7"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 7);
}

TEST(FlagsTest, BooleanNegation) {
  bool b = true;
  FlagParser parser;
  parser.AddBool("verbose", &b, "log more");
  ArgvBuilder args({"prog", "--no-verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, ExplicitBoolValues) {
  bool b = false;
  FlagParser parser;
  parser.AddBool("flag", &b, "x");
  ArgvBuilder on({"prog", "--flag=true"});
  ASSERT_TRUE(parser.Parse(on.argc(), on.argv()).ok());
  EXPECT_TRUE(b);
  ArgvBuilder off({"prog", "--flag=false"});
  ASSERT_TRUE(parser.Parse(off.argc(), off.argv()).ok());
  EXPECT_FALSE(b);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser parser;
  ArgvBuilder args({"prog", "--bogus=1"});
  EXPECT_TRUE(parser.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, BadIntValueFails) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  ArgvBuilder args({"prog", "--n=abc"});
  EXPECT_TRUE(parser.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueFails) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  ArgvBuilder args({"prog", "--n"});
  EXPECT_TRUE(parser.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("n", &n, "count");
  ArgvBuilder args({"prog", "input.bin", "--n=1", "output.bin"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.bin");
  EXPECT_EQ(parser.positional()[1], "output.bin");
}

TEST(FlagsTest, NegativeNumbers) {
  int64_t n = 0;
  double x = 0.0;
  FlagParser parser;
  parser.AddInt("n", &n, "count").AddDouble("x", &x, "value");
  ArgvBuilder args({"prog", "--n=-5", "--x=-1.5e3"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, -5);
  EXPECT_DOUBLE_EQ(x, -1500.0);
}

TEST(FlagsTest, UsageListsFlags) {
  int64_t n = 0;
  FlagParser parser;
  parser.AddInt("points", &n, "number of points");
  const std::string usage = parser.Usage("prog");
  EXPECT_NE(usage.find("--points"), std::string::npos);
  EXPECT_NE(usage.find("number of points"), std::string::npos);
}

}  // namespace
}  // namespace pmkm
