#include "common/status.h"

#include <gtest/gtest.h>

namespace pmkm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
}

TEST(StatusTest, MessageIsPreserved) {
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "I/O error: disk on fire");
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  const Status a = Status::NotFound("missing");
  const Status b = a;  // shared state
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_NE(Status::Internal("a"), Status::Internal("b"));
  EXPECT_NE(Status::Internal("a"), Status::IOError("a"));
  EXPECT_NE(Status::OK(), Status::Internal("a"));
}

TEST(StatusTest, OkConstructedWithEmptyMessageViaCode) {
  const Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

Status Fails() { return Status::OutOfRange("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnNotOk(bool fail, bool* reached_end) {
  PMKM_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  *reached_end = true;
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesError) {
  bool reached = false;
  const Status s = UseReturnNotOk(true, &reached);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_FALSE(reached);
}

TEST(StatusTest, ReturnNotOkPassesThroughOnOk) {
  bool reached = false;
  EXPECT_TRUE(UseReturnNotOk(false, &reached).ok());
  EXPECT_TRUE(reached);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "I/O error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
}

}  // namespace
}  // namespace pmkm
