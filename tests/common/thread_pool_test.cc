#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

namespace pmkm {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 6 * 7; });
  auto f2 = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(1);
  pool.Shutdown();
  auto f = pool.Submit([] { return 1; });
  EXPECT_FALSE(f.valid());
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  std::vector<std::future<long>> futures;
  for (int chunk = 0; chunk < 16; ++chunk) {
    futures.push_back(pool.Submit([chunk] {
      long acc = 0;
      for (int i = chunk * 1000; i < (chunk + 1) * 1000; ++i) acc += i;
      return acc;
    }));
  }
  long total = 0;
  for (auto& f : futures) total += f.get();
  EXPECT_EQ(total, 16000L * 15999 / 2);
}

TEST(ThreadPoolTest, DoubleShutdownIsSafe) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // must not deadlock or crash
}

}  // namespace
}  // namespace pmkm
