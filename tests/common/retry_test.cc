#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace pmkm {
namespace {

RetryPolicy FastPolicy(size_t attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff_ms = 0;  // tests must not sleep
  return policy;
}

TEST(RetryTest, SucceedsFirstTry) {
  size_t calls = 0;
  size_t retries = 0;
  Result<int> r = RetryCall(
      FastPolicy(3), /*seed_tag=*/0,
      [&]() -> Result<int> {
        ++calls;
        return 7;
      },
      &retries);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, RetriesTransientFailureThenSucceeds) {
  size_t calls = 0;
  size_t retries = 0;
  Result<int> r = RetryCall(
      FastPolicy(5), /*seed_tag=*/0,
      [&]() -> Result<int> {
        if (++calls < 3) return Status::IOError("flaky");
        return 42;
      },
      &retries);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(retries, 2u);
}

TEST(RetryTest, ExhaustsAttempts) {
  size_t calls = 0;
  Status st = RetryCall(FastPolicy(4), /*seed_tag=*/1, [&]() -> Status {
    ++calls;
    return Status::IOError("always down");
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(calls, 4u);
}

TEST(RetryTest, NonRetryableErrorFailsImmediately) {
  size_t calls = 0;
  Status st = RetryCall(FastPolicy(5), /*seed_tag=*/0, [&]() -> Status {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, CustomRetryablePredicate) {
  RetryPolicy policy = FastPolicy(3);
  policy.retryable = [](const Status& st) { return st.IsInternal(); };
  size_t calls = 0;
  Status st = RetryCall(policy, /*seed_tag=*/0, [&]() -> Status {
    ++calls;
    return Status::Internal("transient-ish");
  });
  EXPECT_TRUE(st.IsInternal());
  EXPECT_EQ(calls, 3u);
  // And the default-retryable IOError is now non-retryable.
  calls = 0;
  st = RetryCall(policy, /*seed_tag=*/0, [&]() -> Status {
    ++calls;
    return Status::IOError("io");
  });
  EXPECT_EQ(calls, 1u);
}

TEST(RetryTest, DeadlineExceededIsRetryableByDefault) {
  EXPECT_TRUE(IsRetryableStatus(Status::DeadlineExceeded("slow")));
  EXPECT_TRUE(IsRetryableStatus(Status::IOError("io")));
  EXPECT_FALSE(IsRetryableStatus(Status::NotFound("gone")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
}

TEST(RetryTest, BackoffIsDeterministicForSameSeed) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 8;
  policy.jitter = 0.5;
  policy.seed = 123;

  auto collect = [&](uint64_t tag) {
    Retrier retrier(policy, tag);
    std::vector<uint64_t> delays;
    Status failing = Status::IOError("x");
    while (retrier.AllowRetryForTest(failing, &delays)) {
    }
    return delays;
  };
  const std::vector<uint64_t> a = collect(9);
  const std::vector<uint64_t> b = collect(9);
  const std::vector<uint64_t> c = collect(10);
  ASSERT_EQ(a.size(), 3u);  // max_attempts-1 retries
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed tag, different jitter stream
}

TEST(RetryTest, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 40;
  policy.jitter = 0.0;  // exact values
  Retrier retrier(policy, 0);
  std::vector<uint64_t> delays;
  Status failing = Status::IOError("x");
  while (retrier.AllowRetryForTest(failing, &delays)) {
  }
  ASSERT_EQ(delays.size(), 7u);
  EXPECT_EQ(delays[0], 10u);
  EXPECT_EQ(delays[1], 20u);
  EXPECT_EQ(delays[2], 40u);
  EXPECT_EQ(delays[3], 40u);  // capped
  EXPECT_EQ(delays[6], 40u);
}

TEST(RetryTest, OverallDeadlineStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ms = 50;
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.0;
  policy.overall_deadline_ms = 120;  // room for ~2 sleeps, not 99
  Retrier retrier(policy, 0);
  size_t grants = 0;
  while (retrier.AllowRetry(Status::IOError("x"))) ++grants;
  EXPECT_GE(grants, 1u);
  EXPECT_LE(grants, 3u);
}

TEST(RetryTest, RetrierRejectsOkAndNonRetryable) {
  Retrier retrier(FastPolicy(5), 0);
  EXPECT_FALSE(retrier.AllowRetry(Status::OK()));
  EXPECT_FALSE(retrier.AllowRetry(Status::InvalidArgument("no")));
  EXPECT_EQ(retrier.retries(), 0u);
}

}  // namespace
}  // namespace pmkm
