// Structured logging (common/logging.h): wire-format rendering for both
// text and JSON, run-id tagging, format parsing, and the token-bucket
// rate limiter. RenderLogLine and AcquireAt are pure/clock-free, so every
// test here is deterministic.

#include "common/logging.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace pmkm {
namespace {

using internal::FormatLogTimestamp;
using internal::LogTokenBucket;
using internal::RenderLogLine;
using internal::SuppressedTag;

TEST(LogTimestampTest, FormatsUtcMilliseconds) {
  // 2026-08-08T12:00:01.234Z
  EXPECT_EQ(FormatLogTimestamp(1786190401234), "2026-08-08T12:00:01.234Z");
  EXPECT_EQ(FormatLogTimestamp(0), "1970-01-01T00:00:00.000Z");
}

TEST(RenderLogLineTest, TextFormat) {
  const std::string line =
      RenderLogLine(LogLevel::kWarning, "ops.cc", 217, "queue stalled",
                    LogFormat::kText, "1f2e3d4c", 1786190401234);
  EXPECT_EQ(line,
            "[WARN 2026-08-08T12:00:01.234Z ops.cc:217 run=1f2e3d4c] "
            "queue stalled");
}

TEST(RenderLogLineTest, TextFormatWithoutRunId) {
  const std::string line =
      RenderLogLine(LogLevel::kInfo, "engine.cc", 10, "hello",
                    LogFormat::kText, "", 0);
  EXPECT_EQ(line,
            "[INFO 1970-01-01T00:00:00.000Z engine.cc:10] hello");
}

TEST(RenderLogLineTest, JsonFormatParsesAndCarriesFields) {
  const std::string line =
      RenderLogLine(LogLevel::kError, "scan.cc", 42, "bad \"bucket\"\n",
                    LogFormat::kJson, "abcd", 1786190401234);
  auto doc = JsonValue::Parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->Find("level")->AsString(), "ERROR");
  EXPECT_EQ(doc->Find("ts")->AsString(), "2026-08-08T12:00:01.234Z");
  EXPECT_EQ(doc->Find("src")->AsString(), "scan.cc:42");
  EXPECT_EQ(doc->Find("run_id")->AsString(), "abcd");
  // The message survives JSON escaping round-trip exactly.
  EXPECT_EQ(doc->Find("msg")->AsString(), "bad \"bucket\"\n");
}

TEST(RenderLogLineTest, JsonFormatOmitsEmptyRunId) {
  const std::string line = RenderLogLine(
      LogLevel::kInfo, "a.cc", 1, "m", LogFormat::kJson, "", 0);
  auto doc = JsonValue::Parse(line);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("run_id"), nullptr);
}

TEST(ParseLogFormatTest, ValidAndInvalidNames) {
  LogFormat format = LogFormat::kText;
  EXPECT_TRUE(ParseLogFormat("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  EXPECT_TRUE(ParseLogFormat("text", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_FALSE(ParseLogFormat("xml", &format));
  EXPECT_FALSE(ParseLogFormat("", &format));
  EXPECT_EQ(format, LogFormat::kText);  // unchanged on failure
}

TEST(LogRunIdTest, GlobalRoundTrip) {
  SetLogRunId("feedface");
  EXPECT_EQ(GetLogRunId(), "feedface");
  SetLogRunId("");
  EXPECT_EQ(GetLogRunId(), "");
}

TEST(LogFormatTest, GlobalRoundTrip) {
  SetLogFormat(LogFormat::kJson);
  EXPECT_EQ(GetLogFormat(), LogFormat::kJson);
  SetLogFormat(LogFormat::kText);
  EXPECT_EQ(GetLogFormat(), LogFormat::kText);
}

TEST(LogTokenBucketTest, AllowsBurstThenDenies) {
  // 1 line/sec with the default burst of 5 tokens.
  LogTokenBucket bucket(1.0);
  int64_t now = 10'000'000;  // 10s in, bucket full
  int allowed = 0;
  for (int i = 0; i < 20; ++i) {
    if (bucket.AcquireAt(now) != LogTokenBucket::kDenied) ++allowed;
  }
  // The 5 banked burst tokens plus the one accruing at `now` itself;
  // everything after is dropped.
  EXPECT_EQ(allowed, 6);
}

TEST(LogTokenBucketTest, RefillsAtConfiguredRate) {
  LogTokenBucket bucket(2.0, /*burst=*/1.0);  // one token every 500ms
  int64_t now = 5'000'000;
  EXPECT_EQ(bucket.AcquireAt(now), 0u);  // banked burst token
  EXPECT_EQ(bucket.AcquireAt(now), 0u);  // the token accruing at `now`
  EXPECT_EQ(bucket.AcquireAt(now), LogTokenBucket::kDenied);
  // 499ms later: still dry. 500ms later: one token back, and the
  // emitted line reports how many were dropped during the gap.
  EXPECT_EQ(bucket.AcquireAt(now + 499'000), LogTokenBucket::kDenied);
  EXPECT_EQ(bucket.AcquireAt(now + 500'000), 2u);
}

TEST(LogTokenBucketTest, SuppressionCountResetsAfterReport) {
  LogTokenBucket bucket(1.0, /*burst=*/1.0);
  int64_t now = 60'000'000;
  EXPECT_EQ(bucket.AcquireAt(now), 0u);
  EXPECT_EQ(bucket.AcquireAt(now), 0u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(bucket.AcquireAt(now), LogTokenBucket::kDenied);
  }
  EXPECT_EQ(bucket.AcquireAt(now + 1'000'000), 7u);
  // Next successful acquire reports only drops since this one.
  EXPECT_EQ(bucket.AcquireAt(now + 2'000'000), 0u);
}

TEST(SuppressedTagTest, Rendering) {
  EXPECT_EQ(SuppressedTag(0), "");
  EXPECT_EQ(SuppressedTag(3), "(suppressed 3 similar lines) ");
}

}  // namespace
}  // namespace pmkm
