// Property suites, part 3: the partitioning-strategy design space (paper
// §6) and the refinement extension, swept parametrically.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "data/generator.h"

namespace pmkm {
namespace {

// ---------------------------------------------------------------------------
// S1: every slicing strategy yields a complete, non-empty partitioning and
// a valid end-to-end model.

using StrategyParam = std::tuple<PartitionStrategy, int>;

class StrategyProperty : public ::testing::TestWithParam<StrategyParam> {};

const char* Name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRandom:
      return "random";
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kSpatial:
      return "spatial";
    case PartitionStrategy::kStripes:
      return "stripes";
  }
  return "?";
}

TEST_P(StrategyProperty, EndToEndInvariants) {
  const auto [strategy, p] = GetParam();
  Rng rng(static_cast<uint64_t>(p) * 997 +
          static_cast<uint64_t>(strategy));
  const Dataset cell = GenerateMisrLikeCell(3000, &rng);

  PartialMergeConfig config;
  config.partial.k = 8;
  config.partial.restarts = 2;
  config.num_partitions = static_cast<size_t>(p);
  config.strategy = strategy;
  auto result = PartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok()) << Name(strategy) << " p=" << p << ": "
                           << result.status();

  // Mass conservation holds under every slicing.
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, 3000.0, 1e-6);

  // Spatial slicing may produce a different partition count (grid cells),
  // the others respect p (up to empty-part dropping).
  EXPECT_GE(result->num_partitions, 1u);
  if (strategy != PartitionStrategy::kSpatial) {
    EXPECT_LE(result->num_partitions, static_cast<size_t>(p));
  }

  // The model must beat the trivial single-mean model on raw points.
  Dataset mean_model(cell.dim());
  mean_model.Append(cell.Mean());
  EXPECT_LT(Sse(result->model.centroids, cell), Sse(mean_model, cell));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyProperty,
    ::testing::Combine(::testing::Values(PartitionStrategy::kRandom,
                                         PartitionStrategy::kContiguous,
                                         PartitionStrategy::kSpatial,
                                         PartitionStrategy::kStripes),
                       ::testing::Values(2, 6, 12)),
    [](const ::testing::TestParamInfo<StrategyParam>& info) {
      return std::string(Name(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// S2: refinement is monotone — more refinement iterations never increase
// the raw error (Lloyd monotonicity through the driver).

class RefineProperty : public ::testing::TestWithParam<int> {};

TEST_P(RefineProperty, RawErrorNonIncreasingInBudget) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Dataset cell = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  double prev = std::numeric_limits<double>::infinity();
  for (size_t budget : {0u, 1u, 3u, 10u}) {
    PartialMergeConfig config;
    config.partial.k = 10;
    config.partial.restarts = 2;
    config.num_partitions = 5;
    config.refine_iterations = budget;
    auto result = PartialMergeKMeans(config).Run(cell);
    ASSERT_TRUE(result.ok());
    const double raw = Sse(result->model.centroids, cell);
    EXPECT_LE(raw, prev * (1.0 + 1e-9)) << "budget " << budget;
    prev = raw;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RefineProperty,
                         ::testing::Values(800, 4000));

}  // namespace
}  // namespace pmkm
