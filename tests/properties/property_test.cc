// Property-based suites (parameterized gtest): invariants that must hold
// across sweeps of the algorithm's configuration space, not just at one
// hand-picked setting.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <tuple>

#include "cluster/metrics.h"
#include "cluster/partial_merge.h"
#include "data/generator.h"
#include "data/io.h"

namespace pmkm {
namespace {

// ---------------------------------------------------------------------------
// P1: partial/merge invariants over (n, splits, k).

using PmParam = std::tuple<int, int, int>;  // n, splits, k

class PartialMergeProperty : public ::testing::TestWithParam<PmParam> {};

TEST_P(PartialMergeProperty, Invariants) {
  const auto [n, splits, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 31 + splits * 7 + k));
  const Dataset cell = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);

  PartialMergeConfig config;
  config.partial.k = static_cast<size_t>(k);
  config.partial.restarts = 2;
  config.num_partitions = static_cast<size_t>(splits);
  auto result = PartialMergeKMeans(config).Run(cell);
  ASSERT_TRUE(result.ok()) << result.status();

  // I1: never more than k output centroids.
  EXPECT_LE(result->model.k(), static_cast<size_t>(k));
  EXPECT_GE(result->model.k(), 1u);

  // I2: total output weight equals N (mass conservation through both
  // phases).
  double mass = 0.0;
  for (double w : result->model.weights) mass += w;
  EXPECT_NEAR(mass, static_cast<double>(n), 1e-6 * n);

  // I3: errors are finite and non-negative.
  EXPECT_GE(result->model.sse, 0.0);
  EXPECT_TRUE(std::isfinite(result->model.sse));

  // I4: the model beats the trivial single-mean model on raw data
  // whenever k > 1 and the cell is non-degenerate.
  if (k > 1) {
    Dataset mean_model(cell.dim());
    mean_model.Append(cell.Mean());
    EXPECT_LE(Sse(result->model.centroids, cell),
              Sse(mean_model, cell) * (1.0 + 1e-9));
  }

  // I5: per-partition diagnostics line up with the partition count
  // actually used.
  EXPECT_EQ(result->partition_sse.size(), result->num_partitions);
  EXPECT_LE(result->num_partitions, static_cast<size_t>(splits));

  // I6: pooled centroid count is bounded by splits·k.
  EXPECT_LE(result->pooled_centroids,
            static_cast<size_t>(splits) * static_cast<size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartialMergeProperty,
    ::testing::Combine(::testing::Values(40, 250, 1000, 5000),
                       ::testing::Values(1, 3, 5, 10),
                       ::testing::Values(1, 5, 17)),
    [](const ::testing::TestParamInfo<PmParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// P2: Lloyd iteration error is monotonically non-increasing in the
// iteration budget (same seeds, growing max_iterations).

class LloydMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(LloydMonotoneProperty, SseNonIncreasingInIterationBudget) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Dataset points = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  Rng seed_rng(7);
  auto seeds =
      SelectSeeds(data, 12, SeedingMethod::kRandom, &seed_rng);
  ASSERT_TRUE(seeds.ok());

  double prev = std::numeric_limits<double>::infinity();
  for (size_t budget : {1u, 2u, 4u, 8u, 16u, 64u}) {
    LloydConfig config;
    config.max_iterations = budget;
    Rng lloyd_rng(11);
    auto model = RunWeightedLloyd(data, *seeds, config, &lloyd_rng);
    ASSERT_TRUE(model.ok());
    EXPECT_LE(model->sse, prev * (1.0 + 1e-9))
        << "budget " << budget << " worsened the error";
    prev = model->sse;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LloydMonotoneProperty,
                         ::testing::Values(100, 500, 2000));

// ---------------------------------------------------------------------------
// P3: splitting preserves the multiset of points for any (n, parts).

using SplitParam = std::tuple<int, int>;

class SplitProperty : public ::testing::TestWithParam<SplitParam> {};

TEST_P(SplitProperty, PartitionIsExact) {
  const auto [n, parts] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 131 + parts));
  const Dataset data =
      GenerateUniform(static_cast<size_t>(n), 3, -5, 5, &rng);

  for (bool random : {true, false}) {
    std::vector<Dataset> chunks =
        random ? SplitRandom(data, static_cast<size_t>(parts), &rng)
               : SplitContiguous(data, static_cast<size_t>(parts));
    ASSERT_EQ(chunks.size(), static_cast<size_t>(parts));
    size_t total = 0;
    std::multiset<double> seen;
    size_t max_size = 0, min_size = data.size() + 1;
    for (const Dataset& c : chunks) {
      total += c.size();
      max_size = std::max(max_size, c.size());
      min_size = std::min(min_size, c.size());
      seen.insert(c.values().begin(), c.values().end());
    }
    EXPECT_EQ(total, data.size());
    EXPECT_LE(max_size - min_size, 1u);  // near-equal sizes
    std::multiset<double> original(data.values().begin(),
                                   data.values().end());
    EXPECT_EQ(seen, original);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitProperty,
    ::testing::Combine(::testing::Values(1, 7, 100, 1003),
                       ::testing::Values(1, 2, 5, 16)));

// ---------------------------------------------------------------------------
// P4: bucket files round-trip for any (points, dim) including chunked
// reads with awkward chunk sizes.

using IoParam = std::tuple<int, int, int>;  // n, dim, chunk

class IoRoundTripProperty : public ::testing::TestWithParam<IoParam> {};

TEST_P(IoRoundTripProperty, ChunkedReadReassemblesExactly) {
  const auto [n, dim, chunk] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 17 + dim * 3 + chunk));
  GridBucket bucket;
  bucket.cell = GridCellId{-45, 170};
  bucket.points = GenerateUniform(static_cast<size_t>(n),
                                  static_cast<size_t>(dim), -1e6, 1e6,
                                  &rng);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("pmkm_prop_io_" + std::to_string(::getpid()) + "_" +
        std::to_string(n) + "_" + std::to_string(dim) + "_" +
        std::to_string(chunk) + ".pmkb"))
          .string();
  ASSERT_TRUE(WriteGridBucket(path, bucket).ok());

  auto reader = GridBucketReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Dataset all(static_cast<size_t>(dim));
  Dataset piece(static_cast<size_t>(dim));
  for (;;) {
    auto more = reader->Next(static_cast<size_t>(chunk), &piece);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    all.AppendAll(piece);
  }
  EXPECT_EQ(all, bucket.points);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IoRoundTripProperty,
    ::testing::Combine(::testing::Values(0, 1, 63, 1000),
                       ::testing::Values(1, 6, 17),
                       ::testing::Values(1, 7, 4096)));

// ---------------------------------------------------------------------------
// P5: weighted k-means ≡ k-means on replicated points, across k.

class WeightEquivalenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(WeightEquivalenceProperty, WeightedSseEqualsReplicatedSse) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k * 1009));
  WeightedDataset weighted(3);
  Dataset replicated(3);
  for (int i = 0; i < 120; ++i) {
    const std::vector<double> p{rng.Uniform(0, 50), rng.Uniform(0, 50),
                                rng.Uniform(0, 50)};
    const int w = 1 + static_cast<int>(rng.UniformInt(5));
    weighted.Append(p, static_cast<double>(w));
    for (int r = 0; r < w; ++r) replicated.Append(p);
  }
  KMeansConfig config;
  config.k = static_cast<size_t>(k);
  config.restarts = 3;
  config.seed = 404;
  auto model = KMeans(config).FitWeighted(weighted);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->sse, Sse(model->centroids, replicated),
              1e-6 * (1.0 + model->sse));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightEquivalenceProperty,
                         ::testing::Values(1, 2, 8, 32, 64));

// ---------------------------------------------------------------------------
// P6: grid binning is total and exact — every generated point lands in
// exactly one cell whose bounds contain it, across cell sizes.

class GridBinningProperty : public ::testing::TestWithParam<double> {};

TEST_P(GridBinningProperty, EveryPointInItsCellBounds) {
  const double cell_deg = GetParam();
  Rng rng(static_cast<uint64_t>(cell_deg * 1000));
  GridIndex index(2, cell_deg);
  Dataset points(2);
  for (int i = 0; i < 2000; ++i) {
    points.Append(std::vector<double>{rng.Uniform(-90, 90),
                                      rng.Uniform(-180, 180)});
  }
  ASSERT_TRUE(index.AddAll(points).ok());
  EXPECT_EQ(index.num_points(), 2000u);
  size_t total = 0;
  for (const auto& [id, bucket] : index.buckets()) {
    total += bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      const double lat = bucket(i, 0);
      const double lon = bucket(i, 1);
      EXPECT_GE(lat, id.lat_index * cell_deg - 1e-9);
      EXPECT_LT(lat, (id.lat_index + 1) * cell_deg + 1e-9);
      EXPECT_GE(lon, id.lon_index * cell_deg - 1e-9);
      EXPECT_LT(lon, (id.lon_index + 1) * cell_deg + 1e-9);
    }
  }
  EXPECT_EQ(total, 2000u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridBinningProperty,
                         ::testing::Values(0.5, 1.0, 5.0, 30.0));

}  // namespace
}  // namespace pmkm
