// Property suites, part 2: invariants of the compression stack
// (histograms, ECVQ) and the baseline algorithms across parameter sweeps.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/birch.h"
#include "baselines/online.h"
#include "baselines/stream_ls.h"
#include "cluster/kmeans.h"
#include "cluster/metrics.h"
#include "data/generator.h"
#include "histogram/ecvq.h"
#include "histogram/histogram.h"

namespace pmkm {
namespace {

// ---------------------------------------------------------------------------
// H1: histogram invariants over (n, k).

using HistParam = std::tuple<int, int>;

class HistogramProperty : public ::testing::TestWithParam<HistParam> {};

TEST_P(HistogramProperty, Invariants) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 11 + k));
  const Dataset cell = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  KMeansConfig config;
  config.k = static_cast<size_t>(k);
  config.restarts = 2;
  auto model = KMeans(config).Fit(cell);
  ASSERT_TRUE(model.ok());
  auto hist = MultivariateHistogram::Build(*model, cell);
  ASSERT_TRUE(hist.ok());

  // I1: total count equals N; every bucket is populated.
  EXPECT_NEAR(hist->total_count(), static_cast<double>(n), 1e-9);
  for (const auto& b : hist->buckets()) EXPECT_GT(b.count, 0.0);

  // I2: encoding maps every point to a valid bucket, and the decoded
  // representative is no farther than 2×(max spread + model error bound):
  // concretely, reconstruction MSE ≤ model MSE (means are optimal).
  EXPECT_LE(hist->ReconstructionMse(cell),
            model->mse_per_point * (1.0 + 1e-9));

  // I3: compression actually compresses once n > buckets · (2·dim + 1).
  const size_t breakeven = hist->num_buckets() * (2 * cell.dim() + 1);
  if (static_cast<size_t>(n) > breakeven) {
    EXPECT_GT(hist->CompressionRatio(cell.size()), 1.0);
  }

  // I4: sampling returns the requested count with the right shape.
  Rng sample_rng(7);
  const Dataset sample = hist->SampleReconstruction(256, &sample_rng);
  EXPECT_EQ(sample.size(), 256u);
  EXPECT_EQ(sample.dim(), cell.dim());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramProperty,
    ::testing::Combine(::testing::Values(100, 1000, 8000),
                       ::testing::Values(2, 10, 40)),
    [](const ::testing::TestParamInfo<HistParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// H2: ECVQ's rate/distortion trade-off is monotone in λ.

class EcvqMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(EcvqMonotoneProperty, RateFallsDistortionRisesWithLambda) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  const Dataset cell = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  double prev_rate = std::numeric_limits<double>::infinity();
  size_t prev_k = std::numeric_limits<size_t>::max();
  for (double lambda : {0.0, 10.0, 200.0, 5000.0}) {
    EcvqConfig config;
    config.max_k = 32;
    config.lambda = lambda;
    auto result = FitEcvq(cell, config);
    ASSERT_TRUE(result.ok()) << result.status();
    // Rate (entropy) and effective k are non-increasing in λ, modulo tiny
    // numeric wiggle on the rate.
    EXPECT_LE(result->rate_bits, prev_rate + 0.2) << "lambda " << lambda;
    EXPECT_LE(result->effective_k, prev_k) << "lambda " << lambda;
    prev_rate = result->rate_bits;
    prev_k = result->effective_k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EcvqMonotoneProperty,
                         ::testing::Values(500, 3000));

// ---------------------------------------------------------------------------
// H3: BIRCH leaf mass equals inserted mass for any (n, envelope).

using BirchParam = std::tuple<int, int>;

class BirchProperty : public ::testing::TestWithParam<BirchParam> {};

TEST_P(BirchProperty, LeafMassConservedUnderRebuilds) {
  const auto [n, max_leaves] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 13 + max_leaves));
  const Dataset data = GenerateMisrLikeCell(static_cast<size_t>(n), &rng);
  BirchConfig config;
  config.k = 5;
  config.max_leaf_entries = static_cast<size_t>(max_leaves);
  config.global.restarts = 2;
  Birch birch(data.dim(), config);
  ASSERT_TRUE(birch.InsertAll(data).ok());
  EXPECT_LE(birch.num_leaf_entries(),
            static_cast<size_t>(max_leaves));
  EXPECT_NEAR(birch.LeafCentroids().TotalWeight(),
              static_cast<double>(n), 1e-6 * n);
  auto model = birch.Finish();
  ASSERT_TRUE(model.ok());
  double mass = 0.0;
  for (double w : model->weights) mass += w;
  EXPECT_NEAR(mass, static_cast<double>(n), 1e-6 * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BirchProperty,
    ::testing::Combine(::testing::Values(200, 2000, 6000),
                       ::testing::Values(16, 64, 256)));

// ---------------------------------------------------------------------------
// H4: STREAM LocalSearch cost never exceeds the trivial one-median cost.

class StreamLsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StreamLsProperty, BeatsSingleMedianCost) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k * 7919));
  const Dataset points = GenerateMisrLikeCell(1200, &rng);
  const WeightedDataset data = WeightedDataset::FromUnweighted(points);
  StreamLsConfig config;
  config.k = static_cast<size_t>(k);
  config.max_sweeps = 4;
  auto medians = LocalSearchKMedian(data, config, &rng);
  ASSERT_TRUE(medians.ok());
  const double cost = KMedianCost(medians->points(), data);

  // Baseline: the best of 50 probed single-point medians. Local search
  // with k medians should beat it for k > 1 and come close for k = 1
  // (it samples swaps, so a small slack covers an unlucky draw).
  Dataset best_single(points.dim());
  best_single.Append(points.Row(0));
  double single_cost = KMedianCost(best_single, data);
  for (size_t i = 1; i < 50; ++i) {
    Dataset cand(points.dim());
    cand.Append(points.Row(i * 24 % points.size()));
    single_cost = std::min(single_cost, KMedianCost(cand, data));
  }
  if (k > 1) {
    EXPECT_LT(cost, single_cost);
  } else {
    EXPECT_LE(cost, single_cost * 1.05);
  }
  EXPECT_NEAR(medians->TotalWeight(), 1200.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StreamLsProperty,
                         ::testing::Values(1, 4, 16, 40));

// ---------------------------------------------------------------------------
// H5: online k-means weights always sum to the points seen.

class OnlineProperty : public ::testing::TestWithParam<int> {};

TEST_P(OnlineProperty, WeightsTrackPointsSeen) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k));
  OnlineKMeansConfig config;
  config.k = static_cast<size_t>(k);
  OnlineKMeans online(4, config);
  const Dataset data = GenerateUniform(700, 4, -10, 10, &rng);
  ASSERT_TRUE(online.ObserveAll(data).ok());
  auto model = online.Snapshot(&data);
  ASSERT_TRUE(model.ok());
  double mass = 0.0;
  for (double w : model->weights) mass += w;
  EXPECT_NEAR(mass, 700.0, 1e-9);
  EXPECT_LE(model->k(), static_cast<size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnlineProperty,
                         ::testing::Values(1, 3, 25, 200));

}  // namespace
}  // namespace pmkm
