#!/usr/bin/env bash
# Determinism integration check (DESIGN.md §17): the dynamic complement
# to the static pmkm_detcheck gate. The same clustering spec must produce
# byte-identical .pmkm model files
#
#   1. across worker parallelism (--cores=1/4/16: schedule and merge
#      order must not leak into output bytes);
#   2. across two separate process invocations at the same core count
#      (catches ASLR/pointer-ordering leaks that rule ptr-order cannot
#      prove absent — addresses differ between processes, so any
#      address-keyed ordering diverges here);
#   3. through a pmkm_serve daemon (remote submission path: protocol
#      encode/decode and the service job machinery add no bytes of
#      nondeterminism on top of the engine).
#
# Every run is cmp'd file-by-file against the --cores=1 reference.
#
# Usage: scripts/run_determinism_check.sh [--cells N] [--points N]

set -euo pipefail
cd "$(dirname "$0")/.."

CELLS=4
POINTS=6000

while [[ $# -gt 0 ]]; do
  case "$1" in
    --cells)  CELLS="$2"; shift 2 ;;
    --points) POINTS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x build/tools/pmkm_genbuckets || ! -x build/tools/pmkm_cluster \
      || ! -x build/tools/pmkm_serve ]]; then
  cmake -B build -S .
  cmake --build build -j --target pmkm_genbuckets pmkm_cluster_tool \
    pmkm_serve_tool
fi
GENBUCKETS=build/tools/pmkm_genbuckets
CLUSTER=build/tools/pmkm_cluster
SERVE=build/tools/pmkm_serve

WORK="$(mktemp -d "${TMPDIR:-/tmp}/pmkm_detcheck_run.XXXXXX")"
SERVE_PID=""
cleanup() {
  [[ -n "${SERVE_PID}" ]] && kill "${SERVE_PID}" 2> /dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== determinism check: ${CELLS} cells x ${POINTS} points =="

"${GENBUCKETS}" --out="${WORK}/buckets" --mode=cells \
  --cells="${CELLS}" --n="${POINTS}" > /dev/null

ENGINE_FLAGS=(--k=6 --restarts=4 --kernel=scalar --quiet)

run_local() {  # run_local <outdir> <cores>
  "${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" --cores="$2" \
    --out="${WORK}/$1" "${WORK}"/buckets/*.pmkb > /dev/null
}

# Reference plus the parallelism sweep; cores4 twice from two distinct
# process invocations (ASLR re-randomizes between them).
run_local cores1 1
run_local cores4 4
run_local cores4_again 4
run_local cores16 16

# Remote: the same spec through a pmkm_serve daemon.
"${SERVE}" --endpoint="unix:${WORK}/serve.sock" --workers=2 \
  > "${WORK}/serve.log" 2>&1 &
SERVE_PID=$!
ENDPOINT=""
for _ in $(seq 1 100); do
  ENDPOINT="$(sed -n 's#^listening on ##p' "${WORK}/serve.log" | head -n 1)"
  [[ -n "${ENDPOINT}" ]] && break
  kill -0 "${SERVE_PID}" 2> /dev/null || {
    echo "FAIL: pmkm_serve exited before listening"; cat "${WORK}/serve.log"
    exit 1
  }
  sleep 0.1
done
[[ -n "${ENDPOINT}" ]] || { echo "FAIL: no listen line"; exit 1; }
"${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" --cores=4 \
  --server="${ENDPOINT}" --out="${WORK}/remote" \
  "${WORK}"/buckets/*.pmkb > "${WORK}/client.log" 2>&1 || {
  echo "FAIL: remote client"; cat "${WORK}/client.log"; exit 1
}
kill "${SERVE_PID}" 2> /dev/null || true
wait "${SERVE_PID}" 2> /dev/null || true
SERVE_PID=""

MODELS=0
for ref in "${WORK}"/cores1/*.pmkm; do
  base="$(basename "${ref}")"
  for variant in cores4 cores4_again cores16 remote; do
    cmp -s "${ref}" "${WORK}/${variant}/${base}" || {
      echo "FAIL: ${variant}/${base} differs from the --cores=1 reference"
      exit 1
    }
  done
  MODELS=$((MODELS + 1))
done
[[ "${MODELS}" -eq "${CELLS}" ]] || {
  echo "FAIL: expected ${CELLS} models, found ${MODELS}"; exit 1
}

echo "ok: ${MODELS} models byte-identical across cores=1/4/16, a second"
echo "    process invocation, and the pmkm_serve path"
echo "== determinism check passed =="
