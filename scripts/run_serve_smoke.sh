#!/usr/bin/env bash
# Serve smoke test (DESIGN.md §15): start a real pmkm_serve daemon on a
# unix socket and hold the ClusterService guarantees end to end:
#
#   1. concurrent pmkm_cluster --server jobs both succeed;
#   2. the daemon's models are byte-identical to an in-process run of the
#      same spec (cmp on every .pmkm file);
#   3. an independent protocol client (python, reimplementing the framing
#      from the spec in protocol.h) can handshake, submit, cancel a queued
#      job and read its terminal state — interop, not just loopback;
#   4. /statusz and /jobz respond on the daemon's debug server;
#   5. SIGTERM drains gracefully: a job accepted before the signal is
#      never lost — the client still collects its models and exits 0, and
#      the daemon exits 0 after "drained; exiting".
#
# Usage: scripts/run_serve_smoke.sh [--cells N] [--points N]

set -euo pipefail
cd "$(dirname "$0")/.."

CELLS=4
POINTS=8000

while [[ $# -gt 0 ]]; do
  case "$1" in
    --cells)  CELLS="$2"; shift 2 ;;
    --points) POINTS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x build/tools/pmkm_genbuckets || ! -x build/tools/pmkm_cluster \
      || ! -x build/tools/pmkm_serve ]]; then
  cmake -B build -S .
  cmake --build build -j --target pmkm_genbuckets pmkm_cluster_tool \
    pmkm_serve_tool
fi
GENBUCKETS=build/tools/pmkm_genbuckets
CLUSTER=build/tools/pmkm_cluster
SERVE=build/tools/pmkm_serve

WORK="$(mktemp -d "${TMPDIR:-/tmp}/pmkm_serve_smoke.XXXXXX")"
SERVE_PID=""
cleanup() {
  [[ -n "${SERVE_PID}" ]] && kill "${SERVE_PID}" 2> /dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== serve smoke: ${CELLS} cells x ${POINTS} points =="

"${GENBUCKETS}" --out="${WORK}/buckets" --mode=cells \
  --cells="${CELLS}" --n="${POINTS}" > /dev/null

ENGINE_FLAGS=(--k=6 --restarts=4 --kernel=scalar)

# -- 0. Reference: the same spec through the in-process backend.
"${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" --quiet \
  --out="${WORK}/local_models" "${WORK}"/buckets/*.pmkb > /dev/null

# -- 1. Daemon on a unix socket with the debug server on an ephemeral
# port. One worker, so the python client below can deterministically park
# a job in the queue (the fifo job pins the worker).
"${SERVE}" --endpoint="unix:${WORK}/serve.sock" --workers=1 \
  --debug_port=0 > "${WORK}/serve.log" 2>&1 &
SERVE_PID=$!

ENDPOINT=""
for _ in $(seq 1 100); do
  ENDPOINT="$(sed -n 's#^listening on ##p' "${WORK}/serve.log" | head -n 1)"
  [[ -n "${ENDPOINT}" ]] && break
  kill -0 "${SERVE_PID}" 2> /dev/null || {
    echo "FAIL: pmkm_serve exited before listening"; cat "${WORK}/serve.log"
    exit 1
  }
  sleep 0.1
done
[[ -n "${ENDPOINT}" ]] || { echo "FAIL: no listen line"; exit 1; }
PORT="$(sed -n 's#^debug server listening on http://127.0.0.1:\([0-9]*\)/#\1#p' \
  "${WORK}/serve.log" | head -n 1)"
[[ -n "${PORT}" ]] || { echo "FAIL: no debug server line"; exit 1; }
echo "-- daemon on ${ENDPOINT}, debug on :${PORT}"

# -- 2. Concurrent remote jobs from two clients.
"${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" --quiet \
  --server="${ENDPOINT}" --out="${WORK}/remote_a" \
  "${WORK}"/buckets/*.pmkb > "${WORK}/client_a.log" 2>&1 &
CLIENT_A=$!
"${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" --quiet \
  --server="${ENDPOINT}" --out="${WORK}/remote_b" \
  "${WORK}"/buckets/*.pmkb > "${WORK}/client_b.log" 2>&1 &
CLIENT_B=$!
wait "${CLIENT_A}" || { echo "FAIL: client A"; cat "${WORK}/client_a.log"; exit 1; }
wait "${CLIENT_B}" || { echo "FAIL: client B"; cat "${WORK}/client_b.log"; exit 1; }
echo "ok: two concurrent remote jobs succeeded"

# -- 3. Byte-identity: every model file from both remote runs matches the
# in-process reference exactly.
MODELS=0
for ref in "${WORK}"/local_models/*.pmkm; do
  base="$(basename "${ref}")"
  cmp -s "${ref}" "${WORK}/remote_a/${base}" || {
    echo "FAIL: remote_a/${base} differs from the in-process model"; exit 1
  }
  cmp -s "${ref}" "${WORK}/remote_b/${base}" || {
    echo "FAIL: remote_b/${base} differs from the in-process model"; exit 1
  }
  MODELS=$((MODELS + 1))
done
[[ "${MODELS}" -eq "${CELLS}" ]] || {
  echo "FAIL: expected ${CELLS} models, found ${MODELS}"; exit 1
}
echo "ok: ${MODELS} models byte-identical across local/remote backends"

# -- 4. Interop + cancel: an independent client implementation speaks the
# protocol from its spec. A fifo "bucket" pins the single worker, so the
# next job deterministically stays queued until cancelled.
mkfifo "${WORK}/block.fifo"
BUCKET_ONE="$(ls "${WORK}"/buckets/*.pmkb | head -n 1)"
python3 - "${ENDPOINT#unix:}" "${WORK}/block.fifo" "${BUCKET_ONE}" << 'EOF'
import socket, struct, sys

sock_path, fifo_path, bucket_path = sys.argv[1:4]

def crc32c(data, seed=0):
    table = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (0x82F63B78 ^ (c >> 1)) if (c & 1) else (c >> 1)
        table.append(c)
    crc = (~seed) & 0xFFFFFFFF
    for b in data:
        crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return (~crc) & 0xFFFFFFFF

def frame(ftype, payload):
    crc = crc32c(payload, crc32c(struct.pack('<I', ftype)))
    return struct.pack('<II', len(payload), ftype) + payload + \
        struct.pack('<I', crc)

def s(x):
    b = x.encode()
    return struct.pack('<I', len(b)) + b

def job_spec(path):
    # v2 JobSpec: paths, engine flags, run_id, client (protocol.h).
    spec = struct.pack('<I', 1) + s(path)
    spec += struct.pack('<QQQQ', 6, 4, 512, 0)   # k restarts memkib cores
    spec += s('failfast') + struct.pack('<QQ', 2, 0)
    spec += s('scalar') + s('') + struct.pack('<Q', 1) + b'\x01'
    spec += s('smoke-interop') + s('python-smoke')
    return spec

conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
conn.connect(sock_path)
conn.sendall(struct.pack('<II', 0x534B4D50, 2))
hello = conn.recv(8)
magic, version = struct.unpack('<II', hello)
assert magic == 0x534B4D50, hex(magic)
assert version >= 1, version

buf = b''
def call(ftype, payload):
    global buf
    conn.sendall(frame(ftype, payload))
    while True:
        if len(buf) >= 8:
            length, rtype = struct.unpack('<II', buf[:8])
            if len(buf) >= 12 + length:
                wire, buf = buf[:12 + length], buf[12 + length:]
                payload_bytes = wire[8:8 + length]
                crc = struct.unpack('<I', wire[8 + length:])[0]
                assert crc == crc32c(payload_bytes,
                                     crc32c(struct.pack('<I', rtype)))
                assert rtype == 100, rtype  # kReply
                code = struct.unpack('<i', payload_bytes[:4])[0]
                mlen = struct.unpack('<I', payload_bytes[4:8])[0]
                msg = payload_bytes[8:8 + mlen].decode()
                return code, msg, payload_bytes[8 + mlen:]
        chunk = conn.recv(65536)
        assert chunk, 'server hung up'
        buf += chunk

code, msg, _ = call(1, b'')  # ping
assert code == 0, (code, msg)
print('ok: interop handshake + ping (protocol v%d)' % version)

code, msg, body = call(2, job_spec(fifo_path))  # pins the worker
assert code == 0, (code, msg)
blocker = struct.unpack('<Q', body[:8])[0]

code, msg, body = call(2, job_spec(bucket_path))  # stays queued
assert code == 0, (code, msg)
queued = struct.unpack('<Q', body[:8])[0]

code, msg, _ = call(5, struct.pack('<Q', queued))  # cancel
assert code == 0, (code, msg)
code, msg, body = call(3, struct.pack('<Q', queued))  # status
assert code == 0, (code, msg)
state = struct.unpack('<I', body[8:12])[0]
assert state == 4, state  # kCancelled
status_code = struct.unpack('<i', body[12:16])[0]
assert status_code == 7, status_code  # Cancelled
print('ok: queued job %d cancelled before running' % queued)

code, msg, _ = call(5, struct.pack('<Q', 999999))  # unknown id
assert code == 4, (code, msg)  # NotFound survives the wire
print('ok: unknown-id cancel is NotFound across the wire')
conn.close()
EOF
# Release the pinned worker: pair with its blocked open, then EOF fails
# the fifo job (that job exists only to occupy the worker).
: > "${WORK}/block.fifo"

# -- 5. Debug-server scrape while the daemon is live.
fetch() {
  local path="$1" want="$2"
  local code
  code="$(curl -s -o "${WORK}/body" -w '%{http_code}' \
    "http://127.0.0.1:${PORT}${path}")"
  [[ "${code}" == "${want}" ]] || {
    echo "FAIL: GET ${path} returned ${code}, want ${want}" >&2; exit 1
  }
}
fetch /statusz 200
echo "ok: /statusz responds"
fetch /jobz 200
python3 - "${WORK}/body" << 'EOF'
import json, sys
jobs = json.load(open(sys.argv[1]))
states = [j["state"] for j in jobs["jobs"]]
assert "done" in states, states
assert "cancelled" in states, states
print("ok: /jobz lists %d jobs (done + cancelled present)" % len(states))
EOF

# -- 6. Graceful drain: SIGTERM while a freshly accepted job is in
# flight. The client must still collect its models and exit 0.
"${CLUSTER}" --algo=stream "${ENGINE_FLAGS[@]}" \
  --server="${ENDPOINT}" --out="${WORK}/drain_models" \
  "${WORK}"/buckets/*.pmkb > "${WORK}/drain.log" 2>&1 &
DRAIN_CLIENT=$!
for _ in $(seq 1 100); do
  grep -q "submitted" "${WORK}/drain.log" && break
  kill -0 "${DRAIN_CLIENT}" 2> /dev/null || break
  sleep 0.05
done
grep -q "submitted" "${WORK}/drain.log" || {
  echo "FAIL: drain job never submitted"; cat "${WORK}/drain.log"; exit 1
}
kill -TERM "${SERVE_PID}"
wait "${DRAIN_CLIENT}" || {
  echo "FAIL: client lost its accepted job to the drain"
  cat "${WORK}/drain.log"; exit 1
}
MODELS=$(ls "${WORK}"/drain_models/*.pmkm 2> /dev/null | wc -l)
[[ "${MODELS}" -eq "${CELLS}" ]] || {
  echo "FAIL: drained job wrote ${MODELS}/${CELLS} models"; exit 1
}
wait "${SERVE_PID}" || { echo "FAIL: daemon exited non-zero"; exit 1; }
SERVE_PID=""
grep -q "drained; exiting" "${WORK}/serve.log" || {
  echo "FAIL: daemon did not report a clean drain"
  cat "${WORK}/serve.log"; exit 1
}
echo "ok: SIGTERM drain lost no accepted job"

echo "== serve smoke passed =="
