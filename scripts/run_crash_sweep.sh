#!/usr/bin/env bash
# Randomized crash/recovery sweep (DESIGN.md §13): for each seed, a
# pmkm_cluster --algo=stream run over the same bucket set is killed — either
# at a deterministic fault point (SIGKILL raised inside the process via a
# PMKM_FAULTS crash fault) or by an external, timing-based `kill -9` — then
# resumed from its checkpoint until it exits cleanly. The sweep fails if any
# resumed run's model files are not bytewise identical to the uninterrupted
# reference run, or if recovery ever needs more than $MAX_RESUMES attempts.
#
# Usage: scripts/run_crash_sweep.sh [--seeds N] [--cells N] [--points N]
#                                   [--artifacts DIR]
#   --seeds N       number of randomized scenarios (default 100)
#   --cells N       bucket cells in the generated input (default 4)
#   --points N      points per cell (default 600)
#   --artifacts DIR where to copy the failing seed's checkpoint + models
#                   (default crash_sweep_artifacts)
# Environment: CRASH_SWEEP_SEEDS overrides --seeds (CI convenience).

set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${CRASH_SWEEP_SEEDS:-100}"
CELLS=4
POINTS=600
ARTIFACTS="crash_sweep_artifacts"
MAX_RESUMES=6

while [[ $# -gt 0 ]]; do
  case "$1" in
    --seeds)     SEEDS="$2"; shift 2 ;;
    --cells)     CELLS="$2"; shift 2 ;;
    --points)    POINTS="$2"; shift 2 ;;
    --artifacts) ARTIFACTS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x build/tools/pmkm_genbuckets || ! -x build/tools/pmkm_cluster ]]; then
  cmake -B build -S .
  cmake --build build -j --target pmkm_genbuckets pmkm_cluster_tool \
    pmkm_inspect
fi
GENBUCKETS=build/tools/pmkm_genbuckets
CLUSTER=build/tools/pmkm_cluster
INSPECT=build/tools/pmkm_inspect

WORK="$(mktemp -d "${TMPDIR:-/tmp}/pmkm_crash_sweep.XXXXXX")"
trap 'rm -rf "${WORK}"' EXIT

echo "== crash sweep: ${SEEDS} seeds, ${CELLS} cells x ${POINTS} points =="

"${GENBUCKETS}" --out="${WORK}/buckets" --mode=cells \
  --cells="${CELLS}" --n="${POINTS}" > /dev/null
BUCKETS=("${WORK}"/buckets/*.pmkb)

cluster() { # out_dir [checkpoint_dir]
  local out="$1" ckpt="${2:-}"
  local args=(--algo=stream --k=6 --restarts=2 --quiet --out="${out}")
  [[ -n "${ckpt}" ]] && args+=(--checkpoint_dir="${ckpt}")
  "${CLUSTER}" "${args[@]}" "${BUCKETS[@]}" > /dev/null 2>&1
}

echo "-- reference run (uninterrupted, no checkpoint)"
cluster "${WORK}/ref"

# The crash sites a seed can land on. checkpoint.append and io.fsync die
# mid-journal; io.rename dies in the atomic model publish; journal.torn is
# an error fault that leaves half a frame on disk; "timed" is an external
# kill -9 at a random delay (the only non-deterministic scenario).
SITES=(checkpoint.append io.fsync io.rename journal.torn timed)

fail() { # seed ckpt out message
  local seed="$1" ckpt="$2" out="$3" message="$4"
  echo "FAIL seed=${seed}: ${message}" >&2
  mkdir -p "${ARTIFACTS}/seed_${seed}"
  cp -r "${ckpt}" "${ARTIFACTS}/seed_${seed}/checkpoint" 2>/dev/null || true
  [[ -d "${out}" ]] && cp -r "${out}" "${ARTIFACTS}/seed_${seed}/models"
  cp -r "${WORK}/ref" "${ARTIFACTS}/seed_${seed}/reference"
  "${INSPECT}" checkpoint "${ckpt}" \
    > "${ARTIFACTS}/seed_${seed}/journal.json" 2>&1 || true
  echo "   artifacts in ${ARTIFACTS}/seed_${seed}" >&2
  exit 1
}

failures=0
for ((seed = 1; seed <= SEEDS; ++seed)); do
  site="${SITES[$((seed % ${#SITES[@]}))]}"
  ckpt="${WORK}/ckpt_${seed}"
  out="${WORK}/models_${seed}"

  if [[ "${site}" == "timed" ]]; then
    # External kill: SIGKILL the run after a pseudo-random slice of its
    # expected runtime. The run may also finish first — that is fine, the
    # resume below is then a pure restore.
    delay_ms=$(( (seed * 7919) % 200 ))
    cluster "${out}" "${ckpt}" &
    pid=$!
    sleep "$(awk "BEGIN{print ${delay_ms}/1000}")"
    kill -9 "${pid}" 2>/dev/null || true
    wait "${pid}" 2>/dev/null || true
  else
    # In-process crash/error at a seed-derived hit of the fault site.
    nth=$(( (seed % 5) + 1 ))
    spec="${site}:n=${nth},crash=1"
    [[ "${site}" == "journal.torn" ]] && spec="${site}:n=${nth}"
    PMKM_FAULTS="${spec}" cluster "${out}" "${ckpt}" || true
  fi

  # However the run died, the journal must stay inspectable.
  "${INSPECT}" checkpoint "${ckpt}" > /dev/null 2>&1 \
    || fail "${seed}" "${ckpt}" "${out}" "journal not inspectable"

  recovered=0
  for ((attempt = 1; attempt <= MAX_RESUMES; ++attempt)); do
    if cluster "${out}" "${ckpt}"; then recovered=1; break; fi
  done
  [[ "${recovered}" == 1 ]] \
    || fail "${seed}" "${ckpt}" "${out}" \
            "did not recover within ${MAX_RESUMES} resumes (site ${site})"

  for ref_model in "${WORK}"/ref/*.pmkm; do
    model="${out}/$(basename "${ref_model}")"
    cmp -s "${ref_model}" "${model}" \
      || fail "${seed}" "${ckpt}" "${out}" \
              "$(basename "${ref_model}") differs from reference (site ${site})"
  done

  rm -rf "${ckpt}" "${out}"
  if (( seed % 25 == 0 )); then
    echo "-- ${seed}/${SEEDS} seeds OK"
  fi
done

echo "== crash sweep PASSED: ${SEEDS}/${SEEDS} seeds recovered bitwise =="
