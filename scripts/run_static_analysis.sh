#!/usr/bin/env bash
# Project static-analysis gate (DESIGN.md §11–12, §16). Runs five stages
# and exits non-zero on any finding:
#
#   1. pmkm_lint          project invariants (tools/pmkm_lint.py)
#   2. thread-safety      full Clang build with -Wthread-safety
#                         -Werror=thread-safety over src/, tools/, tests/
#   3. clang-tidy         curated .clang-tidy profile, baseline-free: any
#                         finding fails (suppress at the site with
#                         NOLINT + justification, never via a baseline
#                         file). The compilation database is regenerated
#                         before every run; a database that still misses
#                         a source afterwards is a FAILURE (a stale
#                         compdb silently analyzes the wrong file set),
#                         never a skip.
#   4. call-graph gates   pmkm_ctxcheck (signal-safe, no-block-under-lock,
#                         wait-free, bounded-handler) AND pmkm_detcheck
#                         (unordered-iter, nondet-source, ptr-order,
#                         fp-flags — DESIGN.md §17) over ONE shared
#                         compdb read and source parse
#                         (tools/pmkm_callgraph.py drives both), each
#                         ratcheted against its own baseline —
#                         scripts/ctxcheck_baseline.txt and
#                         scripts/detcheck_baseline.txt (kept empty; they
#                         may only shrink).
#   5. schedcheck         PMKM_SCHEDCHECK=ON build + the schedcheck-labeled
#                         ctest suites: lock-order witness, deterministic
#                         schedule explorer, seeded-bug doubles, and
#                         bounded schedule sweeps over the queue/executor
#                         (PR budget; nightly raises PMKM_SCHEDCHECK_SEEDS)
#
# Stages 2 and 3 need the Clang toolchain (clang++ / clang-tidy). When a
# tool is missing the stage is SKIPPED with a warning — the gate then
# covers what the host can check — unless PMKM_SA_STRICT=1, which turns a
# missing tool into a failure (use in CI, where Clang is installed).
# Stages 4 and 5 run with any compiler.
#
# Usage:
#   scripts/run_static_analysis.sh [--update-baseline]
#
# --update-baseline rewrites scripts/ctxcheck_baseline.txt and
# scripts/detcheck_baseline.txt from the current findings (the clang-tidy
# stage has no baseline).
#
# Environment:
#   CLANGXX      Clang C++ compiler   (default: clang++)
#   CLANG_TIDY   clang-tidy binary    (default: clang-tidy)
#   PMKM_SA_STRICT=1  fail instead of skip when a tool is missing
#   PMKM_SCHEDCHECK_SEEDS  schedule-sweep seed budget (default here: 200)

set -euo pipefail

cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-clang++}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
STRICT="${PMKM_SA_STRICT:-0}"
UPDATE_BASELINE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE_BASELINE=1
fi

failures=0
skipped=0

skip_or_fail() {
  local what="$1"
  if [[ "${STRICT}" == "1" ]]; then
    echo "FAIL: ${what} (PMKM_SA_STRICT=1)" >&2
    failures=$((failures + 1))
  else
    echo "SKIP: ${what}" >&2
    skipped=$((skipped + 1))
  fi
}

# ---------------------------------------------------------------------------
echo "==> stage 1/5: pmkm_lint"
if command -v python3 > /dev/null; then
  if python3 tools/pmkm_lint.py; then
    echo "pmkm_lint: clean"
  else
    failures=$((failures + 1))
  fi
else
  skip_or_fail "python3 not found; cannot run pmkm_lint"
fi

# ---------------------------------------------------------------------------
echo "==> stage 2/5: Clang -Wthread-safety build"
if command -v "${CLANGXX}" > /dev/null; then
  # PMKM_THREAD_SAFETY_ANALYSIS is ON by default under Clang; -Werror
  # makes any thread-safety finding a build failure.
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPMKM_THREAD_SAFETY_ANALYSIS=ON \
    -DPMKM_BUILD_BENCHMARKS=OFF \
    -DPMKM_BUILD_EXAMPLES=OFF > /dev/null
  if cmake --build build-tsa -j "$(nproc)"; then
    echo "thread-safety build: clean"
  else
    echo "FAIL: thread-safety findings (see build output above)" >&2
    failures=$((failures + 1))
  fi
else
  skip_or_fail "${CLANGXX} not found; cannot run -Wthread-safety build"
fi

# ---------------------------------------------------------------------------
echo "==> stage 3/5: clang-tidy gate"
if command -v "${CLANG_TIDY}" > /dev/null; then
  # Prefer the clang compile database from stage 2; otherwise export one
  # from the default (gcc) configuration — clang-tidy only needs the
  # flags, not the compiler. Either way the database is REGENERATED now:
  # reusing a stale compile_commands.json (sources added or removed since
  # the last configure) makes clang-tidy silently analyze the wrong file
  # set, which is worse than failing.
  compdb_dir="build-tsa"
  if [[ ! -f "${compdb_dir}/CMakeCache.txt" ]]; then
    compdb_dir="build"
  fi
  cmake -B "${compdb_dir}" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

  mapfile -t tidy_sources < <(find src tools -name '*.cc' | sort)

  # Stale-database guard: every source we are about to lint must appear in
  # the regenerated database; a miss means the build system does not know
  # the file (e.g. not listed in CMakeLists) and MUST fail, not skip —
  # otherwise new files ride past the gate unanalyzed.
  compdb_stale=0
  for tidy_src in "${tidy_sources[@]}"; do
    if ! grep -q "${tidy_src}" "${compdb_dir}/compile_commands.json"; then
      echo "FAIL: ${tidy_src} missing from" \
           "${compdb_dir}/compile_commands.json (stale compilation" \
           "database — is the file registered in CMakeLists.txt?)" >&2
      compdb_stale=1
    fi
  done
  if [[ "${compdb_stale}" == "1" ]]; then
    failures=$((failures + 1))
  fi

  # Baseline-free: every finding fails. Suppress at the site with a
  # NOLINT(check-name) plus a justification comment, never via a
  # baseline file — a baseline hides findings from review; a NOLINT is
  # itself reviewable code.
  tidy_findings="$(
    "${CLANG_TIDY}" -p "${compdb_dir}" --quiet "${tidy_sources[@]}" \
        2> /dev/null |
      grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' |
      sed -E "s|^$(pwd)/||" |
      sort -u || true
  )"

  if [[ -n "${tidy_findings}" ]]; then
    echo "FAIL: clang-tidy findings (fix, or NOLINT at the site with a" \
         "justification — the gate is baseline-free):" >&2
    echo "${tidy_findings}" | sed 's/^/  /' >&2
    failures=$((failures + 1))
  else
    echo "clang-tidy: clean"
  fi
else
  skip_or_fail "${CLANG_TIDY} not found; cannot run clang-tidy gate"
fi

# ---------------------------------------------------------------------------
echo "==> stage 4/5: call-graph gates (pmkm_ctxcheck + pmkm_detcheck)"
if command -v python3 > /dev/null; then
  # Reuse the compilation database stage 2/3 just regenerated (build-tsa
  # preferred, then build); when neither Clang stage ran, export one here.
  # The driver itself fails (exit 65) on a database older than any
  # source rather than analyzing the wrong file set.
  #
  # tools/pmkm_callgraph.py reads the compdb and parses every source
  # ONCE, then runs both analyzers over the shared program model — the
  # combined stage costs barely more than the old ctxcheck-only stage
  # (~1.4s vs ~1.25s wall for the whole tree) instead of doubling it.
  if [[ ! -f build-tsa/compile_commands.json ]]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  ctx_args=()
  if [[ "${UPDATE_BASELINE}" == "1" ]]; then
    ctx_args+=(--update-baseline)
  fi
  if python3 tools/pmkm_callgraph.py "${ctx_args[@]+"${ctx_args[@]}"}"; then
    echo "call-graph gates: clean"
  else
    failures=$((failures + 1))
  fi
else
  skip_or_fail "python3 not found; cannot run the call-graph gates"
fi

# ---------------------------------------------------------------------------
echo "==> stage 5/5: schedcheck (lock-order witness + schedule sweeps)"
# Compiler-agnostic: the hooks are plain C++. PR-gate budget is modest
# (200 seeds per sweep); the nightly workflow raises PMKM_SCHEDCHECK_SEEDS.
schedcheck_targets=(lock_graph_test scheduler_test seeded_bugs_test
                    queue_sweep_test executor_sweep_test)
if cmake -B build-schedcheck -S . \
     -DCMAKE_BUILD_TYPE=RelWithDebInfo \
     -DPMKM_SCHEDCHECK=ON > /dev/null &&
   cmake --build build-schedcheck -j "$(nproc)" \
     --target "${schedcheck_targets[@]}" > /dev/null; then
  if (cd build-schedcheck &&
      PMKM_SCHEDCHECK_SEEDS="${PMKM_SCHEDCHECK_SEEDS:-200}" \
        ctest -L schedcheck --output-on-failure); then
    echo "schedcheck: clean"
  else
    echo "FAIL: schedcheck suites (replay the printed seed with" \
         "PMKM_SCHEDCHECK_SEED=<seed>)" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL: schedcheck build (PMKM_SCHEDCHECK=ON)" >&2
  failures=$((failures + 1))
fi

# ---------------------------------------------------------------------------
echo
if [[ "${failures}" -gt 0 ]]; then
  echo "static analysis: FAILED (${failures} stage(s))"
  exit 1
fi
if [[ "${skipped}" -gt 0 ]]; then
  echo "static analysis: OK (${skipped} stage(s) skipped — install" \
       "clang/clang-tidy or set PMKM_SA_STRICT=1 to require them)"
else
  echo "static analysis: OK (all stages)"
fi
