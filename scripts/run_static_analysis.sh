#!/usr/bin/env bash
# Project static-analysis gate (DESIGN.md §11). Runs three stages and
# exits non-zero on any new finding:
#
#   1. pmkm_lint          project invariants (tools/pmkm_lint.py)
#   2. thread-safety      full Clang build with -Wthread-safety
#                         -Werror=thread-safety over src/, tools/, tests/
#   3. clang-tidy         curated .clang-tidy profile, gated against
#                         scripts/clang_tidy_baseline.txt
#
# Stages 2 and 3 need the Clang toolchain (clang++ / clang-tidy). When a
# tool is missing the stage is SKIPPED with a warning — the gate then
# covers what the host can check — unless PMKM_SA_STRICT=1, which turns a
# missing tool into a failure (use in CI, where Clang is installed).
#
# Usage:
#   scripts/run_static_analysis.sh [--update-baseline]
#
# Environment:
#   CLANGXX      Clang C++ compiler   (default: clang++)
#   CLANG_TIDY   clang-tidy binary    (default: clang-tidy)
#   PMKM_SA_STRICT=1  fail instead of skip when a tool is missing

set -euo pipefail

cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-clang++}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
STRICT="${PMKM_SA_STRICT:-0}"
BASELINE="scripts/clang_tidy_baseline.txt"
UPDATE_BASELINE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE_BASELINE=1
fi

failures=0
skipped=0

skip_or_fail() {
  local what="$1"
  if [[ "${STRICT}" == "1" ]]; then
    echo "FAIL: ${what} (PMKM_SA_STRICT=1)" >&2
    failures=$((failures + 1))
  else
    echo "SKIP: ${what}" >&2
    skipped=$((skipped + 1))
  fi
}

# ---------------------------------------------------------------------------
echo "==> stage 1/3: pmkm_lint"
if command -v python3 > /dev/null; then
  if python3 tools/pmkm_lint.py; then
    echo "pmkm_lint: clean"
  else
    failures=$((failures + 1))
  fi
else
  skip_or_fail "python3 not found; cannot run pmkm_lint"
fi

# ---------------------------------------------------------------------------
echo "==> stage 2/3: Clang -Wthread-safety build"
if command -v "${CLANGXX}" > /dev/null; then
  # PMKM_THREAD_SAFETY_ANALYSIS is ON by default under Clang; -Werror
  # makes any thread-safety finding a build failure.
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPMKM_THREAD_SAFETY_ANALYSIS=ON \
    -DPMKM_BUILD_BENCHMARKS=OFF \
    -DPMKM_BUILD_EXAMPLES=OFF > /dev/null
  if cmake --build build-tsa -j "$(nproc)"; then
    echo "thread-safety build: clean"
  else
    echo "FAIL: thread-safety findings (see build output above)" >&2
    failures=$((failures + 1))
  fi
else
  skip_or_fail "${CLANGXX} not found; cannot run -Wthread-safety build"
fi

# ---------------------------------------------------------------------------
echo "==> stage 3/3: clang-tidy gate"
if command -v "${CLANG_TIDY}" > /dev/null; then
  # Reuse the clang compile database when stage 2 produced one; otherwise
  # export one from the default (gcc) configuration — clang-tidy only
  # needs the flags, not the compiler.
  compdb_dir="build-tsa"
  if [[ ! -f "${compdb_dir}/compile_commands.json" ]]; then
    compdb_dir="build"
    cmake -B "${compdb_dir}" -S . \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi

  # Normalize findings to "relative/file: check-name" (drop line/column so
  # unrelated edits do not churn the baseline), sorted and unique.
  mapfile -t tidy_sources < <(find src tools -name '*.cc' | sort)
  current_findings="$(
    "${CLANG_TIDY}" -p "${compdb_dir}" --quiet "${tidy_sources[@]}" \
        2> /dev/null |
      grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' |
      sed -E "s|^$(pwd)/||" |
      sed -E 's|^([^:]+):[0-9]+:[0-9]+: (warning\|error): .*\[([a-z0-9.,-]+)\]$|\1: \3|' |
      sort -u || true
  )"

  if [[ "${UPDATE_BASELINE}" == "1" ]]; then
    {
      grep '^#' "${BASELINE}"
      echo "${current_findings}"
    } | grep -v '^$' > "${BASELINE}.tmp" && mv "${BASELINE}.tmp" "${BASELINE}"
    echo "baseline updated: $(grep -cv '^#' "${BASELINE}" || true) finding(s)"
  else
    baseline_findings="$(grep -v '^#' "${BASELINE}" | grep -v '^$' || true)"
    new_findings="$(comm -23 <(echo "${current_findings}" | grep -v '^$' || true) \
                             <(echo "${baseline_findings}") || true)"
    fixed_findings="$(comm -13 <(echo "${current_findings}" | grep -v '^$' || true) \
                               <(echo "${baseline_findings}") || true)"
    if [[ -n "${fixed_findings}" ]]; then
      echo "note: baselined findings no longer fire (run --update-baseline):"
      echo "${fixed_findings}" | sed 's/^/  /'
    fi
    if [[ -n "${new_findings}" ]]; then
      echo "FAIL: new clang-tidy findings (fix, or baseline with justification):" >&2
      echo "${new_findings}" | sed 's/^/  /' >&2
      failures=$((failures + 1))
    else
      echo "clang-tidy: no new findings"
    fi
  fi
else
  skip_or_fail "${CLANG_TIDY} not found; cannot run clang-tidy gate"
fi

# ---------------------------------------------------------------------------
echo
if [[ "${failures}" -gt 0 ]]; then
  echo "static analysis: FAILED (${failures} stage(s))"
  exit 1
fi
if [[ "${skipped}" -gt 0 ]]; then
  echo "static analysis: OK (${skipped} stage(s) skipped — install" \
       "clang/clang-tidy or set PMKM_SA_STRICT=1 to require them)"
else
  echo "static analysis: OK (all stages)"
fi
