#!/usr/bin/env bash
# Debug-server smoke test (DESIGN.md §14): start a real --algo=stream run
# with the introspection server on an ephemeral port, curl every endpoint
# while the run is live, and assert the responses are well-formed — 200s
# with Prometheus text / JSON bodies, 404 for unknown paths, and a second
# /metrics scrape whose cumulative series did not move backwards.
#
# Usage: scripts/run_debug_smoke.sh [--cells N] [--points N]
#   --cells N   bucket cells in the generated input (default 6)
#   --points N  points per cell (default 20000 — enough to scrape mid-run)

set -euo pipefail
cd "$(dirname "$0")/.."

CELLS=6
POINTS=20000

while [[ $# -gt 0 ]]; do
  case "$1" in
    --cells)  CELLS="$2"; shift 2 ;;
    --points) POINTS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ ! -x build/tools/pmkm_genbuckets || ! -x build/tools/pmkm_cluster ]]; then
  cmake -B build -S .
  cmake --build build -j --target pmkm_genbuckets pmkm_cluster_tool
fi
GENBUCKETS=build/tools/pmkm_genbuckets
CLUSTER=build/tools/pmkm_cluster

WORK="$(mktemp -d "${TMPDIR:-/tmp}/pmkm_debug_smoke.XXXXXX")"
CLUSTER_PID=""
cleanup() {
  [[ -n "${CLUSTER_PID}" ]] && kill "${CLUSTER_PID}" 2> /dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== debug smoke: ${CELLS} cells x ${POINTS} points =="

"${GENBUCKETS}" --out="${WORK}/buckets" --mode=cells \
  --cells="${CELLS}" --n="${POINTS}" > /dev/null

# Ephemeral port; the linger keeps the server up after the run finishes so
# slow scrapes cannot race process exit.
"${CLUSTER}" --algo=stream --k=8 --restarts=8 --quiet \
  --debug_port=0 --debug_linger_ms=30000 --run_id=smoke0001 \
  --out="${WORK}/models" "${WORK}"/buckets/*.pmkb \
  > "${WORK}/cluster.log" 2>&1 &
CLUSTER_PID=$!

# Wait for the listen line and extract the port.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's#^debug server listening on http://127.0.0.1:\([0-9]*\)/#\1#p' \
    "${WORK}/cluster.log" | head -n 1)"
  [[ -n "${PORT}" ]] && break
  kill -0 "${CLUSTER_PID}" 2> /dev/null || {
    echo "FAIL: pmkm_cluster exited before serving"; cat "${WORK}/cluster.log"
    exit 1
  }
  sleep 0.1
done
[[ -n "${PORT}" ]] || { echo "FAIL: no listen line"; exit 1; }
BASE="http://127.0.0.1:${PORT}"
echo "-- serving on ${BASE}"

fetch() { # path -> body on stdout; asserts HTTP status
  local path="$1" want="$2"
  local code
  code="$(curl -s -o "${WORK}/body" -w '%{http_code}' "${BASE}${path}")"
  if [[ "${code}" != "${want}" ]]; then
    echo "FAIL: GET ${path} returned ${code}, want ${want}" >&2
    exit 1
  fi
  cat "${WORK}/body"
}

expect() { # label haystack_file needle
  local label="$1" file="$2" needle="$3"
  grep -q "${needle}" "${file}" || {
    echo "FAIL: ${label}: missing '${needle}'" >&2
    cat "${file}" >&2
    exit 1
  }
  echo "ok: ${label}"
}

fetch /healthz 200 > "${WORK}/healthz"
expect "/healthz" "${WORK}/healthz" "ok"

fetch /metrics 200 > "${WORK}/metrics1"
expect "/metrics HELP"     "${WORK}/metrics1" "^# HELP "
expect "/metrics TYPE"     "${WORK}/metrics1" "^# TYPE "
expect "/metrics run_info" "${WORK}/metrics1" 'pmkm_run_info{run_id="smoke0001"} 1'

fetch /statusz 200 > "${WORK}/statusz"
expect "/statusz" "${WORK}/statusz" "run: smoke0001"

fetch /runz 200 > "${WORK}/runz"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "${WORK}/runz" \
  || { echo "FAIL: /runz is not valid JSON" >&2; exit 1; }
echo "ok: /runz parses as JSON"

fetch /tracez 200 > /dev/null && echo "ok: /tracez"
fetch /pprofz 200 > /dev/null && echo "ok: /pprofz"
fetch /nosuch 404 > /dev/null && echo "ok: unknown path is 404"

# Second scrape: cumulative series never regress between scrapes.
fetch /metrics 200 > "${WORK}/metrics2"
python3 - "${WORK}/metrics1" "${WORK}/metrics2" << 'EOF'
import sys

def samples(path):
    out = {}
    for line in open(path):
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        if name.endswith("_count") or name.endswith("_sum") or \
           (("{" not in name) and not name.endswith("_max")):
            try:
                out[name] = float(value)
            except ValueError:
                pass
    return out

first, second = samples(sys.argv[1]), samples(sys.argv[2])
bad = [n for n, v in first.items() if n in second and second[n] < v]
if bad:
    sys.exit("FAIL: regressed between scrapes: %s" % ", ".join(sorted(bad)))
print("ok: %d cumulative series monotonic across scrapes" % len(first))
EOF

kill "${CLUSTER_PID}" 2> /dev/null || true
wait "${CLUSTER_PID}" 2> /dev/null || true
CLUSTER_PID=""

echo "== debug smoke passed =="
