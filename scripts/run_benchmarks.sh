#!/usr/bin/env bash
# Smoke-config benchmark run emitting machine-readable stream results:
#   BENCH_stream.json — { benchmark: {wall_s, t_partial_s, t_merge_s,
#                         min_mse}, ... }
# for the Fig. 6 time sweep (serial + 10-chunk partial/merge at the
# largest N, once with the scalar reference kernel and once with the
# auto-selected SIMD kernel), the operator-clone speed-up study, and the
# AssignBlock kernel micro-sweep (per-kernel throughput at D=6/16/64,
# k=40). The "host" entry records the host ISA and the kernel auto
# resolved to; "kernel_assign_*" entries record points/sec per kernel and
# the SIMD-over-scalar speedup. All harnesses merge into the same file,
# so it can be re-run incrementally.
#
# Usage: scripts/run_benchmarks.sh [output.json]   (default BENCH_stream.json)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_stream.json}"

if [[ ! -x build/bench/bench_fig6_time || ! -x build/bench/bench_speedup \
      || ! -x build/bench/bench_micro ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_fig6_time bench_speedup bench_micro
fi

rm -f "${OUT}"
build/bench/bench_fig6_time --quick --kernel=scalar --json_out="${OUT}"
build/bench/bench_fig6_time --quick --kernel=auto --json_out="${OUT}"
build/bench/bench_speedup --quick --json_out="${OUT}"

# Assignment-kernel throughput sweep: google-benchmark JSON, folded into
# the same results file as kernel_assign_d<D>_<kernel> entries plus a
# speedup_vs_scalar ratio per dimensionality.
MICRO_JSON="$(mktemp)"
build/bench/bench_micro --benchmark_filter='^BM_AssignBlock/' \
  --benchmark_format=json > "${MICRO_JSON}"
python3 - "${MICRO_JSON}" "${OUT}" <<'EOF'
import json, sys
micro = json.load(open(sys.argv[1]))
out_path = sys.argv[2]
try:
    doc = json.load(open(out_path))
except (FileNotFoundError, ValueError):
    doc = {}
rates = {}
for b in micro.get("benchmarks", []):
    # name: BM_AssignBlock/<kernel>/d<dim>
    parts = b["name"].split("/")
    if len(parts) != 3:
        continue
    kernel, dim = parts[1], parts[2][1:]
    rates[(kernel, dim)] = b.get("items_per_second", 0.0)
    doc[f"kernel_assign_d{dim}_{kernel}"] = {
        "points_per_s": b.get("items_per_second", 0.0),
        "real_time_ns": b.get("real_time", 0.0),
    }
for (kernel, dim), rate in sorted(rates.items()):
    scalar = rates.get(("scalar", dim), 0.0)
    if kernel != "scalar" and scalar > 0.0:
        doc[f"kernel_assign_d{dim}_{kernel}"]["speedup_vs_scalar"] = \
            rate / scalar
json.dump(doc, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
EOF
rm -f "${MICRO_JSON}"

echo
echo "==== ${OUT} ===="
cat "${OUT}"
