#!/usr/bin/env bash
# Smoke-config benchmark run emitting machine-readable stream results:
#   BENCH_stream.json — { benchmark: {wall_s, t_partial_s, t_merge_s,
#                         min_mse}, ... }
# for the Fig. 6 time sweep (serial + 10-chunk partial/merge at the
# largest N) and the operator-clone speed-up study. Both harnesses merge
# into the same file, so it can be re-run incrementally.
#
# Usage: scripts/run_benchmarks.sh [output.json]   (default BENCH_stream.json)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_stream.json}"

if [[ ! -x build/bench/bench_fig6_time || ! -x build/bench/bench_speedup ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_fig6_time bench_speedup
fi

rm -f "${OUT}"
build/bench/bench_fig6_time --quick --json_out="${OUT}"
build/bench/bench_speedup --quick --json_out="${OUT}"

echo
echo "==== ${OUT} ===="
cat "${OUT}"
