#!/usr/bin/env bash
# Builds the fuzz harnesses with ASan+UBSan and runs each for a short
# time budget over its seed corpus (fuzz/corpus/<target>/).
#
#   scripts/run_fuzz_smoke.sh [seconds-per-harness]   (default: 30)
#
# Under Clang this is real coverage-guided libFuzzer; under GCC it is the
# standalone replay driver (corpus + deterministic mutations) — same
# command line either way, see fuzz/CMakeLists.txt. Findings land in
# build-fuzz/fuzz/corpus_<target>/ and crash files in the CWD.

set -euo pipefail

cd "$(dirname "$0")/.."

budget="${1:-30}"

cmake -B build-fuzz -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPMKM_BUILD_FUZZERS=ON \
  -DPMKM_SANITIZE=address,undefined \
  -DPMKM_FUZZ_SMOKE_SECONDS="${budget}" \
  -DPMKM_BUILD_TESTS=OFF \
  -DPMKM_BUILD_BENCHMARKS=OFF \
  -DPMKM_BUILD_EXAMPLES=OFF
cmake --build build-fuzz -j "$(nproc)" --target fuzz_smoke

echo "==> fuzz smoke passed (${budget}s per harness)"
