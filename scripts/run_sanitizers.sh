#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under sanitizers:
#   build-asan/  AddressSanitizer + UndefinedBehaviorSanitizer
#   build-tsan/  ThreadSanitizer (the stream executor is thread-heavy)
#   build-msan/  MemorySanitizer (requires Clang; see below)
#
# Usage: scripts/run_sanitizers.sh [asan|tsan|msan|all] [--label L]
#   (default: asan + tsan; msan only on request since it needs Clang)
#
#   --label unit          only fast hermetic tests (ctest -L unit)
#   --label integration   only pipeline/subprocess tests
#
# MSan note: PMKM_SANITIZE=memory is validated by CMake (Clang-only,
# incompatible with asan/tsan). For signal without false positives the
# C++ standard library should also be MSan-instrumented; without an
# instrumented libc++ expect noise from the standard library.

set -euo pipefail

cd "$(dirname "$0")/.."

label=""
which="all"
while [[ $# -gt 0 ]]; do
  case "$1" in
    asan|tsan|msan|all) which="$1"; shift ;;
    --label)
      [[ $# -ge 2 ]] || { echo "--label needs a value" >&2; exit 2; }
      label="$2"; shift 2 ;;
    --label=*) label="${1#--label=}"; shift ;;
    *)
      echo "usage: $0 [asan|tsan|msan|all] [--label unit|integration]" >&2
      exit 2 ;;
  esac
done

ctest_args=(--output-on-failure -j "$(nproc)")
if [[ -n "${label}" ]]; then
  ctest_args+=(-L "${label}")
fi

run_suite() {
  local name="$1" sanitize="$2"
  shift 2
  local dir="build-${name}"
  echo "==> configuring ${dir} (PMKM_SANITIZE=${sanitize})"
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPMKM_SANITIZE="${sanitize}" \
    -DPMKM_BUILD_BENCHMARKS=OFF \
    -DPMKM_BUILD_EXAMPLES=OFF \
    "$@"
  echo "==> building ${dir}"
  cmake --build "${dir}" -j "$(nproc)"
  echo "==> testing ${dir}${label:+ (label: ${label})}"
  ctest --test-dir "${dir}" "${ctest_args[@]}"
}

run_msan() {
  local clangxx="${CLANGXX:-clang++}"
  if ! command -v "${clangxx}" > /dev/null; then
    echo "MSan requires Clang; ${clangxx} not found" >&2
    echo "(install clang or set CLANGXX to a clang++ binary)" >&2
    exit 3
  fi
  run_suite msan "memory" -DCMAKE_CXX_COMPILER="${clangxx}"
}

case "${which}" in
  asan) run_suite asan "address,undefined" ;;
  tsan) run_suite tsan "thread" ;;
  msan) run_msan ;;
  all)
    run_suite asan "address,undefined"
    run_suite tsan "thread"
    ;;
esac

echo "==> all sanitizer suites passed"
