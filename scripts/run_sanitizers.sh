#!/usr/bin/env bash
# Builds and runs the tier-1 test suite under sanitizers:
#   build-asan/  AddressSanitizer + UndefinedBehaviorSanitizer
#   build-tsan/  ThreadSanitizer (the stream executor is thread-heavy)
#
# Usage: scripts/run_sanitizers.sh [asan|tsan]   (default: both)

set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local name="$1" sanitize="$2"
  local dir="build-${name}"
  echo "==> configuring ${dir} (PMKM_SANITIZE=${sanitize})"
  cmake -B "${dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPMKM_SANITIZE="${sanitize}" \
    -DPMKM_BUILD_BENCHMARKS=OFF \
    -DPMKM_BUILD_EXAMPLES=OFF
  echo "==> building ${dir}"
  cmake --build "${dir}" -j "$(nproc)"
  echo "==> testing ${dir}"
  ctest --test-dir "${dir}" --output-on-failure -j "$(nproc)"
}

which="${1:-all}"
case "${which}" in
  asan) run_suite asan "address,undefined" ;;
  tsan) run_suite tsan "thread" ;;
  all)
    run_suite asan "address,undefined"
    run_suite tsan "thread"
    ;;
  *)
    echo "usage: $0 [asan|tsan]" >&2
    exit 2
    ;;
esac

echo "==> all sanitizer suites passed"
