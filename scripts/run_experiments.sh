#!/usr/bin/env bash
# Builds everything and regenerates the full evaluation:
#   test_output.txt   — ctest results
#   bench_output.txt  — every table/figure harness + ablations + micro
#
# Usage: scripts/run_experiments.sh [--quick]
#   --quick  pass the fast sanity configuration to every harness

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_FLAG=""
if [[ "${1:-}" == "--quick" ]]; then
  QUICK_FLAG="--quick"
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "######## ${b}"
    # bench_micro (google-benchmark) does not take --quick.
    if [[ "$(basename "$b")" == "bench_micro" ]]; then
      "$b"
    else
      "$b" ${QUICK_FLAG}
    fi
    echo
  done
} 2>&1 | tee bench_output.txt
