#include "cluster/hamerly.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kernels/kernel.h"

namespace pmkm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Points per batched AssignBlock call (both the initial pass and the
/// gathered full-scan flushes).
constexpr size_t kAssignTile = 256;

// Exact squared L2, same accumulation order as the kernels. Used only on
// kernel-independent paths (upper-bound tightening, repair), so its value
// is identical whichever kernel runs the scans.
double SqDist(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

Result<ClusteringModel> RunHamerlyLloyd(const WeightedDataset& data,
                                        Dataset initial_centroids,
                                        const LloydConfig& config,
                                        Rng* rng, HamerlyStats* stats) {
  const size_t n = data.size();
  const size_t k = initial_centroids.size();
  const size_t dim = data.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (k == 0) return Status::InvalidArgument("no initial centroids");
  if (initial_centroids.dim() != dim) {
    return Status::InvalidArgument("centroid/data dimensionality mismatch");
  }
  if (config.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  PMKM_CHECK(rng != nullptr);

  const DistanceKernel& kernel =
      config.kernel != nullptr ? *config.kernel : DefaultKernel();

  ClusteringModel model;
  model.centroids = std::move(initial_centroids);
  model.weights.assign(k, 0.0);

  const double* points = data.points().data();
  std::vector<uint32_t> assign(n);
  std::vector<double> upper(n);   // u(i): bound on dist to assigned
  std::vector<double> lower(n);   // l(i): bound on dist to all others
  std::vector<double> sums(k * dim, 0.0);
  std::vector<double> mass(k, 0.0);

  CentroidBlock block;
  const size_t tile_cap = std::min(n, kAssignTile);
  std::vector<double> dist2(tile_cap);
  std::vector<double> second2(tile_cap);
  std::vector<uint32_t> tile_assign(tile_cap);
  // Gather scratch for the batched full-scan path: packed copies of the
  // points that survived bound pruning, plus their original indices.
  std::vector<double> gather_points(tile_cap * dim);
  std::vector<size_t> gather_idx(tile_cap);

  // --- Initial exact assignment, builds running sums -------------------
  block.Load(model.centroids);
  for (size_t i0 = 0; i0 < n; i0 += kAssignTile) {
    const size_t tile = std::min(kAssignTile, n - i0);
    kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                       assign.data() + i0, dist2.data(), second2.data());
    for (size_t t = 0; t < tile; ++t) {
      upper[i0 + t] = std::sqrt(dist2[t]);
      lower[i0 + t] = std::sqrt(second2[t]);
    }
  }
  kernel.AccumulateBlock(points, data.weights().data(), n, dim,
                         assign.data(), sums.data(), mass.data());

  std::vector<double> drift(k, 0.0);
  std::vector<double> s(k, 0.0);  // half-distance to nearest other center
  std::vector<double> old_centroids(k * dim);

  size_t iter = 0;
  bool need_full_rescan = false;
  for (iter = 0; iter < config.max_iterations; ++iter) {
    // Update centroids from the running sums (starved centroids stay put
    // and are repaired below).
    std::copy(model.centroids.data(), model.centroids.data() + k * dim,
              old_centroids.begin());
    for (size_t j = 0; j < k; ++j) {
      if (mass[j] <= 0.0) continue;
      double* c = model.centroids.mutable_data() + j * dim;
      const double inv = 1.0 / mass[j];
      const double* sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) c[d] = sum[d] * inv;
    }

    // Empty-cluster repair (rare): re-seed to the point farthest from its
    // centroid, computed exactly, then force a full rescan so every bound
    // is rebuilt against the patched codebook.
    bool repaired = false;
    for (size_t j = 0; j < k; ++j) {
      if (mass[j] > 0.0) continue;
      size_t far_i = n;
      double far_d = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (mass[assign[i]] <= data.weight(i)) continue;  // would starve
        const double d = SqDist(points + i * dim,
                                model.centroids.data() + assign[i] * dim,
                                dim);
        if (d > far_d) {
          far_d = d;
          far_i = i;
        }
      }
      if (far_i == n || far_d <= 0.0) continue;  // duplicates; leave empty
      const double w = data.weight(far_i);
      const double* x = points + far_i * dim;
      const size_t old = assign[far_i];
      double* old_sum = sums.data() + old * dim;
      double* new_sum = sums.data() + j * dim;
      double* c = model.centroids.mutable_data() + j * dim;
      for (size_t d = 0; d < dim; ++d) {
        old_sum[d] -= w * x[d];
        new_sum[d] = w * x[d];
        c[d] = x[d];
      }
      mass[old] -= w;
      mass[j] = w;
      assign[far_i] = static_cast<uint32_t>(j);
      repaired = true;
    }
    if (repaired) need_full_rescan = true;

    // drift(j) = ‖old_j − new_j‖ and s(j) = half the distance to the
    // nearest other centroid, both from the kernel. The block holds the
    // post-repair centroids and is reused by the full scans below.
    block.Load(model.centroids);
    kernel.CentroidDriftAndSeparation(old_centroids.data(),
                                      model.centroids.data(), block, k, dim,
                                      drift.data(), s.data());

    // Loosen bounds by the centroid drifts.
    if (!need_full_rescan) {
      double max_drift = 0.0;
      for (size_t j = 0; j < k; ++j) max_drift = std::max(max_drift, drift[j]);
      if (max_drift > 0.0) {
        for (size_t i = 0; i < n; ++i) {
          upper[i] += drift[assign[i]];
          lower[i] -= max_drift;
        }
      }
    }

    // Assignment pass with bound pruning. Points that survive pruning are
    // gathered into a packed tile and batched through AssignBlock.
    size_t changed = 0;
    size_t pending = 0;
    auto flush = [&]() {
      if (pending == 0) return;
      kernel.AssignBlock(gather_points.data(), pending, dim, block,
                         tile_assign.data(), dist2.data(), second2.data());
      for (size_t t = 0; t < pending; ++t) {
        const size_t i = gather_idx[t];
        const size_t best = tile_assign[t];
        const size_t a = assign[i];
        upper[i] = std::sqrt(dist2[t]);
        lower[i] = std::sqrt(second2[t]);
        if (best != a) {
          const double w = data.weight(i);
          const double* x = points + i * dim;
          double* old_sum = sums.data() + a * dim;
          double* new_sum = sums.data() + best * dim;
          for (size_t d = 0; d < dim; ++d) {
            old_sum[d] -= w * x[d];
            new_sum[d] += w * x[d];
          }
          mass[a] -= w;
          mass[best] += w;
          assign[i] = static_cast<uint32_t>(best);
          ++changed;
        }
      }
      pending = 0;
    };
    for (size_t i = 0; i < n; ++i) {
      const size_t a = assign[i];
      const double* x = points + i * dim;
      if (!need_full_rescan) {
        const double m = std::max(s[a], lower[i]);
        if (upper[i] <= m) {
          if (stats != nullptr) ++stats->bound_skips;
          continue;
        }
        // Tighten the upper bound with one exact distance.
        upper[i] =
            std::sqrt(SqDist(x, model.centroids.data() + a * dim, dim));
        if (upper[i] <= m) {
          if (stats != nullptr) ++stats->bound_skips;
          continue;
        }
      }
      if (stats != nullptr) ++stats->full_scans;
      std::copy(x, x + dim, gather_points.data() + pending * dim);
      gather_idx[pending] = i;
      if (++pending == tile_cap) flush();
    }
    flush();
    need_full_rescan = false;

    // Fixpoint: nothing moved, so the next centroid update is a no-op and
    // the SSE delta is 0 ≤ epsilon (the paper's criterion at convergence).
    if (changed == 0 && !repaired) {
      model.converged = true;
      ++iter;
      break;
    }
  }
  if (stats != nullptr) stats->iterations = iter;

  // Final exact bookkeeping (same as RunWeightedLloyd).
  {
    block.Load(model.centroids);
    std::fill(model.weights.begin(), model.weights.end(), 0.0);
    double final_sse = 0.0;
    for (size_t i0 = 0; i0 < n; i0 += kAssignTile) {
      const size_t tile = std::min(kAssignTile, n - i0);
      kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                         assign.data() + i0, dist2.data());
      for (size_t t = 0; t < tile; ++t) {
        const size_t i = i0 + t;
        const double w = data.weight(i);
        model.weights[assign[i]] += w;
        final_sse += w * dist2[t];
      }
    }
    model.sse = final_sse;
    const double total = data.TotalWeight();
    model.mse_per_point = total > 0.0 ? final_sse / total : 0.0;
  }
  model.iterations = std::min(iter, config.max_iterations);
  if (config.track_assignments) model.assignments = std::move(assign);
  return model;
}

}  // namespace pmkm
