#include "cluster/hamerly.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"

namespace pmkm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Exact L2 distance.
double Dist(const double* a, const double* b, size_t dim) {
  return std::sqrt(SquaredL2(a, b, dim));
}

}  // namespace

Result<ClusteringModel> RunHamerlyLloyd(const WeightedDataset& data,
                                        Dataset initial_centroids,
                                        const LloydConfig& config,
                                        Rng* rng, HamerlyStats* stats) {
  const size_t n = data.size();
  const size_t k = initial_centroids.size();
  const size_t dim = data.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (k == 0) return Status::InvalidArgument("no initial centroids");
  if (initial_centroids.dim() != dim) {
    return Status::InvalidArgument("centroid/data dimensionality mismatch");
  }
  if (config.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  PMKM_CHECK(rng != nullptr);

  ClusteringModel model;
  model.centroids = std::move(initial_centroids);
  model.weights.assign(k, 0.0);

  const double* points = data.points().data();
  std::vector<uint32_t> assign(n);
  std::vector<double> upper(n);   // u(i): bound on dist to assigned
  std::vector<double> lower(n);   // l(i): bound on dist to all others
  std::vector<double> sums(k * dim, 0.0);
  std::vector<double> mass(k, 0.0);

  // --- Initial exact assignment, builds running sums -------------------
  {
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      size_t best = 0;
      double d_best = kInf, d_second = kInf;
      for (size_t j = 0; j < k; ++j) {
        const double d =
            Dist(x, model.centroids.data() + j * dim, dim);
        if (d < d_best) {
          d_second = d_best;
          d_best = d;
          best = j;
        } else if (d < d_second) {
          d_second = d;
        }
      }
      assign[i] = static_cast<uint32_t>(best);
      upper[i] = d_best;
      lower[i] = d_second;
      const double w = data.weight(i);
      double* sum = sums.data() + best * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += w * x[d];
      mass[best] += w;
    }
  }

  std::vector<double> drift(k, 0.0);
  std::vector<double> s(k, 0.0);  // half-distance to nearest other center
  std::vector<double> old_center(dim);

  size_t iter = 0;
  bool need_full_rescan = false;
  for (iter = 0; iter < config.max_iterations; ++iter) {
    // Update centroids from the running sums; record drifts.
    double max_drift = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (mass[j] <= 0.0) {
        drift[j] = 0.0;
        continue;  // starved; repaired below
      }
      double* c = model.centroids.mutable_data() + j * dim;
      std::copy(c, c + dim, old_center.begin());
      const double inv = 1.0 / mass[j];
      const double* sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) c[d] = sum[d] * inv;
      drift[j] = Dist(old_center.data(), c, dim);
      max_drift = std::max(max_drift, drift[j]);
    }

    // Empty-cluster repair (rare): re-seed to the point farthest from its
    // centroid, computed exactly, then force a full rescan so every bound
    // is rebuilt against the patched codebook.
    bool repaired = false;
    for (size_t j = 0; j < k; ++j) {
      if (mass[j] > 0.0) continue;
      size_t far_i = n;
      double far_d = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (mass[assign[i]] <= data.weight(i)) continue;  // would starve
        const double d = Dist(points + i * dim,
                              model.centroids.data() + assign[i] * dim,
                              dim);
        if (d > far_d) {
          far_d = d;
          far_i = i;
        }
      }
      if (far_i == n || far_d <= 0.0) continue;  // duplicates; leave empty
      const double w = data.weight(far_i);
      const double* x = points + far_i * dim;
      const size_t old = assign[far_i];
      double* old_sum = sums.data() + old * dim;
      double* new_sum = sums.data() + j * dim;
      double* c = model.centroids.mutable_data() + j * dim;
      for (size_t d = 0; d < dim; ++d) {
        old_sum[d] -= w * x[d];
        new_sum[d] = w * x[d];
        c[d] = x[d];
      }
      mass[old] -= w;
      mass[j] = w;
      assign[far_i] = static_cast<uint32_t>(j);
      repaired = true;
    }
    if (repaired) need_full_rescan = true;

    // Loosen bounds by the centroid drifts.
    if (max_drift > 0.0 && !need_full_rescan) {
      for (size_t i = 0; i < n; ++i) {
        upper[i] += drift[assign[i]];
        lower[i] -= max_drift;
      }
    }

    // s(j): half the distance to the nearest other centroid.
    for (size_t j = 0; j < k; ++j) {
      double nearest = kInf;
      for (size_t j2 = 0; j2 < k; ++j2) {
        if (j2 == j) continue;
        nearest = std::min(
            nearest, Dist(model.centroids.data() + j * dim,
                          model.centroids.data() + j2 * dim, dim));
      }
      s[j] = 0.5 * nearest;
    }

    // Assignment pass with bound pruning.
    size_t changed = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t a = assign[i];
      const double* x = points + i * dim;
      if (need_full_rescan) {
        // fall through to the full scan below with bounds reset
      } else {
        const double m = std::max(s[a], lower[i]);
        if (upper[i] <= m) {
          if (stats != nullptr) ++stats->bound_skips;
          continue;
        }
        // Tighten the upper bound with one exact distance.
        upper[i] = Dist(x, model.centroids.data() + a * dim, dim);
        if (upper[i] <= m) {
          if (stats != nullptr) ++stats->bound_skips;
          continue;
        }
      }
      if (stats != nullptr) ++stats->full_scans;
      size_t best = 0;
      double d_best = kInf, d_second = kInf;
      for (size_t j = 0; j < k; ++j) {
        const double d = Dist(x, model.centroids.data() + j * dim, dim);
        if (d < d_best) {
          d_second = d_best;
          d_best = d;
          best = j;
        } else if (d < d_second) {
          d_second = d;
        }
      }
      upper[i] = d_best;
      lower[i] = d_second;
      if (best != a) {
        const double w = data.weight(i);
        double* old_sum = sums.data() + a * dim;
        double* new_sum = sums.data() + best * dim;
        for (size_t d = 0; d < dim; ++d) {
          old_sum[d] -= w * x[d];
          new_sum[d] += w * x[d];
        }
        mass[a] -= w;
        mass[best] += w;
        assign[i] = static_cast<uint32_t>(best);
        ++changed;
      }
    }
    need_full_rescan = false;

    // Fixpoint: nothing moved, so the next centroid update is a no-op and
    // the SSE delta is 0 ≤ epsilon (the paper's criterion at convergence).
    if (changed == 0 && !repaired) {
      model.converged = true;
      ++iter;
      break;
    }
  }
  if (stats != nullptr) stats->iterations = iter;

  // Final exact bookkeeping (same as RunWeightedLloyd).
  {
    const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
    std::fill(model.weights.begin(), model.weights.end(), 0.0);
    double final_sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const Nearest nearest = NearestCentroid(x, model.centroids, norms);
      assign[i] = static_cast<uint32_t>(nearest.index);
      const double w = data.weight(i);
      model.weights[nearest.index] += w;
      final_sse += w * nearest.distance_sq;
    }
    model.sse = final_sse;
    const double total = data.TotalWeight();
    model.mse_per_point = total > 0.0 ? final_sse / total : 0.0;
  }
  model.iterations = std::min(iter, config.max_iterations);
  if (config.track_assignments) model.assignments = std::move(assign);
  return model;
}

}  // namespace pmkm
