#include "cluster/seeding.h"

#include <algorithm>
#include <numeric>

#include "cluster/distance.h"

namespace pmkm {

const char* SeedingMethodToString(SeedingMethod method) {
  switch (method) {
    case SeedingMethod::kRandom:
      return "random";
    case SeedingMethod::kHeaviestWeight:
      return "heaviest";
    case SeedingMethod::kKMeansPlusPlus:
      return "kmeans++";
  }
  return "?";
}

Result<SeedingMethod> SeedingMethodFromString(const std::string& name) {
  if (name == "random") return SeedingMethod::kRandom;
  if (name == "heaviest") return SeedingMethod::kHeaviestWeight;
  if (name == "kmeans++") return SeedingMethod::kKMeansPlusPlus;
  return Status::InvalidArgument("unknown seeding method: " + name);
}

namespace {

Dataset SeedsFromIndices(const WeightedDataset& data,
                         const std::vector<size_t>& indices) {
  Dataset seeds(data.dim());
  seeds.Reserve(indices.size());
  for (size_t i : indices) seeds.Append(data.Row(i));
  return seeds;
}

std::vector<size_t> RandomDistinct(size_t n, size_t k, Rng* rng) {
  // Floyd's algorithm would do, but a partial Fisher–Yates over an index
  // array is simpler and n is at most a partition size here.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + rng->UniformInt(n - i);
    std::swap(order[i], order[j]);
  }
  order.resize(k);
  return order;
}

std::vector<size_t> HeaviestIndices(const std::vector<double>& weights,
                                    size_t k) {
  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](size_t a, size_t b) {
                      // Stable rank for equal weights: lower index first.
                      if (weights[a] != weights[b])
                        return weights[a] > weights[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<size_t> KMeansPlusPlusIndices(const WeightedDataset& data,
                                          size_t k, Rng* rng) {
  const size_t n = data.size();
  std::vector<size_t> chosen;
  chosen.reserve(k);

  // First seed: weight-proportional draw.
  const double total = data.TotalWeight();
  double u = rng->UniformDouble() * total;
  size_t first = 0;
  for (size_t i = 0; i < n; ++i) {
    u -= data.weight(i);
    if (u <= 0.0) {
      first = i;
      break;
    }
  }
  chosen.push_back(first);

  std::vector<double> dist_sq(n);
  for (size_t i = 0; i < n; ++i) {
    dist_sq[i] = SquaredL2(data.Row(i), data.Row(first));
  }

  while (chosen.size() < k) {
    double z = 0.0;
    for (size_t i = 0; i < n; ++i) z += data.weight(i) * dist_sq[i];
    size_t next;
    if (z <= 0.0) {
      // All mass already covered (duplicate points); fall back to uniform.
      next = rng->UniformInt(n);
    } else {
      double target = rng->UniformDouble() * z;
      next = n - 1;
      for (size_t i = 0; i < n; ++i) {
        target -= data.weight(i) * dist_sq[i];
        if (target <= 0.0) {
          next = i;
          break;
        }
      }
    }
    chosen.push_back(next);
    for (size_t i = 0; i < n; ++i) {
      dist_sq[i] =
          std::min(dist_sq[i], SquaredL2(data.Row(i), data.Row(next)));
    }
  }
  return chosen;
}

}  // namespace

Result<Dataset> SelectSeeds(const WeightedDataset& data, size_t k,
                            SeedingMethod method, Rng* rng) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (data.size() < k) {
    return Status::InvalidArgument(
        "cannot select " + std::to_string(k) + " seeds from " +
        std::to_string(data.size()) + " points");
  }
  PMKM_CHECK(rng != nullptr);
  switch (method) {
    case SeedingMethod::kRandom:
      return SeedsFromIndices(data, RandomDistinct(data.size(), k, rng));
    case SeedingMethod::kHeaviestWeight:
      return SeedsFromIndices(data, HeaviestIndices(data.weights(), k));
    case SeedingMethod::kKMeansPlusPlus:
      return SeedsFromIndices(data, KMeansPlusPlusIndices(data, k, rng));
  }
  return Status::Internal("unreachable seeding method");
}

}  // namespace pmkm
