// Internal wiring between the kernel dispatcher and the per-ISA
// translation units. Each ISA TU exposes one factory that returns its
// singleton kernel, or nullptr when the TU was built without that ISA
// (the dispatcher then treats the kind as unavailable).

#ifndef PMKM_CLUSTER_KERNELS_INTERNAL_H_
#define PMKM_CLUSTER_KERNELS_INTERNAL_H_

#include "cluster/kernels/kernel.h"

namespace pmkm {
namespace kernels {

const DistanceKernel* ScalarKernel();  // never null
const DistanceKernel* Avx2Kernel();    // null unless built for x86-64
const DistanceKernel* NeonKernel();    // null unless built for aarch64

/// Runtime CPU probe for the AVX2+FMA path (build-time support is a
/// separate question answered by Avx2Kernel() != nullptr).
bool CpuSupportsAvx2();

}  // namespace kernels
}  // namespace pmkm

#endif  // PMKM_CLUSTER_KERNELS_INTERNAL_H_
