// AVX2 distance kernel. This TU is the only one compiled with
// -mavx2 -mfma (see src/cluster/CMakeLists.txt), so the rest of the build
// stays portable; availability is re-checked at runtime via CPUID before
// dispatch ever lands here.
//
// Determinism (must match kernels/scalar.cc bit-for-bit):
//  - each SIMD lane owns one centroid and accumulates (x[d] − c[d])² over
//    d in ascending order with separate mul + add (never vfmadd — the
//    different rounding of a fused multiply-add would break cross-kernel
//    parity), so a lane's distance equals the scalar kernel's exactly;
//  - lane updates use strictly-less compares, and the horizontal reduce
//    prefers the smaller centroid index on bitwise-equal distances —
//    together equivalent to the scalar ascending-j scan;
//  - padded lanes (CentroidBlock columns j >= k hold +inf coordinates)
//    produce +inf distances and can never win.

#include "cluster/kernels/internal.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace pmkm {
namespace kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Squared distances of point x to the 4 centroids starting at padded
// column j0, accumulated in ascending-d order (one mul + one add per
// coordinate, matching the scalar kernel).
inline __m256d Distance4(const double* x, const double* ct, size_t kp,
                         size_t dim, size_t j0) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    const __m256d xd = _mm256_set1_pd(x[d]);
    const __m256d c = _mm256_loadu_pd(ct + d * kp + j0);
    const __m256d diff = _mm256_sub_pd(xd, c);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return acc;
}

}  // namespace

// External linkage on purpose: these member functions are the
// assignment hot path, and the sampling profiler's dladdr
// symbolization only resolves dynamic-table symbols — an
// anonymous-namespace kernel shows up as hex addresses in
// /pprofz and folded-stack output.
class Avx2DistanceKernel final : public DistanceKernel {
 public:
  const char* name() const override { return "avx2"; }
  KernelKind kind() const override { return KernelKind::kAvx2; }

  void AssignBlock(const double* points, size_t n, size_t dim,
                   const CentroidBlock& centroids, uint32_t* assign,
                   double* dist2, double* second2) const override {
    const size_t k = centroids.k();
    const size_t kp = centroids.padded_k();
    const double* ct = centroids.transposed();
    PMKM_DCHECK(k > 0 && centroids.dim() == dim && kp % 4 == 0);

    const __m256d inf = _mm256_set1_pd(kInf);
    const __m256i step = _mm256_set1_epi64x(4);
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      __m256d best_d = inf;
      __m256d second_d = inf;
      __m256i best_j = _mm256_setr_epi64x(0, 1, 2, 3);
      __m256i j_vec = best_j;
      for (size_t j0 = 0; j0 < kp; j0 += 4) {
        const __m256d d4 = Distance4(x, ct, kp, dim, j0);
        const __m256d lt_best = _mm256_cmp_pd(d4, best_d, _CMP_LT_OQ);
        // second := lt_best ? old best : min(d4, second)
        const __m256d min_second = _mm256_min_pd(d4, second_d);
        second_d = _mm256_blendv_pd(min_second, best_d, lt_best);
        best_d = _mm256_blendv_pd(best_d, d4, lt_best);
        best_j = _mm256_castpd_si256(_mm256_blendv_pd(
            _mm256_castsi256_pd(best_j), _mm256_castsi256_pd(j_vec),
            lt_best));
        j_vec = _mm256_add_epi64(j_vec, step);
      }

      alignas(32) double bd[4];
      alignas(32) double sd[4];
      alignas(32) int64_t bj[4];
      _mm256_store_pd(bd, best_d);
      _mm256_store_pd(sd, second_d);
      _mm256_store_si256(reinterpret_cast<__m256i*>(bj), best_j);

      // Horizontal reduce: smallest distance, ties to the smaller index —
      // identical to the scalar ascending-j scan.
      int w = 0;
      for (int l = 1; l < 4; ++l) {
        if (bd[l] < bd[w] || (bd[l] == bd[w] && bj[l] < bj[w])) w = l;
      }
      double d_second = sd[w];
      for (int l = 0; l < 4; ++l) {
        if (l != w && bd[l] < d_second) d_second = bd[l];
      }
      assign[i] = static_cast<uint32_t>(bj[w]);
      dist2[i] = bd[w];
      if (second2 != nullptr) second2[i] = d_second;
    }
  }

  void AccumulateBlock(const double* points, const double* weights,
                       size_t n, size_t dim, const uint32_t* assign,
                       double* sums, double* cluster_weight) const override {
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const double w = weights != nullptr ? weights[i] : 1.0;
      double* sum = sums + assign[i] * dim;
      const __m256d wv = _mm256_set1_pd(w);
      size_t d = 0;
      for (; d + 4 <= dim; d += 4) {
        const __m256d xv = _mm256_loadu_pd(x + d);
        const __m256d sv = _mm256_loadu_pd(sum + d);
        // mul + add (not FMA): bitwise-equal to the scalar kernel.
        _mm256_storeu_pd(sum + d,
                         _mm256_add_pd(sv, _mm256_mul_pd(wv, xv)));
      }
      for (; d < dim; ++d) sum[d] += w * x[d];
      cluster_weight[assign[i]] += w;
    }
  }

  void CentroidDriftAndSeparation(const double* old_centroids,
                                  const double* new_centroids,
                                  const CentroidBlock& block, size_t k,
                                  size_t dim, double* drift,
                                  double* s) const override {
    PMKM_DCHECK(block.k() == k && block.dim() == dim);
    if (drift != nullptr) {
      // k×dim is tiny next to the n×k assignment scan; the scalar loop is
      // already exact and fast enough.
      for (size_t j = 0; j < k; ++j) {
        const double* o = old_centroids + j * dim;
        const double* c = new_centroids + j * dim;
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = o[d] - c[d];
          acc += diff * diff;
        }
        drift[j] = std::sqrt(acc);
      }
    }
    const size_t kp = block.padded_k();
    const double* ct = block.transposed();
    const __m256d inf = _mm256_set1_pd(kInf);
    const __m256i step = _mm256_set1_epi64x(4);
    for (size_t j = 0; j < k; ++j) {
      const double* c = new_centroids + j * dim;
      const __m256i self = _mm256_set1_epi64x(static_cast<int64_t>(j));
      __m256i j_vec = _mm256_setr_epi64x(0, 1, 2, 3);
      __m256d nearest = inf;
      for (size_t j0 = 0; j0 < kp; j0 += 4) {
        __m256d d4 = Distance4(c, ct, kp, dim, j0);
        // Mask out the self-distance lane (j2 == j).
        const __m256d is_self =
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(j_vec, self));
        d4 = _mm256_blendv_pd(d4, inf, is_self);
        nearest = _mm256_min_pd(nearest, d4);
        j_vec = _mm256_add_epi64(j_vec, step);
      }
      alignas(32) double nd[4];
      _mm256_store_pd(nd, nearest);
      double min_sq = nd[0];
      for (int l = 1; l < 4; ++l) {
        if (nd[l] < min_sq) min_sq = nd[l];
      }
      s[j] = 0.5 * std::sqrt(min_sq);
    }
  }
};


const DistanceKernel* Avx2Kernel() {
  static const Avx2DistanceKernel kernel;
  return &kernel;
}

bool CpuSupportsAvx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace kernels
}  // namespace pmkm

#else  // !__AVX2__

namespace pmkm {
namespace kernels {

const DistanceKernel* Avx2Kernel() { return nullptr; }

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace kernels
}  // namespace pmkm

#endif  // __AVX2__
