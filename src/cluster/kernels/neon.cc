// NEON distance kernel (aarch64, where NEON is baseline — no runtime
// probe needed). Mirrors the AVX2 kernel with 2-wide float64x2 lanes; see
// kernels/avx2.cc for the determinism rules both must follow to stay
// bit-identical to the scalar reference.

#include "cluster/kernels/internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>
#include <limits>

namespace pmkm {
namespace kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline float64x2_t Distance2(const double* x, const double* ct, size_t kp,
                             size_t dim, size_t j0) {
  float64x2_t acc = vdupq_n_f64(0.0);
  for (size_t d = 0; d < dim; ++d) {
    const float64x2_t xd = vdupq_n_f64(x[d]);
    const float64x2_t c = vld1q_f64(ct + d * kp + j0);
    const float64x2_t diff = vsubq_f64(xd, c);
    // mul + add (not vfma): bitwise-equal to the scalar kernel.
    acc = vaddq_f64(acc, vmulq_f64(diff, diff));
  }
  return acc;
}

}  // namespace

// External linkage on purpose: these member functions are the
// assignment hot path, and the sampling profiler's dladdr
// symbolization only resolves dynamic-table symbols — an
// anonymous-namespace kernel shows up as hex addresses in
// /pprofz and folded-stack output.
class NeonDistanceKernel final : public DistanceKernel {
 public:
  const char* name() const override { return "neon"; }
  KernelKind kind() const override { return KernelKind::kNeon; }

  void AssignBlock(const double* points, size_t n, size_t dim,
                   const CentroidBlock& centroids, uint32_t* assign,
                   double* dist2, double* second2) const override {
    const size_t k = centroids.k();
    const size_t kp = centroids.padded_k();
    const double* ct = centroids.transposed();
    PMKM_DCHECK(k > 0 && centroids.dim() == dim && kp % 2 == 0);

    const int64_t init_j[2] = {0, 1};
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      float64x2_t best_d = vdupq_n_f64(kInf);
      float64x2_t second_d = vdupq_n_f64(kInf);
      int64x2_t best_j = vld1q_s64(init_j);
      int64x2_t j_vec = best_j;
      const int64x2_t step = vdupq_n_s64(2);
      for (size_t j0 = 0; j0 < kp; j0 += 2) {
        const float64x2_t d2 = Distance2(x, ct, kp, dim, j0);
        const uint64x2_t lt_best = vcltq_f64(d2, best_d);
        const uint64x2_t lt_second = vcltq_f64(d2, second_d);
        const float64x2_t min_second = vbslq_f64(lt_second, d2, second_d);
        second_d = vbslq_f64(lt_best, best_d, min_second);
        best_d = vbslq_f64(lt_best, d2, best_d);
        best_j = vbslq_s64(lt_best, j_vec, best_j);
        j_vec = vaddq_s64(j_vec, step);
      }

      double bd[2], sd[2];
      int64_t bj[2];
      vst1q_f64(bd, best_d);
      vst1q_f64(sd, second_d);
      vst1q_s64(bj, best_j);

      int w = 0;
      if (bd[1] < bd[0] || (bd[1] == bd[0] && bj[1] < bj[0])) w = 1;
      double d_second = sd[w];
      if (bd[1 - w] < d_second) d_second = bd[1 - w];
      assign[i] = static_cast<uint32_t>(bj[w]);
      dist2[i] = bd[w];
      if (second2 != nullptr) second2[i] = d_second;
    }
  }

  void AccumulateBlock(const double* points, const double* weights,
                       size_t n, size_t dim, const uint32_t* assign,
                       double* sums, double* cluster_weight) const override {
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const double w = weights != nullptr ? weights[i] : 1.0;
      double* sum = sums + assign[i] * dim;
      const float64x2_t wv = vdupq_n_f64(w);
      size_t d = 0;
      for (; d + 2 <= dim; d += 2) {
        const float64x2_t xv = vld1q_f64(x + d);
        const float64x2_t sv = vld1q_f64(sum + d);
        vst1q_f64(sum + d, vaddq_f64(sv, vmulq_f64(wv, xv)));
      }
      for (; d < dim; ++d) sum[d] += w * x[d];
      cluster_weight[assign[i]] += w;
    }
  }

  void CentroidDriftAndSeparation(const double* old_centroids,
                                  const double* new_centroids,
                                  const CentroidBlock& block, size_t k,
                                  size_t dim, double* drift,
                                  double* s) const override {
    PMKM_DCHECK(block.k() == k && block.dim() == dim);
    if (drift != nullptr) {
      for (size_t j = 0; j < k; ++j) {
        const double* o = old_centroids + j * dim;
        const double* c = new_centroids + j * dim;
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = o[d] - c[d];
          acc += diff * diff;
        }
        drift[j] = std::sqrt(acc);
      }
    }
    const size_t kp = block.padded_k();
    const double* ct = block.transposed();
    const float64x2_t inf = vdupq_n_f64(kInf);
    const int64_t init_j[2] = {0, 1};
    for (size_t j = 0; j < k; ++j) {
      const double* c = new_centroids + j * dim;
      const int64x2_t self = vdupq_n_s64(static_cast<int64_t>(j));
      int64x2_t j_vec = vld1q_s64(init_j);
      const int64x2_t step = vdupq_n_s64(2);
      float64x2_t nearest = inf;
      for (size_t j0 = 0; j0 < kp; j0 += 2) {
        float64x2_t d2 = Distance2(c, ct, kp, dim, j0);
        const uint64x2_t is_self = vceqq_s64(j_vec, self);
        d2 = vbslq_f64(is_self, inf, d2);
        const uint64x2_t lt = vcltq_f64(d2, nearest);
        nearest = vbslq_f64(lt, d2, nearest);
        j_vec = vaddq_s64(j_vec, step);
      }
      double nd[2];
      vst1q_f64(nd, nearest);
      const double min_sq = nd[1] < nd[0] ? nd[1] : nd[0];
      s[j] = 0.5 * std::sqrt(min_sq);
    }
  }
};


const DistanceKernel* NeonKernel() {
  static const NeonDistanceKernel kernel;
  return &kernel;
}

}  // namespace kernels
}  // namespace pmkm

#else  // !__aarch64__

namespace pmkm {
namespace kernels {

const DistanceKernel* NeonKernel() { return nullptr; }

}  // namespace kernels
}  // namespace pmkm

#endif  // __aarch64__
