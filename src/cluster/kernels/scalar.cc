// Scalar reference kernel — the portable ground truth every SIMD variant
// must match bit-for-bit. The determinism contract this file defines (and
// kernel_parity_test enforces):
//
//  - distance(i, j) accumulates (x[d] − c[d])² over d in ascending order
//    into a single accumulator, with no FMA contraction (this TU builds
//    with -ffp-contract=off);
//  - the argmin scans j in ascending order and replaces only on a strictly
//    smaller distance, so ties break toward the lower centroid index;
//  - AccumulateBlock applies exactly one w·x[d] multiply and one add per
//    (point, coordinate), in ascending point order.

#include <cmath>
#include <limits>

#include "cluster/kernels/internal.h"

namespace pmkm {
namespace kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// External linkage on purpose: these member functions are the
// assignment hot path, and the sampling profiler's dladdr
// symbolization only resolves dynamic-table symbols — an
// anonymous-namespace kernel shows up as hex addresses in
// /pprofz and folded-stack output.
class ScalarDistanceKernel final : public DistanceKernel {
 public:
  const char* name() const override { return "scalar"; }
  KernelKind kind() const override { return KernelKind::kScalar; }

  void AssignBlock(const double* points, size_t n, size_t dim,
                   const CentroidBlock& centroids, uint32_t* assign,
                   double* dist2, double* second2) const override {
    const size_t k = centroids.k();
    const size_t kp = centroids.padded_k();
    const double* ct = centroids.transposed();
    PMKM_DCHECK(k > 0 && centroids.dim() == dim);
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      size_t best = 0;
      double d_best = kInf;
      double d_second = kInf;
      for (size_t j = 0; j < k; ++j) {
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = x[d] - ct[d * kp + j];
          acc += diff * diff;
        }
        if (acc < d_best) {
          d_second = d_best;
          d_best = acc;
          best = j;
        } else if (acc < d_second) {
          d_second = acc;
        }
      }
      assign[i] = static_cast<uint32_t>(best);
      dist2[i] = d_best;
      if (second2 != nullptr) second2[i] = d_second;
    }
  }

  void AccumulateBlock(const double* points, const double* weights,
                       size_t n, size_t dim, const uint32_t* assign,
                       double* sums, double* cluster_weight) const override {
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const double w = weights != nullptr ? weights[i] : 1.0;
      double* sum = sums + assign[i] * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += w * x[d];
      cluster_weight[assign[i]] += w;
    }
  }

  void CentroidDriftAndSeparation(const double* old_centroids,
                                  const double* new_centroids,
                                  const CentroidBlock& block, size_t k,
                                  size_t dim, double* drift,
                                  double* s) const override {
    PMKM_DCHECK(block.k() == k && block.dim() == dim);
    if (drift != nullptr) {
      for (size_t j = 0; j < k; ++j) {
        const double* o = old_centroids + j * dim;
        const double* c = new_centroids + j * dim;
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = o[d] - c[d];
          acc += diff * diff;
        }
        drift[j] = std::sqrt(acc);
      }
    }
    const size_t kp = block.padded_k();
    const double* ct = block.transposed();
    for (size_t j = 0; j < k; ++j) {
      const double* c = new_centroids + j * dim;
      double nearest = kInf;
      for (size_t j2 = 0; j2 < k; ++j2) {
        if (j2 == j) continue;
        double acc = 0.0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = c[d] - ct[d * kp + j2];
          acc += diff * diff;
        }
        if (acc < nearest) nearest = acc;
      }
      s[j] = k > 1 ? 0.5 * std::sqrt(nearest) : kInf;
    }
  }
};


const DistanceKernel* ScalarKernel() {
  static const ScalarDistanceKernel kernel;
  return &kernel;
}

}  // namespace kernels
}  // namespace pmkm
