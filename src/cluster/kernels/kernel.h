// Distance-kernel layer: vectorized primitives behind every assignment hot
// path (the paper's "SortDataPoint" step, where serial, partial and merge
// k-means all spend their time).
//
// Design (DESIGN.md §10):
//  - One scalar reference kernel plus runtime-dispatched SIMD variants
//    (AVX2 on x86-64, NEON on aarch64). The implementation is chosen once
//    per process via CPUID, overridable with --kernel.
//  - Layout contract: centroids are repacked *transposed and padded*
//    (CentroidBlock): coordinate d of all centroids is contiguous, k padded
//    to a lane multiple with +inf coordinates, so SIMD lanes sweep
//    centroids with aligned contiguous loads while each lane accumulates
//    its (point, centroid) distance in strict coordinate order.
//  - Determinism guarantee: every kernel computes bit-identical squared
//    distances (same per-pair operation order, no FMA contraction in the
//    accumulation) and resolves the argmin in a fixed order — strictly
//    smaller distance wins, ties break toward the lower centroid index.
//    Assignments, and therefore centroids, are bitwise identical across
//    scalar/AVX2/NEON, which keeps Lloyd/Hamerly/parallel parity exact.

#ifndef PMKM_CLUSTER_KERNELS_KERNEL_H_
#define PMKM_CLUSTER_KERNELS_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "data/dataset.h"

namespace pmkm {

/// Which distance-kernel implementation to use.
enum class KernelKind {
  kAuto,    // best implementation the host supports (CPUID probe)
  kScalar,  // portable reference
  kAvx2,    // x86-64 AVX2 (compiled with FMA enabled, contraction off)
  kNeon,    // aarch64 NEON
};

const char* KernelKindToString(KernelKind kind);

/// Parses "auto" | "scalar" | "avx2" | "neon" (the --kernel flag values).
Result<KernelKind> ParseKernelKind(const std::string& name);

/// Centroids repacked for the kernels: transposed (coordinate-major) and
/// padded to a lane multiple. Element (j, d) lives at
/// transposed()[d * padded_k() + j]; padding columns j >= k() hold +inf so
/// a padded lane can never win an argmin. Reusable across iterations —
/// Load() only reallocates when the shape grows.
class CentroidBlock {
 public:
  /// Pad k to a multiple of 8: covers 2×-unrolled 4-wide AVX2 and 4×
  /// 2-wide NEON sweeps with one layout.
  static constexpr size_t kLanePad = 8;

  void Load(const double* centroids, size_t k, size_t dim);
  void Load(const Dataset& centroids) {
    Load(centroids.data(), centroids.size(), centroids.dim());
  }

  size_t k() const { return k_; }
  size_t dim() const { return dim_; }
  size_t padded_k() const { return padded_k_; }
  const double* transposed() const { return transposed_.data(); }

 private:
  std::vector<double> transposed_;
  size_t k_ = 0;
  size_t dim_ = 0;
  size_t padded_k_ = 0;
};

/// One distance-kernel implementation. Stateless and thread-safe: the
/// parallel Lloyd shards and cloned stream operators share one instance.
class DistanceKernel {
 public:
  virtual ~DistanceKernel() = default;

  /// "scalar" | "avx2" | "neon" — surfaced in OperatorStats and EXPLAIN.
  virtual const char* name() const = 0;
  virtual KernelKind kind() const = 0;

  /// Assignment for a tile: for each of the n row-major points, the index
  /// of the nearest centroid (ties to the lower index) and its exact
  /// squared distance. `second2`, when non-null, additionally receives the
  /// second-smallest squared distance (the Hamerly lower bound).
  virtual void AssignBlock(const double* points, size_t n, size_t dim,
                           const CentroidBlock& centroids, uint32_t* assign,
                           double* dist2,
                           double* second2 = nullptr) const PMKM_WAITFREE
      PMKM_DETERMINISTIC = 0;

  /// Weighted-sum scatter for a tile: for each point i,
  /// sums[assign[i]*dim + d] += w_i * x_i[d] and
  /// cluster_weight[assign[i]] += w_i, in ascending i order. `weights` may
  /// be null (unit weights).
  virtual void AccumulateBlock(const double* points, const double* weights,
                               size_t n, size_t dim, const uint32_t* assign,
                               double* sums,
                               double* cluster_weight) const PMKM_WAITFREE
      PMKM_DETERMINISTIC = 0;

  /// The two per-centroid arrays Hamerly's bounds need:
  /// drift[j] = ‖old_j − new_j‖ and s[j] = ½·min_{j2≠j} ‖new_j − new_j2‖.
  /// `block` must hold the *new* centroids. drift may be null (skip it,
  /// e.g. on the first iteration).
  virtual void CentroidDriftAndSeparation(const double* old_centroids,
                                          const double* new_centroids,
                                          const CentroidBlock& block,
                                          size_t k, size_t dim,
                                          double* drift,
                                          double* s) const = 0;
};

/// Returns the kernel for `kind`; kAuto resolves to the best implementation
/// this host supports. CHECK-fails for a kind the host cannot run (callers
/// gate with KernelAvailable; the --kernel flag path reports a Status).
const DistanceKernel& GetKernel(KernelKind kind);

/// True when `kind` can execute on this host (kAuto and kScalar always).
bool KernelAvailable(KernelKind kind);

/// The process-wide default used when a config leaves its kernel unset.
/// Initially the kAuto resolution; SetDefaultKernel (the --kernel flag)
/// overrides it and returns the previous choice. Not thread-safe against
/// concurrent pipeline runs — set it once at startup.
const DistanceKernel& DefaultKernel();
Result<KernelKind> SetDefaultKernel(KernelKind kind);

/// Every kernel this host can run (scalar first), for parity tests and
/// bench sweeps.
std::vector<const DistanceKernel*> AvailableKernels();

/// Short host-ISA description for bench provenance, e.g.
/// "x86-64 (avx2+fma)" or "aarch64 (neon)".
std::string HostIsaDescription();

}  // namespace pmkm

#endif  // PMKM_CLUSTER_KERNELS_KERNEL_H_
