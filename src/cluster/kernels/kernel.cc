// Kernel dispatch: CentroidBlock repacking, the CPUID-driven kAuto
// resolution, and the process-wide default the --kernel flag overrides.

#include "cluster/kernels/kernel.h"

#include <atomic>
#include <limits>

#include "cluster/kernels/internal.h"

namespace pmkm {

void CentroidBlock::Load(const double* centroids, size_t k, size_t dim) {
  PMKM_CHECK(k > 0 && dim > 0);
  k_ = k;
  dim_ = dim;
  padded_k_ = (k + kLanePad - 1) / kLanePad * kLanePad;
  transposed_.assign(padded_k_ * dim,
                     std::numeric_limits<double>::infinity());
  for (size_t d = 0; d < dim; ++d) {
    double* col = transposed_.data() + d * padded_k_;
    for (size_t j = 0; j < k; ++j) col[j] = centroids[j * dim + d];
  }
}

const char* KernelKindToString(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return "auto";
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kNeon:
      return "neon";
  }
  return "unknown";
}

Result<KernelKind> ParseKernelKind(const std::string& name) {
  if (name == "auto") return KernelKind::kAuto;
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "avx2") return KernelKind::kAvx2;
  if (name == "neon") return KernelKind::kNeon;
  return Status::InvalidArgument(
      "unknown kernel '" + name + "' (use scalar|avx2|neon|auto)");
}

namespace {

// The kAuto resolution, probed exactly once per process.
const DistanceKernel* ResolveAuto() {
  static const DistanceKernel* const chosen = [] {
    if (const DistanceKernel* avx2 = kernels::Avx2Kernel();
        avx2 != nullptr && kernels::CpuSupportsAvx2()) {
      return avx2;
    }
    if (const DistanceKernel* neon = kernels::NeonKernel();
        neon != nullptr) {
      return neon;
    }
    return kernels::ScalarKernel();
  }();
  return chosen;
}

std::atomic<const DistanceKernel*> g_default{nullptr};

const DistanceKernel* LookupKernel(KernelKind kind) {
  switch (kind) {
    case KernelKind::kAuto:
      return ResolveAuto();
    case KernelKind::kScalar:
      return kernels::ScalarKernel();
    case KernelKind::kAvx2:
      return kernels::Avx2Kernel() != nullptr && kernels::CpuSupportsAvx2()
                 ? kernels::Avx2Kernel()
                 : nullptr;
    case KernelKind::kNeon:
      return kernels::NeonKernel();
  }
  return nullptr;
}

}  // namespace

bool KernelAvailable(KernelKind kind) {
  return LookupKernel(kind) != nullptr;
}

const DistanceKernel& GetKernel(KernelKind kind) {
  const DistanceKernel* kernel = LookupKernel(kind);
  PMKM_CHECK(kernel != nullptr)
      << "kernel '" << KernelKindToString(kind)
      << "' is not available on this host";
  return *kernel;
}

const DistanceKernel& DefaultKernel() {
  const DistanceKernel* kernel =
      g_default.load(std::memory_order_acquire);
  if (kernel == nullptr) {
    kernel = ResolveAuto();
    g_default.store(kernel, std::memory_order_release);
  }
  return *kernel;
}

Result<KernelKind> SetDefaultKernel(KernelKind kind) {
  const DistanceKernel* kernel = LookupKernel(kind);
  if (kernel == nullptr) {
    return Status::InvalidArgument(
        "kernel '" + std::string(KernelKindToString(kind)) +
        "' is not available on this host (host is " +
        HostIsaDescription() + ")");
  }
  const DistanceKernel* previous =
      g_default.exchange(kernel, std::memory_order_acq_rel);
  return previous == nullptr ? KernelKind::kAuto : previous->kind();
}

std::vector<const DistanceKernel*> AvailableKernels() {
  std::vector<const DistanceKernel*> out;
  out.push_back(kernels::ScalarKernel());
  for (KernelKind kind : {KernelKind::kAvx2, KernelKind::kNeon}) {
    if (const DistanceKernel* k = LookupKernel(kind); k != nullptr) {
      out.push_back(k);
    }
  }
  return out;
}

std::string HostIsaDescription() {
#if defined(__x86_64__) || defined(_M_X64)
  return kernels::CpuSupportsAvx2() ? "x86-64 (avx2+fma)"
                                    : "x86-64 (sse2)";
#elif defined(__aarch64__)
  return "aarch64 (neon)";
#else
  return "generic";
#endif
}

}  // namespace pmkm
