#include "cluster/incremental_merge.h"

namespace pmkm {

IncrementalMergeKMeans::IncrementalMergeKMeans(size_t dim,
                                               MergeKMeansConfig config)
    : dim_(dim), config_(std::move(config)), running_(dim) {
  PMKM_CHECK(dim >= 1);
  PMKM_CHECK(config_.k >= 1);
}

Status IncrementalMergeKMeans::Push(const WeightedDataset& centroids) {
  if (centroids.dim() != dim_) {
    return Status::InvalidArgument("centroid dimensionality mismatch");
  }
  if (centroids.empty()) {
    return Status::InvalidArgument("empty centroid set");
  }
  for (size_t i = 0; i < centroids.size(); ++i) {
    if (centroids.weight(i) <= 0.0) {
      return Status::InvalidArgument("non-positive centroid weight");
    }
  }
  running_.AppendAll(centroids);
  ++partitions_merged_;

  if (running_.size() > config_.k) {
    // Re-cluster the running set down to k. The k heaviest seeds include
    // long-lived centroids whose weights have accumulated over many
    // merges — the "preferential treatment" of early chunks.
    const MergeKMeans merger(config_);
    PMKM_ASSIGN_OR_RETURN(ClusteringModel model, merger.Merge(running_));
    last_sse_ = model.sse;
    last_iterations_ = model.iterations;
    running_ = WeightedDataset(dim_);
    for (size_t j = 0; j < model.k(); ++j) {
      if (model.weights[j] > 0.0) {
        running_.Append(model.centroids.Row(j), model.weights[j]);
      }
    }
  }
  return Status::OK();
}

IncrementalMergeState IncrementalMergeKMeans::SaveState() const {
  IncrementalMergeState state;
  state.running = running_;
  state.partitions_merged = partitions_merged_;
  state.last_sse = last_sse_;
  state.last_iterations = last_iterations_;
  return state;
}

Status IncrementalMergeKMeans::RestoreState(IncrementalMergeState state) {
  if (state.running.dim() != dim_) {
    return Status::InvalidArgument(
        "incremental-merge snapshot dimensionality mismatch");
  }
  running_ = std::move(state.running);
  partitions_merged_ = state.partitions_merged;
  last_sse_ = state.last_sse;
  last_iterations_ = state.last_iterations;
  return Status::OK();
}

Result<ClusteringModel> IncrementalMergeKMeans::Finish() const {
  if (running_.empty()) {
    return Status::FailedPrecondition("no partitions pushed");
  }
  ClusteringModel model;
  model.centroids = running_.points();
  model.weights = running_.weights();
  model.sse = last_sse_;
  const double total = running_.TotalWeight();
  model.mse_per_point = total > 0.0 ? last_sse_ / total : 0.0;
  model.iterations = last_iterations_;
  model.converged = true;
  return model;
}

}  // namespace pmkm
