#include "cluster/parallel_lloyd.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "cluster/kernels/kernel.h"

namespace pmkm {

namespace {

/// Points per AssignBlock call inside a worker shard (matches the serial
/// path's tiling).
constexpr size_t kAssignTile = 256;

// Per-worker accumulator for one assignment pass over a point range.
struct RangeAccumulator {
  std::vector<double> sums;           // k * dim weighted coordinate sums
  std::vector<double> cluster_weight; // k
  std::vector<double> farthest_dist;  // k
  std::vector<size_t> farthest_idx;   // k
  std::vector<double> dist2;          // kAssignTile scratch
  double sse = 0.0;

  void Reset(size_t k, size_t dim) {
    sums.assign(k * dim, 0.0);
    cluster_weight.assign(k, 0.0);
    farthest_dist.assign(k, -1.0);
    farthest_idx.assign(k, 0);
    dist2.resize(kAssignTile);
    sse = 0.0;
  }
};

}  // namespace

Result<ClusteringModel> RunWeightedLloydParallel(
    const WeightedDataset& data, Dataset initial_centroids,
    const LloydConfig& config, Rng* rng, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 || data.size() < 1024) {
    // Parallelism would not pay for tiny inputs; keep exact serial parity.
    return RunWeightedLloyd(data, std::move(initial_centroids), config,
                            rng);
  }
  const size_t n = data.size();
  const size_t k = initial_centroids.size();
  const size_t dim = data.dim();
  if (k == 0) return Status::InvalidArgument("no initial centroids");
  if (initial_centroids.dim() != dim) {
    return Status::InvalidArgument("centroid/data dimensionality mismatch");
  }
  if (config.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  PMKM_CHECK(rng != nullptr);

  const DistanceKernel& kernel =
      config.kernel != nullptr ? *config.kernel : DefaultKernel();

  ClusteringModel model;
  model.centroids = std::move(initial_centroids);
  model.weights.assign(k, 0.0);

  const size_t num_workers =
      std::min(pool->num_threads(), (n + 1023) / 1024);
  std::vector<RangeAccumulator> acc(num_workers);
  std::vector<uint32_t> assign(n, 0);
  const double* points = data.points().data();
  const double* weights = data.weights().data();
  CentroidBlock block;

  double prev_sse = std::numeric_limits<double>::infinity();
  double sse = prev_sse;
  size_t iter = 0;
  for (iter = 0; iter < config.max_iterations; ++iter) {
    // One shared read-only centroid block; kernels are stateless, so all
    // shards use the same instance concurrently.
    block.Load(model.centroids);

    // --- Parallel assignment over contiguous ranges -------------------
    std::vector<std::future<void>> futures;
    futures.reserve(num_workers);
    const size_t per = (n + num_workers - 1) / num_workers;
    for (size_t w = 0; w < num_workers; ++w) {
      futures.push_back(pool->Submit([&, w] {
        RangeAccumulator& a = acc[w];
        a.Reset(k, dim);
        const size_t begin = w * per;
        const size_t end = std::min(n, begin + per);
        if (begin >= end) return;
        for (size_t i0 = begin; i0 < end; i0 += kAssignTile) {
          const size_t tile = std::min(kAssignTile, end - i0);
          kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                             assign.data() + i0, a.dist2.data());
          for (size_t t = 0; t < tile; ++t) {
            const size_t i = i0 + t;
            const size_t j = assign[i];
            a.sse += weights[i] * a.dist2[t];
            if (a.dist2[t] > a.farthest_dist[j]) {
              a.farthest_dist[j] = a.dist2[t];
              a.farthest_idx[j] = i;
            }
          }
        }
        kernel.AccumulateBlock(points + begin * dim, weights + begin,
                               end - begin, dim, assign.data() + begin,
                               a.sums.data(), a.cluster_weight.data());
      }));
    }
    for (auto& f : futures) f.wait();

    // --- Deterministic reduction (fixed worker order) -----------------
    std::vector<double> sums(k * dim, 0.0);
    std::vector<double> cluster_weight(k, 0.0);
    std::vector<double> farthest_dist(k, -1.0);
    std::vector<size_t> farthest_idx(k, 0);
    sse = 0.0;
    for (const RangeAccumulator& a : acc) {
      sse += a.sse;
      for (size_t v = 0; v < k * dim; ++v) sums[v] += a.sums[v];
      for (size_t j = 0; j < k; ++j) {
        cluster_weight[j] += a.cluster_weight[j];
        if (a.farthest_dist[j] > farthest_dist[j]) {
          farthest_dist[j] = a.farthest_dist[j];
          farthest_idx[j] = a.farthest_idx[j];
        }
      }
    }

    // --- Empty-cluster repair (same policy as the serial path) --------
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] > 0.0) continue;
      size_t donor = k;
      double best = -1.0;
      for (size_t c = 0; c < k; ++c) {
        if (cluster_weight[c] > 0.0 && farthest_dist[c] > best) {
          best = farthest_dist[c];
          donor = c;
        }
      }
      if (donor == k || best <= 0.0) continue;
      const size_t i = farthest_idx[donor];
      const double* x = points + i * dim;
      const double weight = data.weight(i);
      double* donor_sum = sums.data() + donor * dim;
      double* new_sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) {
        donor_sum[d] -= weight * x[d];
        new_sum[d] = weight * x[d];
      }
      cluster_weight[donor] -= weight;
      cluster_weight[j] = weight;
      assign[i] = static_cast<uint32_t>(j);
      sse -= weight * farthest_dist[donor];
      farthest_dist[donor] = 0.0;
    }

    // --- ComputeClusterMean --------------------------------------------
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] <= 0.0) continue;
      double* c = model.centroids.mutable_data() + j * dim;
      const double* sum = sums.data() + j * dim;
      const double inv = 1.0 / cluster_weight[j];
      for (size_t d = 0; d < dim; ++d) c[d] = sum[d] * inv;
    }

    if (iter > 0 && prev_sse - sse <= config.epsilon) {
      model.converged = true;
      break;
    }
    prev_sse = sse;
  }

  // Final exact bookkeeping against the final centroids (serial; cheap
  // relative to the iterations and keeps reported numbers reduction-order
  // independent of the worker count).
  {
    block.Load(model.centroids);
    std::vector<double> dist2(std::min(n, kAssignTile));
    std::fill(model.weights.begin(), model.weights.end(), 0.0);
    double final_sse = 0.0;
    for (size_t i0 = 0; i0 < n; i0 += kAssignTile) {
      const size_t tile = std::min(kAssignTile, n - i0);
      kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                         assign.data() + i0, dist2.data());
      for (size_t t = 0; t < tile; ++t) {
        const size_t i = i0 + t;
        model.weights[assign[i]] += weights[i];
        final_sse += weights[i] * dist2[t];
      }
    }
    model.sse = final_sse;
    const double total = data.TotalWeight();
    model.mse_per_point = total > 0.0 ? final_sse / total : 0.0;
  }
  model.iterations = std::min(iter + 1, config.max_iterations);
  if (config.track_assignments) model.assignments = std::move(assign);
  return model;
}

}  // namespace pmkm
