// Partial k-means (paper §3.2): clusters one memory-sized partition P_j of
// a grid cell with multi-restart k-means and emits k weighted centroids
// {(c_1j, w_1j), ..., (c_kj, w_kj)}, where w_ij is the number of partition
// points assigned to c_ij — so Σ_i w_ij = N_j.

#ifndef PMKM_CLUSTER_PARTIAL_H_
#define PMKM_CLUSTER_PARTIAL_H_

#include "cluster/kmeans.h"

namespace pmkm {

/// Result of clustering one partition: the weighted centroid set that flows
/// to the merge operator, plus run diagnostics.
struct PartialResult {
  WeightedDataset centroids{1};
  double sse = 0.0;        // min-over-restarts partition error
  size_t iterations = 0;   // iterations of the winning restart
  size_t input_points = 0; // N_j
};

/// The partial k-means computation. Stateless and thread-safe: the stream
/// engine clones it freely across operator instances.
class PartialKMeans {
 public:
  explicit PartialKMeans(KMeansConfig config) : kmeans_(std::move(config)) {}

  const KMeansConfig& config() const { return kmeans_.config(); }

  /// Clusters one partition. `partition_id` decorrelates the restart seed
  /// streams of different partitions under one master seed.
  ///
  /// Partitions smaller than k are passed through verbatim as unit-weight
  /// centroids (every point is its own cluster; exact, and the only lossless
  /// choice for a degenerate chunk).
  Result<PartialResult> Cluster(const Dataset& partition,
                                uint64_t partition_id) const;

 private:
  KMeans kmeans_;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_PARTIAL_H_
