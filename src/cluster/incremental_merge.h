// Incremental merge — the paper's §3.3 option (a).
//
// The paper describes two ways to merge partial results: (a) incrementally
// — fold each arriving centroid set into the running representation — or
// (b) collectively — buffer all sets and run one weighted k-means (what
// MergeKMeans implements). The authors argue (b) is statistically fairer
// because early chunks are "not treated preferentially". This class
// implements (a) so the claim can be measured (bench_ablation_merge): the
// running k weighted centroids are re-clustered with the newly arrived set
// after every partition, so early partitions participate in every
// subsequent merge — exactly the preferential treatment the paper warns
// about.
//
// As a side benefit, incremental merging needs only O(k + k_p) memory at
// any time, versus O(Σ k_p) for the collective merge.

#ifndef PMKM_CLUSTER_INCREMENTAL_MERGE_H_
#define PMKM_CLUSTER_INCREMENTAL_MERGE_H_

#include "cluster/merge.h"

namespace pmkm {

/// Checkpointable state of an IncrementalMergeKMeans: everything needed to
/// resume the incremental fold after process death (serialized by the
/// checkpoint layer, stream/checkpoint.h).
struct IncrementalMergeState {
  WeightedDataset running{1};
  size_t partitions_merged = 0;
  double last_sse = 0.0;
  size_t last_iterations = 0;
};

/// Streaming consumer of partial centroid sets.
class IncrementalMergeKMeans {
 public:
  /// `config.k` must be the final cluster count (> 0).
  IncrementalMergeKMeans(size_t dim, MergeKMeansConfig config);

  /// Folds one partition's weighted centroids into the running model.
  /// Until at least k weighted points have been seen, sets are buffered
  /// verbatim; afterwards each Push triggers a weighted k-means over
  /// (running ∪ arrived).
  Status Push(const WeightedDataset& centroids);

  /// Number of Push calls so far.
  size_t partitions_merged() const { return partitions_merged_; }

  /// Current running representation (≤ k weighted centroids).
  const WeightedDataset& running() const { return running_; }

  /// Final model. Fails if nothing was pushed.
  Result<ClusteringModel> Finish() const;

  /// Snapshot of the complete fold state, for checkpointing.
  IncrementalMergeState SaveState() const;

  /// Resumes from a snapshot taken by SaveState(). The snapshot's
  /// dimensionality must match; any state accumulated so far is replaced.
  Status RestoreState(IncrementalMergeState state);

 private:
  size_t dim_;
  MergeKMeansConfig config_;
  WeightedDataset running_;
  size_t partitions_merged_ = 0;
  double last_sse_ = 0.0;
  size_t last_iterations_ = 0;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_INCREMENTAL_MERGE_H_
