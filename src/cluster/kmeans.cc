#include "cluster/kmeans.h"

#include "cluster/hamerly.h"

namespace pmkm {

Result<ClusteringModel> KMeans::FitWeighted(
    const WeightedDataset& data) const {
  PMKM_RETURN_NOT_OK(config_.Validate());
  if (data.size() < config_.k) {
    return Status::InvalidArgument(
        "dataset has " + std::to_string(data.size()) +
        " points, fewer than k=" + std::to_string(config_.k));
  }
  Rng master(config_.seed);
  ClusteringModel best;
  for (size_t r = 0; r < config_.restarts; ++r) {
    Rng rng = master.Fork(r + 1);
    PMKM_ASSIGN_OR_RETURN(
        Dataset seeds,
        SelectSeeds(data, config_.k, config_.seeding, &rng));
    PMKM_ASSIGN_OR_RETURN(
        ClusteringModel model,
        config_.accelerate
            ? RunHamerlyLloyd(data, std::move(seeds), config_.lloyd, &rng)
            : RunWeightedLloyd(data, std::move(seeds), config_.lloyd,
                               &rng));
    if (model.sse < best.sse) best = std::move(model);
  }
  return best;
}

}  // namespace pmkm
