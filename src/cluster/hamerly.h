// Hamerly-accelerated weighted Lloyd iteration.
//
// The paper notes (§2) "several improvements for step 2 that allow us to
// limit the number of points that have to be re-sorted" but does not use
// them; this module supplies one — Hamerly's triangle-inequality bounds
// (Hamerly, SDM'10) — as a drop-in exact accelerator: identical
// assignments per iteration to plain Lloyd, so the fitted model matches
// RunWeightedLloyd up to the convergence-criterion granularity, while the
// inner loop skips the full k-way distance scan for points whose bounds
// prove their assignment cannot change.
//
// Per point we keep an upper bound u(i) on the distance to its assigned
// centroid and a lower bound l(i) on the distance to every other
// centroid; per centroid, the drift since the bounds were set and s(j) =
// half the distance to its nearest other centroid. A point is scanned
// only when u(i) > max(s(a_i), l(i)).

#ifndef PMKM_CLUSTER_HAMERLY_H_
#define PMKM_CLUSTER_HAMERLY_H_

#include "cluster/lloyd.h"

namespace pmkm {

/// Statistics of a Hamerly run (exposed for the acceleration bench).
struct HamerlyStats {
  size_t full_scans = 0;     // points that needed the k-way distance scan
  size_t bound_skips = 0;    // points proven unchanged by their bounds
  size_t iterations = 0;
};

/// Drop-in replacement for RunWeightedLloyd with identical semantics:
/// same convergence rule (E(n−1) − E(n) ≤ epsilon on the weighted SSE),
/// same empty-cluster repair, same returned model fields. `stats` may be
/// null.
Result<ClusteringModel> RunHamerlyLloyd(const WeightedDataset& data,
                                        Dataset initial_centroids,
                                        const LloydConfig& config,
                                        Rng* rng,
                                        HamerlyStats* stats = nullptr);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_HAMERLY_H_
