// Internal cluster-validity indices.
//
// The paper evaluates quality only through its error function E; these
// indices give the standard scale-free complements (the "high quality
// clustering results ... easily interpretable" requirement of §1.1):
// silhouette (cohesion vs separation per point) and Davies-Bouldin
// (average worst-pair cluster similarity). Both are exact up to the
// documented sampling cap.

#ifndef PMKM_CLUSTER_VALIDITY_H_
#define PMKM_CLUSTER_VALIDITY_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"

namespace pmkm {

/// Mean silhouette coefficient of `data` under nearest-centroid
/// assignment to `model`. In [-1, 1]; higher is better. For n >
/// `sample_cap` a uniform sample of that size is scored (silhouette is
/// O(n²)); pass 0 to force the exact computation. Requires at least 2
/// non-empty clusters.
Result<double> SilhouetteScore(const ClusteringModel& model,
                               const Dataset& data,
                               size_t sample_cap = 2000,
                               uint64_t seed = 1);

/// Davies-Bouldin index: mean over clusters of the worst
/// (σ_i + σ_j) / d(c_i, c_j). Lower is better; 0 is ideal. Requires at
/// least 2 non-empty clusters.
Result<double> DaviesBouldinIndex(const ClusteringModel& model,
                                  const Dataset& data);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_VALIDITY_H_
