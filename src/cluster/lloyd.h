// Weighted Lloyd iteration: the shared fixed-point core of serial k-means
// (unit weights), partial k-means (unit weights) and merge k-means
// (centroid weights). Implements the paper's steps 2-4 exactly:
// assignment by Euclidean distance, weighted centroid recalculation
// µ_j = Σ w_i c_i / Σ w_i, and the convergence criterion
// MSE(n-1) − MSE(n) ≤ ε with ε = 1e-9 (paper §2/§3.3).

#ifndef PMKM_CLUSTER_LLOYD_H_
#define PMKM_CLUSTER_LLOYD_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/weighted.h"

namespace pmkm {

class DistanceKernel;

/// Parameters of one Lloyd run (seed selection happens outside).
struct LloydConfig {
  /// Convergence: stop when E(n-1) − E(n) ≤ epsilon (E is the weighted SSE,
  /// the paper's "MSE").
  double epsilon = 1e-9;

  /// Hard iteration cap. The paper reports I growing with N; 300 is far
  /// above every converged run in our sweeps and bounds pathological
  /// oscillation.
  size_t max_iterations = 300;

  /// Record per-point assignments in the returned model.
  bool track_assignments = false;

  /// Distance kernel for the assignment hot path; nullptr means the
  /// process default (DefaultKernel(), see cluster/kernels/kernel.h).
  /// Assignments are bit-identical across kernels, so this only affects
  /// speed.
  const DistanceKernel* kernel = nullptr;
};

/// Runs weighted Lloyd from the given initial centroids until convergence.
///
/// Empty-cluster policy (documented deviation, DESIGN.md §4): a centroid
/// that attracts no weight is re-seeded to the in-cluster point currently
/// farthest from its centroid, keeping k constant as the paper's
/// formulation requires ("k disjoint non-empty subsets").
///
/// Fails if `data` is empty, dimensionalities mismatch, or k = 0.
Result<ClusteringModel> RunWeightedLloyd(const WeightedDataset& data,
                                         Dataset initial_centroids,
                                         const LloydConfig& config,
                                         Rng* rng);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_LLOYD_H_
