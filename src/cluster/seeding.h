// Seed selection for Lloyd iterations.
//
// The paper uses two strategies: uniformly random data points for the
// serial/partial steps (§2 step 1) and the k heaviest weighted centroids
// for the merge step (§3.3 step 1, "forces the algorithm to take into
// account which data points are likely to represent significant cluster
// centroids already"). k-means++ is provided for ablations.

#ifndef PMKM_CLUSTER_SEEDING_H_
#define PMKM_CLUSTER_SEEDING_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "data/weighted.h"

namespace pmkm {

enum class SeedingMethod {
  kRandom,         // k distinct points chosen uniformly
  kHeaviestWeight, // the k points with the largest weights (merge step)
  kKMeansPlusPlus, // D² sampling (Arthur & Vassilvitskii), weight-aware
};

const char* SeedingMethodToString(SeedingMethod method);
Result<SeedingMethod> SeedingMethodFromString(const std::string& name);

/// Picks k initial centroids from `data` (weights are ignored by kRandom,
/// define the ranking for kHeaviestWeight, and scale the D² probabilities
/// for kKMeansPlusPlus). Fails if data has fewer than k points.
Result<Dataset> SelectSeeds(const WeightedDataset& data, size_t k,
                            SeedingMethod method, Rng* rng);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_SEEDING_H_
