// Merge k-means (paper §3.3): the collective merge of all partial results.
//
// Input: the union S of every partition's weighted centroids,
// M = Σ_p k_p points. The operator runs a weighted k-means over S, seeded
// with the k *heaviest* centroids, using weighted means
// µ_j = Σ w_i c_i / Σ w_i and the weighted error
// E_pm = Σ_k Σ_{c_i ∈ C_k} ‖µ_k − c_i‖² · w_i.
//
// The paper argues for the collective (not incremental) merge: every
// partition's centroids get the same statistical chance to contribute.

#ifndef PMKM_CLUSTER_MERGE_H_
#define PMKM_CLUSTER_MERGE_H_

#include "cluster/kmeans.h"

namespace pmkm {

struct MergeKMeansConfig {
  /// Final cluster count (paper: same k as the partial steps).
  size_t k = 40;

  /// Paper default: the k heaviest weighted centroids. Random is kept for
  /// the seeding ablation (bench_ablation_seeding).
  SeedingMethod seeding = SeedingMethod::kHeaviestWeight;

  /// Restarts. The paper's merge seeds deterministically (heaviest-k), so
  /// one run suffices; random-seeded ablations may raise this.
  size_t restarts = 1;

  LloydConfig lloyd;

  uint64_t seed = 1;
};

/// The merge k-means computation.
class MergeKMeans {
 public:
  explicit MergeKMeans(MergeKMeansConfig config)
      : config_(std::move(config)) {}

  const MergeKMeansConfig& config() const { return config_; }

  /// Clusters the pooled weighted centroids into the final model. If the
  /// pool has at most k members it is returned as-is (already a valid
  /// clustering of itself, E_pm = 0).
  Result<ClusteringModel> Merge(const WeightedDataset& pooled) const;

 private:
  MergeKMeansConfig config_;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_MERGE_H_
