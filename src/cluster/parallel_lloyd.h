// Intra-operator parallel Lloyd iteration — the paper's §3.4 option 3:
// "A third option is to break up the partial k-means into several finer
// grained operators such as ChooseRandomSeeds, and SortDataPoint,
// ComputeClusterMean ... Within the partial k-means, the SortDataPoint
// [sorting] is the most expensive operation, and could be parallelized."
//
// RunWeightedLloydParallel splits the assignment ("sort data point") step
// across worker threads with per-worker accumulators reduced in fixed
// worker order, so results are deterministic for a given worker count.
// Assignments per iteration are the same as the serial path; centroid
// coordinates can differ from it only by floating-point summation order
// (≈1 ulp), so the fitted quality matches RunWeightedLloyd to ~1e-12
// relative. The centroid-recalculation ("ComputeClusterMean") step reduces
// the per-worker sums serially (k·D work, negligible).

#ifndef PMKM_CLUSTER_PARALLEL_LLOYD_H_
#define PMKM_CLUSTER_PARALLEL_LLOYD_H_

#include "cluster/lloyd.h"
#include "common/thread_pool.h"

namespace pmkm {

/// Parallel variant of RunWeightedLloyd. `pool` supplies the workers (its
/// size caps the parallelism); pass nullptr to run the serial code path.
/// Semantics (convergence rule, empty-cluster repair, returned fields)
/// match RunWeightedLloyd exactly; for identical inputs the two return the
/// same model.
Result<ClusteringModel> RunWeightedLloydParallel(
    const WeightedDataset& data, Dataset initial_centroids,
    const LloydConfig& config, Rng* rng, ThreadPool* pool);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_PARALLEL_LLOYD_H_
