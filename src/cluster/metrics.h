// Clustering quality metrics.
//
// The paper's quality measure is the error function E (which it calls MSE):
// the (weighted) total squared distance of every point to its assigned
// centroid. Table 2's "Min MSE" column is E of the best restart. We also
// expose the per-point normalization and the true quantization error of a
// model against the *original* cell data, which lets the experiments verify
// that partial/merge quality claims hold on raw points, not only on E_pm
// over centroids.

#ifndef PMKM_CLUSTER_METRICS_H_
#define PMKM_CLUSTER_METRICS_H_

#include "cluster/model.h"
#include "data/weighted.h"

namespace pmkm {

/// E = Σ_i ‖x_i − c(x_i)‖²: total squared distance of each point of `data`
/// to its nearest centroid.
double Sse(const Dataset& centroids, const Dataset& data);

/// Weighted E_pm = Σ_i w_i ‖x_i − c(x_i)‖².
double WeightedSse(const Dataset& centroids, const WeightedDataset& data);

/// E / N (mean squared quantization error per point).
double MsePerPoint(const Dataset& centroids, const Dataset& data);

/// Per-centroid assigned counts of `data` under nearest-centroid rule.
std::vector<size_t> AssignmentCounts(const Dataset& centroids,
                                     const Dataset& data);

/// Sum of per-cluster weighted variances — equal to WeightedSse but
/// computed via assignments of the model's own centroid set; used by tests
/// as an independent cross-check.
double ModelSseOn(const ClusteringModel& model, const Dataset& data);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_METRICS_H_
