#include "cluster/lloyd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kernels/kernel.h"

namespace pmkm {

namespace {

/// Points per AssignBlock call: large enough to amortize the virtual call,
/// small enough that assign/dist2 scratch stays in L1/L2.
constexpr size_t kAssignTile = 256;

}  // namespace

Result<ClusteringModel> RunWeightedLloyd(const WeightedDataset& data,
                                         Dataset initial_centroids,
                                         const LloydConfig& config,
                                         Rng* rng) {
  const size_t n = data.size();
  const size_t k = initial_centroids.size();
  const size_t dim = data.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (k == 0) return Status::InvalidArgument("no initial centroids");
  if (initial_centroids.dim() != dim) {
    return Status::InvalidArgument("centroid/data dimensionality mismatch");
  }
  if (config.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  PMKM_CHECK(rng != nullptr);

  const DistanceKernel& kernel =
      config.kernel != nullptr ? *config.kernel : DefaultKernel();

  ClusteringModel model;
  model.centroids = std::move(initial_centroids);
  model.weights.assign(k, 0.0);

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> dist2(std::min(n, kAssignTile));
  std::vector<double> sums(k * dim);
  std::vector<double> cluster_weight(k);
  // Farthest assigned point per cluster: the donor pool for re-seeding
  // starved centroids.
  std::vector<double> farthest_dist(k);
  std::vector<size_t> farthest_idx(k);
  CentroidBlock block;

  double prev_sse = std::numeric_limits<double>::infinity();
  double sse = prev_sse;
  const double* points = data.points().data();
  const double* weights = data.weights().data();

  size_t iter = 0;
  for (iter = 0; iter < config.max_iterations; ++iter) {
    // --- Assignment step -------------------------------------------------
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    std::fill(farthest_dist.begin(), farthest_dist.end(), -1.0);
    block.Load(model.centroids);
    sse = 0.0;
    for (size_t i0 = 0; i0 < n; i0 += kAssignTile) {
      const size_t tile = std::min(kAssignTile, n - i0);
      kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                         assign.data() + i0, dist2.data());
      for (size_t t = 0; t < tile; ++t) {
        const size_t i = i0 + t;
        const size_t j = assign[i];
        sse += weights[i] * dist2[t];
        if (dist2[t] > farthest_dist[j]) {
          farthest_dist[j] = dist2[t];
          farthest_idx[j] = i;
        }
      }
    }
    kernel.AccumulateBlock(points, weights, n, dim, assign.data(),
                           sums.data(), cluster_weight.data());

    // --- Empty-cluster repair --------------------------------------------
    // Re-seed each starved centroid to the globally farthest point, then
    // continue iterating (its sum/weight are patched as a singleton).
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] > 0.0) continue;
      // Donor: cluster with the largest farthest-point distance.
      size_t donor = k;
      double best = -1.0;
      for (size_t c = 0; c < k; ++c) {
        if (cluster_weight[c] > 0.0 && farthest_dist[c] > best) {
          best = farthest_dist[c];
          donor = c;
        }
      }
      if (donor == k || best <= 0.0) {
        // All points coincide with their centroids (fewer distinct points
        // than k). Leave the centroid where it is with zero weight.
        continue;
      }
      const size_t i = farthest_idx[donor];
      const double* x = points + i * dim;
      const double w = data.weight(i);
      // Move the donor point's mass from its cluster to j.
      double* donor_sum = sums.data() + donor * dim;
      double* new_sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) {
        donor_sum[d] -= w * x[d];
        new_sum[d] = w * x[d];
      }
      cluster_weight[donor] -= w;
      cluster_weight[j] = w;
      assign[i] = static_cast<uint32_t>(j);
      sse -= w * farthest_dist[donor];
      farthest_dist[donor] = 0.0;  // donor no longer eligible this round
    }

    // --- Centroid recalculation ------------------------------------------
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] <= 0.0) continue;  // unrecoverable starvation
      double* c = model.centroids.mutable_data() + j * dim;
      const double* sum = sums.data() + j * dim;
      const double inv = 1.0 / cluster_weight[j];
      for (size_t d = 0; d < dim; ++d) c[d] = sum[d] * inv;
    }

    // --- Convergence -----------------------------------------------------
    // The paper's criterion compares the error of consecutive clustering
    // iterations; sse here is the error of the *pre-update* centroids, so
    // the first comparison happens at iter >= 1.
    if (iter > 0 && prev_sse - sse <= config.epsilon) {
      model.converged = true;
      break;
    }
    prev_sse = sse;
  }

  // Final bookkeeping against the final centroids.
  {
    block.Load(model.centroids);
    std::fill(model.weights.begin(), model.weights.end(), 0.0);
    double final_sse = 0.0;
    for (size_t i0 = 0; i0 < n; i0 += kAssignTile) {
      const size_t tile = std::min(kAssignTile, n - i0);
      kernel.AssignBlock(points + i0 * dim, tile, dim, block,
                         assign.data() + i0, dist2.data());
      for (size_t t = 0; t < tile; ++t) {
        const size_t i = i0 + t;
        model.weights[assign[i]] += weights[i];
        final_sse += weights[i] * dist2[t];
      }
    }
    model.sse = final_sse;
    const double total_weight = data.TotalWeight();
    model.mse_per_point =
        total_weight > 0.0 ? final_sse / total_weight : 0.0;
  }
  model.iterations = std::min(iter + 1, config.max_iterations);
  if (config.track_assignments) model.assignments = std::move(assign);
  return model;
}

}  // namespace pmkm
