#include "cluster/lloyd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"

namespace pmkm {

Result<ClusteringModel> RunWeightedLloyd(const WeightedDataset& data,
                                         Dataset initial_centroids,
                                         const LloydConfig& config,
                                         Rng* rng) {
  const size_t n = data.size();
  const size_t k = initial_centroids.size();
  const size_t dim = data.dim();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (k == 0) return Status::InvalidArgument("no initial centroids");
  if (initial_centroids.dim() != dim) {
    return Status::InvalidArgument("centroid/data dimensionality mismatch");
  }
  if (config.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  PMKM_CHECK(rng != nullptr);

  ClusteringModel model;
  model.centroids = std::move(initial_centroids);
  model.weights.assign(k, 0.0);

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<double> cluster_weight(k);
  // Farthest assigned point per cluster: the donor pool for re-seeding
  // starved centroids.
  std::vector<double> farthest_dist(k);
  std::vector<size_t> farthest_idx(k);

  double prev_sse = std::numeric_limits<double>::infinity();
  double sse = prev_sse;
  const double* points = data.points().data();

  size_t iter = 0;
  for (iter = 0; iter < config.max_iterations; ++iter) {
    // --- Assignment step -------------------------------------------------
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(cluster_weight.begin(), cluster_weight.end(), 0.0);
    std::fill(farthest_dist.begin(), farthest_dist.end(), -1.0);
    const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
    sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const Nearest nearest = NearestCentroid(x, model.centroids, norms);
      const size_t j = nearest.index;
      const double w = data.weight(i);
      assign[i] = static_cast<uint32_t>(j);
      sse += w * nearest.distance_sq;
      double* sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += w * x[d];
      cluster_weight[j] += w;
      if (nearest.distance_sq > farthest_dist[j]) {
        farthest_dist[j] = nearest.distance_sq;
        farthest_idx[j] = i;
      }
    }

    // --- Empty-cluster repair --------------------------------------------
    // Re-seed each starved centroid to the globally farthest point, then
    // continue iterating (its sum/weight are patched as a singleton).
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] > 0.0) continue;
      // Donor: cluster with the largest farthest-point distance.
      size_t donor = k;
      double best = -1.0;
      for (size_t c = 0; c < k; ++c) {
        if (cluster_weight[c] > 0.0 && farthest_dist[c] > best) {
          best = farthest_dist[c];
          donor = c;
        }
      }
      if (donor == k || best <= 0.0) {
        // All points coincide with their centroids (fewer distinct points
        // than k). Leave the centroid where it is with zero weight.
        continue;
      }
      const size_t i = farthest_idx[donor];
      const double* x = points + i * dim;
      const double w = data.weight(i);
      // Move the donor point's mass from its cluster to j.
      double* donor_sum = sums.data() + donor * dim;
      double* new_sum = sums.data() + j * dim;
      for (size_t d = 0; d < dim; ++d) {
        donor_sum[d] -= w * x[d];
        new_sum[d] = w * x[d];
      }
      cluster_weight[donor] -= w;
      cluster_weight[j] = w;
      assign[i] = static_cast<uint32_t>(j);
      sse -= w * farthest_dist[donor];
      farthest_dist[donor] = 0.0;  // donor no longer eligible this round
    }

    // --- Centroid recalculation ------------------------------------------
    for (size_t j = 0; j < k; ++j) {
      if (cluster_weight[j] <= 0.0) continue;  // unrecoverable starvation
      double* c = model.centroids.mutable_data() + j * dim;
      const double* sum = sums.data() + j * dim;
      const double inv = 1.0 / cluster_weight[j];
      for (size_t d = 0; d < dim; ++d) c[d] = sum[d] * inv;
    }

    // --- Convergence -----------------------------------------------------
    // The paper's criterion compares the error of consecutive clustering
    // iterations; sse here is the error of the *pre-update* centroids, so
    // the first comparison happens at iter >= 1.
    if (iter > 0 && prev_sse - sse <= config.epsilon) {
      model.converged = true;
      break;
    }
    prev_sse = sse;
  }

  // Final bookkeeping against the final centroids.
  {
    const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
    std::fill(model.weights.begin(), model.weights.end(), 0.0);
    double final_sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      const Nearest nearest = NearestCentroid(x, model.centroids, norms);
      assign[i] = static_cast<uint32_t>(nearest.index);
      const double w = data.weight(i);
      model.weights[nearest.index] += w;
      final_sse += w * nearest.distance_sq;
    }
    model.sse = final_sse;
    const double total_weight = data.TotalWeight();
    model.mse_per_point =
        total_weight > 0.0 ? final_sse / total_weight : 0.0;
  }
  model.iterations = std::min(iter + 1, config.max_iterations);
  if (config.track_assignments) model.assignments = std::move(assign);
  return model;
}

}  // namespace pmkm
