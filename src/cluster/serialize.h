// Binary (de)serialization of clustering models.
//
// The compression use case ships models, not points: a clustered grid cell
// is archived/distributed as its k weighted centroids (paper §1-2). The
// format mirrors the grid-bucket container: fixed header, little-endian
// payload, FNV-1a trailer checksum.
//
//   [magic "PMKM"] [version u32] [k u64] [dim u64]
//   [flags u32: bit0 = has assignments] [pad u32]
//   [sse f64] [mse_per_point f64] [iterations u64] [converged u8 + pad]
//   [k*dim f64 centroids] [k f64 weights] [n u64 + n u32 assignments]?
//   [fnv1a-64 checksum]

#ifndef PMKM_CLUSTER_SERIALIZE_H_
#define PMKM_CLUSTER_SERIALIZE_H_

#include <string>

#include "cluster/model.h"
#include "common/result.h"

namespace pmkm {

/// Writes `model` to `path`, overwriting. Assignments are included only if
/// present in the model.
Status SaveModel(const std::string& path, const ClusteringModel& model);

/// Reads a model written by SaveModel, verifying magic, version and
/// checksum.
Result<ClusteringModel> LoadModel(const std::string& path);

}  // namespace pmkm

#endif  // PMKM_CLUSTER_SERIALIZE_H_
