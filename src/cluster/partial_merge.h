// PartialMergeKMeans: the end-to-end algorithm of the paper (Fig. 4/5),
// as an in-memory driver. Splits a grid cell into p partitions, runs
// partial k-means on each (optionally in parallel, modelling the cloned
// operators on separate machines), pools the weighted centroids and runs
// the merge k-means. Phase timings are recorded to reproduce Table 2's
// t_{C0−Ci} and t_merge columns.
//
// The stream-operator deployment of the same computation lives in
// src/stream/ops.h; this driver shares all of its pieces.

#ifndef PMKM_CLUSTER_PARTIAL_MERGE_H_
#define PMKM_CLUSTER_PARTIAL_MERGE_H_

#include <vector>

#include "cluster/merge.h"
#include "cluster/partial.h"

namespace pmkm {

/// How a cell's points are sliced into partitions (the paper's §6 design
/// space: mostly-overlapping, salami, spatially non-overlapping).
enum class PartitionStrategy {
  kRandom,      // random shuffle into p chunks (the paper's test setup)
  kContiguous,  // arrival-order "salami" slices (paper's future work)
  kSpatial,     // spatially disjoint subcells on coords 0/1 (future work)
  kStripes,     // sorted stripes along one coordinate (1-D salami)
};

struct PartialMergeConfig {
  /// Per-partition k-means (k, restarts R, seeding, Lloyd parameters).
  KMeansConfig partial;

  /// Merge step configuration. merge.k of 0 (the default here) means
  /// "use partial.k", which is the paper's setup.
  MergeKMeansConfig merge = InheritPartialK();

  /// A merge config whose k defers to the partial step's k.
  static MergeKMeansConfig InheritPartialK() {
    MergeKMeansConfig m;
    m.k = 0;
    return m;
  }

  /// Number of partitions p (paper: 5- and 10-split). Used by Run(); the
  /// chunked entry points take pre-built partitions instead.
  size_t num_partitions = 5;

  PartitionStrategy strategy = PartitionStrategy::kRandom;

  /// kSpatial: subcell grid side; 0 derives ceil(sqrt(num_partitions)).
  size_t spatial_grid_side = 0;

  /// kStripes: the coordinate to sort/slice along.
  size_t stripe_dim = 0;

  /// Worker threads for partial steps. 1 reproduces the paper's
  /// "run serially on one machine" rows; >1 models cloned operators.
  size_t num_threads = 1;

  /// Seed for the partition shuffle.
  uint64_t seed = 99;

  /// Post-merge refinement: run up to this many Lloyd iterations over the
  /// *raw* cell seeded with the merged centroids. 0 (default) keeps the
  /// paper's strict one-look pipeline; a small budget (2-5) typically
  /// closes most of the raw-SSE gap to serial k-means at a fraction of a
  /// full serial run. Requires the cell to be re-readable (Run() has it in
  /// memory; RunChunks() re-concatenates the chunks).
  size_t refine_iterations = 0;

  Status Validate() const;
};

/// End-to-end outcome, including everything Table 2 reports.
struct PartialMergeResult {
  ClusteringModel model;

  double partial_seconds = 0.0;  // t_{C0−Ci}: sum (serial) / wall (parallel)
  double merge_seconds = 0.0;    // t_merge
  double refine_seconds = 0.0;   // post-merge refinement (0 if disabled)
  double total_seconds = 0.0;    // overall t

  size_t num_partitions = 0;
  size_t pooled_centroids = 0;           // M = Σ_p k_p
  std::vector<double> partition_sse;     // per-partition min-restart error
  std::vector<size_t> partition_iters;   // winning-restart iterations
};

class PartialMergeKMeans {
 public:
  explicit PartialMergeKMeans(PartialMergeConfig config)
      : config_(std::move(config)) {}

  const PartialMergeConfig& config() const { return config_; }

  /// Splits `cell` per the configured strategy and runs the full pipeline.
  Result<PartialMergeResult> Run(const Dataset& cell) const;

  /// Runs the pipeline over pre-built partitions (e.g. chunks streamed from
  /// a grid-bucket file). Partitions must be non-empty and share one
  /// dimensionality.
  Result<PartialMergeResult> RunChunks(
      const std::vector<Dataset>& chunks) const;

 private:
  PartialMergeConfig config_;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_PARTIAL_MERGE_H_
