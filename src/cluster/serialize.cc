#include "cluster/serialize.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/annotations.h"
#include "data/io.h"
#include "data/manifest.h"

namespace pmkm {
namespace {

constexpr uint32_t kModelMagic = 0x4d4b4d50;  // "PMKM"
constexpr uint32_t kModelVersion = 1;
constexpr uint32_t kFlagHasAssignments = 1u << 0;

// Appends raw bytes of `value` to `out`.
template <typename T>
void PutPod(std::vector<char>* out, const T& value) {
  const char* p = reinterpret_cast<const char*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
Status GetPod(std::ifstream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  if (!*in) return Status::IOError("truncated model file");
  return Status::OK();
}

}  // namespace

Status SaveModel(const std::string& path,
                 const ClusteringModel& model) PMKM_DETERMINISTIC {
  if (model.k() == 0) {
    return Status::InvalidArgument("cannot save an empty model");
  }
  if (model.weights.size() != model.k()) {
    return Status::InvalidArgument("model weights/centroids mismatch");
  }
  std::vector<char> buf;
  PutPod(&buf, kModelMagic);
  PutPod(&buf, kModelVersion);
  PutPod(&buf, static_cast<uint64_t>(model.k()));
  PutPod(&buf, static_cast<uint64_t>(model.dim()));
  const uint32_t flags =
      model.assignments.empty() ? 0u : kFlagHasAssignments;
  PutPod(&buf, flags);
  PutPod(&buf, uint32_t{0});
  PutPod(&buf, model.sse);
  PutPod(&buf, model.mse_per_point);
  PutPod(&buf, static_cast<uint64_t>(model.iterations));
  PutPod(&buf, static_cast<uint32_t>(model.converged ? 1 : 0));
  PutPod(&buf, uint32_t{0});
  for (double v : model.centroids.values()) PutPod(&buf, v);
  for (double w : model.weights) PutPod(&buf, w);
  if (flags & kFlagHasAssignments) {
    PutPod(&buf, static_cast<uint64_t>(model.assignments.size()));
    for (uint32_t a : model.assignments) PutPod(&buf, a);
  }
  const uint64_t hash =
      internal::Fnv1a64(buf.data(), buf.size(), internal::kFnvOffset);
  const char* hp = reinterpret_cast<const char*>(&hash);
  buf.insert(buf.end(), hp, hp + sizeof(hash));

  // Durable atomic publish (stage + fsync + rename + dir fsync): a model
  // file either exists completely or not at all, even across power loss —
  // the kill-sweep harness compares these files bytewise across crashes.
  return AtomicWriteFile(
      path, std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(buf.data()), buf.size()));
}

Result<ClusteringModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);

  // Read everything, verify the trailer checksum first.
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < static_cast<std::streamoff>(sizeof(uint64_t) + 8)) {
    return Status::IOError("file too small to be a model: " + path);
  }
  std::vector<char> buf(static_cast<size_t>(size));
  in.read(buf.data(), size);
  if (!in) return Status::IOError("short read: " + path);
  uint64_t stored;
  std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  const uint64_t computed = internal::Fnv1a64(
      buf.data(), buf.size() - sizeof(uint64_t), internal::kFnvOffset);
  if (stored != computed) {
    return Status::IOError("checksum mismatch (corrupt model): " + path);
  }

  size_t pos = 0;
  auto take = [&](auto* value) -> Status {
    using T = std::remove_pointer_t<decltype(value)>;
    if (pos + sizeof(T) > buf.size() - sizeof(uint64_t)) {
      return Status::IOError("truncated model payload: " + path);
    }
    std::memcpy(value, buf.data() + pos, sizeof(T));
    pos += sizeof(T);
    return Status::OK();
  };

  uint32_t magic, version, flags, pad;
  uint64_t k, dim;
  PMKM_RETURN_NOT_OK(take(&magic));
  if (magic != kModelMagic) {
    return Status::IOError("bad magic (not a model file): " + path);
  }
  PMKM_RETURN_NOT_OK(take(&version));
  if (version != kModelVersion) {
    return Status::IOError("unsupported model version: " + path);
  }
  PMKM_RETURN_NOT_OK(take(&k));
  PMKM_RETURN_NOT_OK(take(&dim));
  if (k == 0 || dim == 0) {
    return Status::IOError("degenerate model shape: " + path);
  }
  PMKM_RETURN_NOT_OK(take(&flags));
  PMKM_RETURN_NOT_OK(take(&pad));

  ClusteringModel model;
  uint64_t iterations;
  uint32_t converged;
  PMKM_RETURN_NOT_OK(take(&model.sse));
  PMKM_RETURN_NOT_OK(take(&model.mse_per_point));
  PMKM_RETURN_NOT_OK(take(&iterations));
  PMKM_RETURN_NOT_OK(take(&converged));
  PMKM_RETURN_NOT_OK(take(&pad));
  model.iterations = iterations;
  model.converged = converged != 0;

  std::vector<double> centroid_values(k * dim);
  for (double& v : centroid_values) PMKM_RETURN_NOT_OK(take(&v));
  PMKM_ASSIGN_OR_RETURN(model.centroids,
                        Dataset::FromFlat(dim, std::move(centroid_values)));
  model.weights.resize(k);
  for (double& w : model.weights) PMKM_RETURN_NOT_OK(take(&w));
  if (flags & kFlagHasAssignments) {
    uint64_t n;
    PMKM_RETURN_NOT_OK(take(&n));
    model.assignments.resize(n);
    for (uint32_t& a : model.assignments) PMKM_RETURN_NOT_OK(take(&a));
  }
  return model;
}

}  // namespace pmkm
