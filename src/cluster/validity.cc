#include "cluster/validity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/distance.h"

namespace pmkm {

Result<double> SilhouetteScore(const ClusteringModel& model,
                               const Dataset& data, size_t sample_cap,
                               uint64_t seed) {
  if (model.k() < 2) {
    return Status::InvalidArgument("silhouette needs k >= 2");
  }
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (data.dim() != model.dim()) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  const size_t dim = data.dim();

  // Sample points if requested.
  std::vector<size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  if (sample_cap > 0 && data.size() > sample_cap) {
    Rng rng(seed);
    for (size_t i = 0; i < sample_cap; ++i) {
      const size_t j = i + rng.UniformInt(idx.size() - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(sample_cap);
  }

  // Assign the sampled points.
  const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
  std::vector<uint32_t> assign(idx.size());
  std::vector<size_t> cluster_count(model.k(), 0);
  for (size_t s = 0; s < idx.size(); ++s) {
    assign[s] = static_cast<uint32_t>(
        NearestCentroid(data.data() + idx[s] * dim, model.centroids,
                        norms)
            .index);
    ++cluster_count[assign[s]];
  }
  size_t populated = 0;
  for (size_t c : cluster_count) populated += (c > 0);
  if (populated < 2) {
    return Status::FailedPrecondition(
        "fewer than 2 populated clusters in the (sampled) data");
  }

  // Pairwise silhouette over the sample.
  double total = 0.0;
  size_t scored = 0;
  std::vector<double> dist_sum(model.k());
  for (size_t s = 0; s < idx.size(); ++s) {
    const uint32_t own = assign[s];
    if (cluster_count[own] <= 1) continue;  // silhouette undefined
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    const double* x = data.data() + idx[s] * dim;
    for (size_t t = 0; t < idx.size(); ++t) {
      if (t == s) continue;
      dist_sum[assign[t]] +=
          std::sqrt(SquaredL2(x, data.data() + idx[t] * dim, dim));
    }
    const double a =
        dist_sum[own] / static_cast<double>(cluster_count[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < model.k(); ++c) {
      if (c == own || cluster_count[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(cluster_count[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
    }
    ++scored;
  }
  if (scored == 0) {
    return Status::FailedPrecondition("no scorable points (singletons)");
  }
  return total / static_cast<double>(scored);
}

Result<double> DaviesBouldinIndex(const ClusteringModel& model,
                                  const Dataset& data) {
  if (model.k() < 2) {
    return Status::InvalidArgument("Davies-Bouldin needs k >= 2");
  }
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (data.dim() != model.dim()) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  const size_t dim = data.dim();
  const size_t k = model.k();

  const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
  std::vector<double> scatter(k, 0.0);  // mean distance to centroid
  std::vector<size_t> count(k, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    const Nearest n =
        NearestCentroid(data.data() + i * dim, model.centroids, norms);
    scatter[n.index] += std::sqrt(n.distance_sq);
    ++count[n.index];
  }
  std::vector<size_t> live;
  for (size_t j = 0; j < k; ++j) {
    if (count[j] > 0) {
      scatter[j] /= static_cast<double>(count[j]);
      live.push_back(j);
    }
  }
  if (live.size() < 2) {
    return Status::FailedPrecondition("fewer than 2 populated clusters");
  }

  double total = 0.0;
  for (size_t a : live) {
    double worst = 0.0;
    for (size_t b : live) {
      if (a == b) continue;
      const double d = std::sqrt(SquaredL2(
          model.centroids.Row(a), model.centroids.Row(b)));
      if (d <= 0.0) continue;  // coincident centroids: skip the pair
      worst = std::max(worst, (scatter[a] + scatter[b]) / d);
    }
    total += worst;
  }
  return total / static_cast<double>(live.size());
}

}  // namespace pmkm
