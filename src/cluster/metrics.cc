#include "cluster/metrics.h"

#include "cluster/distance.h"

namespace pmkm {

double Sse(const Dataset& centroids, const Dataset& data) {
  PMKM_CHECK(!centroids.empty());
  PMKM_CHECK(centroids.dim() == data.dim());
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  const size_t dim = data.dim();
  double acc = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    acc += NearestCentroid(data.data() + i * dim, centroids, norms)
               .distance_sq;
  }
  return acc;
}

double WeightedSse(const Dataset& centroids, const WeightedDataset& data) {
  PMKM_CHECK(!centroids.empty());
  PMKM_CHECK(centroids.dim() == data.dim());
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  const size_t dim = data.dim();
  double acc = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    acc += data.weight(i) *
           NearestCentroid(data.points().data() + i * dim, centroids, norms)
               .distance_sq;
  }
  return acc;
}

double MsePerPoint(const Dataset& centroids, const Dataset& data) {
  PMKM_CHECK(!data.empty());
  return Sse(centroids, data) / static_cast<double>(data.size());
}

std::vector<size_t> AssignmentCounts(const Dataset& centroids,
                                     const Dataset& data) {
  PMKM_CHECK(!centroids.empty());
  PMKM_CHECK(centroids.dim() == data.dim());
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  const size_t dim = data.dim();
  std::vector<size_t> counts(centroids.size(), 0);
  for (size_t i = 0; i < data.size(); ++i) {
    ++counts[NearestCentroid(data.data() + i * dim, centroids, norms)
                 .index];
  }
  return counts;
}

double ModelSseOn(const ClusteringModel& model, const Dataset& data) {
  return Sse(model.centroids, data);
}

}  // namespace pmkm
