#include "cluster/merge.h"

namespace pmkm {

Result<ClusteringModel> MergeKMeans::Merge(
    const WeightedDataset& pooled) const {
  if (pooled.empty()) {
    return Status::InvalidArgument("no centroids to merge");
  }
  if (config_.k == 0) return Status::InvalidArgument("k must be >= 1");
  for (size_t i = 0; i < pooled.size(); ++i) {
    if (pooled.weight(i) <= 0.0) {
      return Status::InvalidArgument(
          "merge input contains a non-positive weight");
    }
  }

  if (pooled.size() <= config_.k) {
    ClusteringModel model;
    model.centroids = pooled.points();
    model.weights = pooled.weights();
    model.sse = 0.0;
    model.mse_per_point = 0.0;
    model.iterations = 0;
    model.converged = true;
    return model;
  }

  KMeansConfig cfg;
  cfg.k = config_.k;
  cfg.restarts = config_.restarts;
  cfg.seeding = config_.seeding;
  cfg.lloyd = config_.lloyd;
  cfg.seed = config_.seed;
  return KMeans(cfg).FitWeighted(pooled);
}

}  // namespace pmkm
