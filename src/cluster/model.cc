#include "cluster/model.h"

#include "cluster/distance.h"

namespace pmkm {

size_t ClusteringModel::Predict(std::span<const double> point) const {
  PMKM_CHECK(!centroids.empty());
  return NearestCentroid(point, centroids).index;
}

}  // namespace pmkm
