#include "cluster/model.h"

#include <limits>

namespace pmkm {

size_t ClusteringModel::Predict(std::span<const double> point) const {
  PMKM_CHECK(!centroids.empty());
  PMKM_CHECK(point.size() == centroids.dim());
  // Same distance arithmetic and tie rule (ascending scan, strictly
  // smaller wins) as the kernel layer, so Predict always agrees with the
  // training-time assignments regardless of which kernel produced them.
  const size_t dim = centroids.dim();
  const double* c = centroids.data();
  size_t best = 0;
  double d_best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < centroids.size(); ++j) {
    double acc = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = point[d] - c[j * dim + d];
      acc += diff * diff;
    }
    if (acc < d_best) {
      d_best = acc;
      best = j;
    }
  }
  return best;
}

}  // namespace pmkm
