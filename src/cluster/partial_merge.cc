#include "cluster/partial_merge.h"

#include <cmath>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/slicing.h"

namespace pmkm {

Status PartialMergeConfig::Validate() const {
  PMKM_RETURN_NOT_OK(partial.Validate());
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  return Status::OK();
}

Result<PartialMergeResult> PartialMergeKMeans::Run(
    const Dataset& cell) const {
  PMKM_RETURN_NOT_OK(config_.Validate());
  if (cell.empty()) return Status::InvalidArgument("empty cell");
  Rng rng(config_.seed);
  std::vector<Dataset> chunks;
  switch (config_.strategy) {
    case PartitionStrategy::kRandom:
      chunks = SplitRandom(cell, config_.num_partitions, &rng);
      break;
    case PartitionStrategy::kContiguous:
      chunks = SplitContiguous(cell, config_.num_partitions);
      break;
    case PartitionStrategy::kSpatial: {
      size_t side = config_.spatial_grid_side;
      if (side == 0) {
        side = static_cast<size_t>(std::ceil(
            std::sqrt(static_cast<double>(config_.num_partitions))));
      }
      PMKM_ASSIGN_OR_RETURN(chunks, SplitSpatialGrid(cell, side));
      break;
    }
    case PartitionStrategy::kStripes:
      PMKM_ASSIGN_OR_RETURN(
          chunks, SplitStripes(cell, config_.num_partitions,
                               config_.stripe_dim));
      break;
  }
  // A cell smaller than p produces empty tail chunks; drop them.
  std::erase_if(chunks, [](const Dataset& d) { return d.empty(); });
  return RunChunks(chunks);
}

Result<PartialMergeResult> PartialMergeKMeans::RunChunks(
    const std::vector<Dataset>& chunks) const {
  PMKM_RETURN_NOT_OK(config_.Validate());
  if (chunks.empty()) return Status::InvalidArgument("no partitions");
  const size_t dim = chunks[0].dim();
  for (const Dataset& c : chunks) {
    if (c.empty()) return Status::InvalidArgument("empty partition");
    if (c.dim() != dim) {
      return Status::InvalidArgument("partition dimensionality mismatch");
    }
  }

  const Stopwatch total_watch;
  PartialMergeResult out;
  out.num_partitions = chunks.size();

  const PartialKMeans partial(config_.partial);
  std::vector<Result<PartialResult>> partials(
      chunks.size(), Result<PartialResult>(Status::Internal("not run")));

  Stopwatch partial_watch;
  if (config_.num_threads <= 1 || chunks.size() == 1) {
    for (size_t p = 0; p < chunks.size(); ++p) {
      partials[p] = partial.Cluster(chunks[p], p);
    }
  } else {
    ThreadPool pool(std::min(config_.num_threads, chunks.size()));
    std::vector<std::future<void>> futures;
    futures.reserve(chunks.size());
    for (size_t p = 0; p < chunks.size(); ++p) {
      futures.push_back(pool.Submit([&, p] {
        partials[p] = partial.Cluster(chunks[p], p);
      }));
    }
    for (auto& f : futures) f.wait();
  }
  out.partial_seconds = partial_watch.ElapsedSeconds();

  WeightedDataset pooled(dim);
  for (size_t p = 0; p < chunks.size(); ++p) {
    PMKM_RETURN_NOT_OK(partials[p].status());
    const PartialResult& pr = partials[p].value();
    pooled.AppendAll(pr.centroids);
    out.partition_sse.push_back(pr.sse);
    out.partition_iters.push_back(pr.iterations);
  }
  out.pooled_centroids = pooled.size();

  MergeKMeansConfig merge_cfg = config_.merge;
  if (merge_cfg.k == 0) merge_cfg.k = config_.partial.k;
  const MergeKMeans merger(merge_cfg);

  const Stopwatch merge_watch;
  PMKM_ASSIGN_OR_RETURN(out.model, merger.Merge(pooled));
  out.merge_seconds = merge_watch.ElapsedSeconds();

  if (config_.refine_iterations > 0) {
    // Second look over the raw points: polish the merged centroids with a
    // bounded Lloyd budget. Seeds are the merged model, so refinement can
    // only improve the raw-data error (Lloyd is monotone).
    const Stopwatch refine_watch;
    Dataset raw(dim);
    size_t total_points = 0;
    for (const Dataset& c : chunks) total_points += c.size();
    raw.Reserve(total_points);
    for (const Dataset& c : chunks) raw.AppendAll(c);
    LloydConfig refine_cfg = config_.partial.lloyd;
    refine_cfg.max_iterations = config_.refine_iterations;
    Rng refine_rng(config_.seed ^ 0x726566696eULL);
    PMKM_ASSIGN_OR_RETURN(
        out.model,
        RunWeightedLloyd(WeightedDataset::FromUnweighted(raw),
                         out.model.centroids, refine_cfg, &refine_rng));
    out.refine_seconds = refine_watch.ElapsedSeconds();
  }
  out.total_seconds = total_watch.ElapsedSeconds();
  return out;
}

}  // namespace pmkm
