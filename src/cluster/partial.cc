#include "cluster/partial.h"

namespace pmkm {

Result<PartialResult> PartialKMeans::Cluster(const Dataset& partition,
                                             uint64_t partition_id) const {
  if (partition.empty()) {
    return Status::InvalidArgument("empty partition");
  }
  PartialResult out;
  out.input_points = partition.size();

  if (partition.size() <= config().k) {
    // Degenerate chunk: emit each point as a unit-weight centroid.
    out.centroids = WeightedDataset::FromUnweighted(partition);
    out.sse = 0.0;
    out.iterations = 0;
    return out;
  }

  KMeansConfig cfg = config();
  // Independent but reproducible seed stream per partition.
  cfg.seed = Rng(config().seed).Fork(partition_id ^ 0x70617274ULL).Next();
  const KMeans runner(cfg);
  PMKM_ASSIGN_OR_RETURN(ClusteringModel model, runner.Fit(partition));

  // Drop starved centroids (weight 0 after unrecoverable duplication);
  // the merge step must not see zero-weight inputs.
  WeightedDataset centroids(partition.dim());
  for (size_t j = 0; j < model.k(); ++j) {
    if (model.weights[j] > 0.0) {
      centroids.Append(model.centroids.Row(j), model.weights[j]);
    }
  }
  out.centroids = std::move(centroids);
  out.sse = model.sse;
  out.iterations = model.iterations;
  return out;
}

}  // namespace pmkm
