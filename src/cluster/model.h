// ClusteringModel: the result of any clustering run in pmkm (serial
// k-means, partial/merge, baselines). Centroids are weighted so a model can
// itself be fed into a merge step or a histogram builder.

#ifndef PMKM_CLUSTER_MODEL_H_
#define PMKM_CLUSTER_MODEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "data/dataset.h"
#include "data/weighted.h"

namespace pmkm {

/// A fitted clustering: k centroids, their weights (number of original
/// points represented, possibly fractional after merging), and quality.
struct ClusteringModel {
  /// k × D centroid matrix.
  Dataset centroids{1};

  /// Per-centroid weight: total (weighted) count of assigned points.
  std::vector<double> weights;

  /// Optional per-training-point assignment (centroid index); empty unless
  /// requested via the config's track_assignments.
  std::vector<uint32_t> assignments;

  /// The paper's error function E: total (weighted) squared distance of
  /// training points to their centroid. This is what Table 2 reports as
  /// "Min MSE".
  double sse = std::numeric_limits<double>::infinity();

  /// sse divided by the total training weight (per-point error).
  double mse_per_point = std::numeric_limits<double>::infinity();

  /// Lloyd iterations of the (best) run that produced this model.
  size_t iterations = 0;

  /// Whether that run met the convergence criterion before max_iterations.
  bool converged = false;

  size_t k() const { return centroids.size(); }
  size_t dim() const { return centroids.dim(); }

  /// The centroids as a weighted dataset (input format of merge k-means).
  WeightedDataset ToWeighted() const {
    auto r = WeightedDataset::Create(centroids, weights);
    PMKM_CHECK(r.ok()) << r.status();
    return std::move(r).value();
  }

  /// Index of the centroid nearest to `point`.
  size_t Predict(std::span<const double> point) const;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_MODEL_H_
