// KMeans: the multi-restart k-means used both as the paper's serial
// baseline and, applied per partition, as the clustering inside the partial
// operator. Runs R restarts with independent random seed sets and keeps the
// representation with minimal error (paper §2 / §5.2: "we ran the serial
// k-means with 10 different sets of initial seeds, and selected the
// representation with the minimum mean square error").

#ifndef PMKM_CLUSTER_KMEANS_H_
#define PMKM_CLUSTER_KMEANS_H_

#include "cluster/lloyd.h"
#include "cluster/seeding.h"
#include "common/result.h"

namespace pmkm {

struct KMeansConfig {
  /// Number of clusters (paper: k = 40 for all experiments).
  size_t k = 40;

  /// Restarts with independent seed sets (paper: R = 10).
  size_t restarts = 10;

  SeedingMethod seeding = SeedingMethod::kRandom;

  LloydConfig lloyd;

  /// Use the Hamerly-accelerated iteration (cluster/hamerly.h) instead of
  /// the plain Lloyd scan. Exact: assignments per iteration are identical;
  /// only the work per iteration shrinks. Off by default to mirror the
  /// paper's unoptimized implementation (§4: "we do not exploit many
  /// optimizations such as improved search mechanism for finding the
  /// nearest centroid").
  bool accelerate = false;

  /// Master seed; restart r of a Fit call uses an independent child stream
  /// so results are reproducible yet restarts are decorrelated.
  uint64_t seed = 1;

  Status Validate() const {
    if (k == 0) return Status::InvalidArgument("k must be >= 1");
    if (restarts == 0) {
      return Status::InvalidArgument("restarts must be >= 1");
    }
    return Status::OK();
  }
};

/// Multi-restart (weighted) k-means.
class KMeans {
 public:
  explicit KMeans(KMeansConfig config) : config_(std::move(config)) {}

  const KMeansConfig& config() const { return config_; }

  /// Clusters an unweighted dataset (the serial baseline). Requires
  /// data.size() >= k.
  Result<ClusteringModel> Fit(const Dataset& data) const {
    return FitWeighted(WeightedDataset::FromUnweighted(data));
  }

  /// Clusters a weighted dataset; the best-of-R model by weighted SSE is
  /// returned.
  Result<ClusteringModel> FitWeighted(const WeightedDataset& data) const;

 private:
  KMeansConfig config_;
};

}  // namespace pmkm

#endif  // PMKM_CLUSTER_KMEANS_H_
