// Distance kernels: the innermost loops of every algorithm in pmkm.
//
// NearestCentroid uses the expansion ‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²: with
// per-centroid norms precomputed, the argmin needs only the dot product,
// nearly halving the flops of the naive subtract-square loop. The exact
// squared distance is recovered afterwards for the SSE bookkeeping.

#ifndef PMKM_CLUSTER_DISTANCE_H_
#define PMKM_CLUSTER_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace pmkm {

/// ‖a − b‖² for raw pointers of length `dim`.
inline double SquaredL2(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

inline double SquaredL2(std::span<const double> a,
                        std::span<const double> b) {
  PMKM_DCHECK(a.size() == b.size());
  return SquaredL2(a.data(), b.data(), a.size());
}

/// Nearest-centroid query result.
struct Nearest {
  size_t index = 0;
  double distance_sq = 0.0;
};

/// Precomputes ‖c_j‖² for every centroid row (helper for the expanded
/// nearest-centroid form).
inline std::vector<double> CentroidSquaredNorms(const Dataset& centroids) {
  std::vector<double> norms(centroids.size());
  const size_t dim = centroids.dim();
  for (size_t j = 0; j < centroids.size(); ++j) {
    const double* c = centroids.data() + j * dim;
    double acc = 0.0;
    for (size_t d = 0; d < dim; ++d) acc += c[d] * c[d];
    norms[j] = acc;
  }
  return norms;
}

/// Finds the centroid minimizing ‖x−c_j‖² using precomputed ‖c_j‖²
/// (`norms`). The returned distance_sq is exact (clamped at 0 against
/// floating-point cancellation). Requires a non-empty centroid set.
inline Nearest NearestCentroid(const double* x, const Dataset& centroids,
                               const std::vector<double>& norms) {
  const size_t k = centroids.size();
  const size_t dim = centroids.dim();
  PMKM_DCHECK(k > 0 && norms.size() == k);
  size_t best = 0;
  double best_score = 0.0;
  const double* c = centroids.data();
  for (size_t j = 0; j < k; ++j, c += dim) {
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) dot += x[d] * c[d];
    const double score = norms[j] - 2.0 * dot;  // ‖c‖² − 2 x·c
    if (j == 0 || score < best_score) {
      best_score = score;
      best = j;
    }
  }
  double xx = 0.0;
  for (size_t d = 0; d < dim; ++d) xx += x[d] * x[d];
  const double dist_sq = xx + best_score;
  return Nearest{best, dist_sq > 0.0 ? dist_sq : 0.0};
}

/// Convenience overload computing the norms on the fly (prefer the cached
/// variant inside loops).
inline Nearest NearestCentroid(std::span<const double> x,
                               const Dataset& centroids) {
  const std::vector<double> norms = CentroidSquaredNorms(centroids);
  return NearestCentroid(x.data(), centroids, norms);
}

}  // namespace pmkm

#endif  // PMKM_CLUSTER_DISTANCE_H_
