// Entropy-Constrained Vector Quantization (Chou, Lookabaugh & Gray 1989).
//
// The paper's §3.3 "Remarks" propose ECVQ to choose k per partition on the
// fly: start from a maximum k and minimize D + λ·R, where R is the code
// length −log2(p_j) of cluster j. The rate penalty makes small clusters
// expensive, starving uncompetitive centroids, which are then discarded —
// yielding an effective k adapted to the partition.
//
// This implements weighted ECVQ so it can run both on raw partitions and
// on weighted centroid sets inside the merge step.

#ifndef PMKM_HISTOGRAM_ECVQ_H_
#define PMKM_HISTOGRAM_ECVQ_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/weighted.h"

namespace pmkm {

struct EcvqConfig {
  /// Upper bound on the codebook size (the paper's "maximum k").
  size_t max_k = 64;

  /// Lagrange multiplier λ trading distortion against rate. λ = 0 reduces
  /// to plain k-means with max_k clusters; larger λ starves more clusters.
  double lambda = 1.0;

  /// Iteration/convergence control, in the paper's style: stop when the
  /// Lagrangian J = D + λR improves by at most epsilon.
  double epsilon = 1e-9;
  size_t max_iterations = 200;

  /// Drop codewords whose probability falls below this before re-iterating
  /// (starvation). 0 keeps only exactly-empty cells dropping.
  double min_probability = 1e-6;

  uint64_t seed = 17;
};

struct EcvqResult {
  ClusteringModel model;     // surviving codewords with weights
  double distortion = 0.0;   // weighted SSE
  double rate_bits = 0.0;    // average code length (entropy, bits/point)
  double lagrangian = 0.0;   // D + λ·N·R (total-cost form)
  size_t effective_k = 0;    // surviving codewords
  size_t iterations = 0;
};

/// Runs ECVQ on weighted data. The effective k (model.k()) is ≤ max_k.
Result<EcvqResult> FitEcvq(const WeightedDataset& data,
                           const EcvqConfig& config);

/// Convenience for raw points.
Result<EcvqResult> FitEcvq(const Dataset& data, const EcvqConfig& config);

}  // namespace pmkm

#endif  // PMKM_HISTOGRAM_ECVQ_H_
