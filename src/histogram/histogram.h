// Multivariate histogram compression — the paper's motivating application
// (§1, §2; Braverman 2002): each 1°×1° grid cell is replaced by a set of
// non-equi-depth multivariate buckets derived from a clustering, capturing
// high-order attribute interaction that per-dimension histograms miss.
//
// A bucket is one cluster's summary: representative vector (centroid),
// point count, and per-coordinate spread. The histogram supports the
// operations the compression use case needs: quantization (encode a point
// to a bucket id), reconstruction (decode id → representative, or sample
// from the bucket's spread), fidelity and compression-ratio accounting.

#ifndef PMKM_HISTOGRAM_HISTOGRAM_H_
#define PMKM_HISTOGRAM_HISTOGRAM_H_

#include <vector>

#include "cluster/model.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace pmkm {

/// One non-equi-depth multivariate bucket.
struct HistogramBucket {
  std::vector<double> representative;  // cluster centroid
  std::vector<double> stddev;          // per-coordinate spread
  double count = 0.0;                  // points summarized (weight)
};

/// A compressed grid cell.
class MultivariateHistogram {
 public:
  /// Builds the histogram from a fitted model and the cell's original
  /// points (one extra pass computes per-bucket spreads). Buckets with
  /// zero assigned points are dropped.
  static Result<MultivariateHistogram> Build(const ClusteringModel& model,
                                             const Dataset& cell);

  /// Builds from a model alone (no spread information; stddev = 0). Used
  /// when the original data is no longer available — e.g. built from the
  /// merge step's weighted centroids in a pure streaming pipeline.
  static Result<MultivariateHistogram> FromModel(
      const ClusteringModel& model);

  size_t num_buckets() const { return buckets_.size(); }
  size_t dim() const { return dim_; }
  double total_count() const;
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Bucket id for a point (nearest representative).
  size_t Encode(std::span<const double> point) const;

  /// The representative vector of bucket `id`.
  std::span<const double> Decode(size_t id) const;

  /// Mean squared reconstruction error of encoding then decoding `data`.
  double ReconstructionMse(const Dataset& data) const;

  /// Draws n points from the histogram treated as a Gaussian mixture with
  /// bucket frequencies as mixing weights — a synthetic stand-in for the
  /// original cell.
  Dataset SampleReconstruction(size_t n, Rng* rng) const;

  /// Serialized size in bytes (representatives + spreads + counts).
  size_t CompressedBytes() const;

  /// original bytes / compressed bytes for an N-point cell of this
  /// dimensionality.
  double CompressionRatio(size_t original_points) const;

 private:
  explicit MultivariateHistogram(size_t dim) : dim_(dim) {}

  size_t dim_;
  std::vector<HistogramBucket> buckets_;
  Dataset representatives_{1};  // cached matrix for nearest queries
};

}  // namespace pmkm

#endif  // PMKM_HISTOGRAM_HISTOGRAM_H_
