#include "histogram/adaptive.h"

#include <algorithm>

#include "data/dataset.h"

namespace pmkm {

Status AdaptivePartialMergeConfig::Validate() const {
  if (partial.max_k == 0) {
    return Status::InvalidArgument("partial.max_k must be >= 1");
  }
  if (partial.lambda < 0.0) {
    return Status::InvalidArgument("partial.lambda must be non-negative");
  }
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  return Status::OK();
}

Result<AdaptivePartialMergeResult> AdaptivePartialMergeKMeans::Run(
    const Dataset& cell) const {
  PMKM_RETURN_NOT_OK(config_.Validate());
  if (cell.empty()) return Status::InvalidArgument("empty cell");
  Rng rng(config_.seed);
  std::vector<Dataset> chunks =
      SplitRandom(cell, config_.num_partitions, &rng);
  std::erase_if(chunks, [](const Dataset& d) { return d.empty(); });
  return RunChunks(chunks);
}

Result<AdaptivePartialMergeResult> AdaptivePartialMergeKMeans::RunChunks(
    const std::vector<Dataset>& chunks) const {
  PMKM_RETURN_NOT_OK(config_.Validate());
  if (chunks.empty()) return Status::InvalidArgument("no partitions");
  const size_t dim = chunks[0].dim();
  for (const Dataset& c : chunks) {
    if (c.empty()) return Status::InvalidArgument("empty partition");
    if (c.dim() != dim) {
      return Status::InvalidArgument("partition dimensionality mismatch");
    }
  }

  AdaptivePartialMergeResult out;
  WeightedDataset pooled(dim);
  size_t max_effective_k = 1;
  for (size_t p = 0; p < chunks.size(); ++p) {
    EcvqConfig cfg = config_.partial;
    cfg.seed = Rng(config_.partial.seed).Fork(p ^ 0x65637671ULL).Next();
    PMKM_ASSIGN_OR_RETURN(EcvqResult result, FitEcvq(chunks[p], cfg));
    out.partition_effective_k.push_back(result.effective_k);
    out.partition_rate_bits.push_back(result.rate_bits);
    max_effective_k = std::max(max_effective_k, result.effective_k);
    for (size_t j = 0; j < result.model.k(); ++j) {
      if (result.model.weights[j] > 0.0) {
        pooled.Append(result.model.centroids.Row(j),
                      result.model.weights[j]);
      }
    }
  }
  out.pooled_centroids = pooled.size();

  MergeKMeansConfig merge_cfg = config_.merge;
  if (merge_cfg.k == 0) merge_cfg.k = max_effective_k;
  out.final_k = merge_cfg.k;
  PMKM_ASSIGN_OR_RETURN(out.model, MergeKMeans(merge_cfg).Merge(pooled));
  return out;
}

}  // namespace pmkm
