#include "histogram/histogram.h"

#include <cmath>

#include "cluster/distance.h"
#include "cluster/metrics.h"

namespace pmkm {

Result<MultivariateHistogram> MultivariateHistogram::Build(
    const ClusteringModel& model, const Dataset& cell) {
  if (model.k() == 0) return Status::InvalidArgument("empty model");
  if (model.dim() != cell.dim()) {
    return Status::InvalidArgument("model/cell dimensionality mismatch");
  }
  const size_t k = model.k();
  const size_t dim = cell.dim();

  // One pass: per-cluster count, sum and sum of squares.
  const std::vector<double> norms = CentroidSquaredNorms(model.centroids);
  std::vector<double> count(k, 0.0);
  std::vector<double> sum(k * dim, 0.0);
  std::vector<double> sum_sq(k * dim, 0.0);
  for (size_t i = 0; i < cell.size(); ++i) {
    const double* x = cell.data() + i * dim;
    const size_t j = NearestCentroid(x, model.centroids, norms).index;
    count[j] += 1.0;
    for (size_t d = 0; d < dim; ++d) {
      sum[j * dim + d] += x[d];
      sum_sq[j * dim + d] += x[d] * x[d];
    }
  }

  MultivariateHistogram hist(dim);
  hist.representatives_ = Dataset(dim);
  for (size_t j = 0; j < k; ++j) {
    if (count[j] <= 0.0) continue;
    HistogramBucket b;
    b.count = count[j];
    b.representative.resize(dim);
    b.stddev.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      const double mean = sum[j * dim + d] / count[j];
      b.representative[d] = mean;
      const double var = sum_sq[j * dim + d] / count[j] - mean * mean;
      b.stddev[d] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    hist.representatives_.Append(b.representative);
    hist.buckets_.push_back(std::move(b));
  }
  if (hist.buckets_.empty()) {
    return Status::InvalidArgument("cell is empty");
  }
  return hist;
}

Result<MultivariateHistogram> MultivariateHistogram::FromModel(
    const ClusteringModel& model) {
  if (model.k() == 0) return Status::InvalidArgument("empty model");
  MultivariateHistogram hist(model.dim());
  hist.representatives_ = Dataset(model.dim());
  for (size_t j = 0; j < model.k(); ++j) {
    if (model.weights.size() == model.k() && model.weights[j] <= 0.0) {
      continue;
    }
    HistogramBucket b;
    const auto row = model.centroids.Row(j);
    b.representative.assign(row.begin(), row.end());
    b.stddev.assign(model.dim(), 0.0);
    b.count = model.weights.size() == model.k() ? model.weights[j] : 1.0;
    hist.representatives_.Append(b.representative);
    hist.buckets_.push_back(std::move(b));
  }
  if (hist.buckets_.empty()) {
    return Status::InvalidArgument("model has no weighted centroids");
  }
  return hist;
}

double MultivariateHistogram::total_count() const {
  double total = 0.0;
  for (const auto& b : buckets_) total += b.count;
  return total;
}

size_t MultivariateHistogram::Encode(std::span<const double> point) const {
  PMKM_CHECK(point.size() == dim_);
  return NearestCentroid(point, representatives_).index;
}

std::span<const double> MultivariateHistogram::Decode(size_t id) const {
  PMKM_CHECK(id < buckets_.size());
  return buckets_[id].representative;
}

double MultivariateHistogram::ReconstructionMse(const Dataset& data) const {
  PMKM_CHECK(data.dim() == dim_);
  PMKM_CHECK(!data.empty());
  return MsePerPoint(representatives_, data);
}

Dataset MultivariateHistogram::SampleReconstruction(size_t n,
                                                    Rng* rng) const {
  const double total = total_count();
  Dataset out(dim_);
  out.Reserve(n);
  std::vector<double> point(dim_);
  for (size_t i = 0; i < n; ++i) {
    double u = rng->UniformDouble() * total;
    size_t j = buckets_.size() - 1;
    for (size_t b = 0; b < buckets_.size(); ++b) {
      u -= buckets_[b].count;
      if (u <= 0.0) {
        j = b;
        break;
      }
    }
    for (size_t d = 0; d < dim_; ++d) {
      point[d] = rng->Normal(buckets_[j].representative[d],
                             buckets_[j].stddev[d]);
    }
    out.Append(point);
  }
  return out;
}

size_t MultivariateHistogram::CompressedBytes() const {
  // representative + stddev per coordinate, plus the count.
  return buckets_.size() * (dim_ * 2 * sizeof(double) + sizeof(double));
}

double MultivariateHistogram::CompressionRatio(
    size_t original_points) const {
  const double original =
      static_cast<double>(original_points) * dim_ * sizeof(double);
  return original / static_cast<double>(CompressedBytes());
}

}  // namespace pmkm
