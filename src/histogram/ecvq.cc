#include "histogram/ecvq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"
#include "cluster/seeding.h"

namespace pmkm {

namespace {

constexpr double kLog2e = 1.4426950408889634;  // 1 / ln 2

}  // namespace

Result<EcvqResult> FitEcvq(const WeightedDataset& data,
                           const EcvqConfig& config) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (config.max_k == 0) return Status::InvalidArgument("max_k must be >= 1");
  if (config.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  const size_t dim = data.dim();
  const size_t n = data.size();
  const double total_weight = data.TotalWeight();
  Rng rng(config.seed);

  const size_t k0 = std::min(config.max_k, n);
  PMKM_ASSIGN_OR_RETURN(
      Dataset codebook,
      SelectSeeds(data, k0, SeedingMethod::kKMeansPlusPlus, &rng));
  // Uniform initial code lengths.
  std::vector<double> probs(codebook.size(),
                            1.0 / static_cast<double>(codebook.size()));

  EcvqResult out;
  double prev_j = std::numeric_limits<double>::infinity();
  size_t iter = 0;
  std::vector<double> sums;
  std::vector<double> mass;
  std::vector<uint32_t> assign(n);

  for (iter = 0; iter < config.max_iterations; ++iter) {
    const size_t k = codebook.size();
    // Code lengths from current probabilities.
    std::vector<double> len(k);
    for (size_t j = 0; j < k; ++j) {
      len[j] = probs[j] > 0.0
                   ? -std::log(probs[j]) * kLog2e
                   : std::numeric_limits<double>::infinity();
    }
    // Assignment: minimize d²(x, c_j) + λ·len_j.
    const std::vector<double> norms = CentroidSquaredNorms(codebook);
    sums.assign(k * dim, 0.0);
    mass.assign(k, 0.0);
    double distortion = 0.0;
    double rate_cost = 0.0;
    const double* points = data.points().data();
    for (size_t i = 0; i < n; ++i) {
      const double* x = points + i * dim;
      double xx = 0.0;
      for (size_t d = 0; d < dim; ++d) xx += x[d] * x[d];
      size_t best = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      const double* c = codebook.data();
      for (size_t j = 0; j < k; ++j, c += dim) {
        double dot = 0.0;
        for (size_t d = 0; d < dim; ++d) dot += x[d] * c[d];
        const double dist_sq = std::max(0.0, xx + norms[j] - 2.0 * dot);
        const double cost = dist_sq + config.lambda * len[j];
        if (cost < best_cost) {
          best_cost = cost;
          best = j;
        }
      }
      const double w = data.weight(i);
      assign[i] = static_cast<uint32_t>(best);
      // Recover the pure distortion term from the combined cost.
      const double d_sq = std::max(0.0, best_cost - config.lambda * len[best]);
      distortion += w * d_sq;
      rate_cost += w * len[best];
      double* sum = sums.data() + best * dim;
      for (size_t d = 0; d < dim; ++d) sum[d] += w * x[d];
      mass[best] += w;
    }

    // Centroid + probability update; drop starved codewords.
    Dataset next(dim);
    std::vector<double> next_probs;
    std::vector<double> point(dim);
    for (size_t j = 0; j < k; ++j) {
      const double p = mass[j] / total_weight;
      if (mass[j] <= 0.0 || p < config.min_probability) continue;
      for (size_t d = 0; d < dim; ++d) {
        point[d] = sums[j * dim + d] / mass[j];
      }
      next.Append(point);
      next_probs.push_back(p);
    }
    if (next.empty()) {
      return Status::Internal("all codewords starved (lambda too large?)");
    }
    codebook = std::move(next);
    probs = std::move(next_probs);

    const double lagrangian = distortion + config.lambda * rate_cost;
    out.distortion = distortion;
    out.rate_bits = total_weight > 0.0 ? rate_cost / total_weight : 0.0;
    out.lagrangian = lagrangian;
    if (iter > 0 && prev_j - lagrangian <= config.epsilon &&
        codebook.size() == probs.size()) {
      // Converged (note: a starvation event strictly lowers J next round,
      // so convergence naturally waits for the codebook to stabilize).
      if (prev_j >= lagrangian) {
        ++iter;
        break;
      }
    }
    prev_j = lagrangian;
  }

  // Final hard stats against the surviving codebook.
  const size_t k = codebook.size();
  std::vector<double> weights(k, 0.0);
  {
    const std::vector<double> norms = CentroidSquaredNorms(codebook);
    double distortion = 0.0;
    const double* points = data.points().data();
    for (size_t i = 0; i < n; ++i) {
      const Nearest near =
          NearestCentroid(points + i * dim, codebook, norms);
      weights[near.index] += data.weight(i);
      distortion += data.weight(i) * near.distance_sq;
    }
    out.distortion = distortion;
    double entropy = 0.0;
    for (double w : weights) {
      if (w > 0.0) {
        const double p = w / total_weight;
        entropy -= p * std::log(p) * kLog2e;
      }
    }
    out.rate_bits = entropy;
    out.lagrangian =
        distortion + config.lambda * entropy * total_weight;
  }
  out.model.centroids = std::move(codebook);
  out.model.weights = std::move(weights);
  out.model.sse = out.distortion;
  out.model.mse_per_point =
      total_weight > 0.0 ? out.distortion / total_weight : 0.0;
  out.model.iterations = iter;
  out.model.converged = iter < config.max_iterations;
  out.effective_k = out.model.k();
  out.iterations = iter;
  return out;
}

Result<EcvqResult> FitEcvq(const Dataset& data, const EcvqConfig& config) {
  return FitEcvq(WeightedDataset::FromUnweighted(data), config);
}

}  // namespace pmkm
