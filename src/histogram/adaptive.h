// Adaptive-k partial/merge clustering — the paper's §3.3 "Remarks"
// realized: "ECVQ-based algorithms do not fix the parameter k at the
// beginning of the k-means computation, but define a maximum k, and use a
// penalizing function ... This allows to find an optimal k for a partition
// on the fly."
//
// Each partition is quantized with ECVQ (max_k codewords, rate penalty λ),
// so small or simple partitions emit few weighted centroids and rich ones
// emit many; the weighted centroids then flow through the ordinary merge
// k-means. Weighted centroids make the merge agnostic to the per-partition
// k, exactly as the paper anticipates ("Still, weighted centroids can be
// used in the merge step").

#ifndef PMKM_HISTOGRAM_ADAPTIVE_H_
#define PMKM_HISTOGRAM_ADAPTIVE_H_

#include <vector>

#include "cluster/merge.h"
#include "histogram/ecvq.h"

namespace pmkm {

struct AdaptivePartialMergeConfig {
  /// Per-partition ECVQ (max_k is the paper's "maximum k").
  EcvqConfig partial;

  /// Final merge. merge.k = 0 (the default here) adopts the largest
  /// per-partition effective k — a fully data-driven final k.
  MergeKMeansConfig merge = AdoptEffectiveK();

  /// A merge config whose k defers to the adaptive effective k.
  static MergeKMeansConfig AdoptEffectiveK() {
    MergeKMeansConfig m;
    m.k = 0;
    return m;
  }

  size_t num_partitions = 10;
  uint64_t seed = 99;

  Status Validate() const;
};

struct AdaptivePartialMergeResult {
  ClusteringModel model;
  std::vector<size_t> partition_effective_k;  // adaptive k per partition
  std::vector<double> partition_rate_bits;    // entropy per partition
  size_t pooled_centroids = 0;
  size_t final_k = 0;
};

class AdaptivePartialMergeKMeans {
 public:
  explicit AdaptivePartialMergeKMeans(AdaptivePartialMergeConfig config)
      : config_(std::move(config)) {}

  const AdaptivePartialMergeConfig& config() const { return config_; }

  /// Random-splits `cell` into num_partitions chunks and runs the
  /// adaptive pipeline.
  Result<AdaptivePartialMergeResult> Run(const Dataset& cell) const;

  /// Runs over pre-built partitions.
  Result<AdaptivePartialMergeResult> RunChunks(
      const std::vector<Dataset>& chunks) const;

 private:
  AdaptivePartialMergeConfig config_;
};

}  // namespace pmkm

#endif  // PMKM_HISTOGRAM_ADAPTIVE_H_
