// Deterministic fault injection for resilience testing.
//
// Code under test declares named fault sites (`PMKM_FAULT_POINT("io.read")`)
// at the places where the real world can fail. Tests, the PMKM_FAULTS
// environment variable, or CLI flags arm those sites to fail
// probabilistically or on the Nth hit. Every probabilistic decision draws
// from a per-site Rng seeded at arm time, so a failing run reproduces
// exactly from its seed.
//
// The disarmed fast path is a single relaxed atomic load — fault points are
// compiled into release builds and cost nothing while no fault is armed.
//
// Spec-string grammar (PMKM_FAULTS and --faults):
//   site:key=value[,key=value...][;site:...]
// keys: p (probability per hit), n (fail exactly the Nth hit, 1-based),
//       perm (with n: fail every hit >= n), max (cap on injected failures),
//       stall_ms (stall fault instead of an error), crash (kill the whole
//       process with SIGKILL instead of returning an error — the
//       crash-recovery sweeps die at exact, reproducible points), seed,
//       code (io|internal|notfound|cancelled|deadline), msg.
// Example: PMKM_FAULTS="io.read:p=0.05,seed=7;op.partial:n=3"
//          PMKM_FAULTS="checkpoint.append:n=2,crash=1"

#ifndef PMKM_COMMON_FAULT_H_
#define PMKM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/annotations.h"
#include "common/rng.h"
#include "common/status.h"

namespace pmkm {

/// How an armed fault site misbehaves.
struct FaultSpec {
  /// Probability of failing each hit (ignored when nth > 0).
  double probability = 0.0;

  /// Fail exactly the nth hit (1-based); with `permanent`, every hit >= n.
  uint64_t nth = 0;
  bool permanent = false;

  /// Stop injecting after this many failures; 0 = unlimited.
  uint64_t max_failures = 0;

  /// If > 0 this is a stall fault: StallMs() reports this duration on the
  /// hits selected above and Hit() never fails for this site.
  uint64_t stall_ms = 0;

  /// Crash fault: when the site fires, the process raises SIGKILL instead
  /// of returning an error — simulating sudden process death (power loss,
  /// OOM-kill) at a deterministic point for crash-recovery testing.
  bool crash = false;

  uint64_t seed = 1;
  StatusCode code = StatusCode::kIOError;
  std::string message;  // default: "injected fault at <site>"
};

/// Process-wide registry of armed fault sites. Thread-safe.
class FaultRegistry {
 public:
  /// The process singleton. Arms sites from $PMKM_FAULTS on first use.
  static FaultRegistry& Global();

  void Arm(const std::string& site, FaultSpec spec) PMKM_EXCLUDES(mu_);
  void Disarm(const std::string& site) PMKM_EXCLUDES(mu_);

  /// Disarms every site and zeroes all counters.
  void Reset() PMKM_EXCLUDES(mu_);

  /// Parses the spec-string grammar above and arms each site.
  Status ArmFromString(const std::string& spec) PMKM_EXCLUDES(mu_);

  /// Records a hit at `site` and returns the injected error if the site is
  /// armed with an error fault that fires on this hit; OK otherwise.
  Status Hit(const std::string& site) PMKM_EXCLUDES(mu_);

  /// Records a hit at `site` and returns the stall duration if the site is
  /// armed with a stall fault that fires on this hit; 0 otherwise.
  uint64_t StallMs(const std::string& site) PMKM_EXCLUDES(mu_);

  uint64_t hits(const std::string& site) const PMKM_EXCLUDES(mu_);
  uint64_t failures(const std::string& site) const PMKM_EXCLUDES(mu_);

 private:
  FaultRegistry() = default;

  struct ArmedSite {
    FaultSpec spec;
    Rng rng{1};
    uint64_t hits = 0;
    uint64_t failures = 0;
  };

  // True if this hit (already counted in *site) should misbehave. `site`
  // points into sites_, so the registry lock must be held.
  bool Fires(ArmedSite* site) PMKM_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, ArmedSite> sites_ PMKM_GUARDED_BY(mu_);
  // Fast disarmed-path check; the authoritative site table stays under mu_.
  std::atomic<int> armed_count_{0};
};

}  // namespace pmkm

/// Declares a fault site inside a function returning Status or Result<T>:
/// propagates the injected error when the site fires.
#define PMKM_FAULT_POINT(site)                                       \
  do {                                                               \
    ::pmkm::Status _fault_st =                                       \
        ::pmkm::FaultRegistry::Global().Hit(site);                   \
    if (!_fault_st.ok()) return _fault_st;                           \
  } while (false)

#endif  // PMKM_COMMON_FAULT_H_
