// Minimal leveled logging plus CHECK macros.
//
// Logging is for the bench harnesses and examples; library code logs only at
// kWarning and above. PMKM_CHECK* are for programmer-error invariants that
// must hold regardless of build type (they are not compiled out).

#ifndef PMKM_COMMON_LOGGING_H_
#define PMKM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pmkm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pmkm

#define PMKM_LOG(level)                                              \
  ::pmkm::internal::LogMessage(::pmkm::LogLevel::k##level, __FILE__, \
                               __LINE__)

#define PMKM_CHECK(cond)                                      \
  if (!(cond))                                                \
  PMKM_LOG(Fatal) << "Check failed: " #cond " "

#define PMKM_CHECK_OK(expr)                                   \
  do {                                                        \
    ::pmkm::Status _st = (expr);                              \
    if (!_st.ok())                                            \
      PMKM_LOG(Fatal) << "Check failed (status): "            \
                      << _st.ToString();                      \
  } while (false)

#define PMKM_DCHECK(cond) PMKM_CHECK(cond)

#endif  // PMKM_COMMON_LOGGING_H_
