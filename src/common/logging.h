// Leveled, structured logging plus CHECK macros.
//
// Every line carries a UTC timestamp, level, source location and (when
// set) the per-run id that also tags metrics/trace/checkpoint artifacts.
// Two wire formats, switchable at runtime (`pmkm_cluster
// --log_format=json`):
//
//   text:  [WARN 2026-08-08T12:00:01.234Z ops.cc:217 run=1f2e...] msg
//   json:  {"ts":"...","level":"WARN","src":"ops.cc:217",
//           "run_id":"1f2e...","msg":"..."}
//
// Library code logs only at kWarning and above. Hot-path warnings go
// through PMKM_LOG_RATELIMITED(level, per_sec): a per-call-site token
// bucket that drops excess lines (cheaply — stream arguments are not
// evaluated for dropped lines) and prefixes the next emitted line with
// how many were suppressed. PMKM_CHECK* are for programmer-error
// invariants that must hold regardless of build type (they are not
// compiled out).

#ifndef PMKM_COMMON_LOGGING_H_
#define PMKM_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace pmkm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

enum class LogFormat : int {
  kText = 0,
  kJson = 1,
};

/// Global wire format for the stderr sink. Default: kText.
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Parses "text" | "json".
bool ParseLogFormat(const std::string& name, LogFormat* out);

/// Tags every subsequent log line with the run id (empty = untagged).
/// The same id should tag the metrics registry, trace and checkpoint
/// artifacts of the run (PipelineBuilder::WithRunId wires all of them).
void SetLogRunId(const std::string& run_id);
std::string GetLogRunId();

namespace internal {

/// "2026-08-08T12:00:01.234Z" (UTC) for a unix-epoch millisecond count.
std::string FormatLogTimestamp(int64_t unix_millis);

/// Renders one complete log line (no trailing newline) in the given
/// format. Pure function — the unit under test for both wire formats.
std::string RenderLogLine(LogLevel level, const char* file_base, int line,
                          const std::string& msg, LogFormat format,
                          const std::string& run_id, int64_t unix_millis);

/// Lazy token bucket for per-call-site log rate limiting. Lock-free: the
/// state is one atomic "next token available at" timestamp, allowed to
/// lag `burst` tokens behind now.
class LogTokenBucket {
 public:
  static constexpr uint64_t kDenied = ~uint64_t{0};

  explicit LogTokenBucket(double per_second, double burst = 5.0);

  /// Returns kDenied when the line should be dropped; otherwise the
  /// number of lines dropped since the last emitted one.
  uint64_t Acquire();
  uint64_t AcquireAt(int64_t now_micros);

 private:
  int64_t cost_micros_;   // micros per token
  int64_t burst_micros_;  // how far available_at_ may lag behind now
  std::atomic<int64_t> available_at_{0};
  std::atomic<uint64_t> suppressed_{0};
};

/// "" when nothing was suppressed, "(suppressed N similar lines) "
/// otherwise — prefixed to the first line after a rate-limit gap.
std::string SuppressedTag(uint64_t suppressed);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  const char* file_base_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pmkm

#define PMKM_LOG(level)                                              \
  ::pmkm::internal::LogMessage(::pmkm::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Rate-limited logging for hot paths: at most `per_sec` lines per second
/// per call site (small burst tolerated). Dropped lines cost one atomic
/// CAS; their stream arguments are not evaluated.
#define PMKM_LOG_RATELIMITED(level, per_sec)                           \
  for (uint64_t pmkm_rl_sup = ([]() -> uint64_t {                      \
         static ::pmkm::internal::LogTokenBucket pmkm_rl_bucket(       \
             per_sec);                                                 \
         return pmkm_rl_bucket.Acquire();                              \
       })();                                                           \
       pmkm_rl_sup != ::pmkm::internal::LogTokenBucket::kDenied;       \
       pmkm_rl_sup = ::pmkm::internal::LogTokenBucket::kDenied)        \
  PMKM_LOG(level) << ::pmkm::internal::SuppressedTag(pmkm_rl_sup)

#define PMKM_CHECK(cond)                                      \
  if (!(cond))                                                \
  PMKM_LOG(Fatal) << "Check failed: " #cond " "

#define PMKM_CHECK_OK(expr)                                   \
  do {                                                        \
    ::pmkm::Status _st = (expr);                              \
    if (!_st.ok())                                            \
      PMKM_LOG(Fatal) << "Check failed (status): "            \
                      << _st.ToString();                      \
  } while (false)

#define PMKM_DCHECK(cond) PMKM_CHECK(cond)

#endif  // PMKM_COMMON_LOGGING_H_
