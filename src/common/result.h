// Result<T>: value-or-Status, the return type of fallible constructors and
// factories throughout pmkm (Arrow-style).

#ifndef PMKM_COMMON_RESULT_H_
#define PMKM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace pmkm {

/// Holds either a successfully produced T or the Status explaining why it
/// could not be produced. A Result never holds an OK status without a value.
///
/// [[nodiscard]]: discarding a Result loses both the value and the error;
/// the compiler rejects it (-Werror=unused-result) unless explicitly cast
/// to void with a justification comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// is a programming error and is reported as an internal error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The error of a failed Result; must not be called on an OK Result
  /// (CHECK-fails with context).
  const Status& error() const {
    if (ok()) {
      PMKM_LOG(Fatal) << "Result::error() called on an OK Result";
    }
    return std::get<Status>(repr_);
  }

  /// Value accessors; must not be called on a failed Result (aborts).
  const T& value() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    DieIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or dies with the error message.
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      // CHECK-style fatal log: carries the status message and the
      // file/line of this frame instead of a bare abort.
      PMKM_LOG(Fatal) << "Result accessed with error: "
                      << std::get<Status>(repr_).ToString();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace pmkm

/// Evaluates an expression yielding Result<T>; on failure propagates the
/// status, on success assigns the value to `lhs`.
#define PMKM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define PMKM_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define PMKM_ASSIGN_OR_RETURN_NAME(a, b) PMKM_ASSIGN_OR_RETURN_CAT(a, b)

#define PMKM_ASSIGN_OR_RETURN(lhs, expr)                                 \
  PMKM_ASSIGN_OR_RETURN_IMPL(                                            \
      PMKM_ASSIGN_OR_RETURN_NAME(_pmkm_result_, __COUNTER__), lhs, expr)

#endif  // PMKM_COMMON_RESULT_H_
