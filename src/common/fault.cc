#include "common/fault.h"

#include <csignal>
#include <cstdlib>

#include "common/logging.h"

namespace pmkm {

namespace {

Status ParseCode(const std::string& value, StatusCode* out) {
  if (value == "io") {
    *out = StatusCode::kIOError;
  } else if (value == "internal") {
    *out = StatusCode::kInternal;
  } else if (value == "notfound") {
    *out = StatusCode::kNotFound;
  } else if (value == "cancelled") {
    *out = StatusCode::kCancelled;
  } else if (value == "deadline") {
    *out = StatusCode::kDeadlineExceeded;
  } else {
    return Status::InvalidArgument("unknown fault code: " + value);
  }
  return Status::OK();
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = [] {
    // Intentionally leaked process singleton (never destroyed, so fault
    // points stay usable during static destruction).
    auto* r = new FaultRegistry();  // pmkm-lint: allow(naked-new)
    if (const char* env = std::getenv("PMKM_FAULTS");
        env != nullptr && env[0] != '\0') {
      const Status st = r->ArmFromString(env);
      if (!st.ok()) {
        PMKM_LOG(Warning) << "ignoring invalid PMKM_FAULTS: " << st;
      }
    }
    return r;
  }();
  return *registry;
}

void FaultRegistry::Arm(const std::string& site, FaultSpec spec) {
  MutexLock lock(mu_);
  ArmedSite armed;
  armed.rng.Reseed(spec.seed);
  armed.spec = std::move(spec);
  const bool inserted = sites_.insert_or_assign(site, std::move(armed)).second;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  if (sites_.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Reset() {
  MutexLock lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

Status FaultRegistry::ArmFromString(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("fault spec entry needs 'site:...': " +
                                     entry);
    }
    const std::string site = entry.substr(0, colon);
    FaultSpec fault;
    size_t kpos = colon + 1;
    while (kpos <= entry.size()) {
      size_t kend = entry.find(',', kpos);
      if (kend == std::string::npos) kend = entry.size();
      const std::string kv = entry.substr(kpos, kend - kpos);
      kpos = kend + 1;
      if (kv.empty()) continue;
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("fault spec key needs '=': " + kv);
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      try {
        if (key == "p") {
          fault.probability = std::stod(value);
        } else if (key == "n") {
          fault.nth = std::stoull(value);
        } else if (key == "perm") {
          fault.permanent = value != "0" && value != "false";
        } else if (key == "max") {
          fault.max_failures = std::stoull(value);
        } else if (key == "stall_ms") {
          fault.stall_ms = std::stoull(value);
        } else if (key == "crash") {
          fault.crash = value != "0" && value != "false";
        } else if (key == "seed") {
          fault.seed = std::stoull(value);
        } else if (key == "code") {
          PMKM_RETURN_NOT_OK(ParseCode(value, &fault.code));
        } else if (key == "msg") {
          fault.message = value;
        } else {
          return Status::InvalidArgument("unknown fault spec key: " + key);
        }
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad fault spec value: " + kv);
      }
    }
    Arm(site, std::move(fault));
  }
  return Status::OK();
}

bool FaultRegistry::Fires(ArmedSite* site) {  // requires mu_ (see header)
  const FaultSpec& spec = site->spec;
  bool fire = false;
  if (spec.nth > 0) {
    fire = spec.permanent ? site->hits >= spec.nth : site->hits == spec.nth;
  } else if (spec.probability > 0.0) {
    fire = site->rng.UniformDouble() < spec.probability;
  }
  if (fire && spec.max_failures > 0 &&
      site->failures >= spec.max_failures) {
    fire = false;
  }
  if (fire) ++site->failures;
  return fire;
}

Status FaultRegistry::Hit(const std::string& site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  // Fault sites mark I/O and operator boundaries — exactly the places
  // whose relative order matters under failure injection, so they double
  // as interleaving points for the schedule explorer.
  PMKM_SCHED_POINT("fault.hit");
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  ArmedSite& armed = it->second;
  ++armed.hits;
  if (armed.spec.stall_ms > 0) return Status::OK();  // handled by StallMs
  if (!Fires(&armed)) return Status::OK();
  if (armed.spec.crash) {
    // Sudden-death fault: die exactly here, as SIGKILL would. No cleanup,
    // no flushing — the crash-recovery machinery must cope with whatever
    // is (not) on disk at this instant.
    (void)::raise(SIGKILL);
  }
  return Status(armed.spec.code,
                armed.spec.message.empty()
                    ? "injected fault at " + site
                    : armed.spec.message);
}

uint64_t FaultRegistry::StallMs(const std::string& site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return 0;
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return 0;
  ArmedSite& armed = it->second;
  if (armed.spec.stall_ms == 0) return 0;
  ++armed.hits;
  return Fires(&armed) ? armed.spec.stall_ms : 0;
}

uint64_t FaultRegistry::hits(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::failures(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.failures;
}

}  // namespace pmkm
