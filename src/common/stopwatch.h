// Wall-clock stopwatch used by the experiment harnesses to report the
// paper's t_partial / t_merge / overall-time columns.

#ifndef PMKM_COMMON_STOPWATCH_H_
#define PMKM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pmkm {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_STOPWATCH_H_
