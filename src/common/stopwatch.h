// Stopwatches for the experiment harnesses and operator stats: wall-clock
// (the paper's t_partial / t_merge / overall-time columns) and per-thread
// CPU time (separates compute from queue-wait in EXPLAIN ANALYZE).

#ifndef PMKM_COMMON_STOPWATCH_H_
#define PMKM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace pmkm {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU-time stopwatch for the calling thread; starts on construction.
/// Time advances only while this thread is scheduled on a core, so
/// (wall − cpu) of an operator run is its blocked/preempted time.
///
/// Must be constructed and read on the same thread to be meaningful.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    // Portable fallback: process CPU time (over-counts under concurrency
    // but keeps the field monotonic and populated).
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

  double start_;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_STOPWATCH_H_
