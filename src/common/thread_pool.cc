#include "common/thread_pool.h"

#include <algorithm>

namespace pmkm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ is set and the queue is drained.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace pmkm
