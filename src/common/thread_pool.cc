#include "common/thread_pool.h"

#include <algorithm>

namespace pmkm {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); }, "pool-worker");
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) {
        // shutdown_ is set and the queue is drained.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w.Joinable()) w.Join();
  }
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace pmkm
