// Retry with exponential backoff: the library-wide policy for absorbing
// transient failures (flaky I/O, injected faults) instead of aborting a
// multi-hour streaming run.
//
// Backoff jitter is drawn from a deterministically seeded Rng so a retried
// run is exactly reproducible: identical policy + seed tag => identical
// backoff sequence. Tests set initial_backoff_ms = 0 to retry without
// sleeping.

#ifndef PMKM_COMMON_RETRY_H_
#define PMKM_COMMON_RETRY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace pmkm {

/// True for the status codes worth retrying by default: transient I/O
/// failures and deadline misses. Invalid arguments, internal invariant
/// violations and cancellations are never transient.
bool IsRetryableStatus(const Status& status);

/// Tunable retry behavior. All durations in milliseconds.
struct RetryPolicy {
  /// Total attempts including the first one (>= 1). 1 = no retries.
  size_t max_attempts = 3;

  /// Backoff before retry r (1-based) is
  ///   min(initial_backoff_ms * multiplier^(r-1), max_backoff_ms)
  /// scaled by a jitter factor drawn uniformly from [1-jitter, 1+jitter].
  uint64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ms = 2000;
  double jitter = 0.25;

  /// Overall deadline across all attempts and backoffs; 0 = unbounded.
  uint64_t overall_deadline_ms = 0;

  /// Seed for the jitter Rng (combined with the per-call seed tag).
  uint64_t seed = 0x7e57ab1eULL;

  /// Which failures to retry; null = IsRetryableStatus.
  bool (*retryable)(const Status&) = nullptr;
};

/// Tracks one retry loop: attempt count, elapsed time, jittered backoff.
class Retrier {
 public:
  /// `seed_tag` decorrelates jitter across call sites sharing a policy.
  explicit Retrier(const RetryPolicy& policy, uint64_t seed_tag = 0);

  /// Called after a failed attempt. If the failure is retryable and budget
  /// (attempts + deadline) remains, sleeps the backoff and returns true;
  /// otherwise returns false and the caller should give up.
  bool AllowRetry(const Status& status);

  /// Retries granted so far (== failed attempts absorbed).
  size_t retries() const { return retries_; }

  /// Like AllowRetry but records the backoff into `delays_ms` instead of
  /// sleeping — lets tests verify the jittered sequence without waiting.
  bool AllowRetryForTest(const Status& status,
                         std::vector<uint64_t>* delays_ms);

 private:
  bool AllowRetryImpl(const Status& status,
                      std::vector<uint64_t>* delays_ms);
  uint64_t NextBackoffMs();

  RetryPolicy policy_;
  Rng rng_;
  size_t retries_ = 0;
  int64_t deadline_us_ = 0;  // absolute, 0 = none
};

namespace internal {
inline const Status& AsStatus(const Status& s) { return s; }
template <typename T>
inline Status AsStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

/// Invokes `fn` (returning Status or Result<T>) until it succeeds, the
/// policy's budget is exhausted, or a non-retryable failure occurs. Returns
/// the last outcome. `retries_used`, if non-null, receives the number of
/// retries consumed.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, uint64_t seed_tag, Fn&& fn,
               size_t* retries_used = nullptr) -> decltype(fn()) {
  Retrier retrier(policy, seed_tag);
  for (;;) {
    auto outcome = fn();
    if (outcome.ok() || !retrier.AllowRetry(internal::AsStatus(outcome))) {
      if (retries_used != nullptr) *retries_used = retrier.retries();
      return outcome;
    }
  }
}

}  // namespace pmkm

#endif  // PMKM_COMMON_RETRY_H_
