// Compile-time concurrency checking: Clang thread-safety-analysis macros
// plus the annotated synchronization primitives (Mutex, MutexLock, CondVar)
// every concurrent structure in pmkm builds on.
//
// Under Clang with -Wthread-safety the analysis proves, per translation
// unit, that every field marked PMKM_GUARDED_BY(mu) is only touched while
// `mu` is held and that every function marked PMKM_REQUIRES(mu) is only
// called with `mu` held. The project treats these findings as errors
// (-Werror=thread-safety, see scripts/run_static_analysis.sh), so a
// locking bug in annotated code does not compile. Under GCC (which has no
// thread-safety analysis) the macros expand to nothing and the wrappers
// compile to the bare std primitives.
//
// Conventions (DESIGN.md §11):
//   - Shared mutable state is a private field annotated
//     PMKM_GUARDED_BY(mu_); the mutex is declared *before* the data it
//     guards.
//   - Private helpers that assume the lock carry PMKM_REQUIRES(mu_) and a
//     "Locked" name suffix.
//   - Public methods that take the lock are annotated PMKM_EXCLUDES(mu_)
//     so the analysis rejects self-deadlocking re-entry.
//   - Opting out requires PMKM_NO_THREAD_SAFETY_ANALYSIS plus a comment
//     justifying why the analysis cannot see the invariant.

#ifndef PMKM_COMMON_ANNOTATIONS_H_
#define PMKM_COMMON_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// PMKM_SCHEDCHECK (CMake option of the same name) reroutes every operation
// on these wrappers through the concurrency-analysis hooks in
// common/schedcheck/hooks.h — the runtime lock-order witness and the
// deterministic schedule explorer (DESIGN.md §12). The definition is
// global (add_compile_definitions) so every TU agrees on the wrapper
// layout; when it is off, the wrappers compile to the bare std primitives
// and the analysis layer costs nothing.
#if defined(PMKM_SCHEDCHECK)
#include "common/schedcheck/hooks.h"
#endif

#if defined(__clang__) && (!defined(SWIG))
#define PMKM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PMKM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define PMKM_CAPABILITY(x) PMKM_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime acquires/releases a capability.
#define PMKM_SCOPED_CAPABILITY PMKM_THREAD_ANNOTATION(scoped_lockable)

/// Field is only read/written while holding the given mutex(es).
#define PMKM_GUARDED_BY(x) PMKM_THREAD_ANNOTATION(guarded_by(x))

/// Pointee is only dereferenced while holding the given mutex(es).
#define PMKM_PT_GUARDED_BY(x) PMKM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the mutex(es) exclusively when calling.
#define PMKM_REQUIRES(...) \
  PMKM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the mutex(es) at least shared when calling.
#define PMKM_REQUIRES_SHARED(...) \
  PMKM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and holds them on return.
#define PMKM_ACQUIRE(...) \
  PMKM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) held on entry.
#define PMKM_RELEASE(...) \
  PMKM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the mutex(es) iff it returns the given value.
#define PMKM_TRY_ACQUIRE(...) \
  PMKM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT already hold the mutex(es) (deadlock prevention).
#define PMKM_EXCLUDES(...) PMKM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at analysis time that the capability is held (runtime no-op).
#define PMKM_ASSERT_CAPABILITY(x) \
  PMKM_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define PMKM_RETURN_CAPABILITY(x) PMKM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the invariant is invisible to the
/// analysis (e.g. lock ownership transferred through std::adopt_lock).
#define PMKM_NO_THREAD_SAFETY_ANALYSIS \
  PMKM_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Execution-context annotations, verified whole-program by
// tools/pmkm_ctxcheck.py (DESIGN.md §16). Under Clang they emit
// __attribute__((annotate(...))) so the roots are also visible in the
// AST/IR; under GCC they expand to nothing. The analyzer itself keys on
// the macro names at the declaration or definition, so the checks run
// identically under either toolchain.

#if defined(__clang__) && (!defined(SWIG))
#define PMKM_CTX_ANNOTATION(x) __attribute__((annotate(x)))
#else
#define PMKM_CTX_ANNOTATION(x)  // no-op outside Clang
#endif

/// Root of an async-signal context (SIGPROF handler, crash paths).
/// Everything transitively reachable must stay on the POSIX
/// async-signal-safe allowlist: no allocation, locks, stdio, or calls
/// off the allowlist (pmkm_ctxcheck rule `signal-safe`).
#define PMKM_SIGNAL_SAFE PMKM_CTX_ANNOTATION("pmkm_signal_safe")

/// Root of a wait-free hot path (metric Record/Increment, kernel
/// AssignBlock). Must never allocate, lock, block, or throw
/// (pmkm_ctxcheck rule `wait-free`).
#define PMKM_WAITFREE PMKM_CTX_ANNOTATION("pmkm_waitfree")

/// Function that may be called while any pmkm::Mutex is held: nothing it
/// reaches may issue a blocking syscall or unbounded wait. Functions
/// marked PMKM_REQUIRES(...) or named *Locked are checked implicitly
/// (pmkm_ctxcheck rule `no-block-under-lock`).
#define PMKM_NO_BLOCK_UNDER_LOCK PMKM_CTX_ANNOTATION("pmkm_no_block_under_lock")

/// Handler running on a bounded pool (debug server, serve sessions):
/// only timeout-bounded blocking primitives (CondVar::WaitFor,
/// SO_RCVTIMEO-bounded socket I/O) are allowed
/// (pmkm_ctxcheck rule `bounded-handler`).
#define PMKM_BOUNDED_HANDLER PMKM_CTX_ANNOTATION("pmkm_bounded_handler")

/// Root of an output-byte determinism contract, verified whole-program
/// by tools/pmkm_detcheck.py (DESIGN.md §17): model serialization
/// (SaveModel), checkpoint kPartialState/cell-complete encoders, serve
/// protocol encoders, and the kernel Assign/Accumulate hot path that
/// produces the numbers being serialized. Nothing reachable may iterate
/// a hash-ordered container into the output (rule `unordered-iter`),
/// read a wall clock or random source outside the sanctioned seed
/// plumbing in common/rng.h (rule `nondet-source`), or key ordering or
/// hashing on pointer values (rule `ptr-order`); each root's TU must be
/// compiled with -ffp-contract=off and without value-unsafe FP flags
/// (rule `fp-flags`). These are the static guarantees behind the
/// bitwise-model contracts: cross-ISA kernel parity (PR 3), resume
/// parity (PR 6), local-vs-remote parity (PR 8), and the
/// content-addressed cache keys of ROADMAP item 1.
#define PMKM_DETERMINISTIC PMKM_CTX_ANNOTATION("pmkm_deterministic")

namespace pmkm {

/// std::mutex with thread-safety-analysis capability annotations. Use with
/// MutexLock; fields it protects are declared PMKM_GUARDED_BY(mu_).
class PMKM_CAPABILITY("mutex") Mutex {
 public:
#if defined(PMKM_SCHEDCHECK)
  // The defaulted SourceSite captures the *construction* site, which keys
  // this mutex's lock class in the lock-order graph (all instances built
  // at one source line form one class, the lockdep model).
  explicit Mutex(
      schedcheck::SourceSite site = schedcheck::SourceSite::Current()) {
    schedcheck::OnMutexCreate(this, site);
  }
  ~Mutex() { schedcheck::OnMutexDestroy(this); }
#else
  Mutex() = default;
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(PMKM_SCHEDCHECK)
  // The defaulted SourceSite is the static acquisition site reported in
  // lock-order-inversion witnesses.
  void Lock(schedcheck::SourceSite site = schedcheck::SourceSite::Current())
      PMKM_ACQUIRE() {
    schedcheck::OnMutexLock(&mu_, this, site);
  }
  void Unlock() PMKM_RELEASE() { schedcheck::OnMutexUnlock(&mu_, this); }
  bool TryLock(schedcheck::SourceSite site = schedcheck::SourceSite::Current())
      PMKM_TRY_ACQUIRE(true) {
    return schedcheck::OnMutexTryLock(&mu_, this, site);
  }
#else
  void Lock() PMKM_ACQUIRE() { mu_.lock(); }
  void Unlock() PMKM_RELEASE() { mu_.unlock(); }
  bool TryLock() PMKM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

  /// Analysis-only assertion that the calling thread holds this mutex;
  /// compiles to nothing. Use in helpers reached only under the lock when
  /// restructuring to PMKM_REQUIRES is not possible.
  void AssertHeld() const PMKM_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard shaped, analysis-visible).
class PMKM_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(PMKM_SCHEDCHECK)
  explicit MutexLock(
      Mutex& mu, schedcheck::SourceSite site = schedcheck::SourceSite::Current())
      PMKM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(site);
  }
#else
  explicit MutexLock(Mutex& mu) PMKM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
#endif
  ~MutexLock() PMKM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Waits temporarily release the
/// mutex exactly like std::condition_variable; the analysis sees the lock
/// as continuously held across a Wait, which matches the invariant the
/// caller relies on (guarded state may only be touched between waits).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The mutex is released while blocked and
  /// re-acquired before returning.
  // Analysis disabled: ownership round-trips through std::adopt_lock /
  // release(), which the analysis cannot track; the lock is held on entry
  // and on exit, which is all callers observe.
  void Wait(Mutex& mu) PMKM_REQUIRES(mu) PMKM_NO_THREAD_SAFETY_ANALYSIS {
#if defined(PMKM_SCHEDCHECK)
    schedcheck::OnCondWait(&cv_, this, &mu.mu_, &mu);
#else
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
#endif
  }

  /// Blocks until `pred()` holds (spurious-wakeup safe). `pred` is always
  /// evaluated with the mutex held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) PMKM_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until notified or the duration elapses.
  // Analysis disabled: same std::adopt_lock round-trip as Wait above.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      PMKM_REQUIRES(mu) PMKM_NO_THREAD_SAFETY_ANALYSIS {
#if defined(PMKM_SCHEDCHECK)
    // Inside a scheduler episode the timeout becomes a scheduling choice
    // (no real time passes); outside one this is the plain timed wait.
    const bool timed_out = schedcheck::OnCondWaitFor(
        &cv_, this, &mu.mu_, &mu,
        std::chrono::duration_cast<std::chrono::nanoseconds>(dur));
    return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
#else
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
#endif
  }

#if defined(PMKM_SCHEDCHECK)
  void NotifyOne() { schedcheck::OnCondNotifyOne(&cv_, this); }
  void NotifyAll() { schedcheck::OnCondNotifyAll(&cv_, this); }
#else
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }
#endif

 private:
  std::condition_variable cv_;
};

}  // namespace pmkm

/// Marks a non-lock interleaving point for the deterministic schedule
/// explorer (queue push/pop entry, executor error paths, fault-registry
/// hits). Compiles to nothing unless the build defines PMKM_SCHEDCHECK;
/// inside a scheduler episode it is a decision point, otherwise a no-op.
#if defined(PMKM_SCHEDCHECK)
#define PMKM_SCHED_POINT(label) ::pmkm::schedcheck::SchedPoint(label)
#else
#define PMKM_SCHED_POINT(label) ((void)0)
#endif

#endif  // PMKM_COMMON_ANNOTATIONS_H_
