// Instrumentation hooks for the concurrency-analysis layer (DESIGN.md §12).
//
// Every annotated synchronization primitive in pmkm funnels its operations
// through the functions declared here. Two independent analyses consume the
// stream of events:
//
//   1. The runtime lock-order witness (lock_graph.h): every acquire records
//      a lock-class edge; the first edge closing a cycle across distinct
//      lock classes fails fast with the witness chains of both sides.
//   2. The deterministic schedule explorer (scheduler.h): inside a test
//      episode, registered threads are serialized and interleaved under a
//      seeded strategy, so schedule-dependent bugs reproduce from a seed.
//
// Wiring is compile-time selectable: `pmkm::Mutex`/`pmkm::CondVar`
// (common/annotations.h) call these hooks only when the build defines
// PMKM_SCHEDCHECK (CMake option of the same name, OFF by default), so
// release builds pay nothing. The always-instrumented doubles in
// schedcheck/sync.h call them unconditionally — that is what lets the
// seeded-bug regression suites run in every build.
//
// This library is deliberately dependency-free (standard library only):
// pmkm_common links pmkm_schedcheck, so schedcheck cannot use PMKM_LOG,
// Status, or Rng without a cycle. Fatal diagnostics go to stderr.

#ifndef PMKM_COMMON_SCHEDCHECK_HOOKS_H_
#define PMKM_COMMON_SCHEDCHECK_HOOKS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>

namespace pmkm {
namespace schedcheck {

/// Static source position captured at a call site through default
/// arguments (the std::source_location trick, spelled with builtins so the
/// struct stays an aggregate and works identically under GCC and Clang).
struct SourceSite {
  const char* file = "?";
  int line = 0;
  const char* function = "?";

  static constexpr SourceSite Current(const char* f = __builtin_FILE(),
                                      int l = __builtin_LINE(),
                                      const char* fn = __builtin_FUNCTION()) {
    return SourceSite{f, l, fn};
  }

  /// "file.cc:123" with the directory prefix dropped.
  std::string ToString() const;
};

/// True when this build compiled common/annotations.h with the hooks wired
/// in (PMKM_SCHEDCHECK=ON), i.e. when the *production* Mutex/CondVar emit
/// events. The schedcheck doubles emit events in every build regardless.
bool HooksEnabledInBuild();

// --- Mutex events -----------------------------------------------------------
// `id` is the stable identity of the wrapper object; `real` is the
// underlying std primitive the hook operates on. Create/Destroy bracket the
// wrapper's lifetime and key its lock class by construction site.

void OnMutexCreate(const void* id, SourceSite site);
void OnMutexDestroy(const void* id);

/// Blocking acquire: schedule point + lock-order record + the real lock.
void OnMutexLock(std::mutex* real, const void* id, SourceSite site);

/// Non-blocking acquire. No lock-order edges (a try-lock cannot deadlock),
/// but a successful try-lock joins the held set so later acquires see it.
bool OnMutexTryLock(std::mutex* real, const void* id, SourceSite site);

void OnMutexUnlock(std::mutex* real, const void* id);

// --- Condition-variable events ---------------------------------------------
// The caller holds (model and real) the paired mutex, exactly like
// std::condition_variable::wait. Inside a scheduler episode the wait is
// fully modeled — the real condvar is never slept on, which is what makes
// lost-wakeup and use-after-wait bugs reproducible from a seed.

void OnCondWait(std::condition_variable* cv, const void* cv_id,
                std::mutex* real_mu, const void* mu_id);

/// Returns true when the wait ended by timeout. Inside an episode the
/// timeout is a *scheduling choice* (the explorer may wake the waiter as
/// timed-out at any decision point), so both the signal and timeout paths
/// of the caller get explored without real time passing.
bool OnCondWaitFor(std::condition_variable* cv, const void* cv_id,
                   std::mutex* real_mu, const void* mu_id,
                   std::chrono::nanoseconds timeout);

void OnCondNotifyOne(std::condition_variable* cv, const void* cv_id);
void OnCondNotifyAll(std::condition_variable* cv, const void* cv_id);

// --- Explicit schedule points ----------------------------------------------

/// Marks a non-lock interleaving point (queue push/pop entry, executor
/// error paths, fault-registry hits). No-op outside a scheduler episode.
void SchedPoint(const char* label);

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_HOOKS_H_
