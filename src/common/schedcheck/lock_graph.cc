#include "common/schedcheck/lock_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pmkm {
namespace schedcheck {
namespace {

/// The thread's currently held locks, innermost last. Thread-local, so it
/// needs no synchronization; entries reference class ids owned by the
/// (leaked) global graph.
struct HeldLock {
  const void* id;
  int class_id;
  SourceSite site;
};

thread_local std::vector<HeldLock>* tls_held = nullptr;

std::vector<HeldLock>& HeldStack() {
  if (tls_held == nullptr) {
    // Leaked per-thread on purpose: worker threads may still release locks
    // during thread_local destruction, after a vector member would already
    // be gone. A few dozen bytes per thread, test builds only.
    tls_held = new std::vector<HeldLock>();  // pmkm-lint: allow(naked-new)
  }
  return *tls_held;
}

std::string BaseName(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string SiteKey(const SourceSite& site) {
  return BaseName(site.file) + ":" + std::to_string(site.line);
}

}  // namespace

std::string SourceSite::ToString() const {
  return BaseName(file) + ":" + std::to_string(line);
}

std::string CycleReport::ToString() const {
  std::ostringstream out;
  out << "lock-order inversion: a cycle of " << edges.size()
      << " edge(s) across distinct lock classes\n";
  size_t i = 0;
  for (const Edge& e : edges) {
    out << "  witness " << ++i << ": holding " << e.from_class
        << " (acquired at " << e.from_site << "), then acquired "
        << e.to_class << " at " << e.to_site << "\n"
        << "    held chain: " << e.held_chain << "\n";
  }
  out << "acquiring these locks in a fixed global order removes the cycle";
  return out.str();
}

LockGraph& LockGraph::Global() {
  static LockGraph* graph = [] {
    // Leaked singleton: statically-stored mutexes unregister at exit.
    auto* g = new LockGraph();  // pmkm-lint: allow(naked-new)
    if (const char* out = std::getenv("PMKM_LOCKGRAPH_OUT");
        out != nullptr && out[0] != '\0') {
      static std::string path = out;
      std::atexit([] {
        // Direct stderr/file IO: schedcheck sits below the logging layer
        // (pmkm_common links pmkm_schedcheck, not the other way around).
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(
              stderr, "schedcheck: cannot write lock graph to %s\n",
              path.c_str());
          return;
        }
        const std::string json = LockGraph::Global().ToJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
      });
    }
    return g;
  }();
  return *graph;
}

void LockGraph::OnCreate(const void* id, SourceSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  const int cls = [&] {
    const std::string key = SiteKey(site);
    auto it = class_by_site_.find(key);
    if (it != class_by_site_.end()) return it->second;
    const int fresh = static_cast<int>(classes_.size());
    classes_.push_back(LockClass{site, 0});
    class_by_site_.emplace(key, fresh);
    return fresh;
  }();
  ++classes_[static_cast<size_t>(cls)].instances;
  instance_class_[id] = cls;
}

void LockGraph::OnDestroy(const void* id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instance_class_.find(id);
  if (it == instance_class_.end()) return;
  --classes_[static_cast<size_t>(it->second)].instances;
  instance_class_.erase(it);
}

int LockGraph::ClassOfLocked(const void* id, SourceSite fallback_site) {
  auto it = instance_class_.find(id);
  if (it != instance_class_.end()) return it->second;
  // Unregistered mutex (created before the graph existed, or a bare hook
  // call): key a class by the acquisition site so the event is not lost.
  const std::string key = SiteKey(fallback_site);
  auto by_site = class_by_site_.find(key);
  if (by_site != class_by_site_.end()) {
    instance_class_[id] = by_site->second;
    return by_site->second;
  }
  const int fresh = static_cast<int>(classes_.size());
  classes_.push_back(LockClass{fallback_site, 1});
  class_by_site_.emplace(key, fresh);
  instance_class_[id] = fresh;
  return fresh;
}

void LockGraph::OnAcquire(const void* id, SourceSite site) {
  std::vector<HeldLock>& held = HeldStack();
  CycleReport report;
  bool cycle_found = false;
  CycleHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int cls = ClassOfLocked(id, site);
    for (const HeldLock& h : held) {
      const auto key = std::make_pair(h.class_id, cls);
      auto it = edges_.find(key);
      if (it != edges_.end()) {
        ++it->second.count;
        continue;
      }
      EdgeInfo info;
      info.from_site = h.site;
      info.to_site = site;
      info.count = 1;
      std::string chain;
      for (const HeldLock& c : held) {
        if (!chain.empty()) chain += " -> ";
        chain += SiteKey(classes_[static_cast<size_t>(c.class_id)].site);
        chain += " (locked at " + SiteKey(c.site) + ")";
      }
      info.held_chain = std::move(chain);
      edges_.emplace(key, std::move(info));
      if (h.class_id != cls && !cycle_found) {
        const auto cycle_edges = FindCycleLocked(h.class_id, cls);
        if (!cycle_edges.empty()) {
          report = BuildReportLocked(cycle_edges);
          cycle_found = true;
          handler = handler_;
        }
      }
    }
    held.push_back(HeldLock{id, ClassOfLocked(id, site), site});
  }
  if (cycle_found) {
    if (handler) {
      handler(report);
    } else {
      const std::string text = report.ToString();
      std::fprintf(
          stderr, "schedcheck FATAL: %s\n", text.c_str());
      std::abort();
    }
  }
}

void LockGraph::OnTryAcquire(const void* id, SourceSite site) {
  // A try-lock never blocks, so it adds no deadlock-relevant edge; it only
  // joins the held chain so subsequent blocking acquires see it.
  std::lock_guard<std::mutex> lock(mu_);
  HeldStack().push_back(HeldLock{id, ClassOfLocked(id, site), site});
}

void LockGraph::OnRelease(const void* id) {
  std::vector<HeldLock>& held = HeldStack();
  // Search from the innermost end: releases are usually LIFO but need not
  // be (hand-over-hand locking releases the outer lock first).
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->id == id) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void LockGraph::SetCycleHandler(CycleHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handler_ = std::move(handler);
}

std::string LockGraph::DescribeInstance(const void* id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instance_class_.find(id);
  if (it == instance_class_.end()) return "<unregistered mutex>";
  return "mutex class " +
         SiteKey(classes_[static_cast<size_t>(it->second)].site);
}

std::vector<std::pair<int, int>> LockGraph::FindCycleLocked(int from,
                                                            int to) const {
  // Tarjan's strongly-connected components over the class graph. The new
  // edge from→to closes a cycle iff both endpoints land in one SCC of
  // size ≥ 2 (distinct classes; same-class nesting is non-fatal).
  const int n = static_cast<int>(classes_.size());
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  for (const auto& [key, info] : edges_) {
    adj[static_cast<size_t>(key.first)].push_back(key.second);
  }
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> stack;
  std::vector<int> component(static_cast<size_t>(n), -1);
  int next_index = 0;
  int next_component = 0;

  // Iterative Tarjan (explicit frame stack: node + next-neighbor cursor).
  struct Frame {
    int v;
    size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<size_t>(root)] = lowlink[static_cast<size_t>(root)] =
        next_index++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto v = static_cast<size_t>(f.v);
      if (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge++];
        const auto wu = static_cast<size_t>(w);
        if (index[wu] == -1) {
          index[wu] = lowlink[wu] = next_index++;
          stack.push_back(w);
          on_stack[wu] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[wu]) {
          lowlink[v] = std::min(lowlink[v], index[wu]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            component[static_cast<size_t>(w)] = next_component;
            if (w == f.v) break;
          }
          ++next_component;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const auto parent = static_cast<size_t>(frames.back().v);
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  if (component[static_cast<size_t>(from)] !=
      component[static_cast<size_t>(to)]) {
    return {};
  }
  // Both endpoints in one SCC: report every intra-SCC edge (the full set of
  // orderings participating in the inversion).
  const int scc = component[static_cast<size_t>(from)];
  std::vector<std::pair<int, int>> cycle;
  for (const auto& [key, info] : edges_) {
    if (key.first != key.second &&
        component[static_cast<size_t>(key.first)] == scc &&
        component[static_cast<size_t>(key.second)] == scc) {
      cycle.push_back(key);
    }
  }
  return cycle;
}

CycleReport LockGraph::BuildReportLocked(
    const std::vector<std::pair<int, int>>& cycle_edges) const {
  CycleReport report;
  for (const auto& key : cycle_edges) {
    const EdgeInfo& info = edges_.at(key);
    CycleReport::Edge e;
    e.from_class = SiteKey(classes_[static_cast<size_t>(key.first)].site);
    e.to_class = SiteKey(classes_[static_cast<size_t>(key.second)].site);
    e.from_site = SiteKey(info.from_site);
    e.to_site = SiteKey(info.to_site);
    e.held_chain = info.held_chain;
    report.edges.push_back(std::move(e));
  }
  return report;
}

std::string LockGraph::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"classes\": [\n";
  for (size_t i = 0; i < classes_.size(); ++i) {
    out << "    {\"id\": " << i << ", \"site\": \""
        << JsonEscape(SiteKey(classes_[i].site)) << "\", \"function\": \""
        << JsonEscape(classes_[i].site.function) << "\", \"instances\": "
        << classes_[i].instances << "}"
        << (i + 1 < classes_.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"edges\": [\n";
  size_t i = 0;
  for (const auto& [key, info] : edges_) {
    out << "    {\"from\": " << key.first << ", \"to\": " << key.second
        << ", \"from_site\": \"" << JsonEscape(SiteKey(info.from_site))
        << "\", \"to_site\": \"" << JsonEscape(SiteKey(info.to_site))
        << "\", \"held_chain\": \"" << JsonEscape(info.held_chain)
        << "\", \"count\": " << info.count << ", \"same_class\": "
        << (key.first == key.second ? "true" : "false") << "}"
        << (++i < edges_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string LockGraph::ToDot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "digraph lockgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  for (size_t i = 0; i < classes_.size(); ++i) {
    out << "  n" << i << " [label=\"" << JsonEscape(SiteKey(classes_[i].site))
        << "\\n(" << classes_[i].instances << " live)\"];\n";
  }
  for (const auto& [key, info] : edges_) {
    out << "  n" << key.first << " -> n" << key.second << " [label=\""
        << JsonEscape(SiteKey(info.from_site)) << " -> "
        << JsonEscape(SiteKey(info.to_site)) << " x" << info.count << "\""
        << (key.first == key.second ? ", style=dashed" : "") << "];\n";
  }
  out << "}\n";
  return out.str();
}

void LockGraph::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  edges_.clear();
}

size_t LockGraph::edge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

size_t LockGraph::class_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_.size();
}

}  // namespace schedcheck
}  // namespace pmkm
