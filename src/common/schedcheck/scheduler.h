// Deterministic schedule explorer (DESIGN.md §12).
//
// A cooperative test scheduler in the CHESS/PCT tradition: inside an
// *episode*, registered threads are serialized — exactly one holds the run
// token at a time — and the token only changes hands at sync points (mutex
// acquire/release, condvar wait/notify, queue push/pop via
// PMKM_SCHED_POINT, thread join). Which thread runs next at each decision
// point is chosen by a seeded strategy, so a concurrency bug that needs a
// specific interleaving reproduces from its seed on every run, on any
// machine, without TSan luck.
//
// Synchronization inside an episode is *fully modeled*:
//   - Mutexes: ownership lives in the scheduler's model. The real
//     std::mutex is locked only when the model says it is free, which under
//     token serialization means the real lock is always uncontended among
//     registered threads — a registered thread never truly blocks.
//   - Condvars: registered waiters never sleep on the real
//     condition_variable; waiting/notifying is pure model state. Lost
//     wakeups therefore become *visible* (a notify with no modeled waiter
//     wakes nobody, and the resulting stuck state is reported as a
//     deadlock) instead of being papered over by timing.
//   - WaitFor timeouts are a scheduling choice: the explorer may wake a
//     timed waiter as "timed out" at any decision point, so both the
//     signal path and the timeout path get explored without real time
//     passing.
//
// When no thread can run (modeled deadlock) or the step budget is
// exhausted, the episode is *poisoned*: every blocked thread is released
// and the next blocking sync point throws EpisodePoisoned, unwinding the
// thread (schedcheck::Thread catches it; test bodies catch it in
// SweepSchedules). Deadlock is a returnable result, not a process abort.
//
// Threads not registered with the scheduler pass through the hooks to the
// real primitives untouched, so instrumented code keeps working when no
// episode is active (ordinary production runs with PMKM_SCHEDCHECK=ON).

#ifndef PMKM_COMMON_SCHEDCHECK_SCHEDULER_H_
#define PMKM_COMMON_SCHEDCHECK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pmkm {
namespace schedcheck {

inline constexpr uint64_t kInvalidTid = ~uint64_t{0};

struct ScheduleOptions {
  enum class Strategy {
    kRandom,      ///< uniform choice at every decision point
    kPCT,         ///< priority fuzzing: run the highest-priority runnable
                  ///  thread; occasionally demote it (PCT-style)
    kExhaustive,  ///< replay forced_choices, then always pick candidate 0
  };

  uint64_t seed = 1;
  Strategy strategy = Strategy::kRandom;
  /// Decision-point budget. Exceeding it poisons the episode (reported in
  /// ScheduleResult, not fatal); 4x the budget without draining aborts.
  int max_steps = 50000;
  /// Exhaustive mode: decision indices to force, in order, at the first
  /// decision points of the episode (the odometer prefix).
  std::vector<int> forced_choices;
};

struct ScheduleResult {
  bool deadlock = false;          ///< no runnable thread while some lived
  bool budget_exhausted = false;  ///< max_steps hit before completion
  int steps = 0;
  /// Per decision point (>1 candidate): the index chosen and the number of
  /// candidates. Together these drive exhaustive enumeration.
  std::vector<int> choices;
  std::vector<int> branching;
  std::string detail;             ///< human-readable blocked-thread dump
};

/// Thrown at sync points of a poisoned episode to unwind the thread.
/// schedcheck::Thread's trampoline and SweepSchedules catch it.
struct EpisodePoisoned {};

class Scheduler {
 public:
  static Scheduler& Global();

  // --- Episode lifecycle (called from the test main thread) -----------------

  /// Starts an episode and registers the calling thread as its main thread
  /// (tid 0, immediately active). One episode at a time per process.
  void BeginEpisode(const ScheduleOptions& options);

  /// Ends the episode (all spawned threads must have been joined) and
  /// returns its result. Unregisters the calling thread.
  ScheduleResult EndEpisode();

  /// True iff the calling thread is registered in the active episode —
  /// the gate every hook checks before routing an event here.
  bool OnScheduledThread() const;

  // --- Thread lifecycle (called by schedcheck::Thread) ----------------------

  /// Registers the calling thread; returns its tid, or kInvalidTid when no
  /// episode is active. Does not wait for the token.
  uint64_t RegisterCurrentThread(const char* name);
  /// Parks until the scheduler hands this thread the token.
  void WaitForTurn();
  /// Marks the calling thread finished, wakes joiners, passes the token on.
  void UnregisterCurrentThread();
  /// Modeled join: blocks (in the model) until `tid` finishes. Returns
  /// false when not in an episode (caller should plain-join).
  bool JoinThread(uint64_t tid);

  // --- Sync points (called by hooks.cc / sync.h on registered threads) ------

  void AcquireMutex(std::mutex* real, const void* id);
  bool TryAcquireMutex(std::mutex* real, const void* id);
  void ReleaseMutex(std::mutex* real, const void* id);
  void CondWait(const void* cv_id, std::mutex* real_mu, const void* mu_id);
  /// Returns true when the wait ended as a timeout (a scheduling choice).
  bool CondWaitFor(const void* cv_id, std::mutex* real_mu, const void* mu_id);
  void CondNotify(const void* cv_id, bool notify_all);
  void SchedPoint(const char* label);
  /// Bare interleaving point for test doubles (equivalent to SchedPoint).
  void Yield();

 private:
  Scheduler() = default;

  enum class State {
    kRunnable,
    kBlockedMutex,   // wait_obj = mutex id
    kWaitingCv,      // wait_obj = cv id
    kTimedWaitingCv, // wait_obj = cv id; schedulable as a timeout
    kBlockedJoin,    // wait_obj = joined thread's tid (as pointer value)
    kFinished,
  };

  struct ThreadRec {
    uint64_t tid = kInvalidTid;
    std::string name;
    State state = State::kRunnable;
    const void* wait_obj = nullptr;
    bool timed_out = false;   // how a cv wait ended
    int64_t priority = 0;     // PCT; demoted threads go negative
  };

  uint64_t TidOfCurrent() const;
  uint64_t NextRandLocked();
  /// Advances one step: picks the next active thread, wakes it, and blocks
  /// the caller until it gets the token back (or returns immediately when
  /// the caller is finished). Throws EpisodePoisoned when `may_throw` and
  /// the episode got poisoned — callers in destructor context pass false.
  void RescheduleLocked(std::unique_lock<std::mutex>& lk, uint64_t me,
                        bool may_throw);
  void PickNextLocked();
  void PoisonLocked(bool budget);
  std::string DescribeThreadsLocked() const;
  void WakeBlockedOnMutexLocked(const void* id);
  /// The modeled-mutex acquire loop shared by AcquireMutex and the
  /// reacquire half of CondWait*. Never throws; sets poison_held_ when
  /// granting during a poisoned drain.
  void AcquireMutexLoopLocked(std::unique_lock<std::mutex>& lk, uint64_t me,
                              std::mutex* real, const void* id);

  mutable std::mutex smu_;
  std::condition_variable scv_;

  bool episode_active_ = false;
  std::atomic<uint64_t> episode_gen_{0};
  bool poisoned_ = false;
  ScheduleOptions opts_;
  ScheduleResult result_;
  size_t forced_pos_ = 0;
  uint64_t rng_ = 0;
  uint64_t next_tid_ = 0;
  uint64_t active_tid_ = kInvalidTid;
  int64_t low_priority_ = -1;  // PCT demotion counter, strictly decreasing

  std::map<uint64_t, ThreadRec> threads_;
  std::map<const void*, uint64_t> mutex_owner_;
  /// (tid, mutex) pairs granted during a poisoned drain without taking the
  /// real lock; their release must skip the real unlock.
  std::set<std::pair<uint64_t, const void*>> poison_held_;
};

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_SCHEDULER_H_
