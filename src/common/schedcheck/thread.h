// Scheduler-aware thread wrapper.
//
// Drop-in for the std::thread subset pmkm uses (construct with a callable,
// Join, move). When the *spawning* thread is registered in an active
// scheduler episode, the new thread auto-registers with the scheduler and
// parks until it is handed the run token, so every thread the engine
// spawns during an episode is under deterministic control. Outside an
// episode it degenerates to a plain std::thread — which is why the
// Executor and ThreadPool use it unconditionally, in every build.

#ifndef PMKM_COMMON_SCHEDCHECK_THREAD_H_
#define PMKM_COMMON_SCHEDCHECK_THREAD_H_

#include <functional>
#include <thread>
#include <utility>

#include "common/schedcheck/scheduler.h"

namespace pmkm {
namespace schedcheck {

class Thread {
 public:
  Thread() = default;
  explicit Thread(std::function<void()> body, const char* name = "worker");
  ~Thread();

  Thread(Thread&& other) noexcept = default;
  Thread& operator=(Thread&& other) noexcept;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool Joinable() const { return thread_.joinable(); }
  void Join();

 private:
  std::thread thread_;
  uint64_t tid_ = kInvalidTid;  // scheduler tid; kInvalidTid = unscheduled
};

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_THREAD_H_
