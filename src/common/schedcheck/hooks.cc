#include "common/schedcheck/hooks.h"

#include "common/schedcheck/lock_graph.h"
#include "common/schedcheck/scheduler.h"

namespace pmkm {
namespace schedcheck {
namespace {

// Reentrancy guard: if analysis code itself touches an instrumented
// primitive (e.g. an instrumented logging mutex inside a cycle handler),
// the nested event must route straight to the real operation or it would
// re-enter the analysis locks and self-deadlock.
thread_local int in_hook = 0;

struct HookGuard {
  HookGuard() { ++in_hook; }
  ~HookGuard() { --in_hook; }
};

bool Reentrant() { return in_hook > 0; }

}  // namespace

bool HooksEnabledInBuild() {
#if defined(PMKM_SCHEDCHECK)
  return true;
#else
  return false;
#endif
}

void OnMutexCreate(const void* id, SourceSite site) {
  if (Reentrant()) return;
  HookGuard guard;
  LockGraph::Global().OnCreate(id, site);
}

void OnMutexDestroy(const void* id) {
  if (Reentrant()) return;
  HookGuard guard;
  LockGraph::Global().OnDestroy(id);
}

void OnMutexLock(std::mutex* real, const void* id, SourceSite site) {
  if (Reentrant()) {
    real->lock();
    return;
  }
  HookGuard guard;
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) {
    sched.AcquireMutex(real, id);  // may throw EpisodePoisoned (pre-grant)
  } else {
    real->lock();
  }
  // Recorded after the grant so a poison unwind leaves no stale held-stack
  // entry; the held→acquired edges are identical either way.
  LockGraph::Global().OnAcquire(id, site);
}

bool OnMutexTryLock(std::mutex* real, const void* id, SourceSite site) {
  if (Reentrant()) return real->try_lock();
  HookGuard guard;
  Scheduler& sched = Scheduler::Global();
  const bool acquired = sched.OnScheduledThread()
                            ? sched.TryAcquireMutex(real, id)
                            : real->try_lock();
  if (acquired) LockGraph::Global().OnTryAcquire(id, site);
  return acquired;
}

void OnMutexUnlock(std::mutex* real, const void* id) {
  if (Reentrant()) {
    real->unlock();
    return;
  }
  HookGuard guard;
  LockGraph::Global().OnRelease(id);
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) {
    sched.ReleaseMutex(real, id);
  } else {
    real->unlock();
  }
}

void OnCondWait(std::condition_variable* cv, const void* cv_id,
                std::mutex* real_mu, const void* mu_id) {
  if (Reentrant()) {
    std::unique_lock<std::mutex> lk(*real_mu, std::adopt_lock);
    cv->wait(lk);
    lk.release();
    return;
  }
  HookGuard guard;
  // The wait releases the mutex and reacquires it on wake; mirror that in
  // the held stack so edges recorded while parked stay truthful.
  LockGraph::Global().OnRelease(mu_id);
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) {
    sched.CondWait(cv_id, real_mu, mu_id);  // may throw EpisodePoisoned
  } else {
    std::unique_lock<std::mutex> lk(*real_mu, std::adopt_lock);
    cv->wait(lk);
    lk.release();
  }
  LockGraph::Global().OnAcquire(mu_id, SourceSite::Current());
}

bool OnCondWaitFor(std::condition_variable* cv, const void* cv_id,
                   std::mutex* real_mu, const void* mu_id,
                   std::chrono::nanoseconds timeout) {
  if (Reentrant()) {
    std::unique_lock<std::mutex> lk(*real_mu, std::adopt_lock);
    const auto status = cv->wait_for(lk, timeout);
    lk.release();
    return status == std::cv_status::timeout;
  }
  HookGuard guard;
  LockGraph::Global().OnRelease(mu_id);
  Scheduler& sched = Scheduler::Global();
  bool timed_out;
  if (sched.OnScheduledThread()) {
    // Inside an episode the timeout is a scheduling choice; no real time
    // passes and the real condvar is never slept on.
    timed_out = sched.CondWaitFor(cv_id, real_mu, mu_id);
  } else {
    std::unique_lock<std::mutex> lk(*real_mu, std::adopt_lock);
    timed_out = cv->wait_for(lk, timeout) == std::cv_status::timeout;
    lk.release();
  }
  LockGraph::Global().OnAcquire(mu_id, SourceSite::Current());
  return timed_out;
}

void OnCondNotifyOne(std::condition_variable* cv, const void* cv_id) {
  if (Reentrant()) {
    cv->notify_one();
    return;
  }
  HookGuard guard;
  // The real notify reaches unregistered waiters; modeled waiters never
  // sleep on the real condvar, so this cannot double-wake them.
  cv->notify_one();
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) sched.CondNotify(cv_id, /*notify_all=*/false);
}

void OnCondNotifyAll(std::condition_variable* cv, const void* cv_id) {
  if (Reentrant()) {
    cv->notify_all();
    return;
  }
  HookGuard guard;
  cv->notify_all();
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) sched.CondNotify(cv_id, /*notify_all=*/true);
}

void SchedPoint(const char* label) {
  if (Reentrant()) return;
  HookGuard guard;
  Scheduler& sched = Scheduler::Global();
  if (sched.OnScheduledThread()) sched.SchedPoint(label);
}

}  // namespace schedcheck
}  // namespace pmkm
