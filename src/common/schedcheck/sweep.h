// Schedule-sweep drivers for tests (DESIGN.md §12).
//
// SweepSchedules runs a test body under the deterministic scheduler once
// per seed until the body reports a bug (returns true), the scheduler
// reports a deadlock/budget overrun, or the seed budget is exhausted. On a
// hit it prints the failing seed with replay instructions and (when
// PMKM_SCHEDCHECK_ARTIFACTS names a directory) writes a failing-seed
// artifact for CI to upload.
//
// Replay: rerun the same test with PMKM_SCHEDCHECK_SEED=<seed> — the sweep
// then executes exactly that one schedule. PMKM_SCHEDCHECK_SEEDS=<n>
// scales the seed budget (nightly CI raises it; SeedsFromEnvOr reads it).
//
// ExploreExhaustive enumerates schedules in lexicographic order of the
// decision sequence (the choice-prefix odometer): each run records which
// candidate was picked at every decision point and how many candidates
// there were; the next run forces the deepest incrementable prefix. For
// small bodies this visits every schedule the sync-point model can
// distinguish.

#ifndef PMKM_COMMON_SCHEDCHECK_SWEEP_H_
#define PMKM_COMMON_SCHEDCHECK_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/schedcheck/scheduler.h"

namespace pmkm {
namespace schedcheck {

struct SweepOptions {
  /// Artifact/report tag; keep it test-unique and filename-safe.
  const char* name = "sweep";
  uint64_t first_seed = 1;
  int num_seeds = 1000;
  ScheduleOptions::Strategy strategy = ScheduleOptions::Strategy::kRandom;
  int max_steps = 50000;
};

struct SweepResult {
  bool bug_found = false;
  uint64_t failing_seed = 0;
  int seeds_run = 0;
  bool deadlock = false;
  std::string detail;
};

/// Runs `body` inside one episode per seed. `body` returns true when it
/// observed a bug (violated invariant); scheduler-detected deadlock or
/// budget exhaustion also counts as a bug. Stops at the first hit.
SweepResult SweepSchedules(const SweepOptions& options,
                           const std::function<bool()>& body);

struct ExhaustiveOptions {
  const char* name = "exhaustive";
  int max_runs = 10000;
  int max_steps = 20000;
};

struct ExhaustiveResult {
  bool bug_found = false;
  std::vector<int> failing_choices;  ///< decision sequence of the bad run
  int runs = 0;
  bool exhausted_all = false;  ///< every distinguishable schedule visited
  std::string detail;
};

ExhaustiveResult ExploreExhaustive(const ExhaustiveOptions& options,
                                   const std::function<bool()>& body);

/// PMKM_SCHEDCHECK_SEEDS as an int when set and positive, else `fallback`.
/// Tests size their sweeps with this so nightly CI can raise the budget
/// without touching code.
int SeedsFromEnvOr(int fallback);

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_SWEEP_H_
