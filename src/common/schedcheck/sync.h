// Always-instrumented synchronization doubles for schedcheck test suites.
//
// Unlike pmkm::Mutex/CondVar (common/annotations.h), whose hook wiring is
// compiled in only under PMKM_SCHEDCHECK, these types route through the
// hooks in *every* build. Test code written against them — in particular
// the seeded-bug doubles in tests/schedcheck/ — is therefore explorable by
// the deterministic scheduler even in the default tier-1 configuration,
// so the historical-race regressions never silently stop running.
//
// Outside an episode the hooks pass straight through to the real
// primitives, so these behave like ordinary mutexes/condvars too.

#ifndef PMKM_COMMON_SCHEDCHECK_SYNC_H_
#define PMKM_COMMON_SCHEDCHECK_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/schedcheck/hooks.h"

namespace pmkm {
namespace schedcheck {

class CondVar;

/// Instrumented mutex; same shape as pmkm::Mutex minus the thread-safety
/// annotations (test-only code, not part of the annotated lock universe).
class Mutex {
 public:
  explicit Mutex(SourceSite site = SourceSite::Current()) {
    OnMutexCreate(this, site);
  }
  ~Mutex() { OnMutexDestroy(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(SourceSite site = SourceSite::Current()) {
    OnMutexLock(&mu_, this, site);
  }
  bool TryLock(SourceSite site = SourceSite::Current()) {
    return OnMutexTryLock(&mu_, this, site);
  }
  void Unlock() { OnMutexUnlock(&mu_, this); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu, SourceSite site = SourceSite::Current())
      : mu_(mu) {
    mu_->Lock(site);
  }
  ~MutexLock() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu` (like std::condition_variable::wait).
  void Wait(Mutex& mu) { OnCondWait(&cv_, this, &mu.mu_, &mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) {
    while (!pred()) Wait(mu);
  }

  /// Returns true when the wait ended by timeout.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout) {
    return OnCondWaitFor(&cv_, this, &mu.mu_, &mu, timeout);
  }

  void NotifyOne() { OnCondNotifyOne(&cv_, this); }
  void NotifyAll() { OnCondNotifyAll(&cv_, this); }

 private:
  std::condition_variable cv_;
};

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_SYNC_H_
