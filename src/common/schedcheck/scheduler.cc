#include "common/schedcheck/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/schedcheck/lock_graph.h"

namespace pmkm {
namespace schedcheck {
namespace {

// The calling thread's registration, cached thread-locally so the
// per-hook "am I scheduled?" check is lock-free. `tls_gen` matches the
// scheduler's episode generation only while this thread is registered in
// the *current* episode (generations are bumped at both Begin and End, so
// stale registrations from a previous episode can never match).
thread_local uint64_t tls_gen = 0;
thread_local uint64_t tls_tid = kInvalidTid;

using Strategy = ScheduleOptions::Strategy;

}  // namespace

Scheduler& Scheduler::Global() {
  // Leaked: sync points fire from thread_local destructors at exit.
  static Scheduler* scheduler = new Scheduler();  // pmkm-lint: allow(naked-new)
  return *scheduler;
}

bool Scheduler::OnScheduledThread() const {
  return tls_gen != 0 &&
         tls_gen == episode_gen_.load(std::memory_order_relaxed);
}

uint64_t Scheduler::TidOfCurrent() const {
  return OnScheduledThread() ? tls_tid : kInvalidTid;
}

uint64_t Scheduler::NextRandLocked() {
  // SplitMix64; schedcheck cannot depend on common/rng.h (layering) and
  // needs nothing fancier than a well-mixed stream from a 64-bit seed.
  uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void Scheduler::BeginEpisode(const ScheduleOptions& options) {
  std::unique_lock<std::mutex> lk(smu_);
  if (episode_active_) {
    std::fprintf(
        stderr, "schedcheck FATAL: BeginEpisode while an episode is active\n");
    std::abort();
  }
  episode_active_ = true;
  poisoned_ = false;
  opts_ = options;
  result_ = ScheduleResult{};
  forced_pos_ = 0;
  rng_ = options.seed ^ 0x6a09e667f3bcc909ull;
  next_tid_ = 0;
  low_priority_ = -1;
  threads_.clear();
  mutex_owner_.clear();
  poison_held_.clear();
  const uint64_t gen =
      episode_gen_.fetch_add(1, std::memory_order_relaxed) + 1;

  ThreadRec main_rec;
  main_rec.tid = next_tid_++;
  main_rec.name = "main";
  main_rec.priority = static_cast<int64_t>(NextRandLocked() & 0x7fffffff);
  active_tid_ = main_rec.tid;
  tls_gen = gen;
  tls_tid = main_rec.tid;
  threads_.emplace(main_rec.tid, std::move(main_rec));
}

ScheduleResult Scheduler::EndEpisode() {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  // The body should have joined every spawned thread already; if not,
  // keep scheduling until the stragglers drain (the step budget poisons
  // the episode if they cannot).
  for (;;) {
    bool others_live = false;
    for (const auto& [tid, rec] : threads_) {
      if (tid != me && rec.state != State::kFinished) others_live = true;
    }
    if (!others_live) break;
    RescheduleLocked(lk, me, /*may_throw=*/false);
  }
  episode_active_ = false;
  episode_gen_.fetch_add(1, std::memory_order_relaxed);
  tls_gen = 0;
  tls_tid = kInvalidTid;
  active_tid_ = kInvalidTid;
  ScheduleResult out = std::move(result_);
  result_ = ScheduleResult{};
  threads_.clear();
  mutex_owner_.clear();
  poison_held_.clear();
  scv_.notify_all();
  return out;
}

uint64_t Scheduler::RegisterCurrentThread(const char* name) {
  std::unique_lock<std::mutex> lk(smu_);
  if (!episode_active_) return kInvalidTid;
  ThreadRec rec;
  rec.tid = next_tid_++;
  rec.name = (name != nullptr && name[0] != '\0') ? name : "worker";
  rec.priority = static_cast<int64_t>(NextRandLocked() & 0x7fffffff);
  const uint64_t tid = rec.tid;
  threads_.emplace(tid, std::move(rec));
  tls_gen = episode_gen_.load(std::memory_order_relaxed);
  tls_tid = tid;
  return tid;
}

void Scheduler::WaitForTurn() {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) return;
  while (active_tid_ != me) scv_.wait(lk);
}

void Scheduler::UnregisterCurrentThread() {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) return;
  threads_.at(me).state = State::kFinished;
  for (auto& [tid, rec] : threads_) {
    if (rec.state == State::kBlockedJoin &&
        reinterpret_cast<uintptr_t>(rec.wait_obj) == me) {
      rec.state = State::kRunnable;
    }
  }
  tls_gen = 0;
  tls_tid = kInvalidTid;
  // Hand the token on; returns immediately because this thread is finished.
  RescheduleLocked(lk, me, /*may_throw=*/false);
}

bool Scheduler::JoinThread(uint64_t tid) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid || tid == kInvalidTid) return false;
  for (;;) {
    auto it = threads_.find(tid);
    if (it == threads_.end() || it->second.state == State::kFinished) {
      return true;
    }
    ThreadRec& my = threads_.at(me);
    my.state = State::kBlockedJoin;
    my.wait_obj = reinterpret_cast<const void*>(static_cast<uintptr_t>(tid));
    // No throw: Join runs from Thread destructors, possibly mid-unwind.
    RescheduleLocked(lk, me, /*may_throw=*/false);
  }
}

void Scheduler::AcquireMutex(std::mutex* real, const void* id) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) {
    lk.unlock();
    real->lock();
    return;
  }
  RescheduleLocked(lk, me, /*may_throw=*/true);  // pre-acquire point
  AcquireMutexLoopLocked(lk, me, real, id);
  // Never throws after the grant: the caller's RAII guard must engage so
  // a later poison unwinds through a balanced Unlock.
}

bool Scheduler::TryAcquireMutex(std::mutex* real, const void* id) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) {
    lk.unlock();
    return real->try_lock();
  }
  RescheduleLocked(lk, me, /*may_throw=*/true);
  if (mutex_owner_.count(id) != 0) return false;
  mutex_owner_.emplace(id, me);
  lk.unlock();
  real->lock();  // uncontended among registered threads by construction
  return true;
}

void Scheduler::ReleaseMutex(std::mutex* real, const void* id) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) {
    lk.unlock();
    real->unlock();
    return;
  }
  if (poison_held_.erase({me, id}) == 0) {
    auto it = mutex_owner_.find(id);
    if (it != mutex_owner_.end() && it->second == me) {
      real->unlock();
      mutex_owner_.erase(it);
    }
    // else: unlocking a mutex the model says we do not hold. Reachable
    // only while a poisoned episode unwinds through a guard whose CondWait
    // threw after releasing the mutex; skipping the real unlock is the
    // balanced behavior there.
  }
  WakeBlockedOnMutexLocked(id);
  // Post-release interleaving point. No throw: Unlock runs in destructors.
  RescheduleLocked(lk, me, /*may_throw=*/false);
}

void Scheduler::CondWait(const void* cv_id, std::mutex* real_mu,
                         const void* mu_id) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) {
    lk.unlock();
    std::fprintf(
        stderr, "schedcheck FATAL: CondWait on an unscheduled thread\n");
    std::abort();
  }
  // Drain mode: the signal may never come; unwind with the mutex held so
  // the caller's RAII guard releases it.
  if (poisoned_) throw EpisodePoisoned{};

  // Release the paired mutex (model + real), exactly like cv::wait.
  if (poison_held_.erase({me, mu_id}) == 0) {
    auto it = mutex_owner_.find(mu_id);
    if (it != mutex_owner_.end() && it->second == me) {
      real_mu->unlock();
      mutex_owner_.erase(it);
    }
  }
  WakeBlockedOnMutexLocked(mu_id);
  ThreadRec& my = threads_.at(me);
  my.state = State::kWaitingCv;
  my.wait_obj = cv_id;
  my.timed_out = false;
  RescheduleLocked(lk, me, /*may_throw=*/false);  // parked until notified
  AcquireMutexLoopLocked(lk, me, real_mu, mu_id);
  if (poisoned_) throw EpisodePoisoned{};  // mutex held → balanced unwind
}

bool Scheduler::CondWaitFor(const void* cv_id, std::mutex* real_mu,
                            const void* mu_id) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) {
    lk.unlock();
    std::fprintf(
        stderr, "schedcheck FATAL: CondWaitFor on an unscheduled thread\n");
    std::abort();
  }
  if (poisoned_) throw EpisodePoisoned{};

  if (poison_held_.erase({me, mu_id}) == 0) {
    auto it = mutex_owner_.find(mu_id);
    if (it != mutex_owner_.end() && it->second == me) {
      real_mu->unlock();
      mutex_owner_.erase(it);
    }
  }
  WakeBlockedOnMutexLocked(mu_id);
  ThreadRec& my = threads_.at(me);
  my.state = State::kTimedWaitingCv;  // schedulable: waking it = timeout
  my.wait_obj = cv_id;
  my.timed_out = false;
  RescheduleLocked(lk, me, /*may_throw=*/false);
  const bool timed_out = threads_.at(me).timed_out;
  AcquireMutexLoopLocked(lk, me, real_mu, mu_id);
  if (poisoned_) throw EpisodePoisoned{};
  return timed_out;
}

void Scheduler::CondNotify(const void* cv_id, bool notify_all) {
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) return;
  // notify_one wakes the lowest-tid modeled waiter (deterministic). A
  // notify with no modeled waiter wakes nobody — which is exactly how a
  // lost wakeup becomes a reproducible deadlock instead of a timing fluke.
  for (auto& [tid, rec] : threads_) {
    if ((rec.state == State::kWaitingCv ||
         rec.state == State::kTimedWaitingCv) &&
        rec.wait_obj == cv_id) {
      rec.state = State::kRunnable;
      rec.timed_out = false;
      if (!notify_all) break;
    }
  }
  // Post-notify interleaving point. No throw: NotifyAll runs in paths
  // (queue Cancel, pool shutdown) reached from destructors.
  RescheduleLocked(lk, me, /*may_throw=*/false);
}

void Scheduler::SchedPoint(const char* label) {
  (void)label;
  std::unique_lock<std::mutex> lk(smu_);
  const uint64_t me = TidOfCurrent();
  if (me == kInvalidTid) return;
  RescheduleLocked(lk, me, /*may_throw=*/true);
}

void Scheduler::Yield() { SchedPoint("yield"); }

void Scheduler::AcquireMutexLoopLocked(std::unique_lock<std::mutex>& lk,
                                       uint64_t me, std::mutex* real,
                                       const void* id) {
  for (;;) {
    if (mutex_owner_.count(id) == 0) {
      mutex_owner_.emplace(id, me);
      lk.unlock();
      // Uncontended among registered threads (the model gated us); may
      // briefly contend with unregistered threads, which is fine.
      real->lock();
      lk.lock();
      return;
    }
    if (poisoned_) {
      // Drain grant: pretend-acquire without the real lock (the owner may
      // never release). Serialized execution keeps this sound enough for
      // threads that are only limping to their unwind point.
      poison_held_.emplace(me, id);
      return;
    }
    ThreadRec& my = threads_.at(me);
    my.state = State::kBlockedMutex;
    my.wait_obj = id;
    RescheduleLocked(lk, me, /*may_throw=*/false);
  }
}

void Scheduler::WakeBlockedOnMutexLocked(const void* id) {
  for (auto& [tid, rec] : threads_) {
    if (rec.state == State::kBlockedMutex && rec.wait_obj == id) {
      rec.state = State::kRunnable;  // re-contends in its acquire loop
    }
  }
}

void Scheduler::RescheduleLocked(std::unique_lock<std::mutex>& lk,
                                 uint64_t me, bool may_throw) {
  ++result_.steps;
  if (!poisoned_ && result_.steps > opts_.max_steps) {
    PoisonLocked(/*budget=*/true);
  }
  if (poisoned_ && result_.steps > 4 * opts_.max_steps + 4000) {
    std::fprintf(
        stderr,
        "schedcheck FATAL: poisoned episode failed to drain "
        "(%d steps; threads:%s)\n",
        result_.steps, DescribeThreadsLocked().c_str());
    std::abort();
  }
  PickNextLocked();
  scv_.notify_all();
  while (active_tid_ != me) {
    if (threads_.at(me).state == State::kFinished) return;
    if (active_tid_ == kInvalidTid) return;  // everyone else finished
    scv_.wait(lk);
  }
  if (poisoned_ && may_throw) throw EpisodePoisoned{};
}

void Scheduler::PickNextLocked() {
  auto collect = [this] {
    std::vector<uint64_t> c;
    for (const auto& [tid, rec] : threads_) {
      if (rec.state == State::kRunnable ||
          rec.state == State::kTimedWaitingCv) {
        c.push_back(tid);  // map order → deterministic candidate order
      }
    }
    return c;
  };
  std::vector<uint64_t> candidates = collect();
  if (candidates.empty()) {
    bool any_live = false;
    for (const auto& [tid, rec] : threads_) {
      if (rec.state != State::kFinished) any_live = true;
    }
    if (!any_live) {
      active_tid_ = kInvalidTid;
      return;
    }
    if (!poisoned_) PoisonLocked(/*budget=*/false);
    candidates = collect();
    if (candidates.empty()) {
      active_tid_ = kInvalidTid;
      return;
    }
  }

  const size_t n = candidates.size();
  size_t idx = 0;
  if (n > 1) {
    if (forced_pos_ < opts_.forced_choices.size()) {
      const int forced = opts_.forced_choices[forced_pos_++];
      idx = forced <= 0 ? 0 : std::min(static_cast<size_t>(forced), n - 1);
    } else {
      switch (opts_.strategy) {
        case Strategy::kRandom:
          idx = static_cast<size_t>(NextRandLocked() % n);
          break;
        case Strategy::kPCT: {
          // Occasionally demote a random candidate below everything that
          // ever ran, then run the highest-priority candidate — the PCT
          // recipe for hitting small-depth ordering bugs fast.
          if ((NextRandLocked() & 15) == 0) {
            const size_t victim = static_cast<size_t>(NextRandLocked() % n);
            threads_.at(candidates[victim]).priority = low_priority_--;
          }
          for (size_t i = 1; i < n; ++i) {
            if (threads_.at(candidates[i]).priority >
                threads_.at(candidates[idx]).priority) {
              idx = i;
            }
          }
          break;
        }
        case Strategy::kExhaustive:
          idx = 0;  // beyond the forced prefix: lexicographically first
          break;
      }
    }
    result_.choices.push_back(static_cast<int>(idx));
    result_.branching.push_back(static_cast<int>(n));
  }

  ThreadRec& chosen = threads_.at(candidates[idx]);
  if (chosen.state == State::kTimedWaitingCv) {
    chosen.state = State::kRunnable;  // scheduled as a timeout
    chosen.timed_out = true;
  }
  active_tid_ = chosen.tid;
}

void Scheduler::PoisonLocked(bool budget) {
  poisoned_ = true;
  if (budget) {
    result_.budget_exhausted = true;
    result_.detail = "step budget exhausted;" + DescribeThreadsLocked();
  } else {
    result_.deadlock = true;
    result_.detail = "modeled deadlock: no runnable thread;" +
                     DescribeThreadsLocked();
  }
  // Release everything blocked so threads can limp to a throwing sync
  // point and unwind.
  for (auto& [tid, rec] : threads_) {
    switch (rec.state) {
      case State::kBlockedMutex:
      case State::kWaitingCv:
      case State::kTimedWaitingCv:
      case State::kBlockedJoin:
        rec.state = State::kRunnable;
        rec.timed_out = true;
        break;
      case State::kRunnable:
      case State::kFinished:
        break;
    }
  }
}

std::string Scheduler::DescribeThreadsLocked() const {
  std::string out;
  for (const auto& [tid, rec] : threads_) {
    if (rec.state == State::kFinished) continue;
    out += "\n  thread '" + rec.name + "' (tid " + std::to_string(tid) + ") ";
    switch (rec.state) {
      case State::kRunnable:
        out += "runnable";
        break;
      case State::kBlockedMutex:
        out += "blocked acquiring " +
               LockGraph::Global().DescribeInstance(rec.wait_obj);
        break;
      case State::kWaitingCv:
        out += "waiting on a condvar";
        break;
      case State::kTimedWaitingCv:
        out += "in a timed condvar wait";
        break;
      case State::kBlockedJoin:
        out += "joining tid " + std::to_string(static_cast<uint64_t>(
                                    reinterpret_cast<uintptr_t>(rec.wait_obj)));
        break;
      case State::kFinished:
        break;
    }
  }
  return out;
}

}  // namespace schedcheck
}  // namespace pmkm
