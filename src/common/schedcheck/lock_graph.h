// Runtime lock-order witness (DESIGN.md §12).
//
// Mutexes are grouped into *lock classes* keyed by their static
// construction site (every BoundedBlockingQueue::mu_ is one class, the
// executor RunState mutexes another, ...), the lockdep model. Each blocking
// acquire records, for every lock already held by the thread, a directed
// edge held-class → acquired-class together with a witness: the static
// acquisition sites of both locks and the thread's full held chain at that
// moment. The first new edge that closes a cycle across *distinct* classes
// is a lock-order inversion — a schedule exists that deadlocks — and fails
// fast through the cycle handler (default: print both witness chains to
// stderr and abort). Same-class edges (two instances of one class nested)
// are recorded and visible in the dump but are not fatal: instance-level
// cycles are the schedule explorer's job, and distinct members of one
// struct can legitimately share a construction site.
//
// Cycle detection runs Tarjan's SCC algorithm over the accumulated class
// graph on every first-seen edge; the graph is tiny (one node per lock
// declaration in the program), so this is cheap even on hot paths.
//
// The accumulated graph can be exported as JSON (machine-readable, read by
// `pmkm_inspect lockgraph`) or DOT (graphviz). Setting PMKM_LOCKGRAPH_OUT
// to a path dumps the JSON at process exit.

#ifndef PMKM_COMMON_SCHEDCHECK_LOCK_GRAPH_H_
#define PMKM_COMMON_SCHEDCHECK_LOCK_GRAPH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/schedcheck/hooks.h"

namespace pmkm {
namespace schedcheck {

/// One lock-order inversion: the edges of the offending strongly connected
/// component, each carrying the witness context that first recorded it.
struct CycleReport {
  struct Edge {
    std::string from_class;   ///< construction site of the held lock's class
    std::string to_class;     ///< construction site of the acquired class
    std::string from_site;    ///< static acquisition site of the held lock
    std::string to_site;      ///< static acquisition site of the new lock
    std::string held_chain;   ///< full held chain when the edge was recorded
  };
  std::vector<Edge> edges;

  /// Human-readable multi-line report with both witness chains.
  std::string ToString() const;
};

/// Process-wide lock-order graph. Thread-safe. Intentionally leaked
/// singleton so statically-stored mutexes stay registered through exit.
class LockGraph {
 public:
  static LockGraph& Global();

  // Event sinks (called by hooks.cc; `id` identifies the wrapper object).
  void OnCreate(const void* id, SourceSite site);
  void OnDestroy(const void* id);
  void OnAcquire(const void* id, SourceSite site);
  void OnTryAcquire(const void* id, SourceSite site);
  void OnRelease(const void* id);

  /// Replaces the action taken when a new edge closes a cycle. The default
  /// handler prints the report and aborts; tests install a capturing
  /// handler. Passing nullptr restores the default.
  using CycleHandler = std::function<void(const CycleReport&)>;
  void SetCycleHandler(CycleHandler handler);

  /// "class@site" description of a registered mutex, for diagnostics
  /// (scheduler deadlock reports name the mutex a thread is blocked on).
  std::string DescribeInstance(const void* id) const;

  std::string ToJson() const;
  std::string ToDot() const;

  /// Drops all recorded edges (lock classes and live instances persist, so
  /// concurrently held locks stay attributable). Test isolation only.
  void ResetForTest();

  size_t edge_count() const;
  size_t class_count() const;

 private:
  LockGraph() = default;

  struct LockClass {
    SourceSite site;
    size_t instances = 0;
  };
  struct EdgeInfo {
    SourceSite from_site;
    SourceSite to_site;
    std::string held_chain;
    uint64_t count = 0;
  };

  int ClassOfLocked(const void* id, SourceSite fallback_site);
  /// Returns the SCC (as edge list) containing `from`→`to` if that edge
  /// sits on a cycle of ≥ 2 distinct classes; empty otherwise.
  std::vector<std::pair<int, int>> FindCycleLocked(int from, int to) const;
  CycleReport BuildReportLocked(
      const std::vector<std::pair<int, int>>& cycle_edges) const;

  mutable std::mutex mu_;
  std::map<std::string, int> class_by_site_;     // "file:line" → class id
  std::vector<LockClass> classes_;
  std::map<const void*, int> instance_class_;    // live mutex → class id
  std::map<std::pair<int, int>, EdgeInfo> edges_;
  CycleHandler handler_;
};

}  // namespace schedcheck
}  // namespace pmkm

#endif  // PMKM_COMMON_SCHEDCHECK_LOCK_GRAPH_H_
