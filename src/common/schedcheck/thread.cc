#include "common/schedcheck/thread.h"

#include <future>

namespace pmkm {
namespace schedcheck {

Thread::Thread(std::function<void()> body, const char* name) {
  Scheduler& sched = Scheduler::Global();
  if (!sched.OnScheduledThread()) {
    // Spawner is not under the scheduler: plain preemptive thread.
    thread_ = std::thread(std::move(body));
    return;
  }
  // Spawn handshake: the parent (which holds the run token) blocks until
  // the child has registered, so the child is visible as a scheduling
  // candidate before the parent takes another step. The child then parks
  // until the scheduler hands it the token.
  std::promise<uint64_t> registered;
  std::future<uint64_t> tid_future = registered.get_future();
  thread_ = std::thread(
      [body = std::move(body), name, reg = std::move(registered)]() mutable {
        Scheduler& s = Scheduler::Global();
        const uint64_t tid = s.RegisterCurrentThread(name);
        reg.set_value(tid);
        if (tid == kInvalidTid) {
          // Raced an episode end; run unscheduled.
          body();
          return;
        }
        s.WaitForTurn();
        try {
          body();
        } catch (const EpisodePoisoned&) {
          // Deadlock/budget drain: the episode result already records why.
        }
        s.UnregisterCurrentThread();
      });
  tid_ = tid_future.get();
}

Thread::~Thread() {
  if (thread_.joinable()) Join();
}

Thread& Thread::operator=(Thread&& other) noexcept {
  if (this != &other) {
    if (thread_.joinable()) Join();
    thread_ = std::move(other.thread_);
    tid_ = other.tid_;
    other.tid_ = kInvalidTid;
  }
  return *this;
}

void Thread::Join() {
  if (tid_ != kInvalidTid) {
    // Modeled join: block in the scheduler until the child's trampoline
    // finished; the real join below then completes promptly.
    Scheduler::Global().JoinThread(tid_);
    tid_ = kInvalidTid;
  }
  thread_.join();
}

}  // namespace schedcheck
}  // namespace pmkm
