#include "common/schedcheck/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pmkm {
namespace schedcheck {
namespace {

void WriteArtifact(const char* name, const std::string& contents) {
  const char* dir = std::getenv("PMKM_SCHEDCHECK_ARTIFACTS");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".failure.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(
        stderr, "schedcheck: cannot write artifact %s\n", path.c_str());
    return;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
}

const char* StrategyName(ScheduleOptions::Strategy strategy) {
  switch (strategy) {
    case ScheduleOptions::Strategy::kRandom:
      return "random";
    case ScheduleOptions::Strategy::kPCT:
      return "pct";
    case ScheduleOptions::Strategy::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

}  // namespace

int SeedsFromEnvOr(int fallback) {
  const char* env = std::getenv("PMKM_SCHEDCHECK_SEEDS");
  if (env == nullptr || env[0] == '\0') return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  return parsed > 0 ? static_cast<int>(parsed) : fallback;
}

SweepResult SweepSchedules(const SweepOptions& options,
                           const std::function<bool()>& body) {
  SweepResult result;
  uint64_t first_seed = options.first_seed;
  int num_seeds = options.num_seeds;
  if (const char* replay = std::getenv("PMKM_SCHEDCHECK_SEED");
      replay != nullptr && replay[0] != '\0') {
    first_seed = std::strtoull(replay, nullptr, 10);
    num_seeds = 1;
  }

  Scheduler& sched = Scheduler::Global();
  for (int i = 0; i < num_seeds; ++i) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    ScheduleOptions episode;
    episode.seed = seed;
    episode.strategy = options.strategy;
    episode.max_steps = options.max_steps;

    sched.BeginEpisode(episode);
    bool bug = false;
    try {
      bug = body();
    } catch (const EpisodePoisoned&) {
      // The episode result below says whether this was deadlock or budget.
    }
    const ScheduleResult r = sched.EndEpisode();
    ++result.seeds_run;

    if (r.deadlock || r.budget_exhausted) {
      bug = true;
      result.deadlock = r.deadlock;
      result.detail = r.detail;
    }
    if (bug) {
      result.bug_found = true;
      result.failing_seed = seed;
      if (result.detail.empty()) {
        result.detail = "test invariant violated by the interleaving";
      }
      const std::string report =
          std::string("schedcheck sweep '") + options.name + "' found a bug\n" +
          "  seed: " + std::to_string(seed) +
          " (strategy " + StrategyName(options.strategy) +
          ", schedule " + std::to_string(result.seeds_run) + " of " +
          std::to_string(num_seeds) + ", " + std::to_string(r.steps) +
          " steps)\n" +
          "  detail: " + result.detail + "\n" +
          "  replay: PMKM_SCHEDCHECK_SEED=" + std::to_string(seed) +
          " <test binary> (same gtest filter)\n";
      std::fprintf(
          stderr, "%s", report.c_str());
      WriteArtifact(options.name, report);
      return result;
    }
  }
  return result;
}

ExhaustiveResult ExploreExhaustive(const ExhaustiveOptions& options,
                                   const std::function<bool()>& body) {
  ExhaustiveResult result;
  Scheduler& sched = Scheduler::Global();
  std::vector<int> prefix;
  while (result.runs < options.max_runs) {
    ScheduleOptions episode;
    episode.seed = 1;
    episode.strategy = ScheduleOptions::Strategy::kExhaustive;
    episode.max_steps = options.max_steps;
    episode.forced_choices = prefix;

    sched.BeginEpisode(episode);
    bool bug = false;
    try {
      bug = body();
    } catch (const EpisodePoisoned&) {
    }
    const ScheduleResult r = sched.EndEpisode();
    ++result.runs;

    if (r.deadlock || r.budget_exhausted) {
      bug = true;
      result.detail = r.detail;
    }
    if (bug) {
      result.bug_found = true;
      result.failing_choices = r.choices;
      if (result.detail.empty()) {
        result.detail = "test invariant violated by the interleaving";
      }
      std::string choices;
      for (int c : r.choices) {
        if (!choices.empty()) choices += ",";
        choices += std::to_string(c);
      }
      const std::string report =
          std::string("schedcheck exhaustive '") + options.name +
          "' found a bug\n  run " + std::to_string(result.runs) +
          ", decision sequence: [" + choices + "]\n  detail: " +
          result.detail + "\n";
      std::fprintf(
          stderr, "%s", report.c_str());
      WriteArtifact(options.name, report);
      return result;
    }

    // Choice-prefix odometer: bump the deepest decision that still has an
    // unexplored sibling; done when none does.
    int i = static_cast<int>(r.choices.size()) - 1;
    while (i >= 0 && r.choices[static_cast<size_t>(i)] + 1 >=
                         r.branching[static_cast<size_t>(i)]) {
      --i;
    }
    if (i < 0) {
      result.exhausted_all = true;
      return result;
    }
    prefix.assign(r.choices.begin(), r.choices.begin() + i);
    prefix.push_back(r.choices[static_cast<size_t>(i)] + 1);
  }
  return result;
}

}  // namespace schedcheck
}  // namespace pmkm
