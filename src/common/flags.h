// Tiny command-line flag parser for the bench harnesses and examples.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are reported as errors so experiment scripts fail
// loudly instead of silently running the wrong configuration.

#ifndef PMKM_COMMON_FLAGS_H_
#define PMKM_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace pmkm {

/// Declarative flag registry: declare typed flags, then Parse(argc, argv).
class FlagParser {
 public:
  FlagParser& AddInt(const std::string& name, int64_t* target,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double* target,
                        const std::string& help);
  FlagParser& AddString(const std::string& name, std::string* target,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool* target,
                      const std::string& help);

  /// Parses argv, writing values into the registered targets. Positional
  /// (non-flag) arguments are collected into positional(). `--help` prints
  /// usage and returns Cancelled.
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    void* target;
    std::string help;
  };

  Status SetValue(const std::string& name, const Flag& flag,
                  const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_FLAGS_H_
