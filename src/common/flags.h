// The one command-line flag registry shared by every pmkm tool
// (pmkm_cluster / pmkm_genbuckets / pmkm_inspect / pmkm_serve) and the
// bench harnesses.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are reported as errors so experiment scripts fail
// loudly instead of silently running the wrong configuration. `--help`
// renders a generated usage page (program description, positional-argument
// synopsis, every registered flag) and cancels the parse.
//
// Flag *blocks* — structs bundling related flags with a Register(parser)
// method — keep multi-tool surfaces consistent: EngineFlags
// (stream/engine.h) registers the engine knobs, ObsFlags (below) the
// shared --debug_port/--log_format/--run_id observability trio.

#ifndef PMKM_COMMON_FLAGS_H_
#define PMKM_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace pmkm {

/// Declarative flag registry: declare typed flags, then Parse(argc, argv).
class FlagParser {
 public:
  /// One-line program description, shown at the top of --help output.
  FlagParser& SetDescription(std::string description);

  /// Positional-argument synopsis for the usage line (e.g.
  /// "bucket.pmkb [bucket2.pmkb ...]"); empty means the tool takes none.
  FlagParser& SetPositionalUsage(std::string usage);

  FlagParser& AddInt(const std::string& name, int64_t* target,
                     const std::string& help);
  FlagParser& AddDouble(const std::string& name, double* target,
                        const std::string& help);
  FlagParser& AddString(const std::string& name, std::string* target,
                        const std::string& help);
  FlagParser& AddBool(const std::string& name, bool* target,
                      const std::string& help);

  /// Parses argv, writing values into the registered targets. Positional
  /// (non-flag) arguments are collected into positional(). `--help` prints
  /// usage and returns Cancelled.
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text: description, usage line with the
  /// positional synopsis, then every registered flag.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    void* target;
    std::string help;
  };

  Status SetValue(const std::string& name, const Flag& flag,
                  const std::string& value);

  std::string description_;
  std::string positional_usage_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// The observability flag block every pmkm tool exposes, so batch tools
/// and the serve daemon share one surface:
///
///   --debug_port   live introspection server on 127.0.0.1:PORT
///                  (0 = ephemeral, -1 = off)
///   --log_format   text | json structured log lines
///   --run_id       explicit artifact-correlation id (default: generated)
///
/// Register the block, Parse, then Apply() — which validates the values
/// and installs the log format/run id process-wide. Tools that host a
/// debug server read debug_port themselves (common/ cannot depend on
/// obs/).
struct ObsFlags {
  int64_t debug_port = -1;
  std::string log_format = "text";
  std::string run_id;

  void Register(FlagParser* parser);

  /// Validates --log_format and applies it (and the run id, when set) to
  /// the process-wide logging config.
  Status Apply() const;

  bool serve_requested() const { return debug_port >= 0; }
};

}  // namespace pmkm

#endif  // PMKM_COMMON_FLAGS_H_
