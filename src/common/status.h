// Status: lightweight error propagation for the pmkm library.
//
// The library does not throw exceptions across API boundaries. Fallible
// operations return a Status (or a Result<T>, see result.h) in the style of
// Apache Arrow / RocksDB. A Status is cheap to copy in the OK case (a single
// pointer compare) and carries a code plus a human-readable message
// otherwise.

#ifndef PMKM_COMMON_STATUS_H_
#define PMKM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace pmkm {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kFailedPrecondition = 6,
  kCancelled = 7,
  kInternal = 8,
  kNotImplemented = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable lowercase name for a status code ("invalid argument").
const char* StatusCodeToString(StatusCode code);

class Status;

/// Maps a Status onto a sysexits(3)-style process exit code, so every CLI
/// tool renders the same failure as the same exit code:
///
///   OK                 → 0
///   InvalidArgument    → 64  (EX_USAGE: bad flags / bad request)
///   FailedPrecondition,
///   OutOfRange         → 65  (EX_DATAERR: input data is malformed)
///   NotFound           → 66  (EX_NOINPUT: missing file/job)
///   Cancelled          → 75  (EX_TEMPFAIL: interrupted, retryable)
///   IOError            → 74  (EX_IOERR)
///   everything else    → 70  (EX_SOFTWARE)
int StatusExitCode(const Status& status);

/// Outcome of a fallible operation: OK, or a code plus message.
///
/// [[nodiscard]]: ignoring a returned Status silently swallows the error,
/// so every Status-returning call must be propagated
/// (PMKM_RETURN_NOT_OK), checked (PMKM_CHECK_OK / .ok()), or explicitly
/// discarded with a (void) cast plus a justification comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status. Equivalent to Status::OK().
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// Message supplied at construction; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // Null iff OK; shared so copies of an error status are cheap too.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pmkm

/// Propagates a non-OK Status to the caller of the enclosing function.
#define PMKM_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::pmkm::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // PMKM_COMMON_STATUS_H_
