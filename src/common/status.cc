#include "common/status.h"

namespace pmkm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

int StatusExitCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 64;  // EX_USAGE
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
      return 65;  // EX_DATAERR
    case StatusCode::kNotFound:
      return 66;  // EX_NOINPUT
    case StatusCode::kIOError:
      return 74;  // EX_IOERR
    case StatusCode::kCancelled:
      return 75;  // EX_TEMPFAIL
    case StatusCode::kAlreadyExists:
    case StatusCode::kInternal:
    case StatusCode::kNotImplemented:
    case StatusCode::kDeadlineExceeded:
      return 70;  // EX_SOFTWARE
  }
  return 70;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace pmkm
