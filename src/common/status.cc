#include "common/status.h"

namespace pmkm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "I/O error";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace pmkm
