// Deterministic random number generation.
//
// Every stochastic component in pmkm (seeding, generators, partition
// shuffles) draws from an explicitly seeded Rng so experiments are exactly
// reproducible. Rng wraps SplitMix64 for stream derivation and xoshiro256**
// for the bulk stream; both are tiny, fast and well distributed.

#ifndef PMKM_COMMON_RNG_H_
#define PMKM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace pmkm {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state, per the
    // reference implementation's recommendation.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t n) {
    PMKM_DCHECK(n > 0);
    const uint64_t threshold = -n % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller (cached second draw).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = UniformDouble();
    } while (u1 <= 0.0);
    u2 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Derives an independent child generator; child streams for distinct
  /// tags never collide with the parent stream.
  Rng Fork(uint64_t tag) {
    return Rng(Next() ^ (tag * 0xd1342543de82ef95ULL + 0x2545F4914F6CDD1DULL));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_RNG_H_
