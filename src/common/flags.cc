#include "common/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pmkm {

FlagParser& FlagParser::AddInt(const std::string& name, int64_t* target,
                               const std::string& help) {
  flags_[name] = Flag{Type::kInt, target, help};
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double* target,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help};
  return *this;
}

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string* target,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help};
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool* target,
                                const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help};
  return *this;
}

Status FlagParser::SetValue(const std::string& name, const Flag& flag,
                            const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // --help goes to stdout by CLI convention, not through logging.
      std::cout << Usage(argv[0]);  // pmkm-lint: allow(stdio)
      return Status::Cancelled("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    // Boolean negation: --no-foo.
    if (!has_value && name.rfind("no-", 0) == 0) {
      const std::string base = name.substr(3);
      auto it = flags_.find(base);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name +
                                       " is missing a value");
      }
      value = argv[++i];
    }
    PMKM_RETURN_NOT_OK(SetValue(name, it->second, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kInt:
        os << "=<int>";
        break;
      case Type::kDouble:
        os << "=<num>";
        break;
      case Type::kString:
        os << "=<str>";
        break;
      case Type::kBool:
        os << "[=true|false]";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace pmkm
