#include "common/flags.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace pmkm {

FlagParser& FlagParser::SetDescription(std::string description) {
  description_ = std::move(description);
  return *this;
}

FlagParser& FlagParser::SetPositionalUsage(std::string usage) {
  positional_usage_ = std::move(usage);
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t* target,
                               const std::string& help) {
  flags_[name] = Flag{Type::kInt, target, help};
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double* target,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help};
  return *this;
}

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string* target,
                                  const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help};
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool* target,
                                const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help};
  return *this;
}

Status FlagParser::SetValue(const std::string& name, const Flag& flag,
                            const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // --help goes to stdout by CLI convention, not through logging.
      std::cout << Usage(argv[0]);  // pmkm-lint: allow(stdio)
      return Status::Cancelled("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }

    // Boolean negation: --no-foo.
    if (!has_value && name.rfind("no-", 0) == 0) {
      const std::string base = name.substr(3);
      auto it = flags_.find(base);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }

    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name +
                                       " is missing a value");
      }
      value = argv[++i];
    }
    PMKM_RETURN_NOT_OK(SetValue(name, it->second, value));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  if (!description_.empty()) {
    os << description_ << "\n\n";
  }
  os << "Usage: " << program << " [flags]";
  if (!positional_usage_.empty()) {
    os << " " << positional_usage_;
  }
  os << "\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kInt:
        os << "=<int>";
        break;
      case Type::kDouble:
        os << "=<num>";
        break;
      case Type::kString:
        os << "=<str>";
        break;
      case Type::kBool:
        os << "[=true|false]";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

void ObsFlags::Register(FlagParser* parser) {
  parser->AddInt("debug_port", &debug_port,
                 "serve live introspection on 127.0.0.1:PORT "
                 "(0 = ephemeral, -1 = off)");
  parser->AddString("log_format", &log_format,
                    "structured log line format: text | json");
  parser->AddString("run_id", &run_id,
                    "explicit run id tagging logs/metrics/traces "
                    "(default: generated per run)");
}

Status ObsFlags::Apply() const {
  LogFormat format;
  if (!ParseLogFormat(log_format, &format)) {
    return Status::InvalidArgument("unknown --log_format '" + log_format +
                                   "' (expected text or json)");
  }
  SetLogFormat(format);
  if (!run_id.empty()) SetLogRunId(run_id);
  return Status::OK();
}

}  // namespace pmkm
