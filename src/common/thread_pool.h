// Fixed-size thread pool backing operator clones in the stream engine and
// the parallel partial-k-means driver.

#ifndef PMKM_COMMON_THREAD_POOL_H_
#define PMKM_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/schedcheck/thread.h"

namespace pmkm {

/// A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Shutdown() (or destruction) drains already-submitted tasks before the
/// workers exit; tasks submitted after Shutdown() are rejected by returning
/// an invalid future.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the returned future resolves with its result.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> Submit(Fn&& fn) PMKM_EXCLUDES(mu_) {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      if (shutdown_) return std::future<R>();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return fut;
  }

  /// Blocks until every submitted task has finished.
  void WaitIdle() PMKM_EXCLUDES(mu_);

  /// Stops accepting tasks and joins the workers after draining the queue.
  void Shutdown() PMKM_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop() PMKM_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ PMKM_GUARDED_BY(mu_);
  // Written once in the constructor before any concurrent access; joined in
  // Shutdown. Not guarded: after construction the vector itself is
  // immutable (only the threads it holds run). schedcheck::Thread is a
  // plain std::thread outside a scheduler episode; inside one, workers
  // come under deterministic schedule control.
  std::vector<schedcheck::Thread> workers_;
  size_t active_ PMKM_GUARDED_BY(mu_) = 0;
  bool shutdown_ PMKM_GUARDED_BY(mu_) = false;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_THREAD_POOL_H_
