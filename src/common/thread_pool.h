// Fixed-size thread pool backing operator clones in the stream engine and
// the parallel partial-k-means driver.

#ifndef PMKM_COMMON_THREAD_POOL_H_
#define PMKM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pmkm {

/// A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Shutdown() (or destruction) drains already-submitted tasks before the
/// workers exit; tasks submitted after Shutdown() are rejected by returning
/// an invalid future.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the returned future resolves with its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return std::future<R>();
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  /// Stops accepting tasks and joins the workers after draining the queue.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace pmkm

#endif  // PMKM_COMMON_THREAD_POOL_H_
