#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace pmkm {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError() || status.IsDeadlineExceeded();
}

Retrier::Retrier(const RetryPolicy& policy, uint64_t seed_tag)
    : policy_(policy),
      rng_(policy.seed ^ (seed_tag * 0x9e3779b97f4a7c15ULL)) {
  if (policy_.overall_deadline_ms > 0) {
    deadline_us_ = NowMicros() +
                   static_cast<int64_t>(policy_.overall_deadline_ms) * 1000;
  }
}

uint64_t Retrier::NextBackoffMs() {
  // retries_ has already been incremented for the retry being granted.
  const double exp = std::pow(policy_.backoff_multiplier,
                              static_cast<double>(retries_ - 1));
  double backoff = static_cast<double>(policy_.initial_backoff_ms) * exp;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_ms));
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  // The jitter draw happens even for zero backoff so the Rng stream (and
  // thus any later backoff) stays independent of max_backoff clamping.
  const double factor = 1.0 + jitter * (2.0 * rng_.UniformDouble() - 1.0);
  return static_cast<uint64_t>(backoff * factor);
}

bool Retrier::AllowRetryImpl(const Status& status,
                             std::vector<uint64_t>* delays_ms) {
  if (status.ok()) return false;
  const bool retryable = policy_.retryable != nullptr
                             ? policy_.retryable(status)
                             : IsRetryableStatus(status);
  if (!retryable) return false;
  if (retries_ + 1 >= policy_.max_attempts) return false;
  ++retries_;
  const uint64_t backoff_ms = NextBackoffMs();
  if (deadline_us_ > 0) {
    const int64_t wake_us =
        NowMicros() + static_cast<int64_t>(backoff_ms) * 1000;
    if (wake_us >= deadline_us_) {
      --retries_;
      return false;
    }
  }
  if (delays_ms != nullptr) {
    delays_ms->push_back(backoff_ms);
  } else if (backoff_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  return true;
}

bool Retrier::AllowRetry(const Status& status) {
  return AllowRetryImpl(status, nullptr);
}

bool Retrier::AllowRetryForTest(const Status& status,
                                std::vector<uint64_t>* delays_ms) {
  return AllowRetryImpl(status, delays_ms);
}

}  // namespace pmkm
