#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "common/annotations.h"

namespace pmkm {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};

// Serializes whole lines so concurrent operator threads do not interleave.
// An annotated Mutex (not a raw std::mutex) so the schedcheck hooks see
// the sink as a sync point like every other lock in the project.
Mutex& LogMutex() {
  static Mutex m;
  return m;
}

// The run id is read on every emitted line (sink already serialized), so
// it shares the sink mutex instead of adding a second lock.
std::string& RunIdStorage() {
  static std::string id;
  return id;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Minimal JSON string escaping (common/ cannot depend on obs/json.h —
// the obs library links against this one).
std::string JsonEscapeMinimal(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t NowUnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

bool ParseLogFormat(const std::string& name, LogFormat* out) {
  if (name == "text") {
    *out = LogFormat::kText;
    return true;
  }
  if (name == "json") {
    *out = LogFormat::kJson;
    return true;
  }
  return false;
}

void SetLogRunId(const std::string& run_id) {
  MutexLock lock(LogMutex());
  RunIdStorage() = run_id;
}

std::string GetLogRunId() {
  MutexLock lock(LogMutex());
  return RunIdStorage();
}

namespace internal {

std::string FormatLogTimestamp(int64_t unix_millis) {
  const time_t secs = static_cast<time_t>(unix_millis / 1000);
  const int millis = static_cast<int>(unix_millis % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

std::string RenderLogLine(LogLevel level, const char* file_base, int line,
                          const std::string& msg, LogFormat format,
                          const std::string& run_id, int64_t unix_millis) {
  const std::string ts = FormatLogTimestamp(unix_millis);
  const std::string src =
      std::string(file_base) + ":" + std::to_string(line);
  if (format == LogFormat::kJson) {
    std::string out = "{\"ts\":\"" + ts + "\",\"level\":\"" +
                      LevelName(level) + "\",\"src\":\"" +
                      JsonEscapeMinimal(src) + "\"";
    if (!run_id.empty()) {
      out += ",\"run_id\":\"" + JsonEscapeMinimal(run_id) + "\"";
    }
    out += ",\"msg\":\"" + JsonEscapeMinimal(msg) + "\"}";
    return out;
  }
  std::string out = "[" + std::string(LevelName(level)) + " " + ts + " " +
                    src;
  if (!run_id.empty()) out += " run=" + run_id;
  out += "] " + msg;
  return out;
}

LogTokenBucket::LogTokenBucket(double per_second, double burst) {
  per_second = std::max(per_second, 1e-6);
  cost_micros_ = static_cast<int64_t>(1e6 / per_second);
  cost_micros_ = std::max<int64_t>(1, cost_micros_);
  burst_micros_ =
      static_cast<int64_t>(std::max(1.0, burst) *
                           static_cast<double>(cost_micros_));
}

uint64_t LogTokenBucket::Acquire() {
  const int64_t now = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return AcquireAt(now);
}

uint64_t LogTokenBucket::AcquireAt(int64_t now_micros) {
  int64_t avail = available_at_.load(std::memory_order_relaxed);
  while (true) {
    // The bucket may hold at most `burst` unused tokens: the effective
    // next-token time never lags more than burst_micros_ behind now.
    const int64_t base = std::max(avail, now_micros - burst_micros_);
    if (base > now_micros) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return kDenied;
    }
    if (available_at_.compare_exchange_weak(avail, base + cost_micros_,
                                            std::memory_order_relaxed)) {
      return suppressed_.exchange(0, std::memory_order_relaxed);
    }
  }
}

std::string SuppressedTag(uint64_t suppressed) {
  if (suppressed == 0) return "";
  return "(suppressed " + std::to_string(suppressed) +
         " similar lines) ";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      file_base_(file),
      line_(line) {
  if (enabled_) {
    for (const char* p = file; *p; ++p) {
      if (*p == '/') file_base_ = p + 1;
    }
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const int64_t now_ms = NowUnixMillis();
    const LogFormat format = GetLogFormat();
    MutexLock lock(LogMutex());
    const std::string rendered = RenderLogLine(
        level_, file_base_, line_, stream_.str(), format, RunIdStorage(),
        now_ms);
    // The logging sink itself: the one sanctioned stderr writer. LogMutex
    // exists solely to keep these lines interleaving-free, so the write
    // IS the critical section; nothing else ever blocks under it.
    // pmkm-ctxcheck: allow(no-block-under-lock)
    std::cerr << rendered << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pmkm
