// BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD'96): the paper's §2.2 point of
// comparison among memory-bounded clustering methods.
//
// Phase 1 builds a height-balanced CF-tree of clustering features
// CF = (n, LS, SS) under a distance threshold; phase 3 ("global
// clustering") runs a weighted k-means over the leaf CF centroids. The tree
// rebuilds itself with a larger threshold when it exceeds its node budget,
// which is how BIRCH honours a fixed memory envelope.

#ifndef PMKM_BASELINES_BIRCH_H_
#define PMKM_BASELINES_BIRCH_H_

#include <memory>
#include <vector>

#include "cluster/kmeans.h"
#include "data/weighted.h"

namespace pmkm {

/// One clustering feature: sufficient statistics of a subcluster.
struct ClusteringFeature {
  double n = 0.0;              // point count
  std::vector<double> ls;      // linear sum Σx
  double ss = 0.0;             // scalar square sum Σ‖x‖²

  explicit ClusteringFeature(size_t dim = 0) : ls(dim, 0.0) {}

  void Add(std::span<const double> x, double weight = 1.0);
  void Merge(const ClusteringFeature& other);

  /// Centroid LS/n (requires n > 0).
  std::vector<double> Centroid() const;

  /// Average intra-subcluster radius sqrt(SS/n − ‖LS/n‖²), the threshold
  /// quantity of the original paper.
  double Radius() const;

  /// Radius the CF would have after absorbing (x, weight).
  double RadiusAfterAdd(std::span<const double> x, double weight) const;

  /// Squared centroid distance to another CF.
  double CentroidDistanceSq(const ClusteringFeature& other) const;
};

struct BirchConfig {
  size_t k = 40;                  // global-phase cluster count
  size_t branching = 16;          // max entries per node
  double initial_threshold = 0.0; // 0 = start at zero, grow on rebuilds
  size_t max_leaf_entries = 512;  // memory envelope (total leaf CFs)
  KMeansConfig global;            // global-phase weighted k-means
};

/// Streaming BIRCH: Insert points one at a time, then Finish().
class Birch {
 public:
  explicit Birch(size_t dim, BirchConfig config);
  ~Birch();

  Birch(const Birch&) = delete;
  Birch& operator=(const Birch&) = delete;

  /// Inserts one point, growing/rebuilding the CF-tree as needed.
  Status Insert(std::span<const double> point);

  /// Inserts a whole dataset.
  Status InsertAll(const Dataset& data);

  /// Leaf CFs as weighted centroids (the phase-3 input).
  WeightedDataset LeafCentroids() const;

  size_t num_leaf_entries() const;
  double threshold() const { return threshold_; }
  size_t rebuilds() const { return rebuilds_; }

  /// Runs the global clustering over the leaf CFs.
  Result<ClusteringModel> Finish() const;

  // Tree node types; public only so implementation helpers can name them.
  struct Node;
  struct Entry;

 private:
  Status InsertCf(const ClusteringFeature& cf);
  void InsertIntoTree(const ClusteringFeature& cf);
  void Rebuild();

  size_t dim_;
  BirchConfig config_;
  double threshold_;
  size_t rebuilds_ = 0;
  size_t leaf_entries_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace pmkm

#endif  // PMKM_BASELINES_BIRCH_H_
