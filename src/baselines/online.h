// Online (sequential) k-means, MacQueen 1967: the one-pass incremental
// baseline. Each arriving point moves its nearest centroid by 1/n_j — the
// strictest "one look, O(k) state" competitor in the comparison bench.

#ifndef PMKM_BASELINES_ONLINE_H_
#define PMKM_BASELINES_ONLINE_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace pmkm {

struct OnlineKMeansConfig {
  size_t k = 40;
  uint64_t seed = 13;
};

/// One-pass sequential k-means over `data`. The first k distinct arrivals
/// become the initial centroids (classic MacQueen initialization); every
/// later point updates its nearest centroid incrementally.
class OnlineKMeans {
 public:
  OnlineKMeans(size_t dim, OnlineKMeansConfig config);

  /// Feeds one point.
  Status Observe(std::span<const double> point);

  /// Feeds a whole dataset in order.
  Status ObserveAll(const Dataset& data);

  size_t points_seen() const { return points_seen_; }

  /// Current model; sse/mse are evaluated against `eval_data` if provided
  /// (pass the original stream for a faithful quality number).
  Result<ClusteringModel> Snapshot(const Dataset* eval_data = nullptr) const;

 private:
  size_t dim_;
  OnlineKMeansConfig config_;
  Dataset centroids_;
  std::vector<double> counts_;
  size_t points_seen_ = 0;
};

}  // namespace pmkm

#endif  // PMKM_BASELINES_ONLINE_H_
