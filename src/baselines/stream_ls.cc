#include "baselines/stream_ls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"
#include "cluster/metrics.h"

namespace pmkm {

double KMedianCost(const Dataset& medians, const WeightedDataset& data) {
  PMKM_CHECK(!medians.empty());
  const std::vector<double> norms = CentroidSquaredNorms(medians);
  const size_t dim = data.dim();
  double cost = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const Nearest n = NearestCentroid(data.points().data() + i * dim,
                                      medians, norms);
    cost += data.weight(i) * std::sqrt(n.distance_sq);
  }
  return cost;
}

namespace {

// Cost of assigning every point to its nearest of the medoid rows given by
// `medoid_indices` into `data`; also fills per-point nearest/second-nearest
// structures used for swap evaluation.
struct AssignInfo {
  std::vector<size_t> nearest;
  std::vector<double> nearest_d;   // L2 distance (not squared)
  std::vector<double> second_d;
  double cost = 0.0;
};

AssignInfo Assign(const WeightedDataset& data,
                  const std::vector<size_t>& medoids) {
  const size_t n = data.size();
  AssignInfo info;
  info.nearest.resize(n);
  info.nearest_d.resize(n);
  info.second_d.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    double second = best;
    size_t best_j = 0;
    for (size_t j = 0; j < medoids.size(); ++j) {
      const double d =
          std::sqrt(SquaredL2(data.Row(i), data.Row(medoids[j])));
      if (d < best) {
        second = best;
        best = d;
        best_j = j;
      } else if (d < second) {
        second = d;
      }
    }
    info.nearest[i] = best_j;
    info.nearest_d[i] = best;
    info.second_d[i] = second;
    info.cost += data.weight(i) * best;
  }
  return info;
}

}  // namespace

Result<WeightedDataset> LocalSearchKMedian(const WeightedDataset& data,
                                           const StreamLsConfig& config,
                                           Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("empty chunk");
  const size_t n = data.size();
  const size_t k = std::min(config.k, n);

  // Degenerate chunk: every point is a median.
  if (n <= k) return data;

  // Initial medoids: weight-aware k-means++ indices. SelectSeeds returns
  // points; we need indices, so re-derive by matching — instead pick
  // directly here with the same D² rule.
  std::vector<size_t> medoids;
  {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    const size_t first = rng->UniformInt(n);
    medoids.push_back(first);
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::sqrt(SquaredL2(data.Row(i), data.Row(first)));
    }
    while (medoids.size() < k) {
      double z = 0.0;
      for (size_t i = 0; i < n; ++i) z += data.weight(i) * dist[i];
      size_t next = rng->UniformInt(n);
      if (z > 0.0) {
        double target = rng->UniformDouble() * z;
        for (size_t i = 0; i < n; ++i) {
          target -= data.weight(i) * dist[i];
          if (target <= 0.0) {
            next = i;
            break;
          }
        }
      }
      medoids.push_back(next);
      for (size_t i = 0; i < n; ++i) {
        dist[i] = std::min(
            dist[i], std::sqrt(SquaredL2(data.Row(i), data.Row(next))));
      }
    }
  }

  AssignInfo info = Assign(data, medoids);
  const size_t candidates =
      std::max<size_t>(1, config.swap_candidates_per_k * k);

  for (size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
    bool improved = false;
    for (size_t t = 0; t < candidates; ++t) {
      const size_t cand = rng->UniformInt(n);          // point to open
      const size_t out = rng->UniformInt(medoids.size());  // medoid to close
      if (cand == medoids[out]) continue;

      // Gain of swapping medoid `out` for point `cand`:
      // each point re-routes to min(new facility, its surviving best).
      double new_cost = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double d_cand =
            std::sqrt(SquaredL2(data.Row(i), data.Row(cand)));
        double best;
        if (info.nearest[i] == out) {
          best = std::min(d_cand, info.second_d[i]);
        } else {
          best = std::min(d_cand, info.nearest_d[i]);
        }
        new_cost += data.weight(i) * best;
        if (new_cost >= info.cost) break;  // early abandon
      }
      if (new_cost < info.cost * (1.0 - 1e-12)) {
        medoids[out] = cand;
        info = Assign(data, medoids);
        improved = true;
      }
    }
    if (!improved) break;
  }

  // Emit medians weighted by assigned mass.
  std::vector<double> mass(medoids.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    mass[info.nearest[i]] += data.weight(i);
  }
  WeightedDataset out(data.dim());
  for (size_t j = 0; j < medoids.size(); ++j) {
    if (mass[j] > 0.0) out.Append(data.Row(medoids[j]), mass[j]);
  }
  return out;
}

StreamLocalSearch::StreamLocalSearch(size_t dim, StreamLsConfig config)
    : dim_(dim),
      config_(std::move(config)),
      rng_(config_.seed),
      buffer_(dim),
      retained_(dim) {
  PMKM_CHECK(dim >= 1);
  PMKM_CHECK(config_.k >= 1);
  PMKM_CHECK(config_.chunk_points >= 1);
}

Status StreamLocalSearch::ReduceBuffer() {
  if (buffer_.empty()) return Status::OK();
  PMKM_ASSIGN_OR_RETURN(WeightedDataset medians,
                        LocalSearchKMedian(buffer_, config_, &rng_));
  retained_.AppendAll(medians);
  buffer_ = WeightedDataset(dim_);
  return MaybeRereduce();
}

Status StreamLocalSearch::MaybeRereduce() {
  if (retained_.size() <= config_.max_retained) return Status::OK();
  PMKM_ASSIGN_OR_RETURN(WeightedDataset reduced,
                        LocalSearchKMedian(retained_, config_, &rng_));
  retained_ = std::move(reduced);
  return Status::OK();
}

Status StreamLocalSearch::Append(const Dataset& points) {
  if (points.dim() != dim_) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  for (size_t i = 0; i < points.size(); ++i) {
    buffer_.Append(points.Row(i), 1.0);
    if (buffer_.size() >= config_.chunk_points) {
      PMKM_RETURN_NOT_OK(ReduceBuffer());
    }
  }
  return Status::OK();
}

Result<ClusteringModel> StreamLocalSearch::Finish() {
  PMKM_RETURN_NOT_OK(ReduceBuffer());
  if (retained_.empty()) {
    return Status::FailedPrecondition("no points were appended");
  }
  PMKM_ASSIGN_OR_RETURN(WeightedDataset final_medians,
                        LocalSearchKMedian(retained_, config_, &rng_));
  ClusteringModel model;
  model.centroids = final_medians.points();
  model.weights = final_medians.weights();
  model.sse = WeightedSse(model.centroids, retained_);
  const double total = retained_.TotalWeight();
  model.mse_per_point = total > 0.0 ? model.sse / total : 0.0;
  model.converged = true;
  return model;
}

}  // namespace pmkm
