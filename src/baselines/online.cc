#include "baselines/online.h"

#include "cluster/distance.h"
#include "cluster/metrics.h"

namespace pmkm {

OnlineKMeans::OnlineKMeans(size_t dim, OnlineKMeansConfig config)
    : dim_(dim), config_(std::move(config)), centroids_(dim) {
  PMKM_CHECK(dim >= 1);
  PMKM_CHECK(config_.k >= 1);
}

Status OnlineKMeans::Observe(std::span<const double> point) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  ++points_seen_;
  if (centroids_.size() < config_.k) {
    centroids_.Append(point);
    counts_.push_back(1.0);
    return Status::OK();
  }
  const Nearest nearest = NearestCentroid(point, centroids_);
  const size_t j = nearest.index;
  counts_[j] += 1.0;
  const double eta = 1.0 / counts_[j];
  double* c = centroids_.mutable_data() + j * dim_;
  for (size_t d = 0; d < dim_; ++d) c[d] += eta * (point[d] - c[d]);
  return Status::OK();
}

Status OnlineKMeans::ObserveAll(const Dataset& data) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    PMKM_RETURN_NOT_OK(Observe(data.Row(i)));
  }
  return Status::OK();
}

Result<ClusteringModel> OnlineKMeans::Snapshot(
    const Dataset* eval_data) const {
  if (centroids_.empty()) {
    return Status::FailedPrecondition("no points observed yet");
  }
  ClusteringModel model;
  model.centroids = centroids_;
  model.weights = counts_;
  model.iterations = points_seen_;
  model.converged = true;
  if (eval_data != nullptr && !eval_data->empty()) {
    model.sse = Sse(model.centroids, *eval_data);
    model.mse_per_point =
        model.sse / static_cast<double>(eval_data->size());
  }
  return model;
}

}  // namespace pmkm
