// Mini-batch k-means (Sculley, WWW'10): the modern streaming analogue the
// reproduction brief calls out (cf. scikit-learn's MiniBatchKMeans and
// Spark's streaming k-means). Included as a baseline so the benchmark can
// place partial/merge k-means against what practitioners would reach for
// today.

#ifndef PMKM_BASELINES_MINIBATCH_H_
#define PMKM_BASELINES_MINIBATCH_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/dataset.h"

namespace pmkm {

struct MiniBatchConfig {
  size_t k = 40;
  size_t batch_size = 256;
  size_t max_batches = 400;

  /// Stop when the average per-batch centroid movement stays below this
  /// for `patience` consecutive batches.
  double tol = 1e-4;
  size_t patience = 10;

  uint64_t seed = 11;
};

/// Fits mini-batch k-means over `data` (sampling batches with replacement,
/// per Sculley). Returns a model whose sse/mse are evaluated with one final
/// full pass over `data`.
Result<ClusteringModel> MiniBatchKMeans(const Dataset& data,
                                        const MiniBatchConfig& config);

}  // namespace pmkm

#endif  // PMKM_BASELINES_MINIBATCH_H_
