#include "baselines/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.h"

namespace pmkm {

// ---------------------------------------------------------------------------
// ClusteringFeature

void ClusteringFeature::Add(std::span<const double> x, double weight) {
  PMKM_DCHECK(x.size() == ls.size());
  n += weight;
  double xx = 0.0;
  for (size_t d = 0; d < ls.size(); ++d) {
    ls[d] += weight * x[d];
    xx += x[d] * x[d];
  }
  ss += weight * xx;
}

void ClusteringFeature::Merge(const ClusteringFeature& other) {
  PMKM_DCHECK(other.ls.size() == ls.size());
  n += other.n;
  for (size_t d = 0; d < ls.size(); ++d) ls[d] += other.ls[d];
  ss += other.ss;
}

std::vector<double> ClusteringFeature::Centroid() const {
  PMKM_CHECK(n > 0.0);
  std::vector<double> c(ls.size());
  for (size_t d = 0; d < ls.size(); ++d) c[d] = ls[d] / n;
  return c;
}

double ClusteringFeature::Radius() const {
  if (n <= 0.0) return 0.0;
  double norm_sq = 0.0;
  for (double v : ls) norm_sq += v * v;
  const double var = ss / n - norm_sq / (n * n);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double ClusteringFeature::RadiusAfterAdd(std::span<const double> x,
                                         double weight) const {
  ClusteringFeature tmp = *this;
  tmp.Add(x, weight);
  return tmp.Radius();
}

double ClusteringFeature::CentroidDistanceSq(
    const ClusteringFeature& other) const {
  PMKM_DCHECK(n > 0.0 && other.n > 0.0);
  double acc = 0.0;
  for (size_t d = 0; d < ls.size(); ++d) {
    const double diff = ls[d] / n - other.ls[d] / other.n;
    acc += diff * diff;
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Tree structure

struct Birch::Entry {
  ClusteringFeature cf;
  std::unique_ptr<Node> child;  // null for leaf entries
};

struct Birch::Node {
  bool is_leaf = true;
  std::vector<Entry> entries;
};

namespace {

// Index of the entry whose CF centroid is closest to `cf`.
size_t ClosestEntry(const std::vector<Birch::Entry>& entries,
                    const ClusteringFeature& cf);

}  // namespace

// Nested-type access for the local helpers.
namespace {

size_t ClosestEntry(const std::vector<Birch::Entry>& entries,
                    const ClusteringFeature& cf) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    const double d = entries[i].cf.CentroidDistanceSq(cf);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace

Birch::Birch(size_t dim, BirchConfig config)
    : dim_(dim),
      config_(std::move(config)),
      threshold_(config_.initial_threshold),
      root_(std::make_unique<Node>()) {
  PMKM_CHECK(dim_ >= 1);
  PMKM_CHECK(config_.branching >= 2);
  PMKM_CHECK(config_.max_leaf_entries >= 2);
}

Birch::~Birch() = default;

Status Birch::Insert(std::span<const double> point) {
  if (point.size() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  ClusteringFeature cf(dim_);
  cf.Add(point);
  return InsertCf(cf);
}

Status Birch::InsertAll(const Dataset& data) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dimensionality mismatch");
  }
  for (size_t i = 0; i < data.size(); ++i) {
    PMKM_RETURN_NOT_OK(Insert(data.Row(i)));
  }
  return Status::OK();
}

Status Birch::InsertCf(const ClusteringFeature& cf) {
  InsertIntoTree(cf);
  while (leaf_entries_ > config_.max_leaf_entries) {
    Rebuild();
  }
  return Status::OK();
}

namespace {

// Splits an over-full node's entries into two groups seeded by the
// farthest pair of CF centroids; `right` receives the second group.
void SplitEntries(std::vector<Birch::Entry>* entries,
                  std::vector<Birch::Entry>* right) {
  auto& es = *entries;
  PMKM_CHECK(es.size() >= 2);
  size_t a = 0, b = 1;
  double best = -1.0;
  for (size_t i = 0; i < es.size(); ++i) {
    for (size_t j = i + 1; j < es.size(); ++j) {
      const double d = es[i].cf.CentroidDistanceSq(es[j].cf);
      if (d > best) {
        best = d;
        a = i;
        b = j;
      }
    }
  }
  std::vector<Birch::Entry> left;
  for (size_t i = 0; i < es.size(); ++i) {
    if (i == a) {
      left.push_back(std::move(es[i]));
    } else if (i == b) {
      right->push_back(std::move(es[i]));
    }
  }
  // Seeds are left[0] and (*right)[0]; distribute the rest by proximity.
  for (size_t i = 0; i < es.size(); ++i) {
    if (i == a || i == b) continue;
    const double da = es[i].cf.CentroidDistanceSq(left[0].cf);
    const double db = es[i].cf.CentroidDistanceSq((*right)[0].cf);
    if (da <= db) {
      left.push_back(std::move(es[i]));
    } else {
      right->push_back(std::move(es[i]));
    }
  }
  *entries = std::move(left);
}

}  // namespace

void Birch::InsertIntoTree(const ClusteringFeature& cf) {
  // Recursive insert; returns a split-off sibling entry if the child split.
  struct Inserter {
    Birch* tree;

    // Returns nullopt, or the new sibling entry to add to the parent.
    std::unique_ptr<Entry> Insert(Node* node, const ClusteringFeature& cf) {
      if (node->is_leaf) {
        if (!node->entries.empty()) {
          const size_t i = ClosestEntry(node->entries, cf);
          // Absorption test: merged subcluster must stay within threshold.
          ClusteringFeature merged = node->entries[i].cf;
          merged.Merge(cf);
          if (merged.Radius() <= tree->threshold_) {
            node->entries[i].cf = std::move(merged);
            return nullptr;
          }
        }
        Entry e;
        e.cf = cf;
        node->entries.push_back(std::move(e));
        ++tree->leaf_entries_;
      } else {
        const size_t i = ClosestEntry(node->entries, cf);
        std::unique_ptr<Entry> sibling =
            Insert(node->entries[i].child.get(), cf);
        node->entries[i].cf.Merge(cf);
        if (sibling != nullptr) {
          node->entries.push_back(std::move(*sibling));
        }
      }
      if (node->entries.size() <= tree->config_.branching) return nullptr;

      // Overflow: split this node, hand the new half to the parent.
      auto sibling_node = std::make_unique<Node>();
      sibling_node->is_leaf = node->is_leaf;
      SplitEntries(&node->entries, &sibling_node->entries);
      auto sibling_entry = std::make_unique<Entry>();
      sibling_entry->cf = ClusteringFeature(tree->dim_);
      for (const Entry& e : sibling_node->entries) {
        sibling_entry->cf.Merge(e.cf);
      }
      sibling_entry->child = std::move(sibling_node);
      return sibling_entry;
    }
  };

  Inserter inserter{this};
  std::unique_ptr<Entry> sibling = inserter.Insert(root_.get(), cf);
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    Entry left;
    left.cf = ClusteringFeature(dim_);
    for (const Entry& e : root_->entries) left.cf.Merge(e.cf);
    left.child = std::move(root_);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(*sibling));
    root_ = std::move(new_root);
  }
}

namespace {

void CollectLeafCfs(const Birch::Node* node,
                    std::vector<ClusteringFeature>* out);

}  // namespace

// Definition after Node is complete.
namespace {

void CollectLeafCfs(const Birch::Node* node,
                    std::vector<ClusteringFeature>* out) {
  if (node->is_leaf) {
    for (const Birch::Entry& e : node->entries) out->push_back(e.cf);
    return;
  }
  for (const Birch::Entry& e : node->entries) {
    CollectLeafCfs(e.child.get(), out);
  }
}

}  // namespace

void Birch::Rebuild() {
  std::vector<ClusteringFeature> cfs;
  cfs.reserve(leaf_entries_);
  CollectLeafCfs(root_.get(), &cfs);

  // Grow the threshold: at least the smallest pairwise leaf-centroid
  // distance (so at least one merge is guaranteed), with geometric growth
  // as a floor against degenerate stalls.
  double min_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < cfs.size(); ++i) {
    for (size_t j = i + 1; j < cfs.size(); ++j) {
      min_dist = std::min(min_dist, cfs[i].CentroidDistanceSq(cfs[j]));
    }
  }
  double next = threshold_ > 0.0 ? threshold_ * 1.5 : 1e-6;
  if (std::isfinite(min_dist)) {
    next = std::max(next, std::sqrt(min_dist) * 0.51);
  }
  threshold_ = next;
  ++rebuilds_;

  root_ = std::make_unique<Node>();
  leaf_entries_ = 0;
  for (const ClusteringFeature& cf : cfs) {
    InsertIntoTree(cf);
  }
}

WeightedDataset Birch::LeafCentroids() const {
  std::vector<ClusteringFeature> cfs;
  CollectLeafCfs(root_.get(), &cfs);
  WeightedDataset out(dim_);
  for (const ClusteringFeature& cf : cfs) {
    if (cf.n > 0.0) out.Append(cf.Centroid(), cf.n);
  }
  return out;
}

size_t Birch::num_leaf_entries() const { return leaf_entries_; }

Result<ClusteringModel> Birch::Finish() const {
  const WeightedDataset leaves = LeafCentroids();
  if (leaves.empty()) {
    return Status::FailedPrecondition("no points were inserted");
  }
  if (leaves.size() <= config_.k) {
    ClusteringModel model;
    model.centroids = leaves.points();
    model.weights = leaves.weights();
    model.sse = 0.0;
    model.mse_per_point = 0.0;
    model.converged = true;
    return model;
  }
  KMeansConfig cfg = config_.global;
  cfg.k = config_.k;
  return KMeans(cfg).FitWeighted(leaves);
}

}  // namespace pmkm
