#include "baselines/minibatch.h"

#include <cmath>

#include "cluster/distance.h"
#include "cluster/metrics.h"
#include "cluster/seeding.h"

namespace pmkm {

Result<ClusteringModel> MiniBatchKMeans(const Dataset& data,
                                        const MiniBatchConfig& config) {
  if (config.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (data.size() < config.k) {
    return Status::InvalidArgument("fewer points than k");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  Rng rng(config.seed);
  const size_t dim = data.dim();
  const size_t n = data.size();

  PMKM_ASSIGN_OR_RETURN(
      Dataset centroids,
      SelectSeeds(WeightedDataset::FromUnweighted(data), config.k,
                  SeedingMethod::kKMeansPlusPlus, &rng));

  std::vector<double> counts(config.k, 0.0);  // per-centre update counts
  size_t calm_batches = 0;
  size_t batches = 0;
  for (batches = 0; batches < config.max_batches; ++batches) {
    const std::vector<double> norms = CentroidSquaredNorms(centroids);
    // Cache assignments for this batch, then apply per-point SGD updates
    // with learning rate 1/count (Sculley's algorithm).
    std::vector<size_t> batch_idx(config.batch_size);
    std::vector<size_t> batch_assign(config.batch_size);
    for (size_t b = 0; b < config.batch_size; ++b) {
      batch_idx[b] = rng.UniformInt(n);
      batch_assign[b] =
          NearestCentroid(data.data() + batch_idx[b] * dim, centroids,
                          norms)
              .index;
    }
    double movement = 0.0;
    for (size_t b = 0; b < config.batch_size; ++b) {
      const size_t j = batch_assign[b];
      counts[j] += 1.0;
      const double eta = 1.0 / counts[j];
      double* c = centroids.mutable_data() + j * dim;
      const double* x = data.data() + batch_idx[b] * dim;
      double step_sq = 0.0;
      for (size_t d = 0; d < dim; ++d) {
        const double delta = eta * (x[d] - c[d]);
        c[d] += delta;
        step_sq += delta * delta;
      }
      movement += std::sqrt(step_sq);
    }
    movement /= static_cast<double>(config.batch_size);
    if (movement < config.tol) {
      if (++calm_batches >= config.patience) {
        ++batches;
        break;
      }
    } else {
      calm_batches = 0;
    }
  }

  ClusteringModel model;
  model.centroids = std::move(centroids);
  model.iterations = batches;
  model.converged = calm_batches >= config.patience;
  // Final full-data evaluation pass.
  const std::vector<size_t> assigned_counts =
      AssignmentCounts(model.centroids, data);
  model.weights.assign(assigned_counts.begin(), assigned_counts.end());
  model.sse = Sse(model.centroids, data);
  model.mse_per_point = model.sse / static_cast<double>(n);
  return model;
}

}  // namespace pmkm
