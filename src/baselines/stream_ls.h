// STREAM with LOCALSEARCH (O'Callaghan, Mishra, Meyerson, Guha & Motwani,
// ICDE'02): the paper's closest related work ([7], §2.2). The stream is
// processed in memory-sized chunks; each chunk is reduced to k weighted
// medians by a k-median local search; the retained medians are clustered
// again at the end. Unlike partial/merge k-means there is no weighted
// *mean* merge — the final step is another median search over
// representatives, and intermediate levels can be re-reduced when the
// retained set itself outgrows memory.
//
// Our LOCALSEARCH is the swap-based k-median local search (CLARANS-style
// sampled swaps): start from weight-aware k-means++ medoids, then accept
// cost-improving facility swaps until no sampled swap improves. This keeps
// the algorithmic character (discrete medians, local search, O(nk) per
// sweep) without the full facility-cost binary search of the original,
// which only affects constants. Documented in DESIGN.md §5.

#ifndef PMKM_BASELINES_STREAM_LS_H_
#define PMKM_BASELINES_STREAM_LS_H_

#include "cluster/model.h"
#include "common/result.h"
#include "common/rng.h"
#include "data/weighted.h"

namespace pmkm {

struct StreamLsConfig {
  size_t k = 40;

  /// Chunk size m (points buffered per LOCALSEARCH invocation).
  size_t chunk_points = 5000;

  /// Sampled candidate swaps per improvement sweep, as a multiple of k.
  size_t swap_candidates_per_k = 8;

  /// Max improvement sweeps per LOCALSEARCH call.
  size_t max_sweeps = 20;

  /// When the retained median set exceeds this, it is itself re-clustered
  /// to k medians (the STREAM paper's hierarchical re-reduction).
  size_t max_retained = 2000;

  uint64_t seed = 7;
};

/// k-median cost: Σ_i w_i · ‖x_i − nearest median‖ (L2 distance, not
/// squared — medians, not means).
double KMedianCost(const Dataset& medians, const WeightedDataset& data);

/// One LOCALSEARCH invocation: k weighted medians of `data` (medians are
/// actual input points). Fails if data has fewer than 1 point.
Result<WeightedDataset> LocalSearchKMedian(const WeightedDataset& data,
                                           const StreamLsConfig& config,
                                           Rng* rng);

/// The streaming driver.
class StreamLocalSearch {
 public:
  explicit StreamLocalSearch(size_t dim, StreamLsConfig config);

  /// Feeds points; chunks are reduced as they fill.
  Status Append(const Dataset& points);

  /// Flushes the partial chunk and clusters all retained medians to the
  /// final k centers. The returned model's sse/mse are computed in the
  /// squared-error metric over the retained medians so it is comparable to
  /// the k-means numbers in the benchmark tables.
  Result<ClusteringModel> Finish();

  size_t retained_medians() const { return retained_.size(); }

 private:
  Status ReduceBuffer();
  Status MaybeRereduce();

  size_t dim_;
  StreamLsConfig config_;
  Rng rng_;
  WeightedDataset buffer_;
  WeightedDataset retained_;
};

}  // namespace pmkm

#endif  // PMKM_BASELINES_STREAM_LS_H_
