// BoundedBlockingQueue: the "smart queue" connecting producer and consumer
// operators (paper Fig. 3). Bounded capacity gives back-pressure so a fast
// producer cannot overflow memory; producer reference counting closes the
// queue when the last clone of the upstream operator finishes.

#ifndef PMKM_STREAM_QUEUE_H_
#define PMKM_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/logging.h"

namespace pmkm {

/// MPMC bounded blocking queue with producer-count close semantics.
template <typename T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(size_t capacity) : capacity_(capacity) {
    PMKM_CHECK(capacity >= 1);
  }

  /// Registers one producer; must be balanced by CloseProducer(). A queue
  /// starts with zero producers, so register before any Push.
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and Pop drains the remainder then returns
  /// nullopt.
  void CloseProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    PMKM_CHECK(producers_ > 0);
    if (--producers_ == 0) not_empty_.notify_all();
  }

  /// Blocks while full; returns false if the queue was cancelled.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || cancelled_; });
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and producers remain; nullopt = end of stream (all
  /// producers closed and queue drained) or cancelled.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || producers_ == 0 || cancelled_;
    });
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Aborts the stream: wakes everyone, Push/Pop fail from now on. Used to
  /// tear a pipeline down on operator error.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t producers_ = 0;
  bool cancelled_ = false;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_QUEUE_H_
