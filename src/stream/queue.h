// BoundedBlockingQueue: the "smart queue" connecting producer and consumer
// operators (paper Fig. 3). Bounded capacity gives back-pressure so a fast
// producer cannot overflow memory; producer reference counting closes the
// queue when the last clone of the upstream operator finishes.
//
// Observability: the queue always tracks its high-water mark and total
// pushed count (one compare and one increment under the mutex it already
// holds). Optionally AttachMetrics() wires a depth gauge and block-time
// histograms; the blocked-wait clock is only read when a producer or
// consumer actually has to wait AND a histogram is attached, so an
// uninstrumented queue pays nothing beyond a null check.

#ifndef PMKM_STREAM_QUEUE_H_
#define PMKM_STREAM_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace pmkm {

/// Optional instruments for one queue; any pointer may be null.
struct QueueMetrics {
  Gauge* depth = nullptr;             ///< current depth (max = high water)
  Histogram* push_block_us = nullptr; ///< producer time blocked on full
  Histogram* pop_wait_us = nullptr;   ///< consumer time blocked on empty
};

/// MPMC bounded blocking queue with producer-count close semantics.
template <typename T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(size_t capacity) : capacity_(capacity) {
    PMKM_CHECK(capacity >= 1);
  }

  /// Registers one producer; must be balanced by CloseProducer(). A queue
  /// starts with zero producers, so register before any Push.
  void AddProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and Pop drains the remainder then returns
  /// nullopt.
  void CloseProducer() {
    std::lock_guard<std::mutex> lock(mu_);
    PMKM_CHECK(producers_ > 0);
    if (--producers_ == 0) not_empty_.notify_all();
  }

  /// Attaches observability instruments. Call before the pipeline starts;
  /// not synchronized against concurrent Push/Pop.
  void AttachMetrics(const QueueMetrics& metrics) { metrics_ = metrics; }

  /// Blocks while full; returns false if the queue was cancelled.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    const auto can_push = [this] {
      return items_.size() < capacity_ || cancelled_;
    };
    if (!can_push()) {
      if (metrics_.push_block_us != nullptr) {
        const Stopwatch blocked;
        not_full_.wait(lock, can_push);
        metrics_.push_block_us->Record(
            static_cast<double>(blocked.ElapsedMicros()));
      } else {
        not_full_.wait(lock, can_push);
      }
    }
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<int64_t>(items_.size()));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and producers remain; nullopt = end of stream (all
  /// producers closed and queue drained) or cancelled.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto can_pop = [this] {
      return !items_.empty() || producers_ == 0 || cancelled_;
    };
    if (!can_pop()) {
      if (metrics_.pop_wait_us != nullptr) {
        const Stopwatch waited;
        not_empty_.wait(lock, can_pop);
        metrics_.pop_wait_us->Record(
            static_cast<double>(waited.ElapsedMicros()));
      } else {
        not_empty_.wait(lock, can_pop);
      }
    }
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<int64_t>(items_.size()));
    }
    not_full_.notify_one();
    return item;
  }

  /// Aborts the stream: wakes everyone, Push/Pop fail from now on. Used to
  /// tear a pipeline down on operator error.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Synonym for size(), named for the depth gauge it feeds.
  size_t Depth() const { return size(); }

  /// Deepest the queue has ever been: how hard back-pressure was leaned
  /// on. Capacity-bounded by construction.
  size_t HighWaterMark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Total items accepted by Push over the queue's lifetime.
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t producers_ = 0;
  bool cancelled_ = false;
  size_t high_water_ = 0;
  uint64_t total_pushed_ = 0;
  QueueMetrics metrics_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_QUEUE_H_
