// BoundedBlockingQueue: the "smart queue" connecting producer and consumer
// operators (paper Fig. 3). Bounded capacity gives back-pressure so a fast
// producer cannot overflow memory; producer reference counting closes the
// queue when the last clone of the upstream operator finishes.
//
// Observability: the queue always tracks its high-water mark and total
// pushed count (one compare and one increment under the mutex it already
// holds). Optionally AttachMetrics() wires a depth gauge and block-time
// histograms; the blocked-wait clock is only read when a producer or
// consumer actually has to wait AND a histogram is attached, so an
// uninstrumented queue pays nothing beyond a null check.
//
// Concurrency contract: every mutable field is PMKM_GUARDED_BY(mu_) and
// verified by Clang thread-safety analysis (DESIGN.md §11).

#ifndef PMKM_STREAM_QUEUE_H_
#define PMKM_STREAM_QUEUE_H_

#include <deque>
#include <optional>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace pmkm {

/// Optional instruments for one queue; any pointer may be null.
struct QueueMetrics {
  Gauge* depth = nullptr;             ///< current depth (max = high water)
  Histogram* push_block_us = nullptr; ///< producer time blocked on full
  Histogram* pop_wait_us = nullptr;   ///< consumer time blocked on empty
};

/// MPMC bounded blocking queue with producer-count close semantics.
template <typename T>
class BoundedBlockingQueue {
 public:
  explicit BoundedBlockingQueue(size_t capacity) : capacity_(capacity) {
    PMKM_CHECK(capacity >= 1);
  }

  /// Registers one producer; must be balanced by CloseProducer(). A queue
  /// starts with zero producers, so register before any Push.
  void AddProducer() PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++producers_;
  }

  /// Signals that one producer is done. When the last producer closes, all
  /// blocked consumers wake and Pop drains the remainder then returns
  /// nullopt.
  void CloseProducer() PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    PMKM_CHECK(producers_ > 0);
    if (--producers_ == 0) not_empty_.NotifyAll();
  }

  /// Attaches observability instruments. Synchronized: safe to call while
  /// producers and consumers are already running (instruments only start
  /// recording from the next operation).
  void AttachMetrics(const QueueMetrics& metrics) PMKM_EXCLUDES(mu_) {
    PMKM_SCHED_POINT("queue.attach_metrics");
    MutexLock lock(mu_);
    metrics_ = metrics;
  }

  /// Blocks while full; returns false if the queue was cancelled.
  bool Push(T item) PMKM_EXCLUDES(mu_) {
    PMKM_SCHED_POINT("queue.push");
    MutexLock lock(mu_);
    if (items_.size() >= capacity_ && !cancelled_) {
      // Capture the instrument before waiting: Wait releases mu_, so a
      // concurrent AttachMetrics may swap metrics_ out from under us.
      // Registry-owned instruments are never destroyed, so the captured
      // pointer stays valid across the wait.
      if (Histogram* push_block_us = metrics_.push_block_us;
          push_block_us != nullptr) {
        const Stopwatch blocked;
        while (items_.size() >= capacity_ && !cancelled_) {
          not_full_.Wait(mu_);
        }
        push_block_us->Record(static_cast<double>(blocked.ElapsedMicros()));
      } else {
        while (items_.size() >= capacity_ && !cancelled_) {
          not_full_.Wait(mu_);
        }
      }
    }
    if (cancelled_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    if (items_.size() > high_water_) high_water_ = items_.size();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<int64_t>(items_.size()));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks while empty and producers remain; nullopt = end of stream (all
  /// producers closed and queue drained) or cancelled.
  std::optional<T> Pop() PMKM_EXCLUDES(mu_) {
    PMKM_SCHED_POINT("queue.pop");
    MutexLock lock(mu_);
    if (items_.empty() && producers_ > 0 && !cancelled_) {
      // Same capture-before-wait rule as Push: metrics_ may be swapped by
      // AttachMetrics while the condvar wait has mu_ released.
      if (Histogram* pop_wait_us = metrics_.pop_wait_us;
          pop_wait_us != nullptr) {
        const Stopwatch waited;
        while (items_.empty() && producers_ > 0 && !cancelled_) {
          not_empty_.Wait(mu_);
        }
        pop_wait_us->Record(static_cast<double>(waited.ElapsedMicros()));
      } else {
        while (items_.empty() && producers_ > 0 && !cancelled_) {
          not_empty_.Wait(mu_);
        }
      }
    }
    if (cancelled_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    if (metrics_.depth != nullptr) {
      metrics_.depth->Set(static_cast<int64_t>(items_.size()));
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Aborts the stream: wakes everyone, Push/Pop fail from now on. Used to
  /// tear a pipeline down on operator error.
  void Cancel() PMKM_EXCLUDES(mu_) {
    PMKM_SCHED_POINT("queue.cancel");
    MutexLock lock(mu_);
    cancelled_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool cancelled() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return cancelled_;
  }

  size_t size() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// Synonym for size(), named for the depth gauge it feeds.
  size_t Depth() const PMKM_EXCLUDES(mu_) { return size(); }

  /// Deepest the queue has ever been: how hard back-pressure was leaned
  /// on. Capacity-bounded by construction.
  size_t HighWaterMark() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return high_water_;
  }

  /// Total items accepted by Push over the queue's lifetime.
  uint64_t total_pushed() const PMKM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return total_pushed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ PMKM_GUARDED_BY(mu_);
  size_t producers_ PMKM_GUARDED_BY(mu_) = 0;
  bool cancelled_ PMKM_GUARDED_BY(mu_) = false;
  size_t high_water_ PMKM_GUARDED_BY(mu_) = 0;
  uint64_t total_pushed_ PMKM_GUARDED_BY(mu_) = 0;
  QueueMetrics metrics_ PMKM_GUARDED_BY(mu_);
};

}  // namespace pmkm

#endif  // PMKM_STREAM_QUEUE_H_
