// Messages flowing between the stream operators of the partial/merge plan.

#ifndef PMKM_STREAM_MESSAGE_H_
#define PMKM_STREAM_MESSAGE_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/grid.h"
#include "data/weighted.h"

namespace pmkm {

/// One memory-sized partition of a grid cell, emitted by a scan operator.
/// `total_partitions` lets the merge operator detect cell completion.
struct PointChunk {
  GridCellId cell;
  uint32_t partition_id = 0;
  uint32_t total_partitions = 1;
  Dataset points{1};

  /// Quarantine marker: the cell's data could not be (fully) produced and
  /// the whole cell must be discarded downstream. Carries no points.
  bool dropped = false;
  std::string drop_reason;
};

/// One partial-k-means output: the weighted centroids of one partition.
struct CentroidMessage {
  GridCellId cell;
  uint32_t partition_id = 0;
  uint32_t total_partitions = 1;
  WeightedDataset centroids{1};
  double partial_sse = 0.0;
  size_t partial_iterations = 0;
  size_t input_points = 0;

  /// Quarantine marker forwarded/originated by a partial operator: the
  /// merge operator discards the cell and records it as skipped.
  bool dropped = false;
  std::string drop_reason;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_MESSAGE_H_
