#include "stream/checkpoint.h"

#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/annotations.h"
#include "common/fault.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pmkm {

namespace {

// ---- Little-endian payload codec ------------------------------------------
//
// Payloads reuse the journal's byte order (data/manifest.cc). Doubles are
// stored as their IEEE-754 bit pattern so a resumed run restores exactly
// the doubles the crashed run computed — bitwise identity is the whole
// point of checkpointing a deterministic pipeline.

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutF64Span(std::vector<uint8_t>* out, std::span<const double> values) {
  PutU64(out, values.size());
  for (double v : values) PutF64(out, v);
}

// Bounds-checked read cursor: every decode failure surfaces as a Status
// instead of UB, because checkpoint payloads may be arbitrary corrupt
// bytes that happened to pass CRC (e.g. hand-edited journals).
class Cursor {
 public:
  explicit Cursor(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    *out = static_cast<uint32_t>(bytes_[pos_]) |
           static_cast<uint32_t>(bytes_[pos_ + 1]) << 8 |
           static_cast<uint32_t>(bytes_[pos_ + 2]) << 16 |
           static_cast<uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    uint32_t lo = 0, hi = 0;
    PMKM_RETURN_NOT_OK(ReadU32(&lo));
    PMKM_RETURN_NOT_OK(ReadU32(&hi));
    *out = static_cast<uint64_t>(hi) << 32 | lo;
    return Status::OK();
  }

  Status ReadI32(int32_t* out) {
    uint32_t raw = 0;
    PMKM_RETURN_NOT_OK(ReadU32(&raw));
    *out = static_cast<int32_t>(raw);
    return Status::OK();
  }

  Status ReadF64(double* out) {
    uint64_t bits = 0;
    PMKM_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status ReadF64Vec(std::vector<double>* out) {
    uint64_t count = 0;
    PMKM_RETURN_NOT_OK(ReadU64(&count));
    if (count > remaining() / 8) return Truncated("double array");
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      PMKM_RETURN_NOT_OK(ReadF64(&(*out)[i]));
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::IOError(std::string("checkpoint payload truncated: ") +
                            what);
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

// Payload schema versions, bumped independently of the journal framing.
constexpr uint32_t kCellPayloadVersion = 1;
constexpr uint32_t kPartialPayloadVersion = 1;

// Dimensionality/row-count sanity caps: a CRC-valid but nonsense payload
// must not drive a multi-gigabyte allocation.
constexpr uint64_t kMaxDim = 1u << 20;
constexpr uint64_t kMaxRows = 1u << 28;

Status DecodeDataset(Cursor* cur, Dataset* out) {
  uint64_t dim = 0, rows = 0;
  PMKM_RETURN_NOT_OK(cur->ReadU64(&dim));
  PMKM_RETURN_NOT_OK(cur->ReadU64(&rows));
  if (dim == 0 || dim > kMaxDim || rows > kMaxRows) {
    return Status::IOError("checkpoint payload has implausible dataset "
                            "shape");
  }
  if (rows * dim > cur->remaining() / 8) {
    return Status::IOError("checkpoint payload truncated: dataset rows");
  }
  std::vector<double> flat(rows * dim);
  for (auto& v : flat) PMKM_RETURN_NOT_OK(cur->ReadF64(&v));
  PMKM_ASSIGN_OR_RETURN(*out, Dataset::FromFlat(dim, std::move(flat)));
  return Status::OK();
}

void EncodeDataset(std::vector<uint8_t>* out, const Dataset& data) {
  PutU64(out, data.dim());
  PutU64(out, data.size());
  for (double v : data.values()) PutF64(out, v);
}

}  // namespace

std::string CheckpointJournalPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "journal.pmkj").string();
}

std::vector<uint8_t> EncodeCellComplete(
    const CellClustering& cell) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU32(&out, kCellPayloadVersion);
  PutI32(&out, cell.cell.lat_index);
  PutI32(&out, cell.cell.lon_index);
  PutU64(&out, cell.input_points);
  PutU64(&out, cell.pooled_centroids);
  PutF64(&out, cell.merge_seconds);
  EncodeDataset(&out, cell.model.centroids);
  PutF64Span(&out, cell.model.weights);
  PutF64(&out, cell.model.sse);
  PutF64(&out, cell.model.mse_per_point);
  PutU64(&out, cell.model.iterations);
  PutU32(&out, cell.model.converged ? 1 : 0);
  return out;
}

Result<CellClustering> DecodeCellComplete(std::span<const uint8_t> payload) {
  Cursor cur(payload);
  uint32_t version = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU32(&version));
  if (version != kCellPayloadVersion) {
    return Status::IOError("unknown cell-complete payload version");
  }
  CellClustering cell;
  PMKM_RETURN_NOT_OK(cur.ReadI32(&cell.cell.lat_index));
  PMKM_RETURN_NOT_OK(cur.ReadI32(&cell.cell.lon_index));
  uint64_t input_points = 0, pooled = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU64(&input_points));
  PMKM_RETURN_NOT_OK(cur.ReadU64(&pooled));
  cell.input_points = input_points;
  cell.pooled_centroids = pooled;
  PMKM_RETURN_NOT_OK(cur.ReadF64(&cell.merge_seconds));
  PMKM_RETURN_NOT_OK(DecodeDataset(&cur, &cell.model.centroids));
  PMKM_RETURN_NOT_OK(cur.ReadF64Vec(&cell.model.weights));
  if (cell.model.weights.size() != cell.model.centroids.size()) {
    return Status::IOError("cell-complete payload weight/centroid "
                            "count mismatch");
  }
  PMKM_RETURN_NOT_OK(cur.ReadF64(&cell.model.sse));
  PMKM_RETURN_NOT_OK(cur.ReadF64(&cell.model.mse_per_point));
  uint64_t iterations = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU64(&iterations));
  cell.model.iterations = iterations;
  uint32_t converged = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU32(&converged));
  cell.model.converged = converged != 0;
  return cell;
}

std::vector<uint8_t> EncodePartialState(
    GridCellId cell, const IncrementalMergeState& state) PMKM_DETERMINISTIC {
  std::vector<uint8_t> out;
  PutU32(&out, kPartialPayloadVersion);
  PutI32(&out, cell.lat_index);
  PutI32(&out, cell.lon_index);
  PutU64(&out, state.partitions_merged);
  PutF64(&out, state.last_sse);
  PutU64(&out, state.last_iterations);
  EncodeDataset(&out, state.running.points());
  PutF64Span(&out, state.running.weights());
  return out;
}

Result<std::pair<GridCellId, IncrementalMergeState>> DecodePartialState(
    std::span<const uint8_t> payload) {
  Cursor cur(payload);
  uint32_t version = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU32(&version));
  if (version != kPartialPayloadVersion) {
    return Status::IOError("unknown partial-state payload version");
  }
  GridCellId cell;
  PMKM_RETURN_NOT_OK(cur.ReadI32(&cell.lat_index));
  PMKM_RETURN_NOT_OK(cur.ReadI32(&cell.lon_index));
  IncrementalMergeState state;
  uint64_t partitions = 0, iterations = 0;
  PMKM_RETURN_NOT_OK(cur.ReadU64(&partitions));
  PMKM_RETURN_NOT_OK(cur.ReadF64(&state.last_sse));
  PMKM_RETURN_NOT_OK(cur.ReadU64(&iterations));
  state.partitions_merged = partitions;
  state.last_iterations = iterations;
  Dataset points(1);
  PMKM_RETURN_NOT_OK(DecodeDataset(&cur, &points));
  std::vector<double> weights;
  PMKM_RETURN_NOT_OK(cur.ReadF64Vec(&weights));
  PMKM_ASSIGN_OR_RETURN(
      state.running, WeightedDataset::Create(std::move(points),
                                             std::move(weights)));
  return std::make_pair(cell, std::move(state));
}

CheckpointState ReplayCheckpointJournal(const JournalRecovery& recovery) {
  CheckpointState state;
  state.journal_found = true;
  state.epoch = recovery.epoch;
  state.torn_tail = recovery.torn_tail;
  state.tail_error = recovery.tail_error;
  for (const JournalRecord& record : recovery.records) {
    switch (static_cast<CheckpointRecordType>(record.type)) {
      case CheckpointRecordType::kRunBegin: {
        Cursor cur(record.payload);
        uint64_t fp = 0;
        if (cur.ReadU64(&fp).ok()) {
          // A later kRunBegin (journal reused across runs) supersedes —
          // everything before it belongs to an older run, so drop it.
          state.completed.clear();
          state.partials.clear();
          state.config_fingerprint = fp;
          state.fingerprint_known = true;
          state.run_complete = false;
          // The writing run's id trails the fingerprint (absent in old
          // journals, which is fine).
          state.run_id.assign(record.payload.begin() + 8,
                              record.payload.end());
        } else {
          ++state.records_dropped;
        }
        break;
      }
      case CheckpointRecordType::kCellComplete: {
        Result<CellClustering> cell = DecodeCellComplete(record.payload);
        if (cell.ok()) {
          const GridCellId id = cell.value().cell;
          state.partials.erase(id);
          state.completed.insert_or_assign(id, std::move(cell).value());
        } else {
          ++state.records_dropped;
        }
        break;
      }
      case CheckpointRecordType::kPartialState: {
        auto partial = DecodePartialState(record.payload);
        if (partial.ok()) {
          auto [id, merge_state] = std::move(partial).value();
          // A completed cell wins over any later partial snapshot.
          if (state.completed.find(id) == state.completed.end()) {
            state.partials.insert_or_assign(id, std::move(merge_state));
          }
        } else {
          ++state.records_dropped;
        }
        break;
      }
      case CheckpointRecordType::kRunEnd:
        state.run_complete = true;
        break;
      default:
        // Unknown record type: forward-compat skip, count it.
        ++state.records_dropped;
        break;
    }
  }
  return state;
}

Result<CheckpointState> LoadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointJournalPath(dir);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    CheckpointState state;
    state.journal_found = false;
    return state;
  }
  PMKM_ASSIGN_OR_RETURN(JournalRecovery recovery, RecoverJournal(path));
  return ReplayCheckpointJournal(recovery);
}

Result<CheckpointWriter> CheckpointWriter::Open(
    const CheckpointOptions& options, uint64_t config_fingerprint,
    const ObsContext& obs) {
  if (!options.enabled()) {
    return Status::InvalidArgument("checkpoint directory not set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir: " + options.dir +
                           " (" + ec.message() + ")");
  }

  CheckpointWriter writer;
  writer.options_ = options;
  writer.obs_ = obs;

  const std::string path = CheckpointJournalPath(options.dir);
  bool start_fresh = !options.resume;
  if (!start_fresh) {
    PMKM_ASSIGN_OR_RETURN(CheckpointState loaded, LoadCheckpoint(options.dir));
    if (loaded.journal_found && loaded.fingerprint_known &&
        loaded.config_fingerprint != config_fingerprint) {
      PMKM_LOG(Warning)
          << "checkpoint " << path << " was written under a different "
          << "configuration (fingerprint " << loaded.config_fingerprint
          << " != " << config_fingerprint << "); starting fresh";
      start_fresh = true;
    } else if (loaded.journal_found && loaded.run_complete) {
      // The previous run finished; its journal is stale for a new run.
      start_fresh = true;
    } else {
      writer.recovered_ = std::move(loaded);
    }
  }

  PMKM_ASSIGN_OR_RETURN(JournalWriter journal,
                        JournalWriter::Open(path, /*truncate=*/start_fresh));
  writer.journal_.emplace(std::move(journal));

  if (writer.recovered_.torn_tail) {
    PMKM_LOG(Warning) << "checkpoint " << path
                      << " had a torn tail (truncated to epoch "
                      << writer.recovered_.epoch
                      << "): " << writer.recovered_.tail_error;
  }
  if (writer.recovered_.records_dropped > 0) {
    PMKM_LOG(Warning) << "checkpoint " << path << " dropped "
                      << writer.recovered_.records_dropped
                      << " undecodable record(s)";
  }

  if (!writer.recovered_.fingerprint_known) {
    std::vector<uint8_t> payload;
    PutU64(&payload, config_fingerprint);
    // The run id rides after the fingerprint; old decoders ignore
    // trailing payload bytes, so this stays resume-compatible.
    payload.insert(payload.end(), obs.run_id.begin(), obs.run_id.end());
    PMKM_RETURN_NOT_OK(writer.Append(CheckpointRecordType::kRunBegin,
                                     payload));
    PMKM_RETURN_NOT_OK(writer.SyncNow());
  }
  return writer;
}

Status CheckpointWriter::Append(CheckpointRecordType type,
                                std::span<const uint8_t> payload) {
  PMKM_CHECK(journal_.has_value());
  PMKM_FAULT_POINT("checkpoint.append");
  const auto start = std::chrono::steady_clock::now();
  PMKM_RETURN_NOT_OK(
      journal_->Append(static_cast<uint32_t>(type), payload));
  if (obs_.metrics != nullptr) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    obs_.metrics->counter("checkpoint.records").Increment(1);
    obs_.metrics->counter("checkpoint.bytes")
        .Increment(payload.size() + internal::kRecordFixedBytes);
    obs_.metrics->histogram("checkpoint.append_us").Record(us);
  }
  ++unsynced_;
  if (unsynced_ >= std::max<size_t>(1, options_.sync_interval)) {
    return SyncNow();
  }
  return Status::OK();
}

Status CheckpointWriter::SyncNow() {
  PMKM_CHECK(journal_.has_value());
  if (unsynced_ == 0) return Status::OK();
  const auto start = std::chrono::steady_clock::now();
  PMKM_RETURN_NOT_OK(journal_->Sync());
  if (obs_.metrics != nullptr) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    obs_.metrics->histogram("checkpoint.fsync_us").Record(us);
  }
  unsynced_ = 0;
  return Status::OK();
}

Status CheckpointWriter::AppendCellComplete(const CellClustering& cell) {
  ScopedSpan span(obs_.trace, "checkpoint.cell", "checkpoint");
  if (span.enabled()) span.AddArg("cell", JsonValue(cell.cell.ToString()));
  PMKM_RETURN_NOT_OK(Append(CheckpointRecordType::kCellComplete,
                            EncodeCellComplete(cell)));
  ++cells_appended_;
  return Status::OK();
}

Status CheckpointWriter::AppendPartialState(
    GridCellId cell, const IncrementalMergeState& state) {
  ScopedSpan span(obs_.trace, "checkpoint.partial", "checkpoint");
  if (span.enabled()) span.AddArg("cell", JsonValue(cell.ToString()));
  return Append(CheckpointRecordType::kPartialState,
                EncodePartialState(cell, state));
}

Status CheckpointWriter::Finalize() {
  PMKM_CHECK(journal_.has_value());
  if (finalized_) return Status::OK();
  PMKM_RETURN_NOT_OK(Append(CheckpointRecordType::kRunEnd, {}));
  PMKM_RETURN_NOT_OK(SyncNow());
  finalized_ = true;
  return Status::OK();
}

uint64_t CheckpointWriter::epoch() const {
  PMKM_CHECK(journal_.has_value());
  return journal_->next_seq() - 1;
}

uint64_t CheckpointWriter::bytes_appended() const {
  PMKM_CHECK(journal_.has_value());
  return journal_->bytes_appended();
}

}  // namespace pmkm
