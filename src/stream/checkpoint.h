// Checkpoint/restore for streamed partial/merge runs (DESIGN.md §13).
//
// The paper's one-pass design exists because the data is too big to
// revisit — so a crash at bucket 9,999 of 10,000 must not force a full
// re-read. This layer makes the run's progress durable: every completed
// cell clustering is appended to a crash-safe journal (data/manifest.h) in
// the checkpoint directory, and a restarted run resumes from the last
// committed record instead of restarting.
//
//   dir/journal.pmkj     append-only record journal (the manifest format)
//
// Record semantics (payloads are little-endian, encoded/decoded here):
//
//   kRunBegin      config fingerprint — resuming under a different
//                  engine configuration silently starts fresh (mixing
//                  models computed under different configs would corrupt
//                  the run's statistical contract).
//   kCellComplete  one finished cell: id + its full ClusteringModel
//                  (bit-exact doubles, so a resumed run's output is
//                  bitwise-identical to an uninterrupted one).
//   kPartialState  snapshot of an IncrementalMergeKMeans fold for a cell
//                  (the anytime-query substrate, ROADMAP item 3).
//   kRunEnd        clean end of run.
//
// Failure contract: corruption is never fatal. A torn tail or flipped bit
// bounds the valid prefix (recovery lands on the last valid epoch), the
// affected cells are simply re-clustered, and an unreadable journal under
// kSkipAndContinue degrades the run to uncheckpointed instead of failing
// it — the same "quarantine and continue" stance the scan takes on
// corrupt buckets.

#ifndef PMKM_STREAM_CHECKPOINT_H_
#define PMKM_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/incremental_merge.h"
#include "common/annotations.h"
#include "data/manifest.h"
#include "obs/stats.h"
#include "stream/ops.h"

namespace pmkm {

/// Where and how often a run checkpoints.
struct CheckpointOptions {
  /// Checkpoint directory; empty disables checkpointing entirely.
  std::string dir;

  /// fsync the journal every N appended cell records (1 = every cell:
  /// maximum durability; larger values batch fsyncs and bound data loss
  /// to the last N cells).
  size_t sync_interval = 1;

  /// When false, an existing journal is discarded and the run starts
  /// fresh (pmkm_cluster --no-resume).
  bool resume = true;

  bool enabled() const { return !dir.empty(); }
};

/// Journal record types (the `type` field of data/manifest.h records).
enum class CheckpointRecordType : uint32_t {
  kRunBegin = 1,
  kCellComplete = 2,
  kPartialState = 3,
  kRunEnd = 4,
};

/// The replayed content of a checkpoint journal.
struct CheckpointState {
  /// False when no journal file existed at all.
  bool journal_found = false;

  /// Fingerprint from the kRunBegin record (when one was recovered).
  uint64_t config_fingerprint = 0;
  bool fingerprint_known = false;

  /// Run id of the run that wrote the journal (trailing bytes of the
  /// kRunBegin payload; empty for journals from before run ids existed —
  /// decoders ignore trailing bytes, so the formats interoperate).
  std::string run_id;

  /// Sequence number of the last valid record — the epoch recovery landed
  /// on. 0 for an empty/missing journal.
  uint64_t epoch = 0;

  /// True when a kRunEnd record was recovered (the previous run finished).
  bool run_complete = false;

  /// True when recovery discarded a torn/corrupt tail.
  bool torn_tail = false;
  std::string tail_error;

  /// CRC-valid records whose payload failed to decode (version skew,
  /// adversarial corruption that survived CRC). Counted, never fatal.
  size_t records_dropped = 0;

  /// Completed cells, last record wins. A resumed run restores these
  /// verbatim and re-clusters only what is missing.
  std::map<GridCellId, CellClustering> completed;

  /// Incremental-merge snapshots, last record per cell wins.
  std::map<GridCellId, IncrementalMergeState> partials;
};

/// `<dir>/journal.pmkj`.
std::string CheckpointJournalPath(const std::string& dir);

/// Replays recovered journal records into a CheckpointState. Decode
/// failures are counted in records_dropped, never returned as errors.
CheckpointState ReplayCheckpointJournal(const JournalRecovery& recovery);

/// Read-only load of the checkpoint in `dir` (used by pmkm_inspect and by
/// tests). Missing journal → journal_found=false, no error.
Result<CheckpointState> LoadCheckpoint(const std::string& dir);

/// Payload codecs, exposed for pmkm_inspect and the round-trip tests.
std::vector<uint8_t> EncodeCellComplete(const CellClustering& cell);
Result<CellClustering> DecodeCellComplete(
    std::span<const uint8_t> payload);
std::vector<uint8_t> EncodePartialState(GridCellId cell,
                                        const IncrementalMergeState& state);
Result<std::pair<GridCellId, IncrementalMergeState>> DecodePartialState(
    std::span<const uint8_t> payload);

/// Appends checkpoint records for one run. Open() recovers any existing
/// journal (truncating a torn tail), validates the config fingerprint
/// (mismatch → start fresh), and exposes the recovered state the engine
/// resumes from. Not thread-safe: owned by the single merge operator.
class CheckpointWriter {
 public:
  /// Opens (creating if needed) the checkpoint in `options.dir`.
  /// `config_fingerprint` identifies the run configuration; a journal
  /// written under a different fingerprint is discarded with a warning.
  /// Observability sinks are optional; when present the writer emits
  /// checkpoint.* metrics and trace spans.
  static Result<CheckpointWriter> Open(const CheckpointOptions& options,
                                       uint64_t config_fingerprint,
                                       const ObsContext& obs = ObsContext{});

  CheckpointWriter(CheckpointWriter&&) = default;
  CheckpointWriter& operator=(CheckpointWriter&&) = default;

  /// State recovered by Open() (empty after rotation/fresh start).
  const CheckpointState& recovered() const { return recovered_; }

  /// Appends one completed cell. Durable after the sync-interval'th
  /// append (and at Finalize()). Fault site: "checkpoint.append".
  Status AppendCellComplete(const CellClustering& cell) PMKM_DETERMINISTIC;

  /// Appends an incremental-merge snapshot for `cell`.
  Status AppendPartialState(GridCellId cell,
                            const IncrementalMergeState& state)
      PMKM_DETERMINISTIC;

  /// Marks the run complete (kRunEnd) and fsyncs. Idempotent for a run
  /// that appended nothing on top of an already-complete journal.
  Status Finalize();

  /// Journal epoch after the most recent append.
  uint64_t epoch() const;

  /// Cell records appended by this writer (excludes recovered ones).
  size_t cells_appended() const { return cells_appended_; }

  uint64_t bytes_appended() const;

 private:
  CheckpointWriter() = default;

  Status Append(CheckpointRecordType type,
                std::span<const uint8_t> payload);
  Status SyncNow();

  CheckpointOptions options_;
  std::optional<JournalWriter> journal_;
  CheckpointState recovered_;
  ObsContext obs_;
  size_t cells_appended_ = 0;
  size_t unsynced_ = 0;
  bool finalized_ = false;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_CHECKPOINT_H_
