#include "stream/operator.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace pmkm {

Status Executor::Run() {
  std::mutex mu;
  Status first_error;
  std::atomic<bool> failed{false};

  auto on_error = [&](const Status& st) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        first_error = st;
      }
      for (auto& op : ops_) op->Abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ops_.size());
  for (auto& op : ops_) {
    threads.emplace_back([&, raw = op.get()] {
      const Status st = raw->Run();
      if (!st.ok()) on_error(st);
    });
  }
  for (auto& t : threads) t.join();

  std::lock_guard<std::mutex> lock(mu);
  return first_error;
}

}  // namespace pmkm
