#include "stream/operator.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/schedcheck/thread.h"
#include "common/stopwatch.h"
#include "obs/runboard.h"
#include "obs/trace.h"

namespace pmkm {

void Operator::PublishLive() {
  if (obs_.board != nullptr) {
    obs_.board->PublishOperator(live_slot_, stats_);
  }
}

const char* FailurePolicyToString(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFailFast:
      return "failfast";
    case FailurePolicy::kRetryOperator:
      return "retry";
    case FailurePolicy::kSkipAndContinue:
      return "skip";
  }
  return "unknown";
}

Result<FailurePolicy> ParseFailurePolicy(const std::string& name) {
  if (name == "failfast" || name == "fail_fast") {
    return FailurePolicy::kFailFast;
  }
  if (name == "retry") return FailurePolicy::kRetryOperator;
  if (name == "skip") return FailurePolicy::kSkipAndContinue;
  return Status::InvalidArgument("unknown failure policy '" + name +
                                 "' (use failfast|retry|skip)");
}

namespace {

/// Supervision state shared by the operator threads and the watchdog for
/// one Executor::Run; annotated so the cross-thread accesses are verified
/// by thread-safety analysis.
struct RunState {
  Mutex mu;
  Status first_error PMKM_GUARDED_BY(mu);

  std::atomic<bool> failed{false};
  std::atomic<bool> degraded{false};
  std::atomic<size_t> running{0};

  /// Signals the watchdog: either poll timeout elapsed or pipeline done.
  Mutex wake_mu;
  CondVar wake_cv;
};

}  // namespace

Status Executor::Run(const ExecutorOptions& options) {
  report_ = ExecutorReport{};
  report_.operators.resize(ops_.size());
  if (ops_.empty()) return Status::OK();

  RunState state;
  state.running.store(ops_.size());
  std::vector<std::atomic<bool>> done(ops_.size());

  auto on_error = [&](const Status& st) {
    PMKM_SCHED_POINT("executor.on_error");
    bool expected = false;
    if (state.failed.compare_exchange_strong(expected, true)) {
      {
        MutexLock lock(state.mu);
        state.first_error = st;
      }
      for (auto& op : ops_) op->Abort();
    }
  };

  // schedcheck::Thread: plain std::thread outside a scheduler episode;
  // inside one, operator threads run under deterministic schedule control.
  std::vector<schedcheck::Thread> threads;
  threads.reserve(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    threads.emplace_back([&, i] {
      Operator* op = ops_[i].get();
      OperatorOutcome& outcome = report_.operators[i];
      outcome.name = op->name();
      // Wall/CPU clocks bracket every Run() attempt of this operator; the
      // span makes the operator's lifetime a row in the trace viewer.
      const Stopwatch wall;
      const ThreadCpuStopwatch cpu;
      ScopedSpan span(op->obs().trace, "operator:" + op->name(),
                      "executor");
      Status st;
      size_t restarts = 0;
      for (;;) {
        st = op->Run();
        if (st.ok() || st.IsCancelled() ||
            state.failed.load(std::memory_order_acquire)) {
          break;
        }
        if (op->failure_policy() == FailurePolicy::kRetryOperator &&
            op->SupportsRestart() && restarts < options.max_retries) {
          const Status rs = op->PrepareRestart();
          if (rs.ok()) {
            ++restarts;
            PMKM_LOG(Warning)
                << "restarting operator '" << op->name() << "' (attempt "
                << restarts + 1 << ") after: " << st;
            continue;
          }
          st = rs;
        }
        break;
      }
      op->Finish();
      OperatorStats& stats = op->mutable_stats();
      stats.wall_seconds += wall.ElapsedSeconds();
      stats.cpu_seconds += cpu.ElapsedSeconds();
      stats.restarts += restarts;
      outcome.status = st;
      outcome.restarts = restarts;
      outcome.stats = stats;
      if (!st.ok()) {
        const bool torn_down =
            st.IsCancelled() && state.failed.load(std::memory_order_acquire);
        if (!torn_down) {
          if (!st.IsCancelled() &&
              op->failure_policy() == FailurePolicy::kSkipAndContinue) {
            // Tolerated: the operator closed out cleanly (Finish above),
            // so downstream still observes an exact end-of-stream.
            outcome.skipped = true;
            state.degraded.store(true, std::memory_order_relaxed);
            PMKM_LOG(Warning) << "operator '" << op->name()
                              << "' skipped after failure: " << st;
          } else {
            on_error(st);
          }
        }
      }
      done[i].store(true, std::memory_order_release);
      if (state.running.fetch_sub(1) == 1) {
        MutexLock lock(state.wake_mu);
        state.wake_cv.NotifyAll();
      }
    }, "op-worker");
  }

  schedcheck::Thread watchdog;
  if (options.op_timeout_ms > 0) {
    watchdog = schedcheck::Thread([&] {
      using Clock = std::chrono::steady_clock;
      const auto poll = std::chrono::milliseconds(
          options.watchdog_poll_ms == 0 ? 10 : options.watchdog_poll_ms);
      const auto timeout =
          std::chrono::milliseconds(options.op_timeout_ms);
      uint64_t last_sum = 0;
      for (auto& op : ops_) last_sum += op->progress();
      auto last_change = Clock::now();
      MutexLock lock(state.wake_mu);
      for (;;) {
        state.wake_cv.WaitFor(state.wake_mu, poll);
        if (state.running.load(std::memory_order_acquire) == 0 ||
            state.failed.load(std::memory_order_acquire)) {
          return;
        }
        uint64_t sum = 0;
        for (auto& op : ops_) sum += op->progress();
        const auto now = Clock::now();
        if (sum != last_sum) {
          last_sum = sum;
          last_change = now;
          continue;
        }
        if (now - last_change < timeout) continue;
        std::string stalled;
        for (size_t i = 0; i < ops_.size(); ++i) {
          if (done[i].load(std::memory_order_acquire)) continue;
          if (!stalled.empty()) stalled += ", ";
          stalled += ops_[i]->name();
        }
        report_.stalled_operators = stalled;
        on_error(Status::DeadlineExceeded(
            "watchdog: no pipeline progress for " +
            std::to_string(options.op_timeout_ms) +
            " ms; stalled operator(s): " + stalled));
        return;
      }
    }, "watchdog");
  }

  for (auto& t : threads) t.Join();
  if (watchdog.Joinable()) {
    {
      MutexLock lock(state.wake_mu);
      state.wake_cv.NotifyAll();
    }
    watchdog.Join();
  }

  for (const OperatorOutcome& outcome : report_.operators) {
    report_.total_restarts += outcome.restarts;
  }
  report_.degraded = state.degraded.load(std::memory_order_relaxed);

  MutexLock lock(state.mu);
  return state.first_error;
}

}  // namespace pmkm
