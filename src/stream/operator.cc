#include "stream/operator.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace pmkm {

const char* FailurePolicyToString(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFailFast:
      return "failfast";
    case FailurePolicy::kRetryOperator:
      return "retry";
    case FailurePolicy::kSkipAndContinue:
      return "skip";
  }
  return "unknown";
}

Result<FailurePolicy> ParseFailurePolicy(const std::string& name) {
  if (name == "failfast" || name == "fail_fast") {
    return FailurePolicy::kFailFast;
  }
  if (name == "retry") return FailurePolicy::kRetryOperator;
  if (name == "skip") return FailurePolicy::kSkipAndContinue;
  return Status::InvalidArgument("unknown failure policy '" + name +
                                 "' (use failfast|retry|skip)");
}

Status Executor::Run(const ExecutorOptions& options) {
  report_ = ExecutorReport{};
  report_.operators.resize(ops_.size());
  if (ops_.empty()) return Status::OK();

  std::mutex mu;
  Status first_error;
  std::atomic<bool> failed{false};
  std::atomic<bool> degraded{false};
  std::atomic<size_t> running{ops_.size()};
  std::vector<std::atomic<bool>> done(ops_.size());
  std::mutex wake_mu;
  std::condition_variable wake_cv;

  auto on_error = [&](const Status& st) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        first_error = st;
      }
      for (auto& op : ops_) op->Abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    threads.emplace_back([&, i] {
      Operator* op = ops_[i].get();
      OperatorOutcome& outcome = report_.operators[i];
      outcome.name = op->name();
      // Wall/CPU clocks bracket every Run() attempt of this operator; the
      // span makes the operator's lifetime a row in the trace viewer.
      const Stopwatch wall;
      const ThreadCpuStopwatch cpu;
      ScopedSpan span(op->obs().trace, "operator:" + op->name(),
                      "executor");
      Status st;
      size_t restarts = 0;
      for (;;) {
        st = op->Run();
        if (st.ok() || st.IsCancelled() ||
            failed.load(std::memory_order_acquire)) {
          break;
        }
        if (op->failure_policy() == FailurePolicy::kRetryOperator &&
            op->SupportsRestart() && restarts < options.max_retries) {
          const Status rs = op->PrepareRestart();
          if (rs.ok()) {
            ++restarts;
            PMKM_LOG(Warning)
                << "restarting operator '" << op->name() << "' (attempt "
                << restarts + 1 << ") after: " << st;
            continue;
          }
          st = rs;
        }
        break;
      }
      op->Finish();
      OperatorStats& stats = op->mutable_stats();
      stats.wall_seconds += wall.ElapsedSeconds();
      stats.cpu_seconds += cpu.ElapsedSeconds();
      stats.restarts += restarts;
      outcome.status = st;
      outcome.restarts = restarts;
      outcome.stats = stats;
      if (!st.ok()) {
        const bool torn_down =
            st.IsCancelled() && failed.load(std::memory_order_acquire);
        if (!torn_down) {
          if (!st.IsCancelled() &&
              op->failure_policy() == FailurePolicy::kSkipAndContinue) {
            // Tolerated: the operator closed out cleanly (Finish above),
            // so downstream still observes an exact end-of-stream.
            outcome.skipped = true;
            degraded.store(true, std::memory_order_relaxed);
            PMKM_LOG(Warning) << "operator '" << op->name()
                              << "' skipped after failure: " << st;
          } else {
            on_error(st);
          }
        }
      }
      done[i].store(true, std::memory_order_release);
      if (running.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(wake_mu);
        wake_cv.notify_all();
      }
    });
  }

  std::thread watchdog;
  if (options.op_timeout_ms > 0) {
    watchdog = std::thread([&] {
      using Clock = std::chrono::steady_clock;
      const auto poll = std::chrono::milliseconds(
          options.watchdog_poll_ms == 0 ? 10 : options.watchdog_poll_ms);
      const auto timeout =
          std::chrono::milliseconds(options.op_timeout_ms);
      uint64_t last_sum = 0;
      for (auto& op : ops_) last_sum += op->progress();
      auto last_change = Clock::now();
      std::unique_lock<std::mutex> lock(wake_mu);
      for (;;) {
        wake_cv.wait_for(lock, poll);
        if (running.load(std::memory_order_acquire) == 0 ||
            failed.load(std::memory_order_acquire)) {
          return;
        }
        uint64_t sum = 0;
        for (auto& op : ops_) sum += op->progress();
        const auto now = Clock::now();
        if (sum != last_sum) {
          last_sum = sum;
          last_change = now;
          continue;
        }
        if (now - last_change < timeout) continue;
        std::string stalled;
        for (size_t i = 0; i < ops_.size(); ++i) {
          if (done[i].load(std::memory_order_acquire)) continue;
          if (!stalled.empty()) stalled += ", ";
          stalled += ops_[i]->name();
        }
        report_.stalled_operators = stalled;
        on_error(Status::DeadlineExceeded(
            "watchdog: no pipeline progress for " +
            std::to_string(options.op_timeout_ms) +
            " ms; stalled operator(s): " + stalled));
        return;
      }
    });
  }

  for (auto& t : threads) t.join();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wake_mu);
      wake_cv.notify_all();
    }
    watchdog.join();
  }

  for (const OperatorOutcome& outcome : report_.operators) {
    report_.total_restarts += outcome.restarts;
  }
  report_.degraded = degraded.load(std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu);
  return first_error;
}

}  // namespace pmkm
