#include "stream/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/debug_server.h"
#include "obs/metrics.h"
#include "obs/runboard.h"
#include "obs/trace.h"
#include "stream/explain.h"

namespace pmkm {

namespace {

// A fresh run id: 16 hex chars hashed from the wall clock, this process's
// address space and a per-process counter — unique enough to correlate
// the artifacts of one run without any coordination.
std::string GenerateRunId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  const auto self = reinterpret_cast<uintptr_t>(&counter);  // ASLR entropy
  uint64_t h = internal::Fnv1a64(&now, sizeof(now), internal::kFnvOffset);
  h = internal::Fnv1a64(&seq, sizeof(seq), h);
  h = internal::Fnv1a64(&self, sizeof(self), h);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Stamps the run id onto every attached artifact sink: log lines, the
// metrics export (pmkm_run_info) and the trace file.
void ApplyRunIdTags(const ObsContext& obs) {
  SetLogRunId(obs.run_id);
  if (obs.metrics != nullptr) obs.metrics->SetRunId(obs.run_id);
  if (obs.trace != nullptr) obs.trace->SetRunId(obs.run_id);
}

std::string PlanSummary(const PhysicalPlan& plan) {
  return "chunk=" + std::to_string(plan.chunk_points) + " clones=" +
         std::to_string(plan.partial_clones) + " queue=" +
         std::to_string(plan.queue_capacity);
}

// Publishes a failed run to the board (no-op without one) and forwards
// the status, so error returns stay one-liners.
Status FailRun(const ObsContext& obs, Status status) {
  if (obs.board != nullptr) {
    JsonValue error = JsonValue::Object();
    error.Set("error", status.ToString());
    obs.board->EndRun(false, status.ToString(), std::move(error));
  }
  return status;
}

// Resolves options.kernel and points both Lloyd configs at it (explicitly
// set lloyd.kernel pointers win). Fails if the host cannot run it.
Status ResolveKernel(EngineOptions* options) {
  if (!KernelAvailable(options->kernel)) {
    return Status::InvalidArgument(
        "kernel '" + std::string(KernelKindToString(options->kernel)) +
        "' is not available on this host (host is " + HostIsaDescription() +
        ")");
  }
  const DistanceKernel* kernel = &GetKernel(options->kernel);
  if (options->partial.lloyd.kernel == nullptr) {
    options->partial.lloyd.kernel = kernel;
  }
  if (options->merge.lloyd.kernel == nullptr) {
    options->merge.lloyd.kernel = kernel;
  }
  return Status::OK();
}

// Applies a forced partition size to an already-computed plan: the clone
// count and queue capacity are re-derived against the override.
void ApplyChunkOverride(const EngineOptions& options, size_t max_points,
                        size_t dim, PhysicalPlan* plan) {
  if (options.chunk_points_override == 0) return;
  plan->chunk_points = options.chunk_points_override;
  const size_t chunks = std::max<size_t>(
      1, (max_points + plan->chunk_points - 1) / plan->chunk_points);
  const size_t cores = options.resources.EffectiveCores();
  plan->partial_clones =
      std::max<size_t>(1, std::min(cores > 1 ? cores - 1 : 1, chunks));
  plan->queue_capacity = PlanQueueCapacity(
      plan->partial_clones, plan->chunk_points, dim,
      options.resources.memory_bytes_per_operator);
}

// Fingerprint over every configuration field that affects the numeric
// result of a run, plus the planned partition size N'. A checkpoint
// journal written under a different fingerprint must not be resumed:
// mixing cells clustered under different configs (or chunkings) would
// silently change the output, so the engine starts fresh instead. The
// kernel is deliberately excluded (assignments are bit-identical across
// kernels) and so is the clone count (the merge pools partitions in id
// order, independent of arrival interleaving).
uint64_t ConfigFingerprint(const EngineOptions& options,
                           const PhysicalPlan& plan) {
  uint64_t h = internal::kFnvOffset;
  const auto mix = [&h](uint64_t v) {
    h = internal::Fnv1a64(&v, sizeof(v), h);
  };
  const auto mix_f64 = [&mix](double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(options.partial.k);
  mix(options.partial.restarts);
  mix(static_cast<uint64_t>(options.partial.seeding));
  mix(options.partial.seed);
  mix(options.partial.accelerate ? 1 : 0);
  mix_f64(options.partial.lloyd.epsilon);
  mix(options.partial.lloyd.max_iterations);
  mix(options.merge.k);
  mix(options.merge.restarts);
  mix(static_cast<uint64_t>(options.merge.seeding));
  mix(options.merge.seed);
  mix_f64(options.merge.lloyd.epsilon);
  mix(options.merge.lloyd.max_iterations);
  mix(plan.chunk_points);
  return h;
}

// Splits the input into buckets still to cluster and cells restored from
// the journal. Each path's header is probed for its cell id; unreadable
// buckets stay in the todo list so the scan applies the real failure
// policy (retry/quarantine) to them.
struct ResumeSplit {
  std::vector<std::string> todo;
  std::map<GridCellId, CellClustering> restored;
};

ResumeSplit SplitResumablePaths(
    const std::vector<std::string>& paths,
    const std::map<GridCellId, CellClustering>& completed) {
  ResumeSplit out;
  for (const std::string& path : paths) {
    auto probe = GridBucketReader::Open(path);
    if (probe.ok()) {
      auto it = completed.find(probe->cell());
      if (it != completed.end()) {
        out.restored.emplace(it->first, it->second);
        continue;
      }
    }
    out.todo.push_back(path);
  }
  return out;
}

// Copies checkpoint accounting into the run report and metrics.
void FillCheckpointReport(const CheckpointWriter* checkpoint,
                          size_t cells_resumed, bool degraded,
                          const ObsContext& obs, RunReport* report) {
  report->cells_resumed = cells_resumed;
  report->checkpoint_degraded = degraded;
  if (checkpoint != nullptr) {
    report->checkpoint_cells = checkpoint->cells_appended();
    report->checkpoint_epoch = checkpoint->epoch();
    report->checkpoint_torn_tail = checkpoint->recovered().torn_tail;
  }
  if (obs.metrics != nullptr && cells_resumed > 0) {
    obs.metrics->counter("checkpoint.cells_resumed")
        .Increment(cells_resumed);
  }
}

// Executes the compiled plan: wires queues and operators, runs the
// executor, and assembles the StreamRunResult (including the resilience
// report and per-operator stats). `checkpoint` (nullable) journals every
// completed cell; `restored` cells are folded into the result as if the
// merge had produced them.
Result<StreamRunResult> RunPlan(std::unique_ptr<Operator> scan,
                                ScanOperator* scan_raw,
                                std::shared_ptr<PointChunkQueue> points,
                                const EngineOptions& options,
                                const PhysicalPlan& plan,
                                CheckpointWriter* checkpoint = nullptr,
                                std::map<GridCellId, CellClustering>
                                    restored = {},
                                bool checkpoint_degraded = false) {
  const StreamExecOptions& exec = options.exec;
  auto centroids =
      std::make_shared<CentroidQueue>(plan.queue_capacity);

  // Queue instruments live in the registry, so they survive the queues
  // themselves and show up in the metrics export.
  if (exec.obs.metrics != nullptr) {
    MetricsRegistry* reg = exec.obs.metrics;
    points->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.points.depth"),
        &reg->histogram("queue.points.push_block_us"),
        &reg->histogram("queue.points.pop_wait_us")});
    centroids->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.centroids.depth"),
        &reg->histogram("queue.centroids.push_block_us"),
        &reg->histogram("queue.centroids.pop_wait_us")});
  }

  const bool tolerant =
      exec.failure_policy == FailurePolicy::kSkipAndContinue;

  Executor executor;
  scan->set_failure_policy(exec.failure_policy);
  scan->set_obs(exec.obs);
  scan->set_cancel_token(exec.cancel);
  scan->set_live_slot(0);
  std::vector<std::string> operator_names{scan->name()};
  executor.Add(std::move(scan));
  std::vector<PartialKMeansOperator*> partial_raw;
  for (size_t c = 0; c < plan.partial_clones; ++c) {
    auto partial = std::make_unique<PartialKMeansOperator>(
        options.partial, points, centroids,
        "partial-kmeans#" + std::to_string(c), exec.io_retry);
    partial->set_failure_policy(exec.failure_policy);
    partial->set_obs(exec.obs);
    partial->set_live_slot(operator_names.size());
    operator_names.push_back(partial->name());
    partial_raw.push_back(partial.get());
    executor.Add(std::move(partial));
  }
  auto merge = std::make_unique<MergeKMeansOperator>(options.merge,
                                                     centroids, tolerant);
  merge->set_obs(exec.obs);
  merge->set_failure_policy(exec.failure_policy);
  merge->set_checkpoint(checkpoint);
  merge->set_live_slot(operator_names.size());
  operator_names.push_back(merge->name());
  MergeKMeansOperator* merge_raw = merge.get();
  executor.Add(std::move(merge));

  if (exec.obs.board != nullptr) {
    exec.obs.board->BeginRun(exec.obs.run_id, PlanSummary(plan),
                             operator_names);
  }

  ExecutorOptions executor_options;
  executor_options.max_retries = exec.max_retries;
  executor_options.op_timeout_ms = exec.op_timeout_ms;

  const Stopwatch watch;
  if (Status st = executor.Run(executor_options); !st.ok()) {
    return FailRun(exec.obs, std::move(st));
  }

  StreamRunResult out;
  out.plan = plan;
  out.run_id = exec.obs.run_id;
  out.wall_seconds = watch.ElapsedSeconds();
  out.cells = merge_raw->results();
  // Resumed cells join the result as if the merge had just produced them
  // (a freshly recomputed cell wins on the off chance both exist).
  for (auto& [cell, clustering] : restored) {
    out.cells.emplace(cell, std::move(clustering));
  }

  RunReport& report = out.report;
  report.failure_policy = exec.failure_policy;
  report.cells_clustered = out.cells.size();
  report.operator_restarts = executor.report().total_restarts;
  report.stalled_operators = executor.report().stalled_operators;
  if (scan_raw != nullptr) {
    report.io_retries = scan_raw->io_retries();
    for (const QuarantinedBucket& q : scan_raw->quarantined()) {
      report.quarantined.push_back(QuarantinedCellReport{
          q.path, q.cell, q.cell_known, q.error.ToString()});
    }
  }
  for (PartialKMeansOperator* partial : partial_raw) {
    report.chunks_dropped += partial->chunks_dropped();
  }
  // Cells the merge skipped (dropped upstream or incomplete) that the scan
  // did not already report.
  for (const auto& [cell, reason] : merge_raw->skipped_cells()) {
    const bool already_reported = std::any_of(
        report.quarantined.begin(), report.quarantined.end(),
        [&cell = cell](const QuarantinedCellReport& q) {
          return q.cell_known && q.cell == cell;
        });
    if (!already_reported) {
      report.quarantined.push_back(
          QuarantinedCellReport{"", cell, true, reason});
    }
  }
  // A clean, fully-clustered run is sealed with kRunEnd so the next run
  // starts a fresh journal. A degraded run leaves the journal open: its
  // healthy cells stay resumable, and a re-run retries only the
  // quarantined/skipped ones.
  const bool run_degraded = !report.quarantined.empty() ||
                            report.chunks_dropped > 0 ||
                            executor.report().degraded;
  bool ckpt_degraded = checkpoint_degraded || merge_raw->checkpoint_failed();
  if (checkpoint != nullptr && !merge_raw->checkpoint_failed() &&
      !run_degraded) {
    const Status st = checkpoint->Finalize();
    if (!st.ok()) {
      if (exec.failure_policy == FailurePolicy::kFailFast) {
        return FailRun(exec.obs, st);
      }
      PMKM_LOG(Warning) << "checkpoint finalize failed: " << st;
      ckpt_degraded = true;
    }
  }
  FillCheckpointReport(checkpoint, restored.size(), ckpt_degraded,
                       exec.obs, &report);
  report.degraded = run_degraded;

  for (const OperatorOutcome& outcome : executor.report().operators) {
    out.operator_stats.push_back(outcome.stats);
  }
  out.queues.push_back(QueueStatsSnapshot{
      "points", points->capacity(), points->HighWaterMark(),
      points->total_pushed()});
  out.queues.push_back(QueueStatsSnapshot{
      "centroids", centroids->capacity(), centroids->HighWaterMark(),
      centroids->total_pushed()});
  if (exec.obs.metrics != nullptr) {
    for (const OperatorStats& stats : out.operator_stats) {
      stats.ExportTo(exec.obs.metrics);
    }
    for (const QueueStatsSnapshot& q : out.queues) {
      exec.obs.metrics->gauge("queue." + q.name + ".high_water")
          .Set(static_cast<int64_t>(q.high_water_mark));
      exec.obs.metrics->counter("queue." + q.name + ".pushed")
          .Increment(q.total_pushed);
    }
  }
  if (exec.obs.board != nullptr) {
    if (checkpoint != nullptr) {
      JsonValue ckpt = JsonValue::Object();
      ckpt.Set("cells_journaled", checkpoint->cells_appended());
      ckpt.Set("epoch", checkpoint->epoch());
      ckpt.Set("cells_resumed", out.report.cells_resumed);
      ckpt.Set("degraded", out.report.checkpoint_degraded);
      exec.obs.board->PublishCheckpoint(std::move(ckpt));
    }
    exec.obs.board->EndRun(
        true, out.report.degraded ? "ok (degraded)" : "ok",
        StreamRunResultToJson(out));
  }
  return out;
}

// Probes bucket files for dimensionality/sizing and compiles the physical
// plan. Under kSkipAndContinue an unreadable first bucket must not kill
// the run: probe forward until one opens (the scan will quarantine the
// bad ones properly later). Also reports the probed dim/points for
// EXPLAIN rendering.
struct ProbedPlan {
  PhysicalPlan plan;
  size_t dim = 0;
  size_t total_points = 0;
};

Result<ProbedPlan> PlanForPaths(const std::vector<std::string>& paths,
                                const EngineOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no bucket files given");
  }
  Status probe_error;
  for (const std::string& path : paths) {
    auto probe = GridBucketReader::Open(path);
    if (probe.ok()) {
      ProbedPlan out;
      out.dim = probe->dim();
      out.total_points = probe->total_points();
      out.plan = PlanPartialMerge(probe->dim(), probe->total_points(),
                                  options.resources);
      ApplyChunkOverride(options, probe->total_points(), probe->dim(),
                         &out.plan);
      return out;
    }
    probe_error = probe.status();
    if (options.exec.failure_policy != FailurePolicy::kSkipAndContinue) {
      return probe_error;
    }
  }
  return probe_error;
}

}  // namespace

void EngineFlags::Register(FlagParser* parser) {
  PMKM_CHECK(parser != nullptr);
  parser->AddInt("k", &k, "clusters per cell")
      .AddInt("restarts", &restarts, "random seed sets R")
      .AddInt("memory-kib", &memory_kib,
              "stream: per-operator memory budget")
      .AddInt("cores", &cores,
              "stream: worker cores for cloned operators (0 = autodetect)")
      .AddString("failure_policy", &failure_policy,
                 "stream: failfast | retry | skip")
      .AddInt("max_retries", &max_retries,
              "stream: operator restarts under --failure_policy=retry")
      .AddInt("op_timeout_ms", &op_timeout_ms,
              "stream: watchdog stall timeout (0 = off)")
      .AddString("kernel", &kernel,
                 "distance kernel: scalar | avx2 | neon | auto")
      .AddString("checkpoint_dir", &checkpoint_dir,
                 "stream: durable checkpoint directory (empty = off)")
      .AddInt("checkpoint_sync", &checkpoint_sync,
              "stream: fsync the checkpoint every N cells")
      .AddBool("resume", &resume,
               "stream: resume from an existing checkpoint "
               "(--no-resume starts fresh)");
}

Result<EngineOptions> EngineFlags::ToOptions() const {
  if (k <= 0) return Status::InvalidArgument("--k must be >= 1");
  if (restarts <= 0) {
    return Status::InvalidArgument("--restarts must be >= 1");
  }
  EngineOptions options;
  options.partial.k = static_cast<size_t>(k);
  options.partial.restarts = static_cast<size_t>(restarts);
  options.merge.k = static_cast<size_t>(k);
  options.resources.memory_bytes_per_operator =
      static_cast<size_t>(memory_kib) << 10;
  options.resources.cores = static_cast<size_t>(std::max<int64_t>(0, cores));
  PMKM_ASSIGN_OR_RETURN(options.exec.failure_policy,
                        ParseFailurePolicy(failure_policy));
  options.exec.max_retries = static_cast<size_t>(max_retries);
  options.exec.op_timeout_ms = static_cast<uint64_t>(op_timeout_ms);
  PMKM_ASSIGN_OR_RETURN(options.kernel, ParseKernelKind(kernel));
  if (!KernelAvailable(options.kernel)) {
    return Status::InvalidArgument(
        "--kernel=" + kernel + " is not available on this host (host is " +
        HostIsaDescription() + ")");
  }
  if (checkpoint_sync <= 0) {
    return Status::InvalidArgument("--checkpoint_sync must be >= 1");
  }
  options.checkpoint.dir = checkpoint_dir;
  options.checkpoint.sync_interval = static_cast<size_t>(checkpoint_sync);
  options.checkpoint.resume = resume;
  return options;
}

PipelineBuilder& PipelineBuilder::WithDebugServer(obs::DebugServer* server) {
  options_.exec.obs.board = server == nullptr ? nullptr : server->board();
  return *this;
}

Result<StreamRunResult> PipelineBuilder::Run(
    const std::vector<std::string>& bucket_paths) const {
  EngineOptions options = options_;
  if (options.exec.cancel != nullptr &&
      options.exec.cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("run cancelled before start");
  }
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  if (options.exec.obs.run_id.empty()) {
    options.exec.obs.run_id = GenerateRunId();
  }
  ApplyRunIdTags(options.exec.obs);
  // The plan is always computed from the FULL input list, even when the
  // checkpoint lets the scan skip buckets: the probed bucket (and with it
  // the partition size N') must not depend on how far the previous run
  // got, or a resumed run would chunk differently and lose bitwise
  // identity with an uninterrupted one.
  PMKM_ASSIGN_OR_RETURN(ProbedPlan probed,
                        PlanForPaths(bucket_paths, options));

  std::optional<CheckpointWriter> checkpoint;
  bool checkpoint_degraded = false;
  ResumeSplit split;
  split.todo = bucket_paths;
  if (options.checkpoint.enabled()) {
    auto opened = CheckpointWriter::Open(
        options.checkpoint, ConfigFingerprint(options, probed.plan),
        options.exec.obs);
    if (!opened.ok()) {
      // Same stance as a corrupt bucket: an unusable checkpoint must not
      // kill a tolerant run — it degrades to uncheckpointed.
      if (options.exec.failure_policy !=
          FailurePolicy::kSkipAndContinue) {
        return opened.status();
      }
      PMKM_LOG(Warning) << "cannot open checkpoint in "
                        << options.checkpoint.dir
                        << "; continuing without checkpointing: "
                        << opened.status();
      checkpoint_degraded = true;
    } else {
      checkpoint.emplace(std::move(opened).value());
      if (!checkpoint->recovered().completed.empty()) {
        split = SplitResumablePaths(bucket_paths,
                                    checkpoint->recovered().completed);
      }
    }
  }

  if (split.todo.empty()) {
    // Every bucket was already clustered by the previous run: nothing to
    // execute. Reconstruct the result from the journal alone.
    StreamRunResult out;
    out.plan = probed.plan;
    out.run_id = options.exec.obs.run_id;
    out.cells = std::move(split.restored);
    RunReport& report = out.report;
    report.failure_policy = options.exec.failure_policy;
    report.cells_clustered = out.cells.size();
    if (options.exec.obs.board != nullptr) {
      options.exec.obs.board->BeginRun(out.run_id, PlanSummary(out.plan),
                                       {});
    }
    if (checkpoint.has_value()) {
      if (Status st = checkpoint->Finalize(); !st.ok()) {
        return FailRun(options.exec.obs, std::move(st));
      }
    }
    FillCheckpointReport(
        checkpoint.has_value() ? &*checkpoint : nullptr, out.cells.size(),
        checkpoint_degraded, options.exec.obs, &report);
    if (options.exec.obs.board != nullptr) {
      options.exec.obs.board->EndRun(true, "ok (resumed from checkpoint)",
                                     StreamRunResultToJson(out));
    }
    return out;
  }

  auto points =
      std::make_shared<PointChunkQueue>(probed.plan.queue_capacity);
  auto scan = std::make_unique<ScanOperator>(
      split.todo, probed.plan.chunk_points, points, options.exec.io_retry);
  ScanOperator* scan_raw = scan.get();
  return RunPlan(std::move(scan), scan_raw, points, options, probed.plan,
                 checkpoint.has_value() ? &*checkpoint : nullptr,
                 std::move(split.restored), checkpoint_degraded);
}

Result<StreamRunResult> PipelineBuilder::RunInMemory(
    std::vector<GridBucket> cells) const {
  if (options_.exec.cancel != nullptr &&
      options_.exec.cancel->load(std::memory_order_acquire)) {
    return Status::Cancelled("run cancelled before start");
  }
  if (cells.empty()) return Status::InvalidArgument("no cells given");
  if (options_.checkpoint.enabled()) {
    return Status::InvalidArgument(
        "checkpointing requires on-disk bucket runs (Run); in-memory cells "
        "have no durable identity to resume against");
  }
  EngineOptions options = options_;
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  if (options.exec.obs.run_id.empty()) {
    options.exec.obs.run_id = GenerateRunId();
  }
  ApplyRunIdTags(options.exec.obs);
  const size_t dim = cells[0].points.dim();
  size_t max_points = 0;
  for (const GridBucket& c : cells) {
    max_points = std::max(max_points, c.points.size());
  }
  PhysicalPlan plan = PlanPartialMerge(dim, max_points, options.resources);
  ApplyChunkOverride(options, max_points, dim, &plan);
  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<MemoryScanOperator>(
      std::move(cells), plan.chunk_points, points);
  return RunPlan(std::move(scan), nullptr, points, options, plan);
}

Result<std::string> PipelineBuilder::Explain(
    const std::vector<std::string>& bucket_paths) const {
  EngineOptions options = options_;
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  PMKM_ASSIGN_OR_RETURN(ProbedPlan probed,
                        PlanForPaths(bucket_paths, options));
  return ExplainPartialMergePlan(
      bucket_paths.size(), probed.total_points * bucket_paths.size(),
      probed.dim, options.partial, options.merge, probed.plan);
}

}  // namespace pmkm
