#include "stream/engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "stream/explain.h"

namespace pmkm {

namespace {

// Resolves options.kernel and points both Lloyd configs at it (explicitly
// set lloyd.kernel pointers win). Fails if the host cannot run it.
Status ResolveKernel(EngineOptions* options) {
  if (!KernelAvailable(options->kernel)) {
    return Status::InvalidArgument(
        "kernel '" + std::string(KernelKindToString(options->kernel)) +
        "' is not available on this host (host is " + HostIsaDescription() +
        ")");
  }
  const DistanceKernel* kernel = &GetKernel(options->kernel);
  if (options->partial.lloyd.kernel == nullptr) {
    options->partial.lloyd.kernel = kernel;
  }
  if (options->merge.lloyd.kernel == nullptr) {
    options->merge.lloyd.kernel = kernel;
  }
  return Status::OK();
}

// Applies a forced partition size to an already-computed plan: the clone
// count and queue capacity are re-derived against the override.
void ApplyChunkOverride(const EngineOptions& options, size_t max_points,
                        size_t dim, PhysicalPlan* plan) {
  if (options.chunk_points_override == 0) return;
  plan->chunk_points = options.chunk_points_override;
  const size_t chunks = std::max<size_t>(
      1, (max_points + plan->chunk_points - 1) / plan->chunk_points);
  const size_t cores = options.resources.EffectiveCores();
  plan->partial_clones =
      std::max<size_t>(1, std::min(cores > 1 ? cores - 1 : 1, chunks));
  plan->queue_capacity = PlanQueueCapacity(
      plan->partial_clones, plan->chunk_points, dim,
      options.resources.memory_bytes_per_operator);
}

// Executes the compiled plan: wires queues and operators, runs the
// executor, and assembles the StreamRunResult (including the resilience
// report and per-operator stats).
Result<StreamRunResult> RunPlan(std::unique_ptr<Operator> scan,
                                ScanOperator* scan_raw,
                                std::shared_ptr<PointChunkQueue> points,
                                const EngineOptions& options,
                                const PhysicalPlan& plan) {
  const StreamExecOptions& exec = options.exec;
  auto centroids =
      std::make_shared<CentroidQueue>(plan.queue_capacity);

  // Queue instruments live in the registry, so they survive the queues
  // themselves and show up in the metrics export.
  if (exec.obs.metrics != nullptr) {
    MetricsRegistry* reg = exec.obs.metrics;
    points->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.points.depth"),
        &reg->histogram("queue.points.push_block_us"),
        &reg->histogram("queue.points.pop_wait_us")});
    centroids->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.centroids.depth"),
        &reg->histogram("queue.centroids.push_block_us"),
        &reg->histogram("queue.centroids.pop_wait_us")});
  }

  const bool tolerant =
      exec.failure_policy == FailurePolicy::kSkipAndContinue;

  Executor executor;
  scan->set_failure_policy(exec.failure_policy);
  scan->set_obs(exec.obs);
  executor.Add(std::move(scan));
  std::vector<PartialKMeansOperator*> partial_raw;
  for (size_t c = 0; c < plan.partial_clones; ++c) {
    auto partial = std::make_unique<PartialKMeansOperator>(
        options.partial, points, centroids,
        "partial-kmeans#" + std::to_string(c), exec.io_retry);
    partial->set_failure_policy(exec.failure_policy);
    partial->set_obs(exec.obs);
    partial_raw.push_back(partial.get());
    executor.Add(std::move(partial));
  }
  auto merge = std::make_unique<MergeKMeansOperator>(options.merge,
                                                     centroids, tolerant);
  merge->set_obs(exec.obs);
  MergeKMeansOperator* merge_raw = merge.get();
  executor.Add(std::move(merge));

  ExecutorOptions executor_options;
  executor_options.max_retries = exec.max_retries;
  executor_options.op_timeout_ms = exec.op_timeout_ms;

  const Stopwatch watch;
  PMKM_RETURN_NOT_OK(executor.Run(executor_options));

  StreamRunResult out;
  out.plan = plan;
  out.wall_seconds = watch.ElapsedSeconds();
  out.cells = merge_raw->results();

  RunReport& report = out.report;
  report.failure_policy = exec.failure_policy;
  report.cells_clustered = out.cells.size();
  report.operator_restarts = executor.report().total_restarts;
  report.stalled_operators = executor.report().stalled_operators;
  if (scan_raw != nullptr) {
    report.io_retries = scan_raw->io_retries();
    for (const QuarantinedBucket& q : scan_raw->quarantined()) {
      report.quarantined.push_back(QuarantinedCellReport{
          q.path, q.cell, q.cell_known, q.error.ToString()});
    }
  }
  for (PartialKMeansOperator* partial : partial_raw) {
    report.chunks_dropped += partial->chunks_dropped();
  }
  // Cells the merge skipped (dropped upstream or incomplete) that the scan
  // did not already report.
  for (const auto& [cell, reason] : merge_raw->skipped_cells()) {
    const bool already_reported = std::any_of(
        report.quarantined.begin(), report.quarantined.end(),
        [&cell = cell](const QuarantinedCellReport& q) {
          return q.cell_known && q.cell == cell;
        });
    if (!already_reported) {
      report.quarantined.push_back(
          QuarantinedCellReport{"", cell, true, reason});
    }
  }
  report.degraded = !report.quarantined.empty() ||
                    report.chunks_dropped > 0 ||
                    executor.report().degraded;

  for (const OperatorOutcome& outcome : executor.report().operators) {
    out.operator_stats.push_back(outcome.stats);
  }
  out.queues.push_back(QueueStatsSnapshot{
      "points", points->capacity(), points->HighWaterMark(),
      points->total_pushed()});
  out.queues.push_back(QueueStatsSnapshot{
      "centroids", centroids->capacity(), centroids->HighWaterMark(),
      centroids->total_pushed()});
  if (exec.obs.metrics != nullptr) {
    for (const OperatorStats& stats : out.operator_stats) {
      stats.ExportTo(exec.obs.metrics);
    }
    for (const QueueStatsSnapshot& q : out.queues) {
      exec.obs.metrics->gauge("queue." + q.name + ".high_water")
          .Set(static_cast<int64_t>(q.high_water_mark));
      exec.obs.metrics->counter("queue." + q.name + ".pushed")
          .Increment(q.total_pushed);
    }
  }
  return out;
}

// Probes bucket files for dimensionality/sizing and compiles the physical
// plan. Under kSkipAndContinue an unreadable first bucket must not kill
// the run: probe forward until one opens (the scan will quarantine the
// bad ones properly later). Also reports the probed dim/points for
// EXPLAIN rendering.
struct ProbedPlan {
  PhysicalPlan plan;
  size_t dim = 0;
  size_t total_points = 0;
};

Result<ProbedPlan> PlanForPaths(const std::vector<std::string>& paths,
                                const EngineOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no bucket files given");
  }
  Status probe_error;
  for (const std::string& path : paths) {
    auto probe = GridBucketReader::Open(path);
    if (probe.ok()) {
      ProbedPlan out;
      out.dim = probe->dim();
      out.total_points = probe->total_points();
      out.plan = PlanPartialMerge(probe->dim(), probe->total_points(),
                                  options.resources);
      ApplyChunkOverride(options, probe->total_points(), probe->dim(),
                         &out.plan);
      return out;
    }
    probe_error = probe.status();
    if (options.exec.failure_policy != FailurePolicy::kSkipAndContinue) {
      return probe_error;
    }
  }
  return probe_error;
}

}  // namespace

void EngineFlags::Register(FlagParser* parser) {
  PMKM_CHECK(parser != nullptr);
  parser->AddInt("k", &k, "clusters per cell")
      .AddInt("restarts", &restarts, "random seed sets R")
      .AddInt("memory-kib", &memory_kib,
              "stream: per-operator memory budget")
      .AddInt("cores", &cores,
              "stream: worker cores for cloned operators (0 = autodetect)")
      .AddString("failure_policy", &failure_policy,
                 "stream: failfast | retry | skip")
      .AddInt("max_retries", &max_retries,
              "stream: operator restarts under --failure_policy=retry")
      .AddInt("op_timeout_ms", &op_timeout_ms,
              "stream: watchdog stall timeout (0 = off)")
      .AddString("kernel", &kernel,
                 "distance kernel: scalar | avx2 | neon | auto");
}

Result<EngineOptions> EngineFlags::ToOptions() const {
  if (k <= 0) return Status::InvalidArgument("--k must be >= 1");
  if (restarts <= 0) {
    return Status::InvalidArgument("--restarts must be >= 1");
  }
  EngineOptions options;
  options.partial.k = static_cast<size_t>(k);
  options.partial.restarts = static_cast<size_t>(restarts);
  options.merge.k = static_cast<size_t>(k);
  options.resources.memory_bytes_per_operator =
      static_cast<size_t>(memory_kib) << 10;
  options.resources.cores = static_cast<size_t>(std::max<int64_t>(0, cores));
  PMKM_ASSIGN_OR_RETURN(options.exec.failure_policy,
                        ParseFailurePolicy(failure_policy));
  options.exec.max_retries = static_cast<size_t>(max_retries);
  options.exec.op_timeout_ms = static_cast<uint64_t>(op_timeout_ms);
  PMKM_ASSIGN_OR_RETURN(options.kernel, ParseKernelKind(kernel));
  if (!KernelAvailable(options.kernel)) {
    return Status::InvalidArgument(
        "--kernel=" + kernel + " is not available on this host (host is " +
        HostIsaDescription() + ")");
  }
  return options;
}

Result<StreamRunResult> PipelineBuilder::Run(
    const std::vector<std::string>& bucket_paths) const {
  EngineOptions options = options_;
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  PMKM_ASSIGN_OR_RETURN(ProbedPlan probed,
                        PlanForPaths(bucket_paths, options));
  auto points =
      std::make_shared<PointChunkQueue>(probed.plan.queue_capacity);
  auto scan = std::make_unique<ScanOperator>(
      bucket_paths, probed.plan.chunk_points, points,
      options.exec.io_retry);
  ScanOperator* scan_raw = scan.get();
  return RunPlan(std::move(scan), scan_raw, points, options, probed.plan);
}

Result<StreamRunResult> PipelineBuilder::RunInMemory(
    std::vector<GridBucket> cells) const {
  if (cells.empty()) return Status::InvalidArgument("no cells given");
  EngineOptions options = options_;
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  const size_t dim = cells[0].points.dim();
  size_t max_points = 0;
  for (const GridBucket& c : cells) {
    max_points = std::max(max_points, c.points.size());
  }
  PhysicalPlan plan = PlanPartialMerge(dim, max_points, options.resources);
  ApplyChunkOverride(options, max_points, dim, &plan);
  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<MemoryScanOperator>(
      std::move(cells), plan.chunk_points, points);
  return RunPlan(std::move(scan), nullptr, points, options, plan);
}

Result<std::string> PipelineBuilder::Explain(
    const std::vector<std::string>& bucket_paths) const {
  EngineOptions options = options_;
  PMKM_RETURN_NOT_OK(ResolveKernel(&options));
  PMKM_ASSIGN_OR_RETURN(ProbedPlan probed,
                        PlanForPaths(bucket_paths, options));
  return ExplainPartialMergePlan(
      bucket_paths.size(), probed.total_points * bucket_paths.size(),
      probed.dim, options.partial, options.merge, probed.plan);
}

// ---------------------------------------------------------------------------
// Legacy free functions (stream/plan.h): thin compat wrappers.

Result<StreamRunResult> RunPartialMergeStream(
    const std::vector<std::string>& bucket_paths,
    const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources,
    const StreamExecOptions& exec) {
  return PipelineBuilder()
      .WithPartialKMeans(partial_config)
      .WithMerge(merge_config)
      .WithResources(resources)
      .WithExecution(exec)
      .Run(bucket_paths);
}

Result<StreamRunResult> RunPartialMergeStreamInMemory(
    std::vector<GridBucket> cells, const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources,
    size_t chunk_points_override, const StreamExecOptions& exec) {
  return PipelineBuilder()
      .WithPartialKMeans(partial_config)
      .WithMerge(merge_config)
      .WithResources(resources)
      .WithExecution(exec)
      .WithChunkPoints(chunk_points_override)
      .RunInMemory(std::move(cells));
}

}  // namespace pmkm
