#include "stream/plan.h"

#include <algorithm>
#include <thread>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace pmkm {

size_t ResourceModel::EffectiveCores() const {
  if (cores > 0) return cores;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

PhysicalPlan PlanPartialMerge(size_t dim, size_t expected_points_per_cell,
                              const ResourceModel& resources) {
  PMKM_CHECK(dim >= 1);
  PhysicalPlan plan;

  // Memory → partition size. Factor 4: the point buffer itself, the
  // assignment array, centroid sums, and queue slack.
  const size_t bytes_per_point = dim * sizeof(double) * 4;
  plan.chunk_points = std::max<size_t>(
      1, resources.memory_bytes_per_operator / bytes_per_point);

  // Cores → clones: one core is reserved for scan+merge, the rest run
  // partial operators; never more clones than there are chunks to chew.
  const size_t cores = resources.EffectiveCores();
  size_t clones = cores > 1 ? cores - 1 : 1;
  if (expected_points_per_cell > 0) {
    const size_t chunks = std::max<size_t>(
        1,
        (expected_points_per_cell + plan.chunk_points - 1) /
            plan.chunk_points);
    clones = std::min(clones, chunks);
  }
  plan.partial_clones = std::max<size_t>(1, clones);

  // Queue depth: enough for every clone to have one chunk in flight plus
  // one buffered, bounded so back-pressure still binds memory.
  plan.queue_capacity = std::max<size_t>(2, 2 * plan.partial_clones);
  return plan;
}

std::string RunReport::Summary() const {
  std::string out = "policy=";
  out += FailurePolicyToString(failure_policy);
  out += ", cells_clustered=" + std::to_string(cells_clustered);
  out += ", quarantined=" + std::to_string(quarantined.size());
  out += ", io_retries=" + std::to_string(io_retries);
  out += ", chunks_dropped=" + std::to_string(chunks_dropped);
  out += ", operator_restarts=" + std::to_string(operator_restarts);
  out += degraded ? ", DEGRADED" : ", complete";
  if (!stalled_operators.empty()) {
    out += ", stalled=[" + stalled_operators + "]";
  }
  for (const QuarantinedCellReport& q : quarantined) {
    out += "\n  quarantined ";
    out += q.cell_known ? q.cell.ToString() : "<unknown cell>";
    if (!q.path.empty()) out += " (" + q.path + ")";
    out += ": " + q.reason;
  }
  return out;
}

namespace {

Result<StreamRunResult> RunPlan(std::unique_ptr<Operator> scan,
                                ScanOperator* scan_raw,
                                std::shared_ptr<PointChunkQueue> points,
                                const KMeansConfig& partial_config,
                                const MergeKMeansConfig& merge_config,
                                const PhysicalPlan& plan,
                                const StreamExecOptions& exec) {
  auto centroids =
      std::make_shared<CentroidQueue>(plan.queue_capacity);

  // Queue instruments live in the registry, so they survive the queues
  // themselves and show up in the metrics export.
  if (exec.obs.metrics != nullptr) {
    MetricsRegistry* reg = exec.obs.metrics;
    points->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.points.depth"),
        &reg->histogram("queue.points.push_block_us"),
        &reg->histogram("queue.points.pop_wait_us")});
    centroids->AttachMetrics(QueueMetrics{
        &reg->gauge("queue.centroids.depth"),
        &reg->histogram("queue.centroids.push_block_us"),
        &reg->histogram("queue.centroids.pop_wait_us")});
  }

  const bool tolerant =
      exec.failure_policy == FailurePolicy::kSkipAndContinue;

  Executor executor;
  scan->set_failure_policy(exec.failure_policy);
  scan->set_obs(exec.obs);
  executor.Add(std::move(scan));
  std::vector<PartialKMeansOperator*> partial_raw;
  for (size_t c = 0; c < plan.partial_clones; ++c) {
    auto partial = std::make_unique<PartialKMeansOperator>(
        partial_config, points, centroids,
        "partial-kmeans#" + std::to_string(c), exec.io_retry);
    partial->set_failure_policy(exec.failure_policy);
    partial->set_obs(exec.obs);
    partial_raw.push_back(partial.get());
    executor.Add(std::move(partial));
  }
  auto merge = std::make_unique<MergeKMeansOperator>(merge_config,
                                                     centroids, tolerant);
  merge->set_obs(exec.obs);
  MergeKMeansOperator* merge_raw = merge.get();
  executor.Add(std::move(merge));

  ExecutorOptions executor_options;
  executor_options.max_retries = exec.max_retries;
  executor_options.op_timeout_ms = exec.op_timeout_ms;

  const Stopwatch watch;
  PMKM_RETURN_NOT_OK(executor.Run(executor_options));

  StreamRunResult out;
  out.plan = plan;
  out.wall_seconds = watch.ElapsedSeconds();
  out.cells = merge_raw->results();

  RunReport& report = out.report;
  report.failure_policy = exec.failure_policy;
  report.cells_clustered = out.cells.size();
  report.operator_restarts = executor.report().total_restarts;
  report.stalled_operators = executor.report().stalled_operators;
  if (scan_raw != nullptr) {
    report.io_retries = scan_raw->io_retries();
    for (const QuarantinedBucket& q : scan_raw->quarantined()) {
      report.quarantined.push_back(QuarantinedCellReport{
          q.path, q.cell, q.cell_known, q.error.ToString()});
    }
  }
  for (PartialKMeansOperator* partial : partial_raw) {
    report.chunks_dropped += partial->chunks_dropped();
  }
  // Cells the merge skipped (dropped upstream or incomplete) that the scan
  // did not already report.
  for (const auto& [cell, reason] : merge_raw->skipped_cells()) {
    const bool already_reported = std::any_of(
        report.quarantined.begin(), report.quarantined.end(),
        [&cell = cell](const QuarantinedCellReport& q) {
          return q.cell_known && q.cell == cell;
        });
    if (!already_reported) {
      report.quarantined.push_back(
          QuarantinedCellReport{"", cell, true, reason});
    }
  }
  report.degraded = !report.quarantined.empty() ||
                    report.chunks_dropped > 0 ||
                    executor.report().degraded;

  for (const OperatorOutcome& outcome : executor.report().operators) {
    out.operator_stats.push_back(outcome.stats);
  }
  out.queues.push_back(QueueStatsSnapshot{
      "points", points->capacity(), points->HighWaterMark(),
      points->total_pushed()});
  out.queues.push_back(QueueStatsSnapshot{
      "centroids", centroids->capacity(), centroids->HighWaterMark(),
      centroids->total_pushed()});
  if (exec.obs.metrics != nullptr) {
    for (const OperatorStats& stats : out.operator_stats) {
      stats.ExportTo(exec.obs.metrics);
    }
    for (const QueueStatsSnapshot& q : out.queues) {
      exec.obs.metrics->gauge("queue." + q.name + ".high_water")
          .Set(static_cast<int64_t>(q.high_water_mark));
      exec.obs.metrics->counter("queue." + q.name + ".pushed")
          .Increment(q.total_pushed);
    }
  }
  return out;
}

}  // namespace

Result<StreamRunResult> RunPartialMergeStream(
    const std::vector<std::string>& bucket_paths,
    const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources,
    const StreamExecOptions& exec) {
  if (bucket_paths.empty()) {
    return Status::InvalidArgument("no bucket files given");
  }
  // Peek at a bucket for dimensionality / sizing. Under kSkipAndContinue
  // an unreadable first bucket must not kill the run: probe forward until
  // one opens (the scan will quarantine the bad ones properly later).
  Status probe_error;
  PhysicalPlan plan;
  bool planned = false;
  for (const std::string& path : bucket_paths) {
    auto probe = GridBucketReader::Open(path);
    if (probe.ok()) {
      plan = PlanPartialMerge(probe->dim(), probe->total_points(),
                              resources);
      planned = true;
      break;
    }
    probe_error = probe.status();
    if (exec.failure_policy != FailurePolicy::kSkipAndContinue) {
      return probe_error;
    }
  }
  if (!planned) return probe_error;

  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<ScanOperator>(
      bucket_paths, plan.chunk_points, points, exec.io_retry);
  ScanOperator* scan_raw = scan.get();
  return RunPlan(std::move(scan), scan_raw, points, partial_config,
                 merge_config, plan, exec);
}

Result<StreamRunResult> RunPartialMergeStreamInMemory(
    std::vector<GridBucket> cells, const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources,
    size_t chunk_points_override, const StreamExecOptions& exec) {
  if (cells.empty()) return Status::InvalidArgument("no cells given");
  const size_t dim = cells[0].points.dim();
  size_t max_points = 0;
  for (const GridBucket& c : cells) {
    max_points = std::max(max_points, c.points.size());
  }
  PhysicalPlan plan = PlanPartialMerge(dim, max_points, resources);
  if (chunk_points_override > 0) {
    // Re-plan the clone count against the forced partition size.
    plan.chunk_points = chunk_points_override;
    const size_t chunks = std::max<size_t>(
        1, (max_points + plan.chunk_points - 1) / plan.chunk_points);
    const size_t cores = resources.EffectiveCores();
    plan.partial_clones =
        std::max<size_t>(1, std::min(cores > 1 ? cores - 1 : 1, chunks));
    plan.queue_capacity = std::max<size_t>(2, 2 * plan.partial_clones);
  }
  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<MemoryScanOperator>(
      std::move(cells), plan.chunk_points, points);
  return RunPlan(std::move(scan), nullptr, points, partial_config,
                 merge_config, plan, exec);
}

}  // namespace pmkm
