#include "stream/plan.h"

#include <algorithm>
#include <thread>

#include "common/stopwatch.h"

namespace pmkm {

size_t ResourceModel::EffectiveCores() const {
  if (cores > 0) return cores;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

PhysicalPlan PlanPartialMerge(size_t dim, size_t expected_points_per_cell,
                              const ResourceModel& resources) {
  PMKM_CHECK(dim >= 1);
  PhysicalPlan plan;

  // Memory → partition size. Factor 4: the point buffer itself, the
  // assignment array, centroid sums, and queue slack.
  const size_t bytes_per_point = dim * sizeof(double) * 4;
  plan.chunk_points = std::max<size_t>(
      1, resources.memory_bytes_per_operator / bytes_per_point);

  // Cores → clones: one core is reserved for scan+merge, the rest run
  // partial operators; never more clones than there are chunks to chew.
  const size_t cores = resources.EffectiveCores();
  size_t clones = cores > 1 ? cores - 1 : 1;
  if (expected_points_per_cell > 0) {
    const size_t chunks = std::max<size_t>(
        1,
        (expected_points_per_cell + plan.chunk_points - 1) /
            plan.chunk_points);
    clones = std::min(clones, chunks);
  }
  plan.partial_clones = std::max<size_t>(1, clones);

  // Queue depth: enough for every clone to have one chunk in flight plus
  // one buffered, bounded so back-pressure still binds memory.
  plan.queue_capacity = std::max<size_t>(2, 2 * plan.partial_clones);
  return plan;
}

namespace {

Result<StreamRunResult> RunPlan(std::unique_ptr<Operator> scan,
                                std::shared_ptr<PointChunkQueue> points,
                                const KMeansConfig& partial_config,
                                const MergeKMeansConfig& merge_config,
                                const PhysicalPlan& plan) {
  auto centroids =
      std::make_shared<CentroidQueue>(plan.queue_capacity);

  Executor executor;
  executor.Add(std::move(scan));
  for (size_t c = 0; c < plan.partial_clones; ++c) {
    executor.Add(std::make_unique<PartialKMeansOperator>(
        partial_config, points, centroids,
        "partial-kmeans#" + std::to_string(c)));
  }
  auto merge =
      std::make_unique<MergeKMeansOperator>(merge_config, centroids);
  MergeKMeansOperator* merge_raw = merge.get();
  executor.Add(std::move(merge));

  const Stopwatch watch;
  PMKM_RETURN_NOT_OK(executor.Run());

  StreamRunResult out;
  out.plan = plan;
  out.wall_seconds = watch.ElapsedSeconds();
  out.cells = merge_raw->results();
  return out;
}

}  // namespace

Result<StreamRunResult> RunPartialMergeStream(
    const std::vector<std::string>& bucket_paths,
    const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources) {
  if (bucket_paths.empty()) {
    return Status::InvalidArgument("no bucket files given");
  }
  // Peek at the first bucket for dimensionality / sizing.
  PMKM_ASSIGN_OR_RETURN(GridBucketReader probe,
                        GridBucketReader::Open(bucket_paths[0]));
  const PhysicalPlan plan =
      PlanPartialMerge(probe.dim(), probe.total_points(), resources);

  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<ScanOperator>(bucket_paths,
                                             plan.chunk_points, points);
  return RunPlan(std::move(scan), points, partial_config, merge_config,
                 plan);
}

Result<StreamRunResult> RunPartialMergeStreamInMemory(
    std::vector<GridBucket> cells, const KMeansConfig& partial_config,
    const MergeKMeansConfig& merge_config, const ResourceModel& resources,
    size_t chunk_points_override) {
  if (cells.empty()) return Status::InvalidArgument("no cells given");
  const size_t dim = cells[0].points.dim();
  size_t max_points = 0;
  for (const GridBucket& c : cells) {
    max_points = std::max(max_points, c.points.size());
  }
  PhysicalPlan plan = PlanPartialMerge(dim, max_points, resources);
  if (chunk_points_override > 0) {
    // Re-plan the clone count against the forced partition size.
    plan.chunk_points = chunk_points_override;
    const size_t chunks = std::max<size_t>(
        1, (max_points + plan.chunk_points - 1) / plan.chunk_points);
    const size_t cores = resources.EffectiveCores();
    plan.partial_clones =
        std::max<size_t>(1, std::min(cores > 1 ? cores - 1 : 1, chunks));
    plan.queue_capacity = std::max<size_t>(2, 2 * plan.partial_clones);
  }
  auto points = std::make_shared<PointChunkQueue>(plan.queue_capacity);
  auto scan = std::make_unique<MemoryScanOperator>(
      std::move(cells), plan.chunk_points, points);
  return RunPlan(std::move(scan), points, partial_config, merge_config,
                 plan);
}

}  // namespace pmkm
