#include "stream/plan.h"

#include <algorithm>
#include <thread>

namespace pmkm {

size_t ResourceModel::EffectiveCores() const {
  if (cores > 0) return cores;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

PhysicalPlan PlanPartialMerge(size_t dim, size_t expected_points_per_cell,
                              const ResourceModel& resources) {
  PMKM_CHECK(dim >= 1);
  PhysicalPlan plan;

  // Memory → partition size. Factor 4: the point buffer itself, the
  // assignment array, centroid sums, and queue slack.
  const size_t bytes_per_point = dim * sizeof(double) * 4;
  plan.chunk_points = std::max<size_t>(
      1, resources.memory_bytes_per_operator / bytes_per_point);

  // Cores → clones: one core is reserved for scan+merge, the rest run
  // partial operators; never more clones than there are chunks to chew.
  const size_t cores = resources.EffectiveCores();
  size_t clones = cores > 1 ? cores - 1 : 1;
  if (expected_points_per_cell > 0) {
    const size_t chunks = std::max<size_t>(
        1,
        (expected_points_per_cell + plan.chunk_points - 1) /
            plan.chunk_points);
    clones = std::min(clones, chunks);
  }
  plan.partial_clones = std::max<size_t>(1, clones);

  plan.queue_capacity =
      PlanQueueCapacity(plan.partial_clones, plan.chunk_points, dim,
                        resources.memory_bytes_per_operator);
  return plan;
}

size_t PlanQueueCapacity(size_t partial_clones, size_t chunk_points,
                         size_t dim, size_t memory_bytes_per_operator) {
  const size_t clones = std::max<size_t>(1, partial_clones);
  // Enough depth for every clone to have one chunk in flight plus one
  // buffered...
  const size_t wanted = 2 * clones;
  // ...but never more buffered chunks than the per-operator memory budget
  // covers, so back-pressure still binds memory when chunks are forced
  // large (e.g. via the engine's chunk_points override).
  const size_t chunk_bytes =
      std::max<size_t>(1, chunk_points * dim * sizeof(double));
  const size_t affordable =
      clones * (memory_bytes_per_operator / chunk_bytes);
  return std::max<size_t>(2, std::min(wanted, affordable));
}

std::string RunReport::Summary() const {
  std::string out = "policy=";
  out += FailurePolicyToString(failure_policy);
  out += ", cells_clustered=" + std::to_string(cells_clustered);
  out += ", quarantined=" + std::to_string(quarantined.size());
  out += ", io_retries=" + std::to_string(io_retries);
  out += ", chunks_dropped=" + std::to_string(chunks_dropped);
  out += ", operator_restarts=" + std::to_string(operator_restarts);
  if (cells_resumed > 0 || checkpoint_cells > 0 || checkpoint_degraded) {
    out += ", cells_resumed=" + std::to_string(cells_resumed);
    out += ", checkpointed=" + std::to_string(checkpoint_cells);
    out += " (epoch " + std::to_string(checkpoint_epoch) + ")";
    if (checkpoint_torn_tail) out += ", torn_tail_truncated";
    if (checkpoint_degraded) out += ", CHECKPOINT-DEGRADED";
  }
  out += degraded ? ", DEGRADED" : ", complete";
  if (!stalled_operators.empty()) {
    out += ", stalled=[" + stalled_operators + "]";
  }
  for (const QuarantinedCellReport& q : quarantined) {
    out += "\n  quarantined ";
    out += q.cell_known ? q.cell.ToString() : "<unknown cell>";
    if (!q.path.empty()) out += " (" + q.path + ")";
    out += ": " + q.reason;
  }
  return out;
}

}  // namespace pmkm
