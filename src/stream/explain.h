// EXPLAIN rendering for partial/merge query plans: a textual tree in the
// spirit of a DBMS EXPLAIN, showing what the optimizer chose (partition
// size from the memory budget, clone count from the cores) before a plan
// runs. Exposed through `pmkm_cluster --algo=stream --explain`.

#ifndef PMKM_STREAM_EXPLAIN_H_
#define PMKM_STREAM_EXPLAIN_H_

#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/merge.h"
#include "stream/plan.h"

namespace pmkm {

/// Renders the physical plan the optimizer would execute for the given
/// inputs, e.g.:
///
///   merge-kmeans (k=40, seeding=heaviest)
///   └─ exchange (queue cap 8, centroid sets)
///      └─ partial-kmeans ×7 clones (k=40, R=10, chunk=5461 pts)
///         └─ exchange (queue cap 8, point chunks)
///            └─ scan (3 buckets, ~60000 pts, dim 6)
std::string ExplainPartialMergePlan(size_t num_buckets,
                                    size_t total_points, size_t dim,
                                    const KMeansConfig& partial,
                                    const MergeKMeansConfig& merge,
                                    const PhysicalPlan& plan);

/// EXPLAIN ANALYZE: the same plan tree annotated with what actually
/// happened — per-operator rows/bytes in and out, wall / thread-CPU /
/// queue-wait time, k-means iterations and restarts, retries and drops
/// (partial clones aggregated, then listed per instance), and per-exchange
/// high-water marks. Exposed through `pmkm_cluster --algo=stream --stats`.
std::string ExplainAnalyzePartialMerge(const KMeansConfig& partial,
                                       const MergeKMeansConfig& merge,
                                       const StreamRunResult& result);

/// The resilience report as JSON (a sub-object of the run result JSON).
JsonValue RunReportToJson(const RunReport& report);

/// The full run outcome as JSON: plan knobs, wall time, run id, the
/// report, per-operator stats and queue snapshots, plus a per-cell
/// summary (cells carry counts and SSE, not the centroid payload). This
/// is what the engine publishes to the debug server's /runz.
JsonValue StreamRunResultToJson(const StreamRunResult& result);

}  // namespace pmkm

#endif  // PMKM_STREAM_EXPLAIN_H_
