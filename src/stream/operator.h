// Operator and Executor: the minimal Conquest-style execution environment.
//
// A pipeline is a set of operator instances connected by bounded queues;
// the executor runs each instance on its own thread (paper Fig. 3: data
// stream operators process data in a pipelined fashion). Cloning an
// operator = adding another instance that shares the same input and output
// queues; the queues' producer counting makes end-of-stream exact.

#ifndef PMKM_STREAM_OPERATOR_H_
#define PMKM_STREAM_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace pmkm {

/// One physical operator instance. Run() executes the whole operator on
/// the executor's thread; Abort() must unblock a Run() in progress (cancel
/// the operator's queues) and is called on pipeline failure.
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }

  virtual Status Run() = 0;
  virtual void Abort() = 0;

 private:
  std::string name_;
};

/// Runs a set of operator instances to completion, one thread each.
class Executor {
 public:
  /// Adds an operator instance to the pipeline (before Run).
  void Add(std::unique_ptr<Operator> op) { ops_.push_back(std::move(op)); }

  size_t num_operators() const { return ops_.size(); }

  /// Executes every operator concurrently and joins them. If any operator
  /// fails, all operators are aborted and the first error is returned.
  Status Run();

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_OPERATOR_H_
