// Operator and Executor: the minimal Conquest-style execution environment.
//
// A pipeline is a set of operator instances connected by bounded queues;
// the executor runs each instance on its own thread (paper Fig. 3: data
// stream operators process data in a pipelined fashion). Cloning an
// operator = adding another instance that shares the same input and output
// queues; the queues' producer counting makes end-of-stream exact.
//
// Supervision: every operator carries a FailurePolicy, ticks a progress
// counter as it moves data, and may opt into being restarted after a
// failure. The executor runs a watchdog that aborts the pipeline with a
// descriptive deadline error when no operator makes progress for a
// configurable timeout (a stalled operator would otherwise hang a
// TB-scale run forever).

#ifndef PMKM_STREAM_OPERATOR_H_
#define PMKM_STREAM_OPERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/stats.h"

namespace pmkm {

/// What the pipeline does when an operator (or one of its work items)
/// fails.
enum class FailurePolicy {
  /// Abort the whole pipeline on the first error (legacy behavior).
  kFailFast,
  /// Retry: operators retry failed work items with backoff, and the
  /// executor restarts restartable operators from their last completed
  /// unit (scan: last completed bucket).
  kRetryOperator,
  /// Degrade gracefully: quarantine the failing bucket/cell, record it in
  /// the run report, and keep clustering everything healthy.
  kSkipAndContinue,
};

const char* FailurePolicyToString(FailurePolicy policy);

/// Parses "failfast" | "retry" | "skip" (case-sensitive).
Result<FailurePolicy> ParseFailurePolicy(const std::string& name);

/// One physical operator instance. Run() executes the whole operator on
/// the executor's thread; Abort() must unblock a Run() in progress (cancel
/// the operator's queues) and is called on pipeline failure.
class Operator {
 public:
  explicit Operator(std::string name) : name_(std::move(name)) {
    stats_.name = name_;
  }
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }

  virtual Status Run() = 0;
  virtual void Abort() = 0;

  /// Restart support for kRetryOperator: a restartable operator keeps its
  /// resume state across Run() calls (and must keep its output producer
  /// registration open when Run() fails under kRetryOperator, so
  /// downstream operators do not observe a premature end-of-stream).
  virtual bool SupportsRestart() const { return false; }

  /// Prepares a restartable operator for the next Run() attempt.
  virtual Status PrepareRestart() {
    return Status::NotImplemented("operator '" + name_ +
                                  "' is not restartable");
  }

  /// Called by the executor exactly once after the final Run() attempt
  /// (successful or not). Operators that may defer closing their output
  /// producers across restarts close them here; default is a no-op.
  virtual void Finish() {}

  FailurePolicy failure_policy() const { return failure_policy_; }
  void set_failure_policy(FailurePolicy policy) { failure_policy_ = policy; }

  /// Observability sinks (metrics registry + trace recorder); both null by
  /// default. Set before Executor::Run; operators emit spans and the
  /// executor exports stats only when the sinks are present.
  const ObsContext& obs() const { return obs_; }
  void set_obs(const ObsContext& obs) { obs_ = obs; }

  /// Cooperative cancellation token (StreamExecOptions::cancel), set by
  /// the engine before Executor::Run. Source operators poll it between
  /// work units and return Status::Cancelled, which the executor treats
  /// as terminal under every failure policy.
  void set_cancel_token(const std::atomic<bool>* cancel) {
    cancel_ = cancel;
  }

  /// Slot of this instance in the RunBoard layout declared by
  /// RunBoard::BeginRun (set by the engine together with set_obs when a
  /// debug server is attached).
  void set_live_slot(size_t slot) { live_slot_ = slot; }
  size_t live_slot() const { return live_slot_; }

  /// Execution accounting for this instance. Written by the operator's own
  /// executor thread during Run() and by the executor around it; read it
  /// only after the pipeline joined (the ExecutorReport carries a copy).
  const OperatorStats& stats() const { return stats_; }
  OperatorStats& mutable_stats() { return stats_; }

  /// Monotonic count of completed work units; the executor's watchdog
  /// declares the pipeline stalled when the sum over all operators stops
  /// advancing.
  uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

 protected:
  void TickProgress() { progress_.fetch_add(1, std::memory_order_relaxed); }

  /// True once the attached cancel token (if any) was flipped.
  bool CancelRequested() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_acquire);
  }

  /// Copies the current stats into the attached RunBoard slot so the
  /// debug server's /statusz shows live per-operator progress. Call after
  /// each completed work unit (chunk/bucket/cell); no-op without a board.
  void PublishLive();

 private:
  std::string name_;
  FailurePolicy failure_policy_ = FailurePolicy::kFailFast;
  std::atomic<uint64_t> progress_{0};
  size_t live_slot_ = 0;
  OperatorStats stats_;
  ObsContext obs_;
  const std::atomic<bool>* cancel_ = nullptr;
};

/// Supervision knobs for one Executor::Run.
struct ExecutorOptions {
  /// Executor-level restarts granted per operator under kRetryOperator
  /// (operators must also SupportsRestart()).
  size_t max_retries = 0;

  /// Watchdog: abort when the pipeline-wide progress sum is unchanged for
  /// this long. 0 disables the watchdog. Must exceed the longest single
  /// compute step of any operator (e.g. one merge k-means fit).
  uint64_t op_timeout_ms = 0;

  /// Watchdog sampling interval.
  uint64_t watchdog_poll_ms = 10;
};

/// Per-operator outcome of a supervised run.
struct OperatorOutcome {
  std::string name;
  Status status;
  size_t restarts = 0;
  bool skipped = false;  // failed but tolerated under kSkipAndContinue
  OperatorStats stats;   // copied from the operator after its final Run()
};

/// What the supervision layer observed during Executor::Run.
struct ExecutorReport {
  std::vector<OperatorOutcome> operators;
  size_t total_restarts = 0;
  bool degraded = false;           // some operator was skipped
  std::string stalled_operators;   // set when the watchdog fired
};

/// Runs a set of operator instances to completion, one thread each.
class Executor {
 public:
  /// Adds an operator instance to the pipeline (before Run).
  void Add(std::unique_ptr<Operator> op) { ops_.push_back(std::move(op)); }

  size_t num_operators() const { return ops_.size(); }

  /// Executes every operator concurrently and joins them. If any operator
  /// fails, all operators are aborted and the first error is returned.
  Status Run() { return Run(ExecutorOptions{}); }

  /// Supervised execution: restarts restartable kRetryOperator operators
  /// up to `options.max_retries` times, tolerates kSkipAndContinue
  /// operator failures (recording them in report()), and aborts the
  /// pipeline with a DeadlineExceeded error when the watchdog detects no
  /// progress for `options.op_timeout_ms`.
  Status Run(const ExecutorOptions& options);

  /// Supervision outcome of the last Run().
  const ExecutorReport& report() const { return report_; }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  ExecutorReport report_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_OPERATOR_H_
