#include "stream/explain.h"

#include <sstream>

#include "cluster/kernels/kernel.h"
#include "cluster/seeding.h"

namespace pmkm {

namespace {

// "name (cap C, high-water H, N pushed)" for one exchange, or a
// placeholder when the snapshot is missing (e.g. a failed run).
std::string ExchangeLine(const StreamRunResult& result,
                         const std::string& name,
                         const std::string& payload) {
  for (const QueueStatsSnapshot& q : result.queues) {
    if (q.name != name) continue;
    return "exchange \"" + name + "\" (" + payload + ", cap " +
           std::to_string(q.capacity) + ", high-water " +
           std::to_string(q.high_water_mark) + ", " +
           std::to_string(q.total_pushed) + " pushed)";
  }
  return "exchange \"" + name + "\" (" + payload + ")";
}

}  // namespace

std::string ExplainPartialMergePlan(size_t num_buckets,
                                    size_t total_points, size_t dim,
                                    const KMeansConfig& partial,
                                    const MergeKMeansConfig& merge,
                                    const PhysicalPlan& plan) {
  std::ostringstream os;
  os << "merge-kmeans (k=" << merge.k
     << ", seeding=" << SeedingMethodToString(merge.seeding)
     << ", restarts=" << merge.restarts << ")\n";
  os << "└─ exchange (queue cap " << plan.queue_capacity
     << ", centroid sets)\n";
  const DistanceKernel& kernel =
      partial.lloyd.kernel != nullptr ? *partial.lloyd.kernel
                                      : DefaultKernel();
  os << "   └─ partial-kmeans ×" << plan.partial_clones
     << " clone" << (plan.partial_clones == 1 ? "" : "s") << " (k="
     << partial.k << ", R=" << partial.restarts << ", chunk="
     << plan.chunk_points << " pts, kernel=" << kernel.name() << ")\n";
  os << "      └─ exchange (queue cap " << plan.queue_capacity
     << ", point chunks)\n";
  os << "         └─ scan (" << num_buckets << " bucket"
     << (num_buckets == 1 ? "" : "s") << ", ~" << total_points
     << " pts, dim " << dim << ")\n";
  return os.str();
}

std::string ExplainAnalyzePartialMerge(const KMeansConfig& partial,
                                       const MergeKMeansConfig& merge,
                                       const StreamRunResult& result) {
  // Regroup the executor-ordered instance list (scan, partials, merge)
  // into the three plan nodes; partial clones also get per-instance rows.
  OperatorStats scan_stats;
  OperatorStats partial_total;
  partial_total.name = "partial-kmeans";
  std::vector<const OperatorStats*> partial_instances;
  OperatorStats merge_stats;
  for (const OperatorStats& s : result.operator_stats) {
    if (s.name.rfind("partial-kmeans", 0) == 0) {
      partial_total.MergeFrom(s);
      partial_instances.push_back(&s);
    } else if (s.name == "merge-kmeans") {
      merge_stats = s;
    } else {
      scan_stats = s;  // "scan" or "memory-scan"
    }
  }

  std::ostringstream os;
  os << "merge-kmeans (k=" << merge.k
     << ", seeding=" << SeedingMethodToString(merge.seeding)
     << ", restarts=" << merge.restarts << ")\n";
  os << "│    " << merge_stats.ToString() << "\n";
  os << "└─ " << ExchangeLine(result, "centroids", "centroid sets") << "\n";
  os << "   └─ partial-kmeans ×" << partial_instances.size() << " clone"
     << (partial_instances.size() == 1 ? "" : "s") << " (k=" << partial.k
     << ", R=" << partial.restarts << ", chunk=" << result.plan.chunk_points
     << " pts)\n";
  os << "      │    " << partial_total.ToString() << "\n";
  if (partial_instances.size() > 1) {
    for (size_t i = 0; i < partial_instances.size(); ++i) {
      os << "      │    #" << i << ": " << partial_instances[i]->ToString()
         << "\n";
    }
  }
  os << "      └─ " << ExchangeLine(result, "points", "point chunks")
     << "\n";
  os << "         └─ " << (scan_stats.name.empty() ? "scan" : scan_stats.name)
     << "\n";
  os << "            │    " << scan_stats.ToString() << "\n";
  os << "total: wall=" << FormatSeconds(result.wall_seconds)
     << ", cells=" << result.cells.size()
     << ", quarantined=" << result.report.quarantined.size()
     << (result.report.degraded ? " (DEGRADED)" : "") << "\n";
  return os.str();
}

JsonValue RunReportToJson(const RunReport& report) {
  JsonValue out = JsonValue::Object();
  out.Set("failure_policy", FailurePolicyToString(report.failure_policy));
  out.Set("cells_clustered", report.cells_clustered);
  out.Set("io_retries", report.io_retries);
  out.Set("chunks_dropped", report.chunks_dropped);
  out.Set("operator_restarts", report.operator_restarts);
  out.Set("degraded", report.degraded);
  if (!report.stalled_operators.empty()) {
    out.Set("stalled_operators", report.stalled_operators);
  }
  JsonValue quarantined = JsonValue::Array();
  for (const QuarantinedCellReport& q : report.quarantined) {
    JsonValue j = JsonValue::Object();
    if (!q.path.empty()) j.Set("path", q.path);
    if (q.cell_known) j.Set("cell", q.cell.ToString());
    j.Set("reason", q.reason);
    quarantined.Append(std::move(j));
  }
  out.Set("quarantined", std::move(quarantined));
  if (report.cells_resumed > 0 || report.checkpoint_cells > 0 ||
      report.checkpoint_degraded) {
    JsonValue ckpt = JsonValue::Object();
    ckpt.Set("cells_resumed", report.cells_resumed);
    ckpt.Set("cells_journaled", report.checkpoint_cells);
    ckpt.Set("epoch", report.checkpoint_epoch);
    ckpt.Set("torn_tail", report.checkpoint_torn_tail);
    ckpt.Set("degraded", report.checkpoint_degraded);
    out.Set("checkpoint", std::move(ckpt));
  }
  return out;
}

JsonValue StreamRunResultToJson(const StreamRunResult& result) {
  JsonValue out = JsonValue::Object();
  if (!result.run_id.empty()) out.Set("run_id", result.run_id);
  out.Set("wall_seconds", result.wall_seconds);
  JsonValue plan = JsonValue::Object();
  plan.Set("chunk_points", result.plan.chunk_points);
  plan.Set("partial_clones", result.plan.partial_clones);
  plan.Set("queue_capacity", result.plan.queue_capacity);
  out.Set("plan", std::move(plan));
  out.Set("report", RunReportToJson(result.report));
  JsonValue operators = JsonValue::Array();
  for (const OperatorStats& stats : result.operator_stats) {
    operators.Append(stats.ToJson());
  }
  out.Set("operators", std::move(operators));
  JsonValue queues = JsonValue::Array();
  for (const QueueStatsSnapshot& q : result.queues) {
    JsonValue j = JsonValue::Object();
    j.Set("name", q.name);
    j.Set("capacity", q.capacity);
    j.Set("high_water_mark", q.high_water_mark);
    j.Set("total_pushed", q.total_pushed);
    queues.Append(std::move(j));
  }
  out.Set("queues", std::move(queues));
  // Per-cell summary only: the centroid payload belongs in the model
  // files, not a diagnostics endpoint.
  JsonValue cells = JsonValue::Array();
  for (const auto& [cell, clustering] : result.cells) {
    JsonValue j = JsonValue::Object();
    j.Set("cell", cell.ToString());
    j.Set("k", clustering.model.centroids.size());
    j.Set("input_points", clustering.input_points);
    j.Set("pooled_centroids", clustering.pooled_centroids);
    j.Set("sse", clustering.model.sse);
    j.Set("iterations", clustering.model.iterations);
    j.Set("merge_seconds", clustering.merge_seconds);
    cells.Append(std::move(j));
  }
  out.Set("cells", std::move(cells));
  return out;
}

}  // namespace pmkm
