#include "stream/explain.h"

#include <sstream>

#include "cluster/seeding.h"

namespace pmkm {

std::string ExplainPartialMergePlan(size_t num_buckets,
                                    size_t total_points, size_t dim,
                                    const KMeansConfig& partial,
                                    const MergeKMeansConfig& merge,
                                    const PhysicalPlan& plan) {
  std::ostringstream os;
  os << "merge-kmeans (k=" << merge.k
     << ", seeding=" << SeedingMethodToString(merge.seeding)
     << ", restarts=" << merge.restarts << ")\n";
  os << "└─ exchange (queue cap " << plan.queue_capacity
     << ", centroid sets)\n";
  os << "   └─ partial-kmeans ×" << plan.partial_clones
     << " clone" << (plan.partial_clones == 1 ? "" : "s") << " (k="
     << partial.k << ", R=" << partial.restarts << ", chunk="
     << plan.chunk_points << " pts)\n";
  os << "      └─ exchange (queue cap " << plan.queue_capacity
     << ", point chunks)\n";
  os << "         └─ scan (" << num_buckets << " bucket"
     << (num_buckets == 1 ? "" : "s") << ", ~" << total_points
     << " pts, dim " << dim << ")\n";
  return os.str();
}

}  // namespace pmkm
