// The engine API: one options struct and one builder for the paper's
// partial/merge streaming pipeline (scan → cloned partial k-means →
// merge k-means).
//
// EngineOptions composes everything a run needs — the two k-means
// configs, the resource model the planner consumes, execution/failure
// options, observability sinks and the distance kernel — so tools and
// benches configure a pipeline in one place instead of threading four
// structs through free functions. PipelineBuilder is the fluent front
// end:
//
//   MetricsRegistry registry;
//   auto result = PipelineBuilder()
//                     .WithPartialKMeans(partial)
//                     .WithMerge(merge)
//                     .WithResources({.memory_bytes_per_operator = 1 << 20})
//                     .WithKernel(KernelKind::kAvx2)
//                     .WithMetrics(&registry)
//                     .Run(bucket_paths);
//
// This builder is the engine's single entry point: the serve layer
// (serve/service.h) submits every job through it, and the legacy
// free-function wrappers were retired (pmkm_lint's `direct-run` rule
// keeps new ones from appearing).

#ifndef PMKM_STREAM_ENGINE_H_
#define PMKM_STREAM_ENGINE_H_

#include <atomic>
#include <string>
#include <vector>

#include "cluster/kernels/kernel.h"
#include "cluster/kmeans.h"
#include "cluster/merge.h"
#include "common/flags.h"
#include "stream/checkpoint.h"
#include "stream/plan.h"

namespace pmkm {

namespace obs {
class DebugServer;
}  // namespace obs

/// Everything one streamed partial/merge run needs.
struct EngineOptions {
  /// Per-chunk clustering run by each partial clone.
  KMeansConfig partial;

  /// Collective merge of the pooled weighted centroids.
  MergeKMeansConfig merge;

  /// What the planner may use (memory per operator, cores).
  ResourceModel resources;

  /// Failure policy, retries, watchdog, observability sinks.
  StreamExecOptions exec;

  /// Distance kernel for every k-means in the pipeline. kAuto picks the
  /// best implementation the host supports; assignments are bit-identical
  /// across kernels, so this only affects speed. Ignored for a config
  /// whose lloyd.kernel was already set explicitly.
  KernelKind kernel = KernelKind::kAuto;

  /// Force the partition size N' instead of letting the planner derive it
  /// from the memory budget (0 = planner chooses). Used by the speed-up
  /// experiments; the clone count and queue capacity are re-planned
  /// against the forced size.
  size_t chunk_points_override = 0;

  /// Durable checkpoint/resume (stream/checkpoint.h, DESIGN.md §13).
  /// Disabled unless checkpoint.dir is set. Only meaningful for on-disk
  /// runs (Run); RunInMemory rejects it.
  CheckpointOptions checkpoint;
};

/// The engine flag set shared by tools/pmkm_cluster and the stream
/// benches: register the flags, parse, then ToOptions().
struct EngineFlags {
  int64_t k = 40;
  int64_t restarts = 10;
  int64_t memory_kib = 512;
  int64_t cores = 0;
  std::string failure_policy = "failfast";
  int64_t max_retries = 2;
  int64_t op_timeout_ms = 0;
  std::string kernel = "auto";
  std::string checkpoint_dir;
  int64_t checkpoint_sync = 1;
  bool resume = true;

  /// Registers --k, --restarts, --memory-kib, --cores, --failure_policy,
  /// --max_retries, --op_timeout_ms, --kernel, --checkpoint_dir,
  /// --checkpoint_sync and --resume/--no-resume on `parser`.
  void Register(FlagParser* parser);

  /// Validates and converts the parsed values. Fails on an unknown
  /// failure policy, an unknown kernel name, or a kernel this host
  /// cannot run.
  Result<EngineOptions> ToOptions() const;
};

/// Fluent builder/runner for the streamed partial/merge pipeline. Every
/// With* method overrides one piece of the composed EngineOptions; Run /
/// RunInMemory compile the physical plan and execute it.
class PipelineBuilder {
 public:
  PipelineBuilder() = default;
  explicit PipelineBuilder(EngineOptions options)
      : options_(std::move(options)) {}

  PipelineBuilder& WithPartialKMeans(const KMeansConfig& config) {
    options_.partial = config;
    return *this;
  }
  PipelineBuilder& WithMerge(const MergeKMeansConfig& config) {
    options_.merge = config;
    return *this;
  }
  PipelineBuilder& WithResources(const ResourceModel& resources) {
    options_.resources = resources;
    return *this;
  }
  PipelineBuilder& WithExecution(const StreamExecOptions& exec) {
    options_.exec = exec;
    return *this;
  }
  PipelineBuilder& WithFailurePolicy(FailurePolicy policy) {
    options_.exec.failure_policy = policy;
    return *this;
  }
  PipelineBuilder& WithKernel(KernelKind kind) {
    options_.kernel = kind;
    return *this;
  }
  /// Wires a metrics registry into the run (operator counters, queue
  /// gauges). Replaces manual StreamExecOptions::obs plumbing.
  PipelineBuilder& WithMetrics(MetricsRegistry* registry) {
    options_.exec.obs.metrics = registry;
    return *this;
  }
  /// Wires a Chrome-trace recorder into the run.
  PipelineBuilder& WithTrace(TraceRecorder* trace) {
    options_.exec.obs.trace = trace;
    return *this;
  }
  /// Attaches a live debug server (obs/debug_server.h): the run publishes
  /// its identity, live per-operator stats and the final result into the
  /// server's RunBoard, served at /statusz and /runz while the pipeline
  /// executes. Null detaches.
  PipelineBuilder& WithDebugServer(obs::DebugServer* server);
  /// Tags the run with an explicit id. By default the engine generates
  /// one; the id appears in log lines, the metrics export, the trace file
  /// and the checkpoint journal so one run's artifacts correlate.
  PipelineBuilder& WithRunId(std::string run_id) {
    options_.exec.obs.run_id = std::move(run_id);
    return *this;
  }
  PipelineBuilder& WithChunkPoints(size_t chunk_points) {
    options_.chunk_points_override = chunk_points;
    return *this;
  }
  /// Enables durable checkpointing into `dir`: completed cells are
  /// journaled as the run progresses, and a re-run over the same inputs
  /// and configuration resumes from the journal instead of restarting
  /// (skipping already-clustered buckets; final results are
  /// bitwise-identical to an uninterrupted run). `sync_interval` batches
  /// journal fsyncs (1 = fsync every cell).
  PipelineBuilder& WithCheckpoint(std::string dir,
                                  size_t sync_interval = 1) {
    options_.checkpoint.dir = std::move(dir);
    options_.checkpoint.sync_interval = sync_interval;
    return *this;
  }
  /// With resume=false an existing journal is discarded and the run
  /// starts fresh (still checkpointing as it goes).
  PipelineBuilder& WithResume(bool resume) {
    options_.checkpoint.resume = resume;
    return *this;
  }
  /// Attaches a cooperative cancellation token: when the pointed-at flag
  /// becomes true, the run stops at the next work-unit boundary and
  /// Run()/RunInMemory() return Status::Cancelled. The flag's owner must
  /// outlive the run; null (default) detaches. This is how
  /// ClusterService::CancelJob interrupts a running job.
  PipelineBuilder& WithCancelToken(const std::atomic<bool>* cancel) {
    options_.exec.cancel = cancel;
    return *this;
  }

  const EngineOptions& options() const { return options_; }

  /// Compiles and executes the plan over on-disk bucket files.
  Result<StreamRunResult> Run(
      const std::vector<std::string>& bucket_paths) const;

  /// Same, over already-materialized cells.
  Result<StreamRunResult> RunInMemory(std::vector<GridBucket> cells) const;

  /// Renders the physical plan EXPLAIN (without running) for the given
  /// bucket files.
  Result<std::string> Explain(
      const std::vector<std::string>& bucket_paths) const;

 private:
  EngineOptions options_;
};

}  // namespace pmkm

#endif  // PMKM_STREAM_ENGINE_H_
