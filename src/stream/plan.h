// Logical → physical planning for the partial/merge query.
//
// Mirrors the paper's §3.4: "the parallelization of the operators is
// performed automatically during query optimization when the logical data
// streaming query is compiled into a query execution plan". The planner
// turns a resource model (RAM budget per operator, cores) into the two
// physical knobs: the partition size N' (chunks must fit in volatile
// memory) and the number of partial-operator clones.
//
// Execution is supervised (see operator.h): a StreamExecOptions chooses the
// failure policy, retry budget and watchdog timeout, and every run returns
// a RunReport describing what was retried, quarantined, or skipped.

#ifndef PMKM_STREAM_PLAN_H_
#define PMKM_STREAM_PLAN_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "stream/ops.h"

namespace pmkm {

/// Available computing resources, as the optimizer sees them.
struct ResourceModel {
  /// Volatile memory one partial operator may use for its state.
  size_t memory_bytes_per_operator = 16ULL << 20;  // 16 MiB

  /// Worker cores available for cloned operators (0 = autodetect).
  size_t cores = 0;

  size_t EffectiveCores() const;
};

/// The physical plan the optimizer chose.
struct PhysicalPlan {
  size_t chunk_points = 0;     // partition size N'
  size_t partial_clones = 1;   // cloned partial operators
  size_t queue_capacity = 4;   // smart-queue depth (back-pressure bound)
};

/// Chooses the physical plan for clustering buckets of dimensionality
/// `dim`. The k-means working set per point is roughly
/// point + assignment + shares of the sums array; a conservative factor of
/// 4 over raw point bytes keeps a clone inside its budget.
PhysicalPlan PlanPartialMerge(size_t dim, size_t expected_points_per_cell,
                              const ResourceModel& resources);

/// The exchange-depth rule, shared by the planner and the engine's
/// chunk-size override path. Depth scales with the clone count (one chunk
/// in flight plus one buffered per clone) but is capped so the buffered
/// chunks stay inside the per-operator memory budget:
///
///   cap = max(2, min(2 * clones, clones * memory_bytes / chunk_bytes))
///
/// with chunk_bytes = chunk_points * dim * sizeof(double).
size_t PlanQueueCapacity(size_t partial_clones, size_t chunk_points,
                         size_t dim, size_t memory_bytes_per_operator);

/// How a streamed run deals with failures.
struct StreamExecOptions {
  FailurePolicy failure_policy = FailurePolicy::kFailFast;

  /// Executor-level restarts per restartable operator (kRetryOperator).
  size_t max_retries = 2;

  /// Watchdog timeout: abort when no operator makes progress for this
  /// long. 0 disables the watchdog.
  uint64_t op_timeout_ms = 0;

  /// Retry/backoff policy for transient bucket-read failures
  /// (kSkipAndContinue) and failed partial chunks.
  RetryPolicy io_retry;

  /// Observability sinks. Leave the pointers null (default) for a fully
  /// uninstrumented run; set metrics and/or trace to collect a
  /// MetricsRegistry export and a Chrome trace of the pipeline.
  ObsContext obs;

  /// Cooperative cancellation token (nullable). When the pointed-at flag
  /// becomes true, the scan stops at the next work-unit boundary with
  /// Status::Cancelled and the executor tears the pipeline down under
  /// every failure policy (a cancel is never retried or skipped). The
  /// flag's owner must outlive the run. ClusterService::CancelJob
  /// (serve/service.h) flips this for running jobs.
  const std::atomic<bool>* cancel = nullptr;
};

/// One quarantined cell/bucket in the run report.
struct QuarantinedCellReport {
  std::string path;  // bucket file, empty when only the cell is known
  GridCellId cell;
  bool cell_known = false;  // false if the bucket died before its header
  std::string reason;
};

/// Per-run resilience accounting, surfaced by tools/pmkm_cluster.
struct RunReport {
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  size_t cells_clustered = 0;
  std::vector<QuarantinedCellReport> quarantined;
  size_t io_retries = 0;         // scan read retries absorbed
  size_t chunks_dropped = 0;     // partial chunks discarded
  size_t operator_restarts = 0;  // executor-level operator restarts
  std::string stalled_operators; // non-empty if the watchdog fired

  // Checkpoint/resume accounting (all zero/false for uncheckpointed runs).
  size_t cells_resumed = 0;      // cells restored from the journal
  size_t checkpoint_cells = 0;   // cell records journaled by this run
  uint64_t checkpoint_epoch = 0; // journal epoch after the run
  /// Recovery discarded a torn/corrupt journal tail before resuming.
  bool checkpoint_torn_tail = false;
  /// Checkpointing failed to open or died mid-run; the run finished but
  /// its progress is not (fully) durable.
  bool checkpoint_degraded = false;
  /// True when the run finished but lost data (quarantined cells or
  /// dropped chunks): results cover only the healthy subset.
  bool degraded = false;

  /// One-paragraph human-readable summary.
  std::string Summary() const;
};

/// Outcome of a streamed partial/merge run over many cells.
struct StreamRunResult {
  std::map<GridCellId, CellClustering> cells;
  PhysicalPlan plan;
  double wall_seconds = 0.0;
  /// Identity of this run: every artifact the run produced (log lines,
  /// metrics export, trace file, checkpoint journal) carries the same id.
  std::string run_id;
  RunReport report;
  /// Per-operator execution accounting (one entry per operator instance,
  /// partial clones separate), in executor order: scan, partials, merge.
  std::vector<OperatorStats> operator_stats;
  /// Exchange accounting: the points and centroids queues.
  std::vector<QueueStatsSnapshot> queues;
};

// The legacy free-function entry points RunPartialMergeStream /
// RunPartialMergeStreamInMemory were retired: every run goes through
// PipelineBuilder (stream/engine.h), the single entry point the serve
// layer, tools, benches and tests share. pmkm_lint's `direct-run` rule
// keeps new direct-run entry points from reappearing.

}  // namespace pmkm

#endif  // PMKM_STREAM_PLAN_H_
